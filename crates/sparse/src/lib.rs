//! # psdp-sparse
//!
//! Sparse substrate for the `positive-sdp` workspace:
//!
//! * [`csr::Csr`] — compressed sparse row matrices with rayon-parallel
//!   SpMV/SpMM,
//! * [`factor::FactorPsd`] — PSD matrices in the factorized form
//!   `A = QQᵀ` that Theorem 4.1's nearly-linear-work engine consumes,
//! * [`graph::Graph`] — undirected weighted graphs and their (edge)
//!   Laplacians, the canonical source of rank-1 factorized constraints.

#![warn(missing_docs)]

pub mod csr;
pub mod factor;
pub mod graph;
pub mod psd;

pub use csr::Csr;
pub use factor::FactorPsd;
pub use graph::Graph;
pub use psd::PsdMatrix;
