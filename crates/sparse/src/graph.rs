//! Graphs and Laplacians for workload generation.
//!
//! Several positive-SDP workloads are graph-derived (edge Laplacians are
//! rank-1 PSD matrices — the prototypical factorized constraints), so the
//! sparse crate owns a minimal undirected weighted graph type and its
//! Laplacian constructors.

use crate::csr::Csr;
use crate::factor::FactorPsd;

/// An undirected weighted graph on vertices `0..n`.
#[derive(Debug, Clone)]
pub struct Graph {
    n: usize,
    /// Undirected edges `(u, v, w)` with `u < v`, `w > 0`.
    edges: Vec<(usize, usize, f64)>,
}

impl Graph {
    /// Create a graph with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        Graph { n, edges: Vec::new() }
    }

    /// Add an undirected edge; self-loops are rejected.
    ///
    /// # Panics
    /// Panics on out-of-range endpoints, self-loops, or non-positive weight.
    pub fn add_edge(&mut self, u: usize, v: usize, w: f64) {
        assert!(u < self.n && v < self.n, "edge ({u},{v}) out of range");
        assert_ne!(u, v, "self-loops not supported");
        assert!(w > 0.0, "edge weight must be positive");
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.edges.push((a, b, w));
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Edge list view.
    pub fn edges(&self) -> &[(usize, usize, f64)] {
        &self.edges
    }

    /// Number of edges.
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// The graph Laplacian `L = Σ_e w_e (e_u − e_v)(e_u − e_v)ᵀ` as CSR.
    pub fn laplacian(&self) -> Csr {
        let mut trip = Vec::with_capacity(4 * self.edges.len());
        for &(u, v, w) in &self.edges {
            trip.push((u, u, w));
            trip.push((v, v, w));
            trip.push((u, v, -w));
            trip.push((v, u, -w));
        }
        Csr::from_triplets(self.n, self.n, &trip)
    }

    /// Per-edge Laplacians as rank-1 factorized PSD matrices
    /// `L_e = w (e_u − e_v)(e_u − e_v)ᵀ`, i.e. factor `√w (e_u − e_v)`.
    pub fn edge_laplacians(&self) -> Vec<FactorPsd> {
        self.edges
            .iter()
            .map(|&(u, v, w)| {
                let s = w.sqrt();
                let trip = vec![(u, 0usize, s), (v, 0usize, -s)];
                FactorPsd::new(Csr::from_triplets(self.n, 1, &trip))
            })
            .collect()
    }

    /// A simple path graph `0—1—…—(n−1)` with unit weights.
    pub fn path(n: usize) -> Self {
        let mut g = Graph::new(n);
        for i in 1..n {
            g.add_edge(i - 1, i, 1.0);
        }
        g
    }

    /// A cycle graph with unit weights.
    pub fn cycle(n: usize) -> Self {
        assert!(n >= 3, "cycle needs at least 3 vertices");
        let mut g = Graph::path(n);
        g.add_edge(n - 1, 0, 1.0);
        g
    }

    /// The complete graph `K_n` with unit weights.
    pub fn complete(n: usize) -> Self {
        let mut g = Graph::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                g.add_edge(u, v, 1.0);
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psdp_linalg::{sym_eigen, Mat};

    #[test]
    fn laplacian_row_sums_zero() {
        let g = Graph::cycle(5);
        let l = g.laplacian().to_dense();
        for i in 0..5 {
            let s: f64 = l.row(i).iter().sum();
            assert!(s.abs() < 1e-14);
        }
    }

    #[test]
    fn laplacian_psd_with_zero_eigenvalue() {
        let g = Graph::complete(4);
        let l = g.laplacian().to_dense();
        let eig = sym_eigen(&l).unwrap();
        assert!(eig.lambda_min().abs() < 1e-10, "connected graph: lambda_min = 0");
        // K_n Laplacian has eigenvalues {0, n, ..., n}.
        assert!((eig.lambda_max() - 4.0).abs() < 1e-10);
    }

    #[test]
    fn edge_laplacians_sum_to_laplacian() {
        let g = Graph::path(6);
        let mut acc = Mat::zeros(6, 6);
        for e in g.edge_laplacians() {
            e.add_scaled_into(&mut acc, 1.0);
        }
        let l = g.laplacian().to_dense();
        for i in 0..6 {
            for j in 0..6 {
                assert!((acc[(i, j)] - l[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn weighted_edges() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 2.0);
        g.add_edge(2, 1, 3.0); // order normalized internally
        let l = g.laplacian().to_dense();
        assert_eq!(l[(0, 0)], 2.0);
        assert_eq!(l[(1, 1)], 5.0);
        assert_eq!(l[(2, 2)], 3.0);
        assert_eq!(l[(0, 1)], -2.0);
        assert_eq!(l[(1, 2)], -3.0);
    }

    #[test]
    #[should_panic]
    fn rejects_self_loop() {
        let mut g = Graph::new(3);
        g.add_edge(1, 1, 1.0);
    }

    #[test]
    fn counts() {
        let g = Graph::complete(5);
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 10);
        assert_eq!(g.edges().len(), 10);
    }
}
