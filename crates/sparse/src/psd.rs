//! Unified representation of PSD constraint matrices.
//!
//! The solver accepts constraint matrices in four forms and treats them
//! uniformly through this enum (the solver-facing alias is
//! `psdp_core::Constraint`):
//!
//! * [`PsdMatrix::Dense`] — an explicit symmetric PSD `Mat` (the paper's
//!   "not given in factorized form" case; converted once by preprocessing
//!   when a vector engine needs factors),
//! * [`PsdMatrix::Sparse`] — an explicit symmetric PSD matrix stored in
//!   CSR; the natural format for (sub)graph Laplacians and other
//!   entry-sparse constraints that are not rank-structured,
//! * [`PsdMatrix::Factor`] — `A = QQᵀ` with sparse `Q` (Theorem 4.1's input
//!   format),
//! * [`PsdMatrix::Diagonal`] — nonnegative diagonal matrices; positive
//!   **LP**s embed into positive SDPs exactly through this case, which the
//!   cross-validation experiments exploit.
//!
//! Storage choice only affects *cost*, never semantics: every operation is
//! required to agree (up to floating point) with the densified matrix, and
//! the `storage equivalence` integration tests assert exactly that through
//! the whole solver.

use crate::csr::Csr;
use crate::factor::FactorPsd;
use psdp_linalg::{psd_factor, Mat};

/// A positive semidefinite matrix in one of four storage formats.
#[derive(Debug, Clone)]
pub enum PsdMatrix {
    /// Explicit dense symmetric PSD matrix.
    Dense(Mat),
    /// Explicit symmetric PSD matrix in CSR storage. Must be *exactly*
    /// symmetric (`a_ij` bitwise equal to `a_ji`), which
    /// [`PsdMatrix::validate_cheap`] enforces; this is what lets the
    /// solver's incremental Ψ accumulation skip per-iteration
    /// re-symmetrization on sparse instances.
    Sparse(Csr),
    /// Factorized `A = QQᵀ`.
    Factor(FactorPsd),
    /// Diagonal with nonnegative entries.
    Diagonal(Vec<f64>),
}

impl PsdMatrix {
    /// Ambient dimension `m`.
    pub fn dim(&self) -> usize {
        match self {
            PsdMatrix::Dense(a) => a.nrows(),
            PsdMatrix::Sparse(s) => s.nrows(),
            PsdMatrix::Factor(f) => f.dim(),
            PsdMatrix::Diagonal(d) => d.len(),
        }
    }

    /// `Tr A`.
    pub fn trace(&self) -> f64 {
        match self {
            PsdMatrix::Dense(a) => a.trace(),
            PsdMatrix::Sparse(s) => (0..s.nrows())
                .map(|i| s.row_iter(i).filter(|&(c, _)| c == i).map(|(_, v)| v).sum::<f64>())
                .sum(),
            PsdMatrix::Factor(f) => f.trace(),
            PsdMatrix::Diagonal(d) => d.iter().sum(),
        }
    }

    /// `A • S = Tr(AS)` against a dense symmetric `S`.
    pub fn dot_dense(&self, s: &Mat) -> f64 {
        match self {
            PsdMatrix::Dense(a) => a.dot(s),
            PsdMatrix::Sparse(sp) => {
                let mut acc = 0.0;
                for i in 0..sp.nrows() {
                    for (j, v) in sp.row_iter(i) {
                        acc += v * s[(i, j)];
                    }
                }
                acc
            }
            PsdMatrix::Factor(f) => f.dot_dense(s),
            PsdMatrix::Diagonal(d) => d.iter().enumerate().map(|(i, &v)| v * s[(i, i)]).sum(),
        }
    }

    /// `out += coeff · A`.
    pub fn add_scaled_into(&self, out: &mut Mat, coeff: f64) {
        match self {
            PsdMatrix::Dense(a) => out.axpy(coeff, a),
            PsdMatrix::Sparse(s) => {
                for i in 0..s.nrows() {
                    for (j, v) in s.row_iter(i) {
                        out[(i, j)] += coeff * v;
                    }
                }
            }
            PsdMatrix::Factor(f) => f.add_scaled_into(out, coeff),
            PsdMatrix::Diagonal(d) => {
                for (i, &v) in d.iter().enumerate() {
                    out[(i, i)] += coeff * v;
                }
            }
        }
    }

    /// Visit every stored entry `(row, col, value)` of `A` (expanding the
    /// outer products of a factorized matrix). The incremental-Ψ scatter
    /// path uses this to expand updates into triplet buffers in parallel
    /// before a cheap sequential scatter.
    pub fn for_each_entry(&self, mut f: impl FnMut(usize, usize, f64)) {
        match self {
            PsdMatrix::Dense(a) => {
                for i in 0..a.nrows() {
                    for (j, &v) in a.row(i).iter().enumerate() {
                        if v != 0.0 {
                            f(i, j, v);
                        }
                    }
                }
            }
            PsdMatrix::Sparse(s) => {
                for i in 0..s.nrows() {
                    for (j, v) in s.row_iter(i) {
                        f(i, j, v);
                    }
                }
            }
            PsdMatrix::Factor(fp) => fp.for_each_entry(f),
            PsdMatrix::Diagonal(d) => {
                for (i, &v) in d.iter().enumerate() {
                    if v != 0.0 {
                        f(i, i, v);
                    }
                }
            }
        }
    }

    /// `A x`.
    pub fn apply(&self, x: &[f64]) -> Vec<f64> {
        match self {
            PsdMatrix::Dense(a) => psdp_linalg::matvec(a, x),
            PsdMatrix::Sparse(s) => s.spmv(x),
            PsdMatrix::Factor(f) => f.apply(x),
            PsdMatrix::Diagonal(d) => d.iter().zip(x).map(|(a, b)| a * b).collect(),
        }
    }

    /// Densify.
    pub fn to_dense(&self) -> Mat {
        match self {
            PsdMatrix::Dense(a) => a.clone(),
            PsdMatrix::Sparse(s) => s.to_dense(),
            PsdMatrix::Factor(f) => f.to_dense(),
            PsdMatrix::Diagonal(d) => Mat::from_diag(d),
        }
    }

    /// Convert to factorized form `A = QQᵀ`.
    ///
    /// * `Factor` is returned as-is (cheap clone of the sparse factor),
    /// * `Diagonal(d)` becomes the diagonal factor `diag(√dᵢ)`,
    /// * `Dense` is eigendecomposed (rank-revealing; `rank_tol` relative
    ///   eigenvalue cutoff) — the preprocessing step of Section 1.2,
    /// * `Sparse` is eigendecomposed **on its occupied support only**: a
    ///   constraint touching `|S|` coordinates costs `O(|S|³)`, not
    ///   `O(m³)`, and yields a factor with `O(|S|·rank)` nonzeros — so the
    ///   sketched engine's setup and per-iteration work stay proportional
    ///   to the constraint's actual structure (star/edge Laplacians have
    ///   `|S| = deg + 1 ≪ m`).
    ///
    /// # Errors
    /// Propagates eigensolver failures / non-PSD dense input.
    pub fn to_factor(&self, rank_tol: f64) -> Result<FactorPsd, psdp_linalg::LinalgError> {
        match self {
            PsdMatrix::Factor(f) => Ok(f.clone()),
            PsdMatrix::Diagonal(d) => {
                let trip: Vec<(usize, usize, f64)> = d
                    .iter()
                    .enumerate()
                    .filter(|(_, &v)| v > 0.0)
                    .map(|(i, &v)| (i, i, v.sqrt()))
                    .collect();
                Ok(FactorPsd::new(Csr::from_triplets(d.len(), d.len(), &trip)))
            }
            PsdMatrix::Dense(a) => {
                let q = psd_factor(a, rank_tol)?;
                Ok(FactorPsd::new(Csr::from_dense(&q, 0.0)))
            }
            PsdMatrix::Sparse(s) => {
                // Occupied support (rows with any stored nonzero; symmetry
                // makes row and column support identical).
                let support: Vec<usize> =
                    (0..s.nrows()).filter(|&i| s.row_iter(i).any(|(_, v)| v != 0.0)).collect();
                if support.is_empty() {
                    return Ok(FactorPsd::new(Csr::zeros(s.nrows(), 1)));
                }
                let k = support.len();
                let mut sub = Mat::zeros(k, k);
                let mut inv = vec![usize::MAX; s.nrows()];
                for (si, &i) in support.iter().enumerate() {
                    inv[i] = si;
                }
                for (si, &i) in support.iter().enumerate() {
                    for (j, v) in s.row_iter(i) {
                        // Stored explicit zeros may reference off-support
                        // columns; only real nonzeros land in the submatrix.
                        if v != 0.0 {
                            sub[(si, inv[j])] = v;
                        }
                    }
                }
                let q_sub = psd_factor(&sub, rank_tol)?;
                let mut trip = Vec::new();
                for (si, &i) in support.iter().enumerate() {
                    for (c, &v) in q_sub.row(si).iter().enumerate() {
                        if v != 0.0 {
                            trip.push((i, c, v));
                        }
                    }
                }
                Ok(FactorPsd::new(Csr::from_triplets(s.nrows(), q_sub.ncols().max(1), &trip)))
            }
        }
    }

    /// Scale the matrix by `alpha ≥ 0` in place.
    pub fn scale(&mut self, alpha: f64) {
        assert!(alpha >= 0.0, "PsdMatrix::scale needs alpha >= 0");
        match self {
            PsdMatrix::Dense(a) => a.scale(alpha),
            PsdMatrix::Sparse(s) => s.scale(alpha),
            PsdMatrix::Factor(f) => f.scale(alpha),
            PsdMatrix::Diagonal(d) => {
                for v in d {
                    *v *= alpha;
                }
            }
        }
    }

    /// An estimate of `λmax(A)` (exact for diagonal, power iteration for
    /// dense and sparse, `λmax(QᵀQ)`-based for factors).
    pub fn lambda_max_est(&self) -> f64 {
        match self {
            PsdMatrix::Dense(a) => psdp_linalg::lambda_max_estimate(a),
            PsdMatrix::Sparse(s) => sparse_lambda_max_est(s),
            PsdMatrix::Diagonal(d) => d.iter().fold(0.0_f64, |m, &v| m.max(v)),
            PsdMatrix::Factor(f) => {
                // lambda_max(QQ^T) = lambda_max(Q^T Q); the Gram matrix is
                // r × r which is usually tiny.
                let q = f.factor();
                let qd = q.to_dense();
                let gram = psdp_linalg::gemm::gram(&qd);
                psdp_linalg::lambda_max_estimate(&gram)
            }
        }
    }

    /// Cheap structural validation (no eigendecomposition): finite entries
    /// everywhere; nonnegative entries for `Diagonal`; symmetry and
    /// nonnegative diagonal for `Dense` (both necessary for PSD-ness);
    /// *exact* symmetry, squareness, and nonnegative diagonal for `Sparse`.
    /// `Factor` is PSD by construction, so only finiteness is checked.
    ///
    /// Returns a human-readable description of the first violation.
    ///
    /// # Errors
    /// A message naming the violation, if any.
    pub fn validate_cheap(&self) -> Result<(), String> {
        match self {
            PsdMatrix::Sparse(s) => {
                if s.nrows() != s.ncols() {
                    return Err(format!("sparse matrix is {}x{}", s.nrows(), s.ncols()));
                }
                let mut max_abs = 0.0_f64;
                for i in 0..s.nrows() {
                    for (j, v) in s.row_iter(i) {
                        if !v.is_finite() {
                            return Err(format!("sparse entry ({i},{j}) is not finite"));
                        }
                        max_abs = max_abs.max(v.abs());
                    }
                }
                // Same relative tolerance as the Dense arm: conjugation
                // noise can leave a true-zero diagonal entry at ~-1e-18,
                // and sparsifying a matrix must never reject what its
                // dense form accepts.
                let tol = 1e-8 * max_abs.max(1.0);
                for i in 0..s.nrows() {
                    for (j, v) in s.row_iter(i) {
                        if i == j && v < -tol {
                            return Err(format!(
                                "sparse diagonal entry {i} = {v} is negative (not PSD)"
                            ));
                        }
                    }
                }
                // Exact symmetry: the incremental-Ψ path relies on sparse
                // scatter-adds being exactly symmetric, so tolerate no
                // asymmetry at all. O(nnz) without materializing the
                // transpose: a row-major walk visits the entries of
                // transpose-row j in exactly the order a symmetric matrix
                // stores row j, so one cursor per row verifies pattern
                // and values in place.
                let rp = s.row_ptr();
                let ci = s.col_idx();
                let vals = s.values();
                let mut cur: Vec<usize> = rp[..s.nrows()].to_vec();
                let symmetric = 'sym: {
                    for i in 0..s.nrows() {
                        for k in rp[i]..rp[i + 1] {
                            let j = ci[k];
                            let t = cur[j];
                            if t >= rp[j + 1] || ci[t] != i || vals[t] != vals[k] {
                                break 'sym false;
                            }
                            cur[j] = t + 1;
                        }
                    }
                    (0..s.nrows()).all(|j| cur[j] == rp[j + 1])
                };
                if !symmetric {
                    return Err("sparse matrix is not exactly symmetric".into());
                }
                Ok(())
            }
            PsdMatrix::Diagonal(d) => {
                for (i, &v) in d.iter().enumerate() {
                    if !v.is_finite() {
                        return Err(format!("diagonal entry {i} is not finite"));
                    }
                    if v < 0.0 {
                        return Err(format!("diagonal entry {i} = {v} is negative (not PSD)"));
                    }
                }
                Ok(())
            }
            PsdMatrix::Dense(a) => {
                if !a.all_finite() {
                    return Err("dense matrix has non-finite entries".into());
                }
                if !a.is_square() {
                    return Err(format!("dense matrix is {}x{}", a.nrows(), a.ncols()));
                }
                let tol = 1e-8 * a.max_abs().max(1.0);
                let asym = a.asymmetry();
                if asym > tol {
                    return Err(format!("dense matrix asymmetric (max |Aij−Aji| = {asym:.3e})"));
                }
                for i in 0..a.nrows() {
                    if a[(i, i)] < -tol {
                        return Err(format!(
                            "dense diagonal entry {i} = {} is negative (not PSD)",
                            a[(i, i)]
                        ));
                    }
                }
                Ok(())
            }
            PsdMatrix::Factor(f) => {
                let q = f.factor();
                for i in 0..q.nrows() {
                    for (c, v) in q.row_iter(i) {
                        if !v.is_finite() {
                            return Err(format!("factor entry ({i},{c}) is not finite"));
                        }
                    }
                }
                Ok(())
            }
        }
    }

    /// Representation size used for work accounting: nnz of the natural
    /// storage (factor nnz, CSR nnz, dense m², or diagonal m).
    pub fn storage_nnz(&self) -> usize {
        match self {
            PsdMatrix::Dense(a) => a.nrows() * a.ncols(),
            PsdMatrix::Sparse(s) => s.nnz(),
            PsdMatrix::Factor(f) => f.factor_nnz(),
            PsdMatrix::Diagonal(d) => d.iter().filter(|&&v| v != 0.0).count(),
        }
    }
}

/// Power-iteration estimate of `λmax` for a symmetric PSD CSR matrix,
/// using only SpMV (never densifies).
fn sparse_lambda_max_est(s: &Csr) -> f64 {
    let n = s.nrows();
    if n == 0 || s.nnz() == 0 {
        return 0.0;
    }
    // Deterministic start vector with no obvious symmetry (an exactly
    // symmetric start can be orthogonal to the top eigenvector).
    let mut v: Vec<f64> = (0..n).map(|i| 1.0 + 0.1 * ((i * 7 + 3) % 11) as f64).collect();
    let norm0 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    for x in &mut v {
        *x /= norm0;
    }
    let mut lam = 0.0;
    for _ in 0..100 {
        let w = s.spmv(&v);
        let norm = w.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm == 0.0 {
            return 0.0;
        }
        let next = norm;
        let converged = (next - lam).abs() <= 1e-9 * next.max(1e-300);
        lam = next;
        v = w.into_iter().map(|x| x / norm).collect();
        if converged {
            break;
        }
    }
    lam
}

#[cfg(test)]
mod tests {
    use super::*;
    use psdp_linalg::sym_eigen;

    fn variants() -> Vec<PsdMatrix> {
        let mut dense = Mat::zeros(3, 3);
        dense.rank1_update(1.0, &[1.0, 2.0, 0.0]);
        dense.rank1_update(0.5, &[0.0, 1.0, 1.0]);
        let factor = PsdMatrix::Dense(dense.clone()).to_factor(1e-10).unwrap();
        let sparse = Csr::from_dense(&dense, 0.0);
        vec![
            PsdMatrix::Dense(dense),
            PsdMatrix::Sparse(sparse),
            PsdMatrix::Factor(factor),
            PsdMatrix::Diagonal(vec![1.0, 0.0, 2.5]),
        ]
    }

    #[test]
    fn dense_sparse_and_factor_agree() {
        let vs = variants();
        let d = vs[0].to_dense();
        for (k, v) in vs.iter().enumerate().take(3).skip(1) {
            let other = v.to_dense();
            for i in 0..3 {
                for j in 0..3 {
                    assert!((d[(i, j)] - other[(i, j)]).abs() < 1e-9, "variant {k} ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn for_each_entry_reconstructs_dense() {
        for m in variants() {
            let mut rebuilt = Mat::zeros(3, 3);
            m.for_each_entry(|i, j, v| rebuilt[(i, j)] += v);
            let want = m.to_dense();
            for i in 0..3 {
                for j in 0..3 {
                    assert!((rebuilt[(i, j)] - want[(i, j)]).abs() < 1e-12, "{m:?} ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn sparse_validation_rejects_asymmetry_and_negative_diag() {
        let asym = Csr::from_triplets(2, 2, &[(0, 1, 1.0)]);
        assert!(PsdMatrix::Sparse(asym).validate_cheap().is_err());
        let negd = Csr::from_triplets(2, 2, &[(0, 0, -1.0)]);
        assert!(PsdMatrix::Sparse(negd).validate_cheap().is_err());
        let rect = Csr::from_triplets(2, 3, &[(0, 0, 1.0)]);
        assert!(PsdMatrix::Sparse(rect).validate_cheap().is_err());
        let ok = Csr::from_triplets(2, 2, &[(0, 0, 1.0), (0, 1, 0.5), (1, 0, 0.5), (1, 1, 1.0)]);
        assert!(PsdMatrix::Sparse(ok).validate_cheap().is_ok());
        // Conjugation noise: a ~-1e-18 diagonal entry (true value zero)
        // must pass, exactly as the Dense arm's relative tolerance allows.
        let noisy = Csr::from_triplets(2, 2, &[(0, 0, -1e-18), (1, 1, 1.0)]);
        assert!(PsdMatrix::Sparse(noisy).validate_cheap().is_ok());
    }

    #[test]
    fn trace_consistent_across_representations() {
        for m in variants() {
            let want = m.to_dense().trace();
            assert!((m.trace() - want).abs() < 1e-9, "{m:?}");
        }
    }

    #[test]
    fn dot_dense_consistent() {
        let mut s = Mat::from_fn(3, 3, |i, j| ((i * 2 + j) % 4) as f64);
        s.symmetrize();
        for m in variants() {
            let want = psdp_linalg::matmul(&m.to_dense(), &s).trace();
            assert!((m.dot_dense(&s) - want).abs() < 1e-9);
        }
    }

    #[test]
    fn apply_consistent() {
        let x = [0.5, -1.0, 2.0];
        for m in variants() {
            let want = psdp_linalg::matvec(&m.to_dense(), &x);
            let got = m.apply(&x);
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn add_scaled_into_consistent() {
        for m in variants() {
            let mut out = Mat::identity(3);
            m.add_scaled_into(&mut out, 2.0);
            let mut want = Mat::identity(3);
            want.axpy(2.0, &m.to_dense());
            for i in 0..3 {
                for j in 0..3 {
                    assert!((out[(i, j)] - want[(i, j)]).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn lambda_max_est_close_to_truth() {
        for m in variants() {
            let truth = sym_eigen(&m.to_dense()).unwrap().lambda_max();
            let est = m.lambda_max_est();
            assert!(
                (est - truth).abs() <= 0.05 * truth.max(1e-12) + 1e-12,
                "est {est} truth {truth}"
            );
        }
    }

    #[test]
    fn sparse_to_factor_is_support_local() {
        // A 40-dim edge Laplacian touching only coordinates {3, 27}: the
        // factor must reconstruct A exactly and keep all nonzeros on the
        // 2-coordinate support (never a dense 40-dim eigenbasis).
        let m = 40;
        let trip = [(3, 3, 1.0), (27, 27, 1.0), (3, 27, -1.0), (27, 3, -1.0)];
        let a = PsdMatrix::Sparse(Csr::from_triplets(m, m, &trip));
        let f = a.to_factor(1e-10).unwrap();
        assert_eq!(f.dim(), m);
        assert!(f.factor_nnz() <= 4, "factor nnz {} not support-local", f.factor_nnz());
        assert!(f.rank_bound() <= 2);
        let ad = a.to_dense();
        let fd = f.to_dense();
        for i in 0..m {
            for j in 0..m {
                assert!((ad[(i, j)] - fd[(i, j)]).abs() < 1e-9, "({i},{j})");
            }
        }
        // Degenerate all-zero sparse matrix factors to an empty factor.
        let z = PsdMatrix::Sparse(Csr::zeros(5, 5));
        let fz = z.to_factor(1e-10).unwrap();
        assert_eq!(fz.factor_nnz(), 0);
        assert_eq!(fz.dim(), 5);
    }

    #[test]
    fn diagonal_to_factor_roundtrip() {
        let d = PsdMatrix::Diagonal(vec![4.0, 0.0, 9.0]);
        let f = d.to_factor(1e-12).unwrap();
        let fd = f.to_dense();
        assert_eq!(fd[(0, 0)], 4.0);
        assert_eq!(fd[(1, 1)], 0.0);
        assert_eq!(fd[(2, 2)], 9.0);
        assert_eq!(f.factor_nnz(), 2);
    }

    #[test]
    fn scale_consistent() {
        for mut m in variants() {
            let before = m.to_dense();
            m.scale(2.0);
            let after = m.to_dense();
            for i in 0..3 {
                for j in 0..3 {
                    assert!((after[(i, j)] - 2.0 * before[(i, j)]).abs() < 1e-9);
                }
            }
        }
    }
}
