//! Unified representation of PSD constraint matrices.
//!
//! The solver accepts constraint matrices in three forms and treats them
//! uniformly through this enum:
//!
//! * [`PsdMatrix::Dense`] — an explicit symmetric PSD `Mat` (the paper's
//!   "not given in factorized form" case; converted once by preprocessing
//!   when a vector engine needs factors),
//! * [`PsdMatrix::Factor`] — `A = QQᵀ` with sparse `Q` (Theorem 4.1's input
//!   format),
//! * [`PsdMatrix::Diagonal`] — nonnegative diagonal matrices; positive
//!   **LP**s embed into positive SDPs exactly through this case, which the
//!   cross-validation experiments exploit.

use crate::csr::Csr;
use crate::factor::FactorPsd;
use psdp_linalg::{psd_factor, Mat};

/// A positive semidefinite matrix in one of three storage formats.
#[derive(Debug, Clone)]
pub enum PsdMatrix {
    /// Explicit dense symmetric PSD matrix.
    Dense(Mat),
    /// Factorized `A = QQᵀ`.
    Factor(FactorPsd),
    /// Diagonal with nonnegative entries.
    Diagonal(Vec<f64>),
}

impl PsdMatrix {
    /// Ambient dimension `m`.
    pub fn dim(&self) -> usize {
        match self {
            PsdMatrix::Dense(a) => a.nrows(),
            PsdMatrix::Factor(f) => f.dim(),
            PsdMatrix::Diagonal(d) => d.len(),
        }
    }

    /// `Tr A`.
    pub fn trace(&self) -> f64 {
        match self {
            PsdMatrix::Dense(a) => a.trace(),
            PsdMatrix::Factor(f) => f.trace(),
            PsdMatrix::Diagonal(d) => d.iter().sum(),
        }
    }

    /// `A • S = Tr(AS)` against a dense symmetric `S`.
    pub fn dot_dense(&self, s: &Mat) -> f64 {
        match self {
            PsdMatrix::Dense(a) => a.dot(s),
            PsdMatrix::Factor(f) => f.dot_dense(s),
            PsdMatrix::Diagonal(d) => d.iter().enumerate().map(|(i, &v)| v * s[(i, i)]).sum(),
        }
    }

    /// `out += coeff · A`.
    pub fn add_scaled_into(&self, out: &mut Mat, coeff: f64) {
        match self {
            PsdMatrix::Dense(a) => out.axpy(coeff, a),
            PsdMatrix::Factor(f) => f.add_scaled_into(out, coeff),
            PsdMatrix::Diagonal(d) => {
                for (i, &v) in d.iter().enumerate() {
                    out[(i, i)] += coeff * v;
                }
            }
        }
    }

    /// `A x`.
    pub fn apply(&self, x: &[f64]) -> Vec<f64> {
        match self {
            PsdMatrix::Dense(a) => psdp_linalg::matvec(a, x),
            PsdMatrix::Factor(f) => f.apply(x),
            PsdMatrix::Diagonal(d) => d.iter().zip(x).map(|(a, b)| a * b).collect(),
        }
    }

    /// Densify.
    pub fn to_dense(&self) -> Mat {
        match self {
            PsdMatrix::Dense(a) => a.clone(),
            PsdMatrix::Factor(f) => f.to_dense(),
            PsdMatrix::Diagonal(d) => Mat::from_diag(d),
        }
    }

    /// Convert to factorized form `A = QQᵀ`.
    ///
    /// * `Factor` is returned as-is (cheap clone of the sparse factor),
    /// * `Diagonal(d)` becomes the diagonal factor `diag(√dᵢ)`,
    /// * `Dense` is eigendecomposed (rank-revealing; `rank_tol` relative
    ///   eigenvalue cutoff) — the preprocessing step of Section 1.2.
    ///
    /// # Errors
    /// Propagates eigensolver failures / non-PSD dense input.
    pub fn to_factor(&self, rank_tol: f64) -> Result<FactorPsd, psdp_linalg::LinalgError> {
        match self {
            PsdMatrix::Factor(f) => Ok(f.clone()),
            PsdMatrix::Diagonal(d) => {
                let trip: Vec<(usize, usize, f64)> = d
                    .iter()
                    .enumerate()
                    .filter(|(_, &v)| v > 0.0)
                    .map(|(i, &v)| (i, i, v.sqrt()))
                    .collect();
                Ok(FactorPsd::new(Csr::from_triplets(d.len(), d.len(), &trip)))
            }
            PsdMatrix::Dense(a) => {
                let q = psd_factor(a, rank_tol)?;
                Ok(FactorPsd::new(Csr::from_dense(&q, 0.0)))
            }
        }
    }

    /// Scale the matrix by `alpha ≥ 0` in place.
    pub fn scale(&mut self, alpha: f64) {
        assert!(alpha >= 0.0, "PsdMatrix::scale needs alpha >= 0");
        match self {
            PsdMatrix::Dense(a) => a.scale(alpha),
            PsdMatrix::Factor(f) => f.scale(alpha),
            PsdMatrix::Diagonal(d) => {
                for v in d {
                    *v *= alpha;
                }
            }
        }
    }

    /// An estimate of `λmax(A)` (exact for diagonal, power iteration for
    /// dense, `λmax(QᵀQ)`-based for factors).
    pub fn lambda_max_est(&self) -> f64 {
        match self {
            PsdMatrix::Dense(a) => psdp_linalg::lambda_max_estimate(a),
            PsdMatrix::Diagonal(d) => d.iter().fold(0.0_f64, |m, &v| m.max(v)),
            PsdMatrix::Factor(f) => {
                // lambda_max(QQ^T) = lambda_max(Q^T Q); the Gram matrix is
                // r × r which is usually tiny.
                let q = f.factor();
                let qd = q.to_dense();
                let gram = psdp_linalg::gemm::gram(&qd);
                psdp_linalg::lambda_max_estimate(&gram)
            }
        }
    }

    /// Cheap structural validation (no eigendecomposition): finite entries
    /// everywhere; nonnegative entries for `Diagonal`; symmetry and
    /// nonnegative diagonal for `Dense` (both necessary for PSD-ness).
    /// `Factor` is PSD by construction, so only finiteness is checked.
    ///
    /// Returns a human-readable description of the first violation.
    ///
    /// # Errors
    /// A message naming the violation, if any.
    pub fn validate_cheap(&self) -> Result<(), String> {
        match self {
            PsdMatrix::Diagonal(d) => {
                for (i, &v) in d.iter().enumerate() {
                    if !v.is_finite() {
                        return Err(format!("diagonal entry {i} is not finite"));
                    }
                    if v < 0.0 {
                        return Err(format!("diagonal entry {i} = {v} is negative (not PSD)"));
                    }
                }
                Ok(())
            }
            PsdMatrix::Dense(a) => {
                if !a.all_finite() {
                    return Err("dense matrix has non-finite entries".into());
                }
                if !a.is_square() {
                    return Err(format!("dense matrix is {}x{}", a.nrows(), a.ncols()));
                }
                let tol = 1e-8 * a.max_abs().max(1.0);
                let asym = a.asymmetry();
                if asym > tol {
                    return Err(format!("dense matrix asymmetric (max |Aij−Aji| = {asym:.3e})"));
                }
                for i in 0..a.nrows() {
                    if a[(i, i)] < -tol {
                        return Err(format!(
                            "dense diagonal entry {i} = {} is negative (not PSD)",
                            a[(i, i)]
                        ));
                    }
                }
                Ok(())
            }
            PsdMatrix::Factor(f) => {
                let q = f.factor();
                for i in 0..q.nrows() {
                    for (c, v) in q.row_iter(i) {
                        if !v.is_finite() {
                            return Err(format!("factor entry ({i},{c}) is not finite"));
                        }
                    }
                }
                Ok(())
            }
        }
    }

    /// Representation size used for work accounting: nnz of the natural
    /// storage (factor nnz, dense m², or diagonal m).
    pub fn storage_nnz(&self) -> usize {
        match self {
            PsdMatrix::Dense(a) => a.nrows() * a.ncols(),
            PsdMatrix::Factor(f) => f.factor_nnz(),
            PsdMatrix::Diagonal(d) => d.iter().filter(|&&v| v != 0.0).count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psdp_linalg::sym_eigen;

    fn variants() -> Vec<PsdMatrix> {
        let mut dense = Mat::zeros(3, 3);
        dense.rank1_update(1.0, &[1.0, 2.0, 0.0]);
        dense.rank1_update(0.5, &[0.0, 1.0, 1.0]);
        let factor = PsdMatrix::Dense(dense.clone()).to_factor(1e-10).unwrap();
        vec![
            PsdMatrix::Dense(dense),
            PsdMatrix::Factor(factor),
            PsdMatrix::Diagonal(vec![1.0, 0.0, 2.5]),
        ]
    }

    #[test]
    fn dense_and_factor_agree() {
        let vs = variants();
        let d = vs[0].to_dense();
        let f = vs[1].to_dense();
        for i in 0..3 {
            for j in 0..3 {
                assert!((d[(i, j)] - f[(i, j)]).abs() < 1e-9, "({i},{j})");
            }
        }
    }

    #[test]
    fn trace_consistent_across_representations() {
        for m in variants() {
            let want = m.to_dense().trace();
            assert!((m.trace() - want).abs() < 1e-9, "{m:?}");
        }
    }

    #[test]
    fn dot_dense_consistent() {
        let mut s = Mat::from_fn(3, 3, |i, j| ((i * 2 + j) % 4) as f64);
        s.symmetrize();
        for m in variants() {
            let want = psdp_linalg::matmul(&m.to_dense(), &s).trace();
            assert!((m.dot_dense(&s) - want).abs() < 1e-9);
        }
    }

    #[test]
    fn apply_consistent() {
        let x = [0.5, -1.0, 2.0];
        for m in variants() {
            let want = psdp_linalg::matvec(&m.to_dense(), &x);
            let got = m.apply(&x);
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn add_scaled_into_consistent() {
        for m in variants() {
            let mut out = Mat::identity(3);
            m.add_scaled_into(&mut out, 2.0);
            let mut want = Mat::identity(3);
            want.axpy(2.0, &m.to_dense());
            for i in 0..3 {
                for j in 0..3 {
                    assert!((out[(i, j)] - want[(i, j)]).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn lambda_max_est_close_to_truth() {
        for m in variants() {
            let truth = sym_eigen(&m.to_dense()).unwrap().lambda_max();
            let est = m.lambda_max_est();
            assert!(
                (est - truth).abs() <= 0.05 * truth.max(1e-12) + 1e-12,
                "est {est} truth {truth}"
            );
        }
    }

    #[test]
    fn diagonal_to_factor_roundtrip() {
        let d = PsdMatrix::Diagonal(vec![4.0, 0.0, 9.0]);
        let f = d.to_factor(1e-12).unwrap();
        let fd = f.to_dense();
        assert_eq!(fd[(0, 0)], 4.0);
        assert_eq!(fd[(1, 1)], 0.0);
        assert_eq!(fd[(2, 2)], 9.0);
        assert_eq!(f.factor_nnz(), 2);
    }

    #[test]
    fn scale_consistent() {
        for mut m in variants() {
            let before = m.to_dense();
            m.scale(2.0);
            let after = m.to_dense();
            for i in 0..3 {
                for j in 0..3 {
                    assert!((after[(i, j)] - 2.0 * before[(i, j)]).abs() < 1e-9);
                }
            }
        }
    }
}
