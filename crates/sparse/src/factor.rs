//! Factorized PSD matrices `A = Q Qᵀ` with sparse factors.
//!
//! This is the input format Theorem 4.1 assumes ("given a positive SDP in a
//! factorized form"): each constraint matrix is represented by its `m × rᵢ`
//! factor `Qᵢ`, and `q = Σᵢ nnz(Qᵢ)` is the instance size the nearly-linear
//! work bound refers to. The key identities the engines use:
//!
//! * `A • S = Tr(S Q Qᵀ) = Σ_cols qᵀ S q` for symmetric `S`,
//! * `exp(Φ) • A = ‖exp(Φ/2) Q‖²_F` (proof of Theorem 4.1),
//! * `Tr A = ‖Q‖²_F`,
//! * `A x = Q (Qᵀ x)` — two sparse products, never a dense `m × m`.

use crate::csr::Csr;
use psdp_linalg::{Mat, SymOp};

/// A PSD matrix held in factorized form `A = Q Qᵀ` (`Q`: `m × r`, sparse).
///
/// ```
/// use psdp_sparse::FactorPsd;
///
/// // A = vvᵀ for v = (1, -2): trace = ‖v‖² = 5, A·(1,0) = (1, -2).
/// let a = FactorPsd::from_vector(&[1.0, -2.0]);
/// assert_eq!(a.trace(), 5.0);
/// assert_eq!(a.apply(&[1.0, 0.0]), vec![1.0, -2.0]);
/// assert_eq!(a.factor_nnz(), 2); // the “q” of Theorem 4.1
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FactorPsd {
    /// The factor; `A = q_factor · q_factorᵀ`.
    q: Csr,
}

impl FactorPsd {
    /// Wrap a factor `Q` (`m × r`).
    pub fn new(q: Csr) -> Self {
        FactorPsd { q }
    }

    /// Build from a single vector: `A = v vᵀ` (rank-1).
    pub fn from_vector(v: &[f64]) -> Self {
        let trip: Vec<(usize, usize, f64)> =
            v.iter().enumerate().filter(|(_, &x)| x != 0.0).map(|(i, &x)| (i, 0usize, x)).collect();
        FactorPsd { q: Csr::from_triplets(v.len(), 1, &trip) }
    }

    /// The ambient dimension `m`.
    pub fn dim(&self) -> usize {
        self.q.nrows()
    }

    /// Number of factor columns `r` (an upper bound on the rank).
    pub fn rank_bound(&self) -> usize {
        self.q.ncols()
    }

    /// Access the factor `Q`.
    pub fn factor(&self) -> &Csr {
        &self.q
    }

    /// Nonzeros in the factor — the `q` of Theorem 4.1.
    pub fn factor_nnz(&self) -> usize {
        self.q.nnz()
    }

    /// `Tr A = ‖Q‖²_F`.
    pub fn trace(&self) -> f64 {
        self.q.fro_norm_sq()
    }

    /// `A x = Q (Qᵀ x)`.
    pub fn apply(&self, x: &[f64]) -> Vec<f64> {
        self.q.spmv(&self.q.spmv_transpose(x))
    }

    /// `A • S = Tr(S A)` for symmetric dense `S`, computed column-by-column
    /// as `Σ_j q_jᵀ S q_j` without densifying `A`.
    pub fn dot_dense(&self, s: &Mat) -> f64 {
        assert_eq!(s.nrows(), self.dim(), "dot_dense: dim mismatch");
        // S Q (m×r), then sum_j <q_j, (SQ)_j> = sum over nnz of Q.
        let qd = self.q.to_dense();
        let sq = psdp_linalg::matmul(s, &qd);
        qd.dot(&sq)
    }

    /// Given a precomputed sketch/polynomial block product `SQ = S · Q`
    /// where `S` is (an approximation of) `exp(Φ/2)` possibly composed with
    /// a JL sketch, return `‖SQ‖²_F` — the Theorem 4.1 estimate of
    /// `exp(Φ) • A`.
    pub fn exp_dot_from_block(sq: &Mat) -> f64 {
        sq.as_slice().iter().map(|v| v * v).sum()
    }

    /// `S · Q` for dense `S` stored as `Mat` rows (i.e., computes `S Q` via
    /// the transpose kernel: `(Qᵀ Sᵀ)ᵀ`). `S` is `r_s × m`.
    pub fn left_mul(&self, s: &Mat) -> Mat {
        assert_eq!(s.ncols(), self.dim(), "left_mul: dim mismatch");
        // (S Q) = (Q^T S^T)^T ; Q^T S^T is r × r_s.
        let st = s.transpose();
        self.q.spmm_transpose(&st).transpose()
    }

    /// Densify `A = Q Qᵀ`.
    pub fn to_dense(&self) -> Mat {
        let qd = self.q.to_dense();
        psdp_linalg::matmul(&qd, &qd.transpose())
    }

    /// Scale the represented matrix by `alpha ≥ 0` (scales the factor by
    /// `√alpha`).
    pub fn scale(&mut self, alpha: f64) {
        assert!(alpha >= 0.0, "FactorPsd::scale needs alpha >= 0, got {alpha}");
        self.q.scale(alpha.sqrt());
    }

    /// Visit every entry `(row, col, value)` of the represented matrix
    /// `A = Σ_c q_c q_cᵀ`, expanding the outer products on the sparse
    /// support only (one pass gathers the column lists). This is the one
    /// place the expansion lives; scatter-add paths build on it.
    pub fn for_each_entry(&self, mut f: impl FnMut(usize, usize, f64)) {
        let q = &self.q;
        let mut cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); q.ncols()];
        for i in 0..q.nrows() {
            for (c, v) in q.row_iter(i) {
                if v != 0.0 {
                    cols[c].push((i, v));
                }
            }
        }
        for col in &cols {
            for &(i, vi) in col {
                for &(k, vk) in col {
                    f(i, k, vi * vk);
                }
            }
        }
    }

    /// Accumulate `out += coeff · A` into a dense matrix (sparse-support
    /// outer-product expansion via [`FactorPsd::for_each_entry`]).
    pub fn add_scaled_into(&self, out: &mut Mat, coeff: f64) {
        assert_eq!(out.nrows(), self.dim());
        self.for_each_entry(|i, k, v| out[(i, k)] += coeff * v);
    }
}

impl SymOp for FactorPsd {
    fn dim(&self) -> usize {
        FactorPsd::dim(self)
    }

    fn apply_vec(&self, x: &[f64]) -> Vec<f64> {
        self.apply(x)
    }

    fn apply_block(&self, x: &Mat) -> Mat {
        self.q.spmm(&self.q.spmm_transpose(x))
    }

    fn nnz(&self) -> usize {
        self.factor_nnz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psdp_linalg::sym_eigen;

    fn example() -> FactorPsd {
        // Q = [[1, 0], [2, 1], [0, 3]]  =>  A = QQ^T
        FactorPsd::new(Csr::from_triplets(
            3,
            2,
            &[(0, 0, 1.0), (1, 0, 2.0), (1, 1, 1.0), (2, 1, 3.0)],
        ))
    }

    #[test]
    fn trace_identity() {
        let f = example();
        let a = f.to_dense();
        assert!((f.trace() - a.trace()).abs() < 1e-14);
        assert_eq!(f.trace(), 1.0 + 4.0 + 1.0 + 9.0);
    }

    #[test]
    fn apply_matches_dense() {
        let f = example();
        let a = f.to_dense();
        let x = [1.0, -2.0, 0.5];
        let y = f.apply(&x);
        let yd = psdp_linalg::matvec(&a, &x);
        for (g, w) in y.iter().zip(&yd) {
            assert!((g - w).abs() < 1e-13);
        }
    }

    #[test]
    fn dense_form_is_psd() {
        let f = example();
        let eig = sym_eigen(&f.to_dense()).unwrap();
        assert!(eig.lambda_min() > -1e-12);
    }

    #[test]
    fn dot_dense_matches_trace_product() {
        let f = example();
        let mut s = Mat::from_fn(3, 3, |i, j| ((i + j) % 3) as f64);
        s.symmetrize();
        let want = psdp_linalg::matmul(&s, &f.to_dense()).trace();
        assert!((f.dot_dense(&s) - want).abs() < 1e-12);
    }

    #[test]
    fn exp_dot_frobenius_identity() {
        // exp(Phi) . A = ||exp(Phi/2) Q||_F^2 — verified with exact expm.
        let f = example();
        let mut phi = Mat::from_fn(3, 3, |i, j| ((i * 2 + j) % 3) as f64 * 0.2);
        phi.symmetrize();
        // ensure PSD
        let shift = -sym_eigen(&phi).unwrap().lambda_min().min(0.0) + 0.1;
        phi.add_diag(shift);
        let ephi = psdp_linalg::expm(&phi).unwrap();
        let ehalf = psdp_linalg::expm(&phi.scaled(0.5)).unwrap();
        let want = ephi.dot(&f.to_dense());
        let sq = f.left_mul(&ehalf);
        let got = FactorPsd::exp_dot_from_block(&sq);
        assert!((got - want).abs() < 1e-9 * want.abs().max(1.0), "{got} vs {want}");
    }

    #[test]
    fn left_mul_matches_dense() {
        let f = example();
        let s = Mat::from_fn(4, 3, |i, j| (i * 3 + j) as f64 * 0.5);
        let got = f.left_mul(&s);
        let want = psdp_linalg::matmul(&s, &f.factor().to_dense());
        assert_eq!(got.nrows(), 4);
        assert_eq!(got.ncols(), 2);
        for i in 0..4 {
            for j in 0..2 {
                assert!((got[(i, j)] - want[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn add_scaled_into_matches_dense() {
        let f = example();
        let mut out = Mat::zeros(3, 3);
        f.add_scaled_into(&mut out, 2.0);
        let want = f.to_dense().scaled(2.0);
        for i in 0..3 {
            for j in 0..3 {
                assert!((out[(i, j)] - want[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn rank1_from_vector() {
        let f = FactorPsd::from_vector(&[1.0, 0.0, -2.0]);
        assert_eq!(f.rank_bound(), 1);
        assert_eq!(f.factor_nnz(), 2);
        let a = f.to_dense();
        assert_eq!(a[(0, 0)], 1.0);
        assert_eq!(a[(0, 2)], -2.0);
        assert_eq!(a[(2, 2)], 4.0);
    }

    #[test]
    fn scale_scales_matrix_linearly() {
        let mut f = example();
        let before = f.to_dense();
        f.scale(3.0);
        let after = f.to_dense();
        for i in 0..3 {
            for j in 0..3 {
                assert!((after[(i, j)] - 3.0 * before[(i, j)]).abs() < 1e-12);
            }
        }
    }
}
