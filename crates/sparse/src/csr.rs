//! Compressed sparse row (CSR) matrices with rayon-parallel products.
//!
//! CSR is the storage format for the factorized constraint matrices
//! `Aᵢ = QᵢQᵢᵀ` of Theorem 4.1: `q = Σᵢ nnz(Qᵢ)` is exactly the quantity the
//! paper's nearly-linear work bound is stated in, so the kernels here are the
//! ones whose operation counts the work-scaling experiment (E5) measures.

use psdp_linalg::{Mat, SymOp};
use rayon::prelude::*;

/// A sparse matrix in compressed sparse row format.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    nrows: usize,
    ncols: usize,
    /// Row pointer array, length `nrows + 1`.
    row_ptr: Vec<usize>,
    /// Column indices, length `nnz`, sorted within each row.
    col_idx: Vec<usize>,
    /// Nonzero values, parallel to `col_idx`.
    values: Vec<f64>,
}

impl Csr {
    /// Build from raw CSR arrays.
    ///
    /// # Panics
    /// Panics if the arrays are inconsistent (wrong lengths, column index out
    /// of range, row pointers not non-decreasing).
    pub fn from_raw(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> Self {
        assert_eq!(row_ptr.len(), nrows + 1, "row_ptr length");
        assert_eq!(col_idx.len(), values.len(), "col/val length mismatch");
        assert_eq!(*row_ptr.last().unwrap(), col_idx.len(), "row_ptr end");
        assert!(row_ptr.windows(2).all(|w| w[0] <= w[1]), "row_ptr not monotone");
        assert!(col_idx.iter().all(|&c| c < ncols), "column index out of range");
        Csr { nrows, ncols, row_ptr, col_idx, values }
    }

    /// Build from (row, col, value) triplets; duplicates are summed.
    pub fn from_triplets(nrows: usize, ncols: usize, triplets: &[(usize, usize, f64)]) -> Self {
        let mut sorted: Vec<(usize, usize, f64)> = triplets.to_vec();
        sorted.sort_by_key(|&(r, c, _)| (r, c));

        // row_ptr[r + 1] first counts entries in row r, then a prefix sum
        // turns counts into offsets.
        let mut row_ptr = vec![0usize; nrows + 1];
        let mut col_idx = Vec::with_capacity(sorted.len());
        let mut values = Vec::with_capacity(sorted.len());
        let mut last: Option<(usize, usize)> = None;

        for &(r, c, v) in &sorted {
            assert!(r < nrows && c < ncols, "triplet ({r},{c}) out of range");
            if last == Some((r, c)) {
                *values.last_mut().unwrap() += v;
            } else {
                col_idx.push(c);
                values.push(v);
                row_ptr[r + 1] += 1;
                last = Some((r, c));
            }
        }
        for i in 0..nrows {
            row_ptr[i + 1] += row_ptr[i];
        }
        Csr { nrows, ncols, row_ptr, col_idx, values }
    }

    /// Convert a dense matrix, dropping entries with `|v| <= drop_tol`.
    pub fn from_dense(a: &Mat, drop_tol: f64) -> Self {
        let mut trip = Vec::new();
        for i in 0..a.nrows() {
            for (j, &v) in a.row(i).iter().enumerate() {
                if v.abs() > drop_tol {
                    trip.push((i, j, v));
                }
            }
        }
        Csr::from_triplets(a.nrows(), a.ncols(), &trip)
    }

    /// Build from raw CSR arrays without panicking, enforcing the canonical
    /// invariants [`Csr::from_triplets`] produces: monotone `row_ptr`,
    /// in-range and **strictly increasing** column indices within each row
    /// (no duplicates). The binary instance reader uses this so malformed
    /// input surfaces as an error, never an assertion failure.
    ///
    /// # Errors
    /// A message describing the first violated invariant.
    pub fn try_from_raw(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<usize>,
        values: Vec<f64>,
    ) -> Result<Self, String> {
        if row_ptr.len() != nrows + 1 {
            return Err(format!("row_ptr length {} != nrows + 1 = {}", row_ptr.len(), nrows + 1));
        }
        if col_idx.len() != values.len() {
            return Err(format!("{} column indices but {} values", col_idx.len(), values.len()));
        }
        if row_ptr.first().copied() != Some(0) {
            return Err("row_ptr must start at 0".into());
        }
        if row_ptr.last().copied() != Some(col_idx.len()) {
            return Err(format!("row_ptr end {:?} != nnz {}", row_ptr.last(), col_idx.len()));
        }
        if !row_ptr.windows(2).all(|w| w[0] <= w[1]) {
            return Err("row_ptr not monotone".into());
        }
        for r in 0..nrows {
            let row = col_idx.get(row_ptr[r]..row_ptr[r + 1]).unwrap_or(&[]);
            if !row.windows(2).all(|w| w[0] < w[1]) {
                return Err(format!("row {r} columns not strictly increasing"));
            }
            if row.last().is_some_and(|&c| c >= ncols) {
                return Err(format!("row {r} has a column index >= ncols {ncols}"));
            }
        }
        Ok(Csr { nrows, ncols, row_ptr, col_idx, values })
    }

    /// Row pointer array (length `nrows + 1`).
    #[inline]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Column indices (length `nnz`, sorted within each row).
    #[inline]
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// Stored nonzero values, parallel to [`Csr::col_idx`].
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// An `nrows × ncols` all-zero sparse matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Csr { nrows, ncols, row_ptr: vec![0; nrows + 1], col_idx: vec![], values: vec![] }
    }

    /// Sparse identity.
    pub fn identity(n: usize) -> Self {
        Csr {
            nrows: n,
            ncols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterate over `(col, value)` pairs of row `i`.
    pub fn row_iter(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        self.col_idx[lo..hi].iter().copied().zip(self.values[lo..hi].iter().copied())
    }

    /// `y = A x` (parallel over rows).
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols, "spmv: dim mismatch");
        let row_dot = |i: usize| -> f64 {
            let lo = self.row_ptr[i];
            let hi = self.row_ptr[i + 1];
            let mut s = 0.0;
            for k in lo..hi {
                s += self.values[k] * x[self.col_idx[k]];
            }
            s
        };
        if self.nrows < 256 {
            (0..self.nrows).map(row_dot).collect()
        } else {
            (0..self.nrows).into_par_iter().map(row_dot).collect()
        }
    }

    /// `y = Aᵀ x` without materializing the transpose.
    pub fn spmv_transpose(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.nrows, "spmv_transpose: dim mismatch");
        let mut y = vec![0.0; self.ncols];
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            for (c, v) in self.row_iter(i) {
                y[c] += xi * v;
            }
        }
        y
    }

    /// `Y = A · X` for a dense block `X` (`ncols × r`), parallel over rows.
    pub fn spmm(&self, x: &Mat) -> Mat {
        assert_eq!(x.nrows(), self.ncols, "spmm: dim mismatch");
        let r = x.ncols();
        let mut out = Mat::zeros(self.nrows, r);
        let rp = &self.row_ptr;
        let ci = &self.col_idx;
        let vals = &self.values;
        let do_row = |i: usize, orow: &mut [f64]| {
            for k in rp[i]..rp[i + 1] {
                let v = vals[k];
                let xrow = x.row(ci[k]);
                for (o, &xv) in orow.iter_mut().zip(xrow) {
                    *o += v * xv;
                }
            }
        };
        if self.nrows < 64 {
            for i in 0..self.nrows {
                let orow = &mut out.as_mut_slice()[i * r..(i + 1) * r];
                do_row(i, orow);
            }
        } else {
            out.as_mut_slice().par_chunks_mut(r).enumerate().for_each(|(i, orow)| do_row(i, orow));
        }
        out
    }

    /// `Y = Aᵀ · X` for a dense block `X` (`nrows × r`).
    pub fn spmm_transpose(&self, x: &Mat) -> Mat {
        assert_eq!(x.nrows(), self.nrows, "spmm_transpose: dim mismatch");
        let r = x.ncols();
        let mut out = Mat::zeros(self.ncols, r);
        for i in 0..self.nrows {
            let xrow = x.row(i);
            for (c, v) in self.row_iter(i) {
                let orow = &mut out.as_mut_slice()[c * r..(c + 1) * r];
                for (o, &xv) in orow.iter_mut().zip(xrow) {
                    *o += v * xv;
                }
            }
        }
        out
    }

    /// Materialize the transpose.
    pub fn transpose(&self) -> Csr {
        let mut trip = Vec::with_capacity(self.nnz());
        for i in 0..self.nrows {
            for (c, v) in self.row_iter(i) {
                trip.push((c, i, v));
            }
        }
        Csr::from_triplets(self.ncols, self.nrows, &trip)
    }

    /// Densify.
    pub fn to_dense(&self) -> Mat {
        let mut m = Mat::zeros(self.nrows, self.ncols);
        for i in 0..self.nrows {
            for (c, v) in self.row_iter(i) {
                m[(i, c)] += v;
            }
        }
        m
    }

    /// Scale all values by `alpha` in place.
    pub fn scale(&mut self, alpha: f64) {
        for v in &mut self.values {
            *v *= alpha;
        }
    }

    /// Squared Frobenius norm `Σ v²` of stored values.
    pub fn fro_norm_sq(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum()
    }

    /// Sum of squared values in each *column*: `diag(AᵀA)`. For a factor `Q`
    /// this gives per-column energies; for the trace identity
    /// `Tr(QQᵀ) = ‖Q‖²_F` use [`Csr::fro_norm_sq`].
    pub fn col_norms_sq(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.ncols];
        for k in 0..self.nnz() {
            out[self.col_idx[k]] += self.values[k] * self.values[k];
        }
        out
    }
}

/// A symmetric operator defined by a CSR matrix (assumed symmetric).
impl SymOp for Csr {
    fn dim(&self) -> usize {
        assert_eq!(self.nrows, self.ncols, "SymOp requires square CSR");
        self.nrows
    }

    fn apply_vec(&self, x: &[f64]) -> Vec<f64> {
        self.spmv(x)
    }

    fn apply_block(&self, x: &Mat) -> Mat {
        self.spmm(x)
    }

    fn nnz(&self) -> usize {
        Csr::nnz(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> Csr {
        // [[1, 0, 2],
        //  [0, 0, 3],
        //  [4, 5, 0]]
        Csr::from_triplets(3, 3, &[(0, 0, 1.0), (0, 2, 2.0), (1, 2, 3.0), (2, 0, 4.0), (2, 1, 5.0)])
    }

    #[test]
    fn triplets_roundtrip_dense() {
        let a = example();
        assert_eq!(a.nnz(), 5);
        let d = a.to_dense();
        assert_eq!(d[(0, 0)], 1.0);
        assert_eq!(d[(0, 2)], 2.0);
        assert_eq!(d[(1, 2)], 3.0);
        assert_eq!(d[(2, 0)], 4.0);
        assert_eq!(d[(2, 1)], 5.0);
        assert_eq!(d[(1, 1)], 0.0);
        let back = Csr::from_dense(&d, 0.0);
        assert_eq!(back, a);
    }

    #[test]
    fn duplicate_triplets_sum() {
        let a = Csr::from_triplets(2, 2, &[(0, 0, 1.0), (0, 0, 2.5), (1, 1, 1.0)]);
        assert_eq!(a.to_dense()[(0, 0)], 3.5);
        assert_eq!(a.nnz(), 2);
    }

    #[test]
    fn empty_rows_handled() {
        let a = Csr::from_triplets(4, 3, &[(3, 1, 7.0)]);
        assert_eq!(a.spmv(&[0.0, 1.0, 0.0]), vec![0.0, 0.0, 0.0, 7.0]);
    }

    #[test]
    fn spmv_matches_dense() {
        let a = example();
        let x = [1.0, -1.0, 2.0];
        let y = a.spmv(&x);
        let yd = psdp_linalg::matvec(&a.to_dense(), &x);
        assert_eq!(y, yd);
    }

    #[test]
    fn spmv_transpose_matches_dense() {
        let a = example();
        let x = [1.0, 2.0, 3.0];
        let y = a.spmv_transpose(&x);
        let yd = psdp_linalg::matvec(&a.to_dense().transpose(), &x);
        for (g, w) in y.iter().zip(&yd) {
            assert!((g - w).abs() < 1e-14);
        }
    }

    #[test]
    fn spmm_matches_dense() {
        let a = example();
        let x = Mat::from_fn(3, 2, |i, j| (i * 2 + j) as f64);
        let y = a.spmm(&x);
        let yd = psdp_linalg::matmul(&a.to_dense(), &x);
        for i in 0..3 {
            for j in 0..2 {
                assert_eq!(y[(i, j)], yd[(i, j)]);
            }
        }
    }

    #[test]
    fn spmm_transpose_matches_dense() {
        let a = example();
        let x = Mat::from_fn(3, 2, |i, j| (i + 3 * j) as f64);
        let y = a.spmm_transpose(&x);
        let yd = psdp_linalg::matmul(&a.to_dense().transpose(), &x);
        for i in 0..3 {
            for j in 0..2 {
                assert_eq!(y[(i, j)], yd[(i, j)]);
            }
        }
    }

    #[test]
    fn transpose_roundtrip() {
        let a = example();
        let att = a.transpose().transpose();
        assert_eq!(a, att);
    }

    #[test]
    fn identity_spmv() {
        let i = Csr::identity(4);
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(i.spmv(&x), x.to_vec());
        assert_eq!(i.nnz(), 4);
    }

    #[test]
    fn fro_and_col_norms() {
        let a = example();
        assert_eq!(a.fro_norm_sq(), 1.0 + 4.0 + 9.0 + 16.0 + 25.0);
        let cn = a.col_norms_sq();
        assert_eq!(cn, vec![17.0, 25.0, 13.0]);
    }

    #[test]
    fn large_parallel_spmv_matches_serial() {
        // Exercise the parallel path (nrows >= 256).
        let n = 400;
        let trip: Vec<(usize, usize, f64)> =
            (0..n).flat_map(|i| vec![(i, i, 2.0), (i, (i * 7 + 3) % n, 1.0)]).collect();
        let a = Csr::from_triplets(n, n, &trip);
        let x: Vec<f64> = (0..n).map(|i| (i % 17) as f64 - 8.0).collect();
        let y = a.spmv(&x);
        let yd = psdp_linalg::matvec(&a.to_dense(), &x);
        for (g, w) in y.iter().zip(&yd) {
            assert!((g - w).abs() < 1e-10);
        }
    }

    #[test]
    fn symop_impl_square_only() {
        let a = Csr::identity(3);
        assert_eq!(SymOp::dim(&a), 3);
        assert_eq!(SymOp::nnz(&a), 3);
    }

    #[test]
    fn try_from_raw_accepts_canonical_and_rejects_malformed() {
        let a = example();
        let b = Csr::try_from_raw(
            a.nrows(),
            a.ncols(),
            a.row_ptr().to_vec(),
            a.col_idx().to_vec(),
            a.values().to_vec(),
        )
        .unwrap();
        assert_eq!(a, b);
        // Wrong row_ptr length.
        assert!(Csr::try_from_raw(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        // row_ptr end disagrees with nnz.
        assert!(Csr::try_from_raw(1, 2, vec![0, 2], vec![0], vec![1.0]).is_err());
        // Column out of range.
        assert!(Csr::try_from_raw(1, 2, vec![0, 1], vec![5], vec![1.0]).is_err());
        // Duplicate / unsorted columns within a row.
        assert!(Csr::try_from_raw(1, 3, vec![0, 2], vec![1, 1], vec![1.0, 2.0]).is_err());
        assert!(Csr::try_from_raw(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 2.0]).is_err());
        // Non-monotone row_ptr.
        assert!(Csr::try_from_raw(2, 2, vec![0, 1, 0], vec![0], vec![1.0]).is_err());
    }

    #[test]
    fn scale_in_place() {
        let mut a = example();
        a.scale(2.0);
        assert_eq!(a.to_dense()[(2, 1)], 10.0);
    }
}
