//! Property tests: CSR kernels agree with dense references; factorized PSD
//! identities hold on random factors.

use proptest::prelude::*;
use psdp_linalg::Mat;
use psdp_sparse::{Csr, FactorPsd, PsdMatrix};

/// Random triplets over an r×c grid.
fn triplets(
    max_r: usize,
    max_c: usize,
) -> impl Strategy<Value = (usize, usize, Vec<(usize, usize, f64)>)> {
    (1..=max_r, 1..=max_c).prop_flat_map(|(r, c)| {
        proptest::collection::vec((0..r, 0..c, -2.0_f64..2.0), 0..24).prop_map(move |t| (r, c, t))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Triplet construction sums duplicates exactly like dense accumulation.
    #[test]
    fn triplets_match_dense((r, c, trip) in triplets(8, 8)) {
        let a = Csr::from_triplets(r, c, &trip);
        let mut dense = Mat::zeros(r, c);
        for &(i, j, v) in &trip {
            dense[(i, j)] += v;
        }
        let got = a.to_dense();
        for i in 0..r {
            for j in 0..c {
                prop_assert!((got[(i, j)] - dense[(i, j)]).abs() < 1e-12);
            }
        }
    }

    /// SpMV and SpMV-transpose agree with the dense products.
    #[test]
    fn spmv_matches_dense((r, c, trip) in triplets(8, 8)) {
        let a = Csr::from_triplets(r, c, &trip);
        let d = a.to_dense();
        let x: Vec<f64> = (0..c).map(|i| (i as f64 * 0.7).sin()).collect();
        let y = a.spmv(&x);
        let yd = psdp_linalg::matvec(&d, &x);
        for (g, w) in y.iter().zip(&yd) {
            prop_assert!((g - w).abs() < 1e-10);
        }
        let z: Vec<f64> = (0..r).map(|i| (i as f64 * 0.3).cos()).collect();
        let t = a.spmv_transpose(&z);
        let td = psdp_linalg::matvec(&d.transpose(), &z);
        for (g, w) in t.iter().zip(&td) {
            prop_assert!((g - w).abs() < 1e-10);
        }
    }

    /// Transpose is an involution and preserves nnz.
    #[test]
    fn transpose_involution((r, c, trip) in triplets(8, 8)) {
        let a = Csr::from_triplets(r, c, &trip);
        let att = a.transpose().transpose();
        prop_assert_eq!(&a, &att);
        prop_assert_eq!(a.nnz(), a.transpose().nnz());
    }

    /// Factor identities: trace, matvec, dot against dense S.
    #[test]
    fn factor_identities((r, c, trip) in triplets(7, 3)) {
        let q = Csr::from_triplets(r, c, &trip);
        let f = FactorPsd::new(q);
        let a = f.to_dense();
        prop_assert!((f.trace() - a.trace()).abs() < 1e-10 * (1.0 + a.trace().abs()));

        let x: Vec<f64> = (0..r).map(|i| ((i * 3) as f64 * 0.2).sin()).collect();
        let got = f.apply(&x);
        let want = psdp_linalg::matvec(&a, &x);
        for (g, w) in got.iter().zip(&want) {
            prop_assert!((g - w).abs() < 1e-9 * (1.0 + w.abs()));
        }

        let mut s = Mat::from_fn(r, r, |i, j| ((i + 2 * j) as f64 * 0.1).cos());
        s.symmetrize();
        let want_dot = psdp_linalg::matmul(&s, &a).trace();
        prop_assert!((f.dot_dense(&s) - want_dot).abs() < 1e-8 * (1.0 + want_dot.abs()));
    }

    /// PsdMatrix conversions preserve the represented operator.
    #[test]
    fn psd_matrix_conversions(diag in proptest::collection::vec(0.0_f64..3.0, 1..8)) {
        let m = PsdMatrix::Diagonal(diag.clone());
        let f = m.to_factor(1e-12).unwrap();
        let got = f.to_dense();
        for (i, &d) in diag.iter().enumerate() {
            prop_assert!((got[(i, i)] - d).abs() < 1e-12);
        }
        prop_assert!((m.trace() - diag.iter().sum::<f64>()).abs() < 1e-12);
    }
}
