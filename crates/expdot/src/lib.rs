//! # psdp-expdot
//!
//! The paper's special primitive: computing `exp(Φ) • Aᵢ` for PSD `Φ` and
//! PSD constraints `Aᵢ` (Section 4 / Theorem 4.1).
//!
//! * [`engine::Engine`] — prepared evaluator with three interchangeable
//!   strategies ([`engine::EngineKind`]): exact eigendecomposition, Lemma 4.2
//!   truncated Taylor, and Taylor + Gaussian JL sketch,
//! * [`gauss`] — Box–Muller normals and JL sketch construction.

#![warn(missing_docs)]

pub mod engine;
pub mod gauss;

pub use engine::{exp_dot_exact, Engine, EngineKind, ExpDots};
pub use gauss::{gaussian_sketch, jl_rows, standard_normals};
