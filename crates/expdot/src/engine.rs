//! The `exp(Φ) • Aᵢ` primitive (Theorem 4.1) behind a common interface.
//!
//! Every iteration of Algorithm 3.1 needs, for the current `Φ = Ψ(t)`:
//! `Tr[exp(Φ)]` and `exp(Φ) • Aᵢ` for all `i`. Three engines provide these
//! values at different cost/accuracy points:
//!
//! * [`EngineKind::Exact`] — eigendecompose `Φ` (`O(m³)`), exact up to
//!   floating point. The reference implementation and the right choice for
//!   small dense instances.
//! * [`EngineKind::Taylor`] — Lemma 4.2 truncated Taylor of `exp(Φ/2)`
//!   applied to the identity; `(1±ε)` sandwich, no eigendecomposition.
//! * [`EngineKind::TaylorJl`] — Theorem 4.1 proper: Taylor + Gaussian JL
//!   sketch with `O(ε⁻² log m)` rows; nearly-linear work in the factorization
//!   size `q`, which is what Corollary 1.2's work bound needs.
//! * [`EngineKind::Expv`] — Krylov/Chebyshev expm-action (no Taylor series,
//!   no materialized `exp`): the trace comes from a Chebyshev expansion of
//!   `exp(Φ/2)` applied to JL probes, the dots from deterministic per-column
//!   restarted Lanczos on the constraint factors. Roughly 14× fewer operator
//!   applications than Lemma 4.2 at the same `κ` (degree `≈ κ/4 + O(√κ)`
//!   versus `e²κ/2`), with *no* sketch distortion on the dots. See DESIGN.md
//!   §12 for the kernel-layer contract.
//!
//! All engines report analytic work–depth [`Cost`]s so experiment E5 can
//! check the near-linear-work claim without trusting wall clocks.

use crate::gauss::{gaussian_sketch, jl_rows};
use psdp_linalg::{
    apply_exp_taylor_block, expm_action_chebyshev, expm_action_lanczos, sym_eigen, taylor_degree,
    vecops, LinalgError, Mat, SymOp,
};
use psdp_parallel::Cost;
use psdp_sparse::{FactorPsd, PsdMatrix};
use rayon::prelude::*;

/// Result of one `exp(Φ) • ·` evaluation over all constraints.
///
/// Values may carry a common scale factor `e^{log_scale}` relative to the
/// true quantities (the exact engine shifts the spectrum to avoid overflow
/// when `‖Φ‖₂` is large). Algorithm 3.1 only consumes the *ratios*
/// `dots[i] / tr_w`, which are scale-invariant; anyone needing absolute
/// values must multiply by `exp(log_scale)`.
#[derive(Debug, Clone)]
pub struct ExpDots {
    /// `Tr[exp(Φ)] · e^{-log_scale}` (or an `(1±ε)` estimate thereof).
    pub tr_w: f64,
    /// `exp(Φ) • Aᵢ · e^{-log_scale}` for each constraint.
    pub dots: Vec<f64>,
    /// Common logarithmic scale factor (0 for the Taylor engines).
    pub log_scale: f64,
    /// Analytic work–depth cost of this evaluation.
    pub cost: Cost,
    /// Taylor degree used (0 for the exact engine) — telemetry for E4/E5.
    pub degree: usize,
    /// Sketch rows used (0 when no sketch) — telemetry for E4/E5.
    pub sketch_rows: usize,
    /// The normalized probability matrix `P = exp(Φ)/Tr[exp(Φ)]`, when the
    /// strategy produces it as a byproduct (exact engine always; Taylor only
    /// via [`Engine::compute_dense`]; never for the sketched engine). The
    /// solver averages these into the primal solution `Y`.
    pub dense_p: Option<Mat>,
}

/// Which evaluation strategy to use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EngineKind {
    /// Eigendecomposition-based exact evaluation.
    Exact,
    /// Truncated Taylor (Lemma 4.2) without sketching.
    Taylor {
        /// Two-sided relative accuracy of the returned dot products.
        eps: f64,
    },
    /// Truncated Taylor + Gaussian JL sketch (Theorem 4.1).
    TaylorJl {
        /// Two-sided relative accuracy target (split between Taylor and JL).
        eps: f64,
        /// Multiplier on the JL row count `c·ln(m)/ε²`; 4.0 is a sane default.
        sketch_const: f64,
    },
    /// Krylov/Chebyshev expm-action: `Tr[exp Φ]` from a Chebyshev expansion
    /// applied to JL probes, `exp(Φ)•Aᵢ` from restarted Lanczos on each
    /// factor column (deterministic — the sketch only touches the trace).
    /// All internal values live in the log-scale frame `e^{−κ}`, so any
    /// `‖Φ‖₂` is safe. The polynomial/Krylov truncation error is held at
    /// `≈1e-9` relative (drift-checked a posteriori), so `eps` only governs
    /// the trace's JL distortion.
    Expv {
        /// Two-sided relative accuracy of the trace estimate (JL rows scale
        /// as `ln(m)/ε²`); the dots are exact up to the `1e-9` kernel floor.
        eps: f64,
    },
    /// Pick the engine from the instance's storage profile at
    /// [`Engine::new`] time: small or storage-dense instances get
    /// [`EngineKind::Exact`] (one `O(m³)` eigendecomposition beats a
    /// high-degree Taylor sweep there), while large sparse/factorized
    /// instances — total storage nonzeros `q` well below `m²` — get
    /// [`EngineKind::TaylorJl`], whose work is nearly linear in `q`
    /// (Corollary 1.2's regime). See [`EngineKind::resolve`].
    Auto {
        /// Accuracy handed to the approximate engine when one is chosen.
        eps: f64,
    },
}

/// Matrix dimension below which `Auto` always picks the exact engine.
const AUTO_EXACT_DIM: usize = 64;

/// Matrix dimension at which `Auto` upgrades a sparse instance from the
/// sketched-Taylor engine to the Krylov/Chebyshev expm-action engine: above
/// here the Lemma 4.2 degree (`≈ 7.4κ`) dominates the iteration cost and
/// the `≈ κ/4` Chebyshev/Lanczos paths win decisively (experiment E14).
const AUTO_EXPV_DIM: usize = 256;

/// JL row multiplier used by the expv engine's trace probes.
const EXPV_SKETCH_CONST: f64 = 4.0;

/// Relative truncation target for the expv engine's Chebyshev tails and
/// Lanczos substep convergence — far below any solver `eps`, so the
/// engine's end-to-end error is dominated by the trace's JL distortion.
const EXPV_POLY_TOL: f64 = 1e-9;

impl EngineKind {
    /// Short name for tables and telemetry.
    pub fn name(&self) -> &'static str {
        match self {
            EngineKind::Exact => "exact",
            EngineKind::Taylor { .. } => "taylor",
            EngineKind::TaylorJl { .. } => "taylor+jl",
            EngineKind::Expv { .. } => "expv",
            EngineKind::Auto { .. } => "auto",
        }
    }

    /// Resolve [`EngineKind::Auto`] against an instance's storage profile
    /// (`dim` = m, `total_storage_nnz` = Σᵢ nnz of each constraint's natural
    /// storage). Non-`Auto` kinds return themselves unchanged.
    ///
    /// Heuristic: exact when `m < 64` (eigendecomposition is cheap and
    /// exactness buys iteration count) or when the storage is dense-ish
    /// (`q ≥ m²/4`, so sparsity cannot pay for the Taylor degree); for the
    /// remaining sparse instances, sketched Taylor up to `m < 256` and the
    /// Krylov/Chebyshev expm-action engine at `m ≥ 256`, where its
    /// `O(κ)`-smaller polynomial degree dominates every other term in the
    /// per-iteration work (E14).
    pub fn resolve(self, dim: usize, total_storage_nnz: usize) -> EngineKind {
        match self {
            EngineKind::Auto { eps } => {
                let m2 = dim.saturating_mul(dim);
                if dim < AUTO_EXACT_DIM || total_storage_nnz.saturating_mul(4) >= m2 {
                    EngineKind::Exact
                } else if dim >= AUTO_EXPV_DIM {
                    EngineKind::Expv { eps }
                } else {
                    EngineKind::TaylorJl { eps, sketch_const: 4.0 }
                }
            }
            other => other,
        }
    }
}

/// A prepared evaluator bound to a fixed constraint set.
///
/// Construction converts constraints to factorized form once when a vector
/// engine is selected (the Section 1.2 preprocessing); per-iteration calls
/// then go through [`Engine::compute`].
///
/// ```
/// use psdp_expdot::{Engine, EngineKind};
/// use psdp_linalg::Mat;
/// use psdp_sparse::PsdMatrix;
///
/// let mats = vec![PsdMatrix::Diagonal(vec![1.0, 2.0])];
/// let phi = Mat::from_diag(&[0.0, 0.5]);
/// // exp(Φ)•A = 1·e⁰ + 2·e^0.5, exactly.
/// let exact = Engine::new(EngineKind::Exact, &mats, 0)?;
/// let out = exact.compute(&phi, 0.5, &mats, 0)?;
/// let want = 1.0 + 2.0 * 0.5f64.exp();
/// let got = out.dots[0] * out.log_scale.exp();
/// assert!((got - want).abs() < 1e-10);
///
/// // The Taylor engine is a one-sided (1±ε) approximation of the same.
/// let taylor = Engine::new(EngineKind::Taylor { eps: 0.1 }, &mats, 0)?;
/// let out = taylor.compute(&phi, 0.5, &mats, 0)?;
/// assert!(out.dots[0] <= want && out.dots[0] >= 0.9 * want);
/// # Ok::<(), psdp_linalg::LinalgError>(())
/// ```
pub struct Engine {
    kind: EngineKind,
    seed: u64,
    /// Factorized constraints (empty for the exact engine).
    factors: Vec<FactorPsd>,
    /// Dense factor columns, precomputed for the expv engine's per-column
    /// Lanczos sweeps (empty for every other kind).
    expv_cols: Vec<Vec<Vec<f64>>>,
    /// Total factor nonzeros `q` (work accounting).
    q_nnz: usize,
    dim: usize,
}

impl Engine {
    /// Prepare an engine for the given constraints.
    ///
    /// # Errors
    /// Propagates factorization failures (non-PSD dense constraint).
    pub fn new(kind: EngineKind, mats: &[PsdMatrix], seed: u64) -> Result<Engine, LinalgError> {
        assert!(!mats.is_empty(), "Engine::new: empty constraint set");
        let dim = mats[0].dim();
        assert!(mats.iter().all(|m| m.dim() == dim), "constraints must share a dimension");
        let kind = kind.resolve(dim, mats.iter().map(PsdMatrix::storage_nnz).sum());
        let needs_factors = !matches!(kind, EngineKind::Exact);
        let factors = if needs_factors {
            mats.iter().map(|m| m.to_factor(1e-12)).collect::<Result<Vec<_>, _>>()?
        } else {
            Vec::new()
        };
        let q_nnz = factors.iter().map(|f| f.factor_nnz()).sum();
        let expv_cols = if matches!(kind, EngineKind::Expv { .. }) {
            factors
                .iter()
                .map(|f| {
                    let dense = f.factor().to_dense();
                    (0..dense.ncols()).map(|j| dense.col(j)).collect()
                })
                .collect()
        } else {
            Vec::new()
        };
        Ok(Engine { kind, seed, factors, expv_cols, q_nnz, dim })
    }

    /// The strategy this engine uses. Always a concrete kind: an
    /// [`EngineKind::Auto`] request is resolved at construction, so callers
    /// can read the actual choice back from here (the solver records it in
    /// its telemetry).
    pub fn kind(&self) -> EngineKind {
        self.kind
    }

    /// Total nonzeros `q` across prepared factors (0 for the exact engine).
    pub fn factor_nnz(&self) -> usize {
        self.q_nnz
    }

    /// The matrix dimension `m` this engine was prepared for. Callers that
    /// cache prepared engines (the serving layer) use this to sanity-check
    /// an engine against the instance it is about to be reused with.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The root sketch seed the engine was prepared with (relevant to the
    /// sketched engines; the exact engine ignores it).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Evaluate `Tr[exp(Φ)]` and all `exp(Φ) • Aᵢ` for a dense `Φ`.
    ///
    /// * `phi` — the current PSD matrix `Ψ(t)` (dense accumulation),
    /// * `kappa` — an upper bound on `‖Φ‖₂` (the solver passes the Lemma 3.2
    ///   bound or a power-iteration estimate); used to pick the Taylor degree,
    /// * `mats` — the constraint set (used by the exact engine; must be the
    ///   set the engine was prepared with),
    /// * `stream` — substream index (the iteration counter) so each call
    ///   draws a fresh deterministic sketch.
    ///
    /// # Errors
    /// Propagates eigensolver failures from the exact path.
    pub fn compute(
        &self,
        phi: &Mat,
        kappa: f64,
        mats: &[PsdMatrix],
        stream: u64,
    ) -> Result<ExpDots, LinalgError> {
        assert_eq!(phi.nrows(), self.dim, "phi dimension mismatch");
        match self.kind {
            EngineKind::Exact => self.compute_exact(phi, mats),
            EngineKind::Taylor { eps } => Ok(self.compute_taylor(phi, kappa, eps)),
            EngineKind::TaylorJl { eps, sketch_const } => {
                Ok(self.compute_taylor_jl(phi, kappa, eps, sketch_const, stream))
            }
            EngineKind::Expv { eps } => Ok(self.expv_impl(phi, kappa, eps, stream)),
            EngineKind::Auto { .. } => unreachable!("Auto resolved in Engine::new"),
        }
    }

    /// Evaluate through an abstract symmetric operator (sparse `Φ`, or the
    /// implicit `Σ xᵢAᵢ` operator). This is the form in which the Theorem 4.1
    /// work bound is nearly linear in `nnz(Φ) + q`; the exact engine cannot
    /// use it (it needs the dense matrix to eigendecompose).
    ///
    /// # Panics
    /// Panics if called on an [`EngineKind::Exact`] engine.
    pub fn compute_op(&self, phi: &dyn SymOp, kappa: f64, stream: u64) -> ExpDots {
        assert_eq!(phi.dim(), self.dim, "phi dimension mismatch");
        match self.kind {
            EngineKind::Exact => {
                panic!("compute_op: exact engine needs a dense Φ; use Engine::compute")
            }
            EngineKind::Taylor { eps } => self.taylor_impl(phi, kappa, eps),
            EngineKind::TaylorJl { eps, sketch_const } => {
                self.jl_impl(phi, kappa, eps, sketch_const, stream)
            }
            EngineKind::Expv { eps } => self.expv_impl(phi, kappa, eps, stream),
            EngineKind::Auto { .. } => unreachable!("Auto resolved in Engine::new"),
        }
    }

    /// Like [`Engine::compute`], but additionally materializes the dense
    /// probability matrix `P` when the strategy can produce it: the exact
    /// engine always can; the Taylor engine squares its `p(Φ/2)` block (one
    /// extra GEMM, `W ≈ p(Φ/2)²` since `p` is symmetric); the sketched engine
    /// cannot and leaves `dense_p = None`.
    ///
    /// # Errors
    /// Propagates eigensolver failures from the exact path.
    pub fn compute_dense(
        &self,
        phi: &Mat,
        kappa: f64,
        mats: &[PsdMatrix],
        stream: u64,
    ) -> Result<ExpDots, LinalgError> {
        let mut out = self.compute(phi, kappa, mats, stream)?;
        if out.dense_p.is_none() {
            if let EngineKind::Taylor { eps } = self.kind {
                let degree = taylor_degree((kappa * 0.5).max(0.0), eps * 0.5);
                let half = HalfOp { inner: phi };
                let s = apply_exp_taylor_block(&half, &Mat::identity(self.dim), degree);
                // W = S·Sᵀ via the half-flops symmetric-square kernel; S is
                // symmetric up to rounding, so this equals S² and is exactly
                // symmetric by construction (tr W = ‖S‖²_F = the taylor_impl
                // trace).
                let mut w = psdp_linalg::symmul(&s);
                w.symmetrize();
                let tr = w.trace();
                if tr > 0.0 {
                    w.scale(1.0 / tr);
                    out.dense_p = Some(w);
                }
            }
        }
        Ok(out)
    }

    fn compute_exact(&self, phi: &Mat, mats: &[PsdMatrix]) -> Result<ExpDots, LinalgError> {
        let m = self.dim;
        let eig = sym_eigen(phi)?;
        // Spectral shift so exp never overflows: work with exp(λ - λmax).
        let shift = eig.lambda_max().max(0.0);
        let w = eig.apply_fn(|lam| (lam - shift).exp());
        let tr_w = w.trace();
        let dots: Vec<f64> = mats.par_iter().map(|a| a.dot_dense(&w).max(0.0)).collect();
        let cost = Cost::seq(8.0 * (m * m * m) as f64) + Cost::reduce(mats.len(), (m * m) as f64);
        let dense_p = Some(w.scaled(1.0 / tr_w));
        Ok(ExpDots { tr_w, dots, log_scale: shift, cost, degree: 0, sketch_rows: 0, dense_p })
    }

    fn compute_taylor(&self, phi: &Mat, kappa: f64, eps: f64) -> ExpDots {
        self.taylor_impl(phi, kappa, eps)
    }

    fn compute_taylor_jl(
        &self,
        phi: &Mat,
        kappa: f64,
        eps: f64,
        sketch_const: f64,
        stream: u64,
    ) -> ExpDots {
        self.jl_impl(phi, kappa, eps, sketch_const, stream)
    }

    fn taylor_impl(&self, phi: &dyn SymOp, kappa: f64, eps: f64) -> ExpDots {
        let m = self.dim;
        // Split the error budget: p(Φ/2)² ∈ [(1-ε/2)², 1]·exp(Φ) ⊆
        // [(1-ε), 1]·exp(Φ).
        let degree = taylor_degree((kappa * 0.5).max(0.0), eps * 0.5);
        let half = HalfOp { inner: phi };
        // S = p(Φ/2) materialized against the identity block.
        let s = apply_exp_taylor_block(&half, &Mat::identity(m), degree);
        let tr_w: f64 = s.as_slice().iter().map(|v| v * v).sum();
        let dots = self.dots_from_block(&s);
        let phi_nnz = phi.nnz();
        let cost = Cost::new(
            (2 * phi_nnz * m * degree + 2 * self.q_nnz * m) as f64,
            degree as f64 * (m.max(2) as f64).log2() + (self.q_nnz.max(2) as f64).log2(),
        );
        ExpDots { tr_w, dots, log_scale: 0.0, cost, degree, sketch_rows: 0, dense_p: None }
    }

    fn jl_impl(
        &self,
        phi: &dyn SymOp,
        kappa: f64,
        eps: f64,
        sketch_const: f64,
        stream: u64,
    ) -> ExpDots {
        let m = self.dim;
        // Budget: ε/2 to the Taylor truncation, ε/2 to the sketch distortion.
        let degree = taylor_degree((kappa * 0.5).max(0.0), eps * 0.25);
        let rows = jl_rows(m, eps * 0.5, sketch_const);
        let pi = gaussian_sketch(rows, m, self.seed, stream);
        // Y = p(Φ/2) Πᵀ  (m × rows); p is symmetric, so Π p(Φ/2) = Yᵀ.
        let half = HalfOp { inner: phi };
        let y = apply_exp_taylor_block(&half, &pi.transpose(), degree);
        // Tr[exp Φ] = Σ_j ‖exp(Φ/2) e_j‖² ≈ ‖Π p(Φ/2)‖²_F = ‖Y‖²_F.
        let tr_w: f64 = y.as_slice().iter().map(|v| v * v).sum();
        // exp(Φ)•QQᵀ ≈ ‖Π p(Φ/2) Q‖²_F = ‖Qᵀ Y‖²_F.
        let dots: Vec<f64> = self
            .factors
            .par_iter()
            .map(|f| {
                let qty = f.factor().spmm_transpose(&y);
                qty.as_slice().iter().map(|v| v * v).sum()
            })
            .collect();
        let phi_nnz = phi.nnz();
        let apply_work = 2.0 * (phi_nnz * rows * degree) as f64;
        let dots_work = 2.0 * (self.q_nnz * rows) as f64;
        let cost = Cost::new(
            apply_work + dots_work + (rows * m) as f64,
            degree as f64 * (m.max(2) as f64).log2() + (self.q_nnz.max(2) as f64).log2(),
        );
        ExpDots { tr_w, dots, log_scale: 0.0, cost, degree, sketch_rows: rows, dense_p: None }
    }

    /// Krylov/Chebyshev expm-action evaluation (the `Expv` engine).
    ///
    /// Frame: everything is reported at `log_scale = κ` (the caller's `‖Φ‖₂`
    /// bound), i.e. `tr_w ≈ e^{−κ}·Tr[exp Φ]` and
    /// `dots[i] ≈ e^{−κ}·exp(Φ)•Aᵢ`, so no intermediate can overflow at any
    /// `κ`. The trace uses `jl_rows(m, ε/2)` Gaussian probes through a
    /// Chebyshev expansion of `exp(Φ/2)`; the dots run restarted Lanczos on
    /// each dense factor column (deterministic — a Lanczos failure of the
    /// tiny tridiagonal eigensolve falls back to the infallible Chebyshev
    /// path for that column).
    fn expv_impl(&self, phi: &dyn SymOp, kappa: f64, eps: f64, stream: u64) -> ExpDots {
        let m = self.dim;
        let kappa_half = (kappa * 0.5).max(0.0);
        let log_scale = 2.0 * kappa_half;
        let half = HalfOp { inner: phi };

        // Tr[exp Φ]·e^{−κ} ≈ Σ_probes e^{2·ln‖exp(Φ/2)p‖ − κ}, each probe
        // through the same log-domain Lanczos as the dots below. Running
        // the trace in log scale is essential, not cosmetic: κ is only an
        // *upper bound* on ‖Φ‖ (Gershgorin overshoots λmax by up to 2× on
        // Laplacian-like Φ), and a fixed-frame polynomial apply has
        // absolute accuracy ~tol, so once κ − λmax ≳ 40 the true
        // e^{λ−κ}-sized trace drowns in approximation noise while the
        // log-domain dots stay relatively accurate — inconsistent ratios
        // that can fabricate solver certificates. Per-probe log norms keep
        // trace and dots in the same relative-accuracy regime at any κ.
        //
        // When the JL row count reaches the dimension, the sketch is
        // pointless: m identity probes give Tr[exp Φ] exactly (up to the
        // Krylov tolerance) for no more work — so cap at m and drop the
        // sketch distortion entirely.
        let jl = jl_rows(m, eps * 0.5, EXPV_SKETCH_CONST);
        let (probes, rows) = if jl >= m {
            let eye: Vec<Vec<f64>> = (0..m)
                .map(|j| {
                    let mut e = vec![0.0; m];
                    e[j] = 1.0;
                    e
                })
                .collect();
            (eye, m)
        } else {
            let pi = gaussian_sketch(jl, m, self.seed, stream);
            ((0..jl).map(|r| pi.row(r).to_vec()).collect(), jl)
        };
        let probe_terms: Vec<(f64, usize)> = probes
            .par_iter()
            .map(|p| {
                let (log_norm, mv) = expv_column_log_norm(&half, p, kappa_half);
                ((2.0 * log_norm - log_scale).exp(), mv)
            })
            .collect();
        // Sequential sum in probe order: no parallel float reduction.
        let tr_w: f64 = probe_terms.iter().map(|&(v, _)| v).sum();
        let probe_matvecs: usize = probe_terms.iter().map(|&(_, mv)| mv).sum();

        // exp(Φ)•Aᵢ·e^{−κ} = Σ_cols e^{2·ln‖exp(Φ/2)c‖ − κ}, per-column
        // Lanczos in log-scale. Parallel over factors; the per-factor sum is
        // sequential (fixed order, no parallel float reduction).
        let per_factor: Vec<(f64, usize)> = self
            .expv_cols
            .par_iter()
            .map(|cols| {
                let mut dot = 0.0;
                let mut matvecs = 0usize;
                for c in cols {
                    let (log_norm, mv) = expv_column_log_norm(&half, c, kappa_half);
                    matvecs += mv;
                    dot += (2.0 * log_norm - log_scale).exp();
                }
                (dot, matvecs)
            })
            .collect();
        let dots: Vec<f64> = per_factor.iter().map(|&(d, _)| d).collect();
        let col_matvecs: usize = per_factor.iter().map(|&(_, mv)| mv).sum();

        let phi_nnz = phi.nnz();
        // `degree` reports the largest matvec count any one probe (or
        // factor) evaluation needed — the serial depth of the evaluation.
        let degree = probe_terms
            .iter()
            .map(|&(_, mv)| mv)
            .chain(per_factor.iter().map(|&(_, mv)| mv))
            .max()
            .unwrap_or(0);
        let apply_work = 2.0 * (phi_nnz * probe_matvecs) as f64;
        let dots_work = 2.0 * (phi_nnz * col_matvecs) as f64;
        let krylov_depth = col_matvecs as f64 / self.expv_cols.len().max(1) as f64;
        let cost = Cost::new(
            apply_work + dots_work + (rows * m) as f64,
            (degree as f64 + krylov_depth) * (m.max(2) as f64).log2(),
        );
        ExpDots { tr_w, dots, log_scale, cost, degree, sketch_rows: rows, dense_p: None }
    }

    /// Given `S ≈ exp(Φ/2)` (dense `m × m`), return all `‖S Qᵢ‖²_F`.
    fn dots_from_block(&self, s: &Mat) -> Vec<f64> {
        self.factors
            .par_iter()
            .map(|f| {
                let sq = f.left_mul(s);
                FactorPsd::exp_dot_from_block(&sq)
            })
            .collect()
    }
}

/// `ln‖exp(Φ/2)·c‖` for one factor column, plus the operator applications
/// spent. Restarted Lanczos with a Chebyshev fallback if the tridiagonal
/// eigensolve fails (both deterministic, so the fallback is too).
fn expv_column_log_norm(half: &HalfOp, c: &[f64], kappa_half: f64) -> (f64, usize) {
    match expm_action_lanczos(half, c, kappa_half, EXPV_POLY_TOL) {
        Ok(r) => (r.log_norm, r.matvecs),
        Err(_) => {
            let (y, ls) = expm_action_chebyshev(half, c, kappa_half, EXPV_POLY_TOL);
            let n = vecops::norm2(&y);
            let log_norm = if n == 0.0 { f64::NEG_INFINITY } else { n.ln() + ls };
            (log_norm, 0)
        }
    }
}

/// Adapter applying `Φ/2` as an operator without materializing the scaled
/// matrix (the Taylor series is taken of `Φ/2`, Theorem 4.1).
struct HalfOp<'a> {
    inner: &'a dyn SymOp,
}

impl SymOp for HalfOp<'_> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn apply_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = self.inner.apply_vec(x);
        for v in &mut y {
            *v *= 0.5;
        }
        y
    }

    fn apply_block(&self, x: &Mat) -> Mat {
        let mut y = self.inner.apply_block(x);
        y.scale(0.5);
        y
    }

    fn nnz(&self) -> usize {
        self.inner.nnz()
    }
}

/// Reference helper: exact `exp(Φ) • A` for a single pair (tests, examples).
///
/// # Errors
/// Propagates eigensolver failures.
pub fn exp_dot_exact(phi: &Mat, a: &PsdMatrix) -> Result<f64, LinalgError> {
    let w = psdp_linalg::expm(phi)?;
    Ok(a.dot_dense(&w))
}

#[cfg(test)]
mod tests {
    use super::*;
    use psdp_sparse::Csr;

    /// Small deterministic PSD test fixture: Φ PSD with ‖Φ‖ ≈ kappa_target,
    /// plus a mixed bag of constraints.
    fn fixture(m: usize, kappa_target: f64) -> (Mat, Vec<PsdMatrix>) {
        let mut phi = Mat::from_fn(m, m, |i, j| ((i * 7 + j * 3) % 5) as f64 * 0.1);
        phi.symmetrize();
        let eig = sym_eigen(&phi).unwrap();
        phi.add_diag(-eig.lambda_min().min(0.0) + 0.01);
        let lmax = sym_eigen(&phi).unwrap().lambda_max();
        phi.scale(kappa_target / lmax);

        let mut dense = Mat::zeros(m, m);
        let v: Vec<f64> = (0..m).map(|i| ((i % 3) as f64) - 1.0).collect();
        dense.rank1_update(0.7, &v);
        dense.add_diag(0.2);

        let factor = {
            let trip: Vec<(usize, usize, f64)> =
                (0..m).map(|i| (i, i % 2, 1.0 + (i % 4) as f64 * 0.25)).collect();
            FactorPsd::new(Csr::from_triplets(m, 2, &trip))
        };
        let diag: Vec<f64> = (0..m).map(|i| 0.1 + (i % 5) as f64 * 0.3).collect();

        (phi, vec![PsdMatrix::Dense(dense), PsdMatrix::Factor(factor), PsdMatrix::Diagonal(diag)])
    }

    #[test]
    fn exact_engine_matches_reference() {
        let (phi, mats) = fixture(8, 2.0);
        let eng = Engine::new(EngineKind::Exact, &mats, 0).unwrap();
        let out = eng.compute(&phi, 2.0, &mats, 0).unwrap();
        let scale = out.log_scale.exp();
        for (i, a) in mats.iter().enumerate() {
            let want = exp_dot_exact(&phi, a).unwrap();
            let got = out.dots[i] * scale;
            assert!((got - want).abs() < 1e-8 * want.max(1.0), "dot {i}: {got} vs {want}");
        }
        let want_tr = psdp_linalg::expm(&phi).unwrap().trace();
        assert!((out.tr_w * scale - want_tr).abs() < 1e-8 * want_tr);
    }

    #[test]
    fn taylor_engine_within_eps() {
        let (phi, mats) = fixture(8, 3.0);
        let eps = 0.1;
        let eng = Engine::new(EngineKind::Taylor { eps }, &mats, 0).unwrap();
        let out = eng.compute(&phi, 3.1, &mats, 0).unwrap();
        assert!(out.degree > 0);
        for (i, a) in mats.iter().enumerate() {
            let want = exp_dot_exact(&phi, a).unwrap();
            let got = out.dots[i];
            assert!(got <= want * (1.0 + 1e-9), "dot {i} over: {got} vs {want}");
            assert!(got >= want * (1.0 - eps), "dot {i} under: {got} vs {want}");
        }
        let want_tr = psdp_linalg::expm(&phi).unwrap().trace();
        assert!(out.tr_w <= want_tr * (1.0 + 1e-9));
        assert!(out.tr_w >= want_tr * (1.0 - eps));
    }

    #[test]
    fn taylor_jl_engine_statistically_close() {
        let (phi, mats) = fixture(10, 2.0);
        let eps = 0.2;
        let eng = Engine::new(EngineKind::TaylorJl { eps, sketch_const: 8.0 }, &mats, 99).unwrap();
        let out = eng.compute(&phi, 2.1, &mats, 5).unwrap();
        assert!(out.sketch_rows > 0);
        for (i, a) in mats.iter().enumerate() {
            let want = exp_dot_exact(&phi, a).unwrap();
            let got = out.dots[i];
            // JL is randomized: allow a generous 35% band (eps=0.2 target
            // plus concentration slack at this sketch size).
            assert!((got - want).abs() < 0.35 * want.max(1e-9), "dot {i}: {got} vs {want}");
        }
    }

    #[test]
    fn jl_deterministic_per_stream() {
        let (phi, mats) = fixture(6, 1.0);
        let kind = EngineKind::TaylorJl { eps: 0.3, sketch_const: 2.0 };
        let eng = Engine::new(kind, &mats, 7).unwrap();
        let a = eng.compute(&phi, 1.0, &mats, 3).unwrap();
        let b = eng.compute(&phi, 1.0, &mats, 3).unwrap();
        assert_eq!(a.dots, b.dots);
        let c = eng.compute(&phi, 1.0, &mats, 4).unwrap();
        assert_ne!(a.dots, c.dots, "different stream should resample the sketch");
    }

    #[test]
    fn exact_engine_survives_large_norm() {
        // ‖Φ‖ = 900 would overflow exp without the spectral shift.
        let (mut phi, mats) = fixture(6, 1.0);
        phi.scale(900.0);
        let eng = Engine::new(EngineKind::Exact, &mats, 0).unwrap();
        let out = eng.compute(&phi, 900.0, &mats, 0).unwrap();
        assert!(out.tr_w.is_finite() && out.tr_w > 0.0);
        assert!(out.dots.iter().all(|d| d.is_finite()));
        assert!(out.log_scale > 0.0);
    }

    #[test]
    fn costs_reflect_sparse_advantage() {
        // With a sparse Φ (tridiagonal, nnz ≈ 3m) applied through
        // compute_op, the sketched engine's analytic work is nearly linear
        // in m and far below the exact engine's 8m³ at moderate m. This is
        // the crossover the Corollary 1.2 work bound predicts.
        let m = 96;
        let mut trip = Vec::new();
        for i in 0..m {
            trip.push((i, i, 2.0));
            if i + 1 < m {
                trip.push((i, i + 1, -0.5));
                trip.push((i + 1, i, -0.5));
            }
        }
        let phi_sparse = Csr::from_triplets(m, m, &trip);
        let phi_dense = phi_sparse.to_dense();
        let mats: Vec<PsdMatrix> = (0..4)
            .map(|k| {
                let mut v = vec![0.0; m];
                v[k] = 1.0;
                v[(k * 7 + 3) % m] = -1.0;
                PsdMatrix::Factor(FactorPsd::from_vector(&v))
            })
            .collect();
        let exact = Engine::new(EngineKind::Exact, &mats, 0).unwrap();
        let jl =
            Engine::new(EngineKind::TaylorJl { eps: 0.3, sketch_const: 1.0 }, &mats, 0).unwrap();
        let ce = exact.compute(&phi_dense, 3.0, &mats, 0).unwrap().cost;
        let cj = jl.compute_op(&phi_sparse, 3.0, 0).cost;
        assert!(ce.work > 0.0 && cj.work > 0.0);
        assert!(ce.work > cj.work, "exact {} vs jl {}", ce.work, cj.work);
        assert!(cj.depth < ce.depth);
    }

    #[test]
    fn compute_op_matches_dense_compute() {
        let (phi, mats) = fixture(9, 2.0);
        let kind = EngineKind::TaylorJl { eps: 0.3, sketch_const: 2.0 };
        let eng = Engine::new(kind, &mats, 11).unwrap();
        let a = eng.compute(&phi, 2.0, &mats, 7).unwrap();
        let b = eng.compute_op(&phi, 2.0, 7);
        for (x, y) in a.dots.iter().zip(&b.dots) {
            assert!((x - y).abs() < 1e-10 * x.abs().max(1.0));
        }
        assert!((a.tr_w - b.tr_w).abs() < 1e-10 * a.tr_w);
    }

    #[test]
    #[should_panic(expected = "exact engine needs a dense")]
    fn compute_op_rejects_exact() {
        let (phi, mats) = fixture(5, 1.0);
        let eng = Engine::new(EngineKind::Exact, &mats, 0).unwrap();
        let _ = eng.compute_op(&phi, 1.0, 0);
    }

    #[test]
    fn engine_names() {
        assert_eq!(EngineKind::Exact.name(), "exact");
        assert_eq!(EngineKind::Taylor { eps: 0.1 }.name(), "taylor");
        assert_eq!(EngineKind::TaylorJl { eps: 0.1, sketch_const: 1.0 }.name(), "taylor+jl");
        assert_eq!(EngineKind::Expv { eps: 0.1 }.name(), "expv");
        assert_eq!(EngineKind::Auto { eps: 0.1 }.name(), "auto");
    }

    #[test]
    fn auto_resolution_keyed_on_nnz_vs_m2() {
        let auto = EngineKind::Auto { eps: 0.2 };
        // Small dimension: exact regardless of sparsity.
        assert_eq!(auto.resolve(8, 2), EngineKind::Exact);
        // Large and sparse (q ≪ m²): sketched Taylor.
        assert!(matches!(auto.resolve(128, 512), EngineKind::TaylorJl { .. }));
        // Very large and sparse: the Krylov/Chebyshev expm-action engine.
        assert!(matches!(auto.resolve(512, 4096), EngineKind::Expv { .. }));
        assert!(matches!(auto.resolve(256, 1024), EngineKind::Expv { .. }));
        // Large but storage-dense (q ≈ m²): exact, regardless of size.
        assert_eq!(auto.resolve(128, 128 * 128), EngineKind::Exact);
        assert_eq!(auto.resolve(512, 512 * 512), EngineKind::Exact);
        // Concrete kinds pass through untouched.
        assert_eq!(EngineKind::Exact.resolve(128, 1), EngineKind::Exact);
        let t = EngineKind::Taylor { eps: 0.1 };
        assert_eq!(t.resolve(128, 1), t);
    }

    #[test]
    fn expv_engine_dots_match_exact_trace_within_jl_band() {
        let (phi, mats) = fixture(10, 3.0);
        let eng = Engine::new(EngineKind::Expv { eps: 0.2 }, &mats, 42).unwrap();
        let out = eng.compute(&phi, 3.0, &mats, 1).unwrap();
        assert_eq!(out.log_scale, 3.0);
        assert!(out.sketch_rows > 0);
        let scale = out.log_scale.exp();
        // Dots carry no sketch distortion: they match the exact reference up
        // to the 1e-9 kernel floor plus the factorization tolerance.
        for (i, a) in mats.iter().enumerate() {
            let want = exp_dot_exact(&phi, a).unwrap();
            let got = out.dots[i] * scale;
            assert!((got - want).abs() < 1e-5 * want.max(1.0), "dot {i}: {got} vs {want}");
        }
        // The trace is a JL estimate: generous band like the taylor+jl test.
        let want_tr = psdp_linalg::expm(&phi).unwrap().trace();
        assert!((out.tr_w * scale - want_tr).abs() < 0.35 * want_tr);
    }

    #[test]
    fn expv_engine_survives_large_norm() {
        // ‖Φ‖ = 900 would overflow exp(κ); the log-scale frame must not.
        let (mut phi, mats) = fixture(6, 1.0);
        phi.scale(900.0);
        let eng = Engine::new(EngineKind::Expv { eps: 0.3 }, &mats, 5).unwrap();
        let out = eng.compute(&phi, 900.0, &mats, 0).unwrap();
        assert!(out.tr_w.is_finite() && out.tr_w > 0.0);
        assert!(out.dots.iter().all(|d| d.is_finite()));
        assert_eq!(out.log_scale, 900.0);
    }

    #[test]
    fn expv_deterministic_dots_independent_of_stream() {
        let (phi, mats) = fixture(8, 2.0);
        let eng = Engine::new(EngineKind::Expv { eps: 0.3 }, &mats, 7).unwrap();
        let a = eng.compute(&phi, 2.0, &mats, 3).unwrap();
        let b = eng.compute(&phi, 2.0, &mats, 3).unwrap();
        assert_eq!(a.dots, b.dots);
        assert_eq!(a.tr_w.to_bits(), b.tr_w.to_bits());
        // At this size the JL row bound exceeds m, so the trace block is
        // the m identity probes (exact trace): a different stream has
        // nothing left to resample and the whole result is stream-free.
        let c = eng.compute(&phi, 2.0, &mats, 4).unwrap();
        assert_eq!(a.dots, c.dots);
        assert_eq!(a.sketch_rows, 8);
        assert_eq!(a.tr_w.to_bits(), c.tr_w.to_bits());
    }

    #[test]
    fn expv_sketched_trace_regime_at_large_m() {
        // m large enough (and eps loose enough) that the JL bound is below
        // m: the trace goes through real Gaussian probes. Dots stay
        // sketch-free, so a stream change moves tr_w and nothing else.
        let m = 128;
        let mats: Vec<PsdMatrix> = (0..4usize)
            .map(|k| {
                let trip = [(9 * k, 0, 1.0), (9 * k + 5, 0, 0.5)];
                PsdMatrix::Factor(FactorPsd::new(Csr::from_triplets(m, 1, &trip)))
            })
            .collect();
        let mut phi = Mat::zeros(m, m);
        for a in &mats {
            a.add_scaled_into(&mut phi, 0.4);
        }
        phi.symmetrize();
        let eng = Engine::new(EngineKind::Expv { eps: 0.9 }, &mats, 5).unwrap();
        let a = eng.compute(&phi, 2.0, &mats, 1).unwrap();
        assert!(a.sketch_rows < m, "expected sketched regime, got {} rows", a.sketch_rows);
        let c = eng.compute(&phi, 2.0, &mats, 2).unwrap();
        assert_eq!(a.dots, c.dots, "dots are sketch-free");
        assert_ne!(a.tr_w.to_bits(), c.tr_w.to_bits(), "trace probes must resample");
        // Both estimates stay inside the (loose) JL band around the truth.
        let exact =
            Engine::new(EngineKind::Exact, &mats, 0).unwrap().compute(&phi, 2.0, &mats, 0).unwrap();
        for t in [
            a.tr_w * (a.log_scale - exact.log_scale).exp(),
            c.tr_w * (c.log_scale - exact.log_scale).exp(),
        ] {
            assert!((t - exact.tr_w).abs() <= 0.9 * exact.tr_w, "trace {t} vs {}", exact.tr_w);
        }
    }

    #[test]
    fn expv_compute_op_matches_dense_compute() {
        let (phi, mats) = fixture(9, 2.0);
        let eng = Engine::new(EngineKind::Expv { eps: 0.3 }, &mats, 11).unwrap();
        let a = eng.compute(&phi, 2.0, &mats, 7).unwrap();
        let b = eng.compute_op(&phi, 2.0, 7);
        assert_eq!(a.dots, b.dots);
        assert_eq!(a.tr_w.to_bits(), b.tr_w.to_bits());
        assert!(a.dense_p.is_none() && b.dense_p.is_none());
    }

    #[test]
    fn auto_engine_resolves_and_computes() {
        // 96 rank-1 factors on m = 96: q ≈ 2m ≪ m²/4 → sketched engine.
        let m = 96;
        let mats: Vec<PsdMatrix> = (0..m)
            .map(|k| {
                let mut v = vec![0.0; m];
                v[k] = 1.0;
                v[(k + 1) % m] = -1.0;
                PsdMatrix::Factor(FactorPsd::from_vector(&v))
            })
            .collect();
        let eng = Engine::new(EngineKind::Auto { eps: 0.3 }, &mats, 3).unwrap();
        assert!(matches!(eng.kind(), EngineKind::TaylorJl { .. }), "{:?}", eng.kind());
        let phi = Mat::identity(m).scaled(0.5);
        let out = eng.compute(&phi, 0.5, &mats, 1).unwrap();
        assert!(out.tr_w.is_finite() && out.tr_w > 0.0);

        // A tiny dense instance resolves to exact.
        let small = vec![PsdMatrix::Diagonal(vec![1.0, 2.0])];
        let eng = Engine::new(EngineKind::Auto { eps: 0.3 }, &small, 0).unwrap();
        assert_eq!(eng.kind(), EngineKind::Exact);
    }
}
