//! Gaussian Johnson–Lindenstrauss sketches.
//!
//! Theorem 4.1 reduces the vectors `exp(Φ/2)Qᵢ` to `O(ε⁻² log m)` dimensions
//! with a Gaussian matrix `Π` before taking norms. `rand` 0.8 ships no
//! normal distribution, so we generate standard normals with the Box–Muller
//! transform from the uniform stream — one more substrate owned end-to-end.

use psdp_linalg::Mat;
use psdp_parallel::rng_for;
use rand::Rng;

/// Draw a standard normal sample via Box–Muller.
///
/// Consumes two uniforms per pair of normals; we keep the cached second
/// value in the iterator wrapper below rather than here.
#[inline]
fn box_muller(u1: f64, u2: f64) -> (f64, f64) {
    // Guard against log(0).
    let r = (-2.0 * u1.max(f64::MIN_POSITIVE).ln()).sqrt();
    let theta = 2.0 * std::f64::consts::PI * u2;
    (r * theta.cos(), r * theta.sin())
}

/// Fill a vector with `n` i.i.d. standard normals from an RNG.
pub fn standard_normals(rng: &mut impl Rng, n: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(n + 1);
    while out.len() < n {
        let (a, b) = box_muller(rng.gen::<f64>(), rng.gen::<f64>());
        out.push(a);
        out.push(b);
    }
    out.truncate(n);
    out
}

/// The number of sketch rows `r = ⌈c · ln(max(dim,2)) / ε²⌉` for distortion
/// `ε`. The constant `c` trades accuracy for work; `c = 4` keeps the failure
/// probability per estimate comfortably below 1% at the sizes we run.
pub fn jl_rows(dim: usize, eps: f64, c: f64) -> usize {
    assert!(eps > 0.0 && eps < 1.0, "jl_rows: eps in (0,1)");
    let ln_term = (dim.max(2) as f64).ln();
    ((c * ln_term / (eps * eps)).ceil() as usize).max(1)
}

/// A JL sketch matrix `Π` (`rows × dim`) with i.i.d. `N(0, 1/rows)` entries,
/// so that `E‖Πx‖² = ‖x‖²`.
///
/// Deterministic in `(seed, stream)`.
pub fn gaussian_sketch(rows: usize, dim: usize, seed: u64, stream: u64) -> Mat {
    let mut rng = rng_for(seed, stream);
    let scale = 1.0 / (rows as f64).sqrt();
    let mut data = standard_normals(&mut rng, rows * dim);
    for v in &mut data {
        *v *= scale;
    }
    Mat::from_vec(rows, dim, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psdp_linalg::vecops;

    #[test]
    fn normals_have_plausible_moments() {
        let mut rng = rng_for(42, 0);
        let xs = standard_normals(&mut rng, 40_000);
        let mean = vecops::sum(&xs) / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn sketch_deterministic() {
        let a = gaussian_sketch(8, 5, 7, 3);
        let b = gaussian_sketch(8, 5, 7, 3);
        assert_eq!(a, b);
        let c = gaussian_sketch(8, 5, 7, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn sketch_preserves_norms_on_average() {
        // With many rows, ||Πx||² concentrates near ||x||².
        let dim = 30;
        let x: Vec<f64> = (0..dim).map(|i| ((i % 7) as f64 - 3.0) * 0.5).collect();
        let want = vecops::dot(&x, &x);
        let pi = gaussian_sketch(4000, dim, 123, 0);
        let px = psdp_linalg::matvec(&pi, &x);
        let got = vecops::dot(&px, &px);
        assert!((got - want).abs() < 0.1 * want, "JL estimate {got} too far from {want}");
    }

    #[test]
    fn jl_rows_scales_inverse_eps_squared() {
        let r1 = jl_rows(100, 0.2, 4.0);
        let r2 = jl_rows(100, 0.1, 4.0);
        // Halving eps should roughly quadruple rows.
        assert!(r2 >= 3 * r1 && r2 <= 5 * r1, "r1={r1} r2={r2}");
        assert!(jl_rows(2, 0.5, 1.0) >= 1);
    }

    #[test]
    fn odd_sample_count() {
        let mut rng = rng_for(1, 1);
        let xs = standard_normals(&mut rng, 7);
        assert_eq!(xs.len(), 7);
        assert!(xs.iter().all(|v| v.is_finite()));
    }
}
