//! Property tests: the engines' accuracy contracts on random PSD inputs.

use proptest::prelude::*;
use psdp_expdot::{exp_dot_exact, jl_rows, Engine, EngineKind};
use psdp_linalg::{matmul, sym_eigen, Mat};
use psdp_sparse::PsdMatrix;

/// Random (Φ, constraints) pair: Φ PSD with moderate norm, diagonal +
/// dense PSD constraints.
fn setup() -> impl Strategy<Value = (Mat, Vec<PsdMatrix>)> {
    (2usize..7).prop_flat_map(|m| {
        (
            proptest::collection::vec(-1.0_f64..1.0, m * m),
            proptest::collection::vec(0.05_f64..1.5, m),
            proptest::collection::vec(-1.0_f64..1.0, m * m),
        )
            .prop_map(move |(phi_data, diag, a_data)| {
                let g = Mat::from_vec(m, m, phi_data);
                let mut phi = matmul(&g, &g.transpose());
                phi.scale(1.0 / m as f64);
                phi.symmetrize();

                let ga = Mat::from_vec(m, m, a_data);
                let mut a = matmul(&ga, &ga.transpose());
                a.scale(1.0 / m as f64);
                a.add_diag(0.01);
                a.symmetrize();

                (phi, vec![PsdMatrix::Diagonal(diag), PsdMatrix::Dense(a)])
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Exact engine equals the eigendecomposition reference.
    #[test]
    fn exact_engine_is_reference((phi, mats) in setup()) {
        let eng = Engine::new(EngineKind::Exact, &mats, 0).unwrap();
        let kappa = sym_eigen(&phi).unwrap().lambda_max();
        let out = eng.compute(&phi, kappa, &mats, 0).unwrap();
        let scale = out.log_scale.exp();
        for (i, a) in mats.iter().enumerate() {
            let want = exp_dot_exact(&phi, a).unwrap();
            let got = out.dots[i] * scale;
            prop_assert!((got - want).abs() < 1e-7 * want.max(1.0), "{got} vs {want}");
        }
    }

    /// Taylor engine obeys the one-sided sandwich: never above exact, never
    /// below (1−ε)·exact.
    #[test]
    fn taylor_engine_sandwich((phi, mats) in setup(), eps in 0.05_f64..0.4) {
        let eng = Engine::new(EngineKind::Taylor { eps }, &mats, 0).unwrap();
        let kappa = sym_eigen(&phi).unwrap().lambda_max().max(1e-9);
        let out = eng.compute(&phi, kappa, &mats, 0).unwrap();
        for (i, a) in mats.iter().enumerate() {
            let want = exp_dot_exact(&phi, a).unwrap();
            prop_assert!(out.dots[i] <= want * (1.0 + 1e-9),
                "constraint {i}: taylor {} above exact {want}", out.dots[i]);
            prop_assert!(out.dots[i] >= want * (1.0 - eps) - 1e-12,
                "constraint {i}: taylor {} below (1-eps)·{want}", out.dots[i]);
        }
        // Trace too.
        let tr = psdp_linalg::expm(&phi).unwrap().trace();
        prop_assert!(out.tr_w <= tr * (1.0 + 1e-9) && out.tr_w >= tr * (1.0 - eps) - 1e-12);
    }

    /// The sketched engine is unbiased enough: averaged over several
    /// independent sketches, the estimate lands near exact.
    #[test]
    fn jl_engine_concentrates((phi, mats) in setup()) {
        let eng = Engine::new(
            EngineKind::TaylorJl { eps: 0.2, sketch_const: 4.0 }, &mats, 11,
        ).unwrap();
        let kappa = sym_eigen(&phi).unwrap().lambda_max().max(1e-9);
        let want: Vec<f64> =
            mats.iter().map(|a| exp_dot_exact(&phi, a).unwrap()).collect();
        let reps = 5;
        let mut avg = vec![0.0; mats.len()];
        for s in 0..reps {
            let out = eng.compute(&phi, kappa, &mats, s).unwrap();
            for (acc, d) in avg.iter_mut().zip(&out.dots) {
                *acc += d / reps as f64;
            }
        }
        for (g, w) in avg.iter().zip(&want) {
            prop_assert!((g - w).abs() < 0.25 * w.max(1e-9),
                "averaged sketch {g} too far from {w}");
        }
    }

    /// JL row count is monotone in dimension and 1/ε.
    #[test]
    fn jl_rows_monotone(d1 in 2usize..100, eps in 0.05_f64..0.5) {
        let d2 = d1 * 2;
        prop_assert!(jl_rows(d2, eps, 4.0) >= jl_rows(d1, eps, 4.0));
        prop_assert!(jl_rows(d1, eps / 2.0, 4.0) >= jl_rows(d1, eps, 4.0));
    }
}
