//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors minimal shims for its external dependencies. This one keeps the
//! bench *targets* compiling and runnable (`cargo bench`) with criterion's
//! macro and builder surface, but replaces the statistical machinery with a
//! simple timed loop: each benchmark is warmed up once, then run for a
//! fixed number of iterations, and the median per-iteration wall time is
//! printed. Good enough to compare engines and spot order-of-magnitude
//! regressions; swap in real criterion for publication-quality numbers.

#![warn(missing_docs)]

use std::time::Duration;
use std::time::Instant;

pub use std::hint::black_box;

/// Identifier for a parameterized benchmark, `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a displayable parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Build an id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    /// Median per-iteration time recorded by the last `iter` call.
    last_median: Duration,
}

impl Bencher {
    /// Run `f` repeatedly, timing each iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warm-up, also forces lazy setup
        let mut samples = Vec::with_capacity(self.iters as usize);
        for _ in 0..self.iters {
            let t0 = Instant::now();
            black_box(f());
            samples.push(t0.elapsed());
        }
        samples.sort();
        self.last_median = samples[samples.len() / 2];
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    /// Group-scoped sample-count override; groups must not leak their
    /// configuration into the parent `Criterion` (matching real criterion).
    sample_size: Option<u64>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-benchmark sample count for this group only.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2) as u64);
        self
    }

    /// Set the target measurement time. Accepted for API compatibility;
    /// the shim's loop is iteration-count-driven, so this is a no-op.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        let iters = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one_with(&full, iters, f);
        self
    }

    /// Benchmark a closure that receives `input` by reference.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        let iters = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one_with(&full, iters, |b| f(b, input));
        self
    }

    /// Finish the group (printing is immediate in the shim; no-op).
    pub fn finish(self) {}
}

/// Benchmark driver mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: u64,
    /// `--test` mode (real criterion's smoke mode): run every benchmark
    /// body exactly once to prove it executes, skip the timing loop.
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10, test_mode: false }
    }
}

impl Criterion {
    /// Parse command-line configuration. Like real criterion, `--test`
    /// switches to smoke mode (each benchmark runs once, untimed — CI uses
    /// this to keep bench targets from rotting); every other harness flag
    /// `cargo bench` passes is accepted and ignored.
    pub fn configure_from_args(mut self) -> Self {
        if std::env::args().skip(1).any(|a| a == "--test") {
            self.test_mode = true;
        }
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: None }
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.to_string();
        self.run_one(&id, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) {
        self.run_one_with(id, self.sample_size, f);
    }

    fn run_one_with<F: FnMut(&mut Bencher)>(&mut self, id: &str, iters: u64, mut f: F) {
        if self.test_mode {
            // One untimed execution; a panic fails the smoke run.
            let mut b = Bencher { iters: 1, last_median: Duration::ZERO };
            f(&mut b);
            println!("test bench {id} ... ok");
            return;
        }
        let mut b = Bencher { iters, last_median: Duration::ZERO };
        f(&mut b);
        println!("bench {:60} median {:>12.3?}  ({} iters)", id, b.last_median, b.iters);
    }

    /// Final reporting hook called by [`criterion_main!`]; the shim prints
    /// as it goes, so this is a no-op.
    pub fn final_summary(&self) {}
}

/// Group benchmark functions under one registration point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut runs = 0u64;
        c.bench_function("t", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    #[test]
    fn sample_size_is_group_scoped() {
        let mut c = Criterion::default();
        let mut first = 0u64;
        let mut g1 = c.benchmark_group("g1");
        g1.sample_size(4);
        g1.bench_function("a", |b| b.iter(|| first += 1));
        g1.finish();
        assert_eq!(first, 5, "4 samples + 1 warm-up");

        // A later group must see the default again, not g1's override.
        let mut second = 0u64;
        let mut g2 = c.benchmark_group("g2");
        g2.bench_function("b", |b| b.iter(|| second += 1));
        g2.finish();
        assert_eq!(second, 11, "10 default samples + 1 warm-up");
    }

    #[test]
    fn test_mode_runs_each_benchmark_once() {
        let mut c = Criterion { test_mode: true, ..Default::default() };
        let mut runs = 0u64;
        let mut g = c.benchmark_group("g");
        g.sample_size(50);
        g.bench_function("a", |b| b.iter(|| runs += 1));
        g.finish();
        assert_eq!(runs, 2, "warm-up + exactly one smoke iteration");
    }

    #[test]
    fn group_runs_with_input() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(4);
        let mut total = 0u64;
        g.bench_with_input(BenchmarkId::new("f", 3), &3u64, |b, &x| b.iter(|| total += x));
        g.finish();
        assert!(total > 0);
    }
}
