//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors minimal shims for its external dependencies. This one is a small
//! deterministic property-testing harness with proptest's surface syntax:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`strategy::Strategy`] with `prop_map` / `prop_flat_map`,
//! * range and tuple strategies, [`collection::vec`],
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * [`test_runner::ProptestConfig`] honoring the `PROPTEST_CASES`
//!   environment variable.
//!
//! Differences from real proptest, deliberately accepted: no shrinking
//! (failing inputs are printed verbatim instead) and case seeds derived
//! deterministically from `(file, line, case index)` so every run of the
//! suite exercises the same inputs — which is what `tests/determinism.rs`
//! demands of the whole workspace anyway.

#![warn(missing_docs)]

pub mod test_runner {
    //! Test-runner configuration.

    /// Configuration for a `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Configuration running `cases` cases (capped by `PROPTEST_CASES`).
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }

        /// The case count to actually run: the configured count, capped by
        /// the `PROPTEST_CASES` environment variable when it is set (CI uses
        /// this to bound suite runtime without editing the properties).
        pub fn effective_cases(&self) -> u32 {
            match std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse::<u32>().ok()) {
                Some(env_cap) => self.cases.min(env_cap.max(1)),
                None => self.cases,
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::Rng;
    use rand::SeedableRng;
    use std::fmt::Debug;
    use std::ops::Range;
    use std::ops::RangeInclusive;

    /// Deterministic RNG handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Build the RNG for one test case, keyed by source location and
        /// case index so every property gets an independent, reproducible
        /// stream.
        pub fn for_case(file: &str, line: u32, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in file.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
            }
            h = (h ^ line as u64).wrapping_mul(0x1000_0000_01b3);
            h = (h ^ case as u64).wrapping_mul(0x1000_0000_01b3);
            TestRng(StdRng::seed_from_u64(h))
        }

        /// Borrow the underlying generator.
        pub fn rng(&mut self) -> &mut StdRng {
            &mut self.0
        }
    }

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value: Debug;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> MapStrategy<Self, F>
        where
            Self: Sized,
        {
            MapStrategy { base: self, f }
        }

        /// Generate a value, then generate from the strategy `f` builds
        /// from it (dependent generation).
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(
            self,
            f: F,
        ) -> FlatMapStrategy<Self, F>
        where
            Self: Sized,
        {
            FlatMapStrategy { base: self, f }
        }

        /// Discard generated values failing `pred`, retrying (bounded).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            pred: F,
        ) -> FilterStrategy<Self, F>
        where
            Self: Sized,
        {
            FilterStrategy { base: self, whence, pred }
        }
    }

    /// Strategy yielding a fixed value (mirrors `proptest::strategy::Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct MapStrategy<B, F> {
        base: B,
        f: F,
    }

    impl<B: Strategy, O: Debug, F: Fn(B::Value) -> O> Strategy for MapStrategy<B, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMapStrategy<B, F> {
        base: B,
        f: F,
    }

    impl<B: Strategy, S: Strategy, F: Fn(B::Value) -> S> Strategy for FlatMapStrategy<B, F> {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct FilterStrategy<B, F> {
        base: B,
        whence: &'static str,
        pred: F,
    }

    impl<B: Strategy, F: Fn(&B::Value) -> bool> Strategy for FilterStrategy<B, F> {
        type Value = B::Value;

        fn generate(&self, rng: &mut TestRng) -> B::Value {
            for _ in 0..1000 {
                let v = self.base.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 consecutive values: {}", self.whence);
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.rng().gen_range(self.clone())
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.rng().gen_range(self.clone())
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng().gen_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.rng().gen_range(self.clone())
                }
            }
        )*};
    }

    impl_int_range_strategy!(usize, u64, u32, i64, i32);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))+) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, G)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::strategy::TestRng;
    use rand::Rng;
    use std::fmt::Debug;
    use std::ops::Range;

    /// Length specification for [`vec()`]: a fixed `usize` or a `usize` range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_exclusive: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_exclusive: r.end }
        }
    }

    /// Strategy generating `Vec`s of `element` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.rng().gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::prop_assert;
    pub use crate::prop_assert_eq;
    pub use crate::prop_assert_ne;
    pub use crate::proptest;
    pub use crate::strategy::Just;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
}

/// Assert a condition inside a property, reporting the failing inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+)
    };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+)
    };
}

/// Define property tests.
///
/// Accepts an optional `#![proptest_config(expr)]` header followed by test
/// functions of the form `fn name(pat in strategy, ...) { body }`, each
/// annotated `#[test]`. Each property is run for the configured number of
/// cases with inputs drawn from its strategies; on failure the generated
/// inputs and case index are printed before the panic propagates.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;) => {};
    (
        cfg = $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let __cases = __cfg.effective_cases();
            for __case in 0..__cases {
                let mut __rng =
                    $crate::strategy::TestRng::for_case(file!(), line!(), __case);
                let __vals = (
                    $($crate::strategy::Strategy::generate(&($strat), &mut __rng),)+
                );
                let __repr = format!("{:?}", __vals);
                // The closure returns `Result` so properties can use
                // proptest's `return Ok(())` early-discard convention; an
                // explicit `Err` return is a test failure (use `Ok(())` to
                // discard a case).
                let __outcome = std::panic::catch_unwind(
                    std::panic::AssertUnwindSafe(
                        move || -> std::result::Result<(), String> {
                            let ($($arg,)+) = __vals;
                            $body
                            #[allow(unreachable_code)]
                            Ok(())
                        },
                    ),
                );
                let __payload: Box<dyn std::any::Any + Send> = match __outcome {
                    Ok(Ok(())) => continue,
                    Ok(Err(__msg)) => Box::new(format!("property returned Err: {__msg}")),
                    Err(__panic) => __panic,
                };
                eprintln!(
                    "proptest case {}/{} of `{}` failed; inputs: {}",
                    __case + 1,
                    __cases,
                    stringify!($name),
                    __repr
                );
                std::panic::resume_unwind(__payload);
            }
        }
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::strategy::TestRng;

    #[test]
    fn deterministic_generation() {
        let strat = crate::collection::vec(-1.0_f64..1.0, 0..10);
        let a = strat.generate(&mut TestRng::for_case("f", 1, 0));
        let b = strat.generate(&mut TestRng::for_case("f", 1, 0));
        assert_eq!(a, b);
    }

    #[test]
    fn flat_map_dependent_lengths() {
        let strat = (1usize..5).prop_flat_map(|n| crate::collection::vec(0.0_f64..1.0, n * n));
        for case in 0..32 {
            let v = strat.generate(&mut TestRng::for_case("g", 2, case));
            let n = (v.len() as f64).sqrt() as usize;
            assert_eq!(n * n, v.len());
        }
    }

    #[test]
    fn env_caps_cases() {
        let cfg = ProptestConfig::with_cases(1000);
        assert!(cfg.effective_cases() <= 1000);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_roundtrip(x in 0.0_f64..1.0, (a, b) in (0usize..5, 0usize..5)) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!(a < 5 && b < 5);
        }

        #[test]
        fn ok_return_discards_case(x in 0usize..10) {
            if x % 2 == 0 {
                return Ok(());
            }
            prop_assert!(x % 2 == 1);
        }

        #[test]
        #[should_panic(expected = "property returned Err")]
        fn err_return_is_a_failure(x in 0usize..10) {
            let _ = x;
            return Err("constructed a bad fixture".to_string());
        }
    }
}
