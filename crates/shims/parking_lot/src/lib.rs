//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors minimal shims for its external dependencies. This one wraps
//! `std::sync` primitives behind `parking_lot`'s panic-free, guard-returning
//! API. Swap the `[workspace.dependencies]` path entry for the real crate
//! when a registry is available; no call sites need to change.

#![warn(missing_docs)]

use std::sync::MutexGuard;
use std::sync::RwLockReadGuard;
use std::sync::RwLockWriteGuard;

/// Mutual exclusion primitive mirroring `parking_lot::Mutex`.
///
/// Unlike `std::sync::Mutex`, `lock()` does not return a `Result`: a
/// poisoned lock is recovered transparently, matching `parking_lot`'s
/// no-poisoning semantics.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

/// Reader–writer lock mirroring `parking_lot::RwLock`.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new reader–writer lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        static M: Mutex<i32> = Mutex::new(0);
        *M.lock() += 5;
        assert_eq!(*M.lock(), 5);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
