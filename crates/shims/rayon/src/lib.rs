//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors minimal shims for its external dependencies. This shim keeps
//! rayon's *shape* — `prelude::*` parallel iterators, [`ThreadPool`] +
//! [`ThreadPoolBuilder`], [`current_num_threads`] — while implementing
//! execution with `std::thread::scope`:
//!
//! * every parallel combinator splits its items into at most
//!   [`current_num_threads`] contiguous chunks and runs them on scoped OS
//!   threads, preserving item order in the output;
//! * [`ThreadPool::install`] scopes the effective thread count via a
//!   thread-local (no persistent worker threads — pools here are just a
//!   concurrency budget);
//! * nested parallel calls inside a worker run sequentially, bounding the
//!   total thread count by the installed budget (rayon bounds it via work
//!   stealing; we bound it by disabling nested spawns).
//!
//! The result is deterministic for `map`/`collect` pipelines (order is by
//! index, independent of scheduling) and genuinely parallel for the
//! kernels that matter (GEMM rows, CSR rows, per-constraint dots).

#![warn(missing_docs)]

use std::cell::Cell;

thread_local! {
    /// Effective concurrency budget for parallel calls on this thread.
    /// `None` means "not set": use the machine's available parallelism.
    static BUDGET: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of threads parallel operations on this thread may use.
pub fn current_num_threads() -> usize {
    BUDGET.with(|b| b.get()).unwrap_or_else(default_threads)
}

fn default_threads() -> usize {
    // Real rayon sizes its global pool from RAYON_NUM_THREADS; honor it so
    // CI can run the suite under an explicit thread matrix (invalid or
    // zero values fall back to the machine's parallelism, as rayon does).
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

fn with_budget<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let prev = BUDGET.with(|b| b.replace(Some(n)));
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            BUDGET.with(|b| b.set(self.0));
        }
    }
    let _restore = Restore(prev);
    f()
}

/// A concurrency budget masquerading as a thread pool.
///
/// Unlike real rayon there are no persistent workers; `install` simply
/// scopes [`current_num_threads`] so parallel combinators invoked inside
/// split into that many scoped threads.
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Run `f` with this pool's thread budget and return its result.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        with_budget(self.threads, f)
    }

    /// The thread budget this pool was built with.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

/// Error type returned by [`ThreadPoolBuilder::build`]; construction never
/// fails in the shim, the type exists for API compatibility.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error (unreachable in shim)")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Start a fresh builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the pool's thread count; `0` (or unset) means auto-detect.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.threads = Some(n);
        self
    }

    /// Build the pool. Infallible in the shim.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = match self.threads {
            Some(0) | None => default_threads(),
            Some(n) => n,
        };
        Ok(ThreadPool { threads })
    }
}

/// Split `items` into at most [`current_num_threads`] contiguous chunks and
/// map `f(index, item)` over them on scoped threads, preserving order.
fn par_map_vec<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let threads = current_num_threads();
    let len = items.len();
    if threads <= 1 || len <= 1 {
        return items.into_iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    let chunk = len.div_ceil(threads);
    let mut parts: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut rest = items;
    while rest.len() > chunk {
        let tail = rest.split_off(chunk);
        parts.push(std::mem::replace(&mut rest, tail));
    }
    parts.push(rest);

    let f = &f;
    let mut out: Vec<Vec<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = parts
            .into_iter()
            .enumerate()
            .map(|(ci, part)| {
                scope.spawn(move || {
                    // Nested parallel calls inside a worker run sequentially so
                    // the total spawned-thread count stays within the budget.
                    with_budget(1, || {
                        part.into_iter()
                            .enumerate()
                            .map(|(j, x)| f(ci * chunk + j, x))
                            .collect::<Vec<R>>()
                    })
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("shim worker panicked")).collect()
    });
    let mut flat = Vec::with_capacity(len);
    for part in &mut out {
        flat.append(part);
    }
    flat
}

/// Parallel iterator traits and adapters.
pub mod iter {
    use super::par_map_vec;
    use std::ops::Range;

    /// A parallel iterator: drives `f(index, item)` over all items on a
    /// bounded set of scoped threads, returning results in item order.
    pub trait ParallelIterator: Sized {
        /// The element type.
        type Item: Send;

        /// Consume the iterator, mapping every `(index, item)` pair through
        /// `f` in parallel and collecting results in order. All adapters and
        /// terminal operations are defined on top of this one primitive.
        fn drive<R, F>(self, f: F) -> Vec<R>
        where
            R: Send,
            F: Fn(usize, Self::Item) -> R + Sync;

        /// Map each item through `f`.
        fn map<R, F>(self, f: F) -> Map<Self, F>
        where
            R: Send,
            F: Fn(Self::Item) -> R + Sync,
        {
            Map { base: self, f }
        }

        /// Pair each item with its index.
        fn enumerate(self) -> Enumerate<Self> {
            Enumerate { base: self }
        }

        /// Map each item to a sequential iterator and flatten the results,
        /// preserving order. The per-item `f` calls run in parallel; the
        /// produced iterators are drained on the worker that created them.
        fn flat_map_iter<U, F>(self, f: F) -> FlatMapIter<Self, F>
        where
            U: IntoIterator,
            U::Item: Send,
            F: Fn(Self::Item) -> U + Sync,
        {
            FlatMapIter { base: self, f }
        }

        /// Run `f` on every item for its side effects.
        fn for_each<F>(self, f: F)
        where
            F: Fn(Self::Item) + Sync,
        {
            self.drive(|_, x| f(x));
        }

        /// Collect all items, in order.
        fn collect<C: FromIterator<Self::Item>>(self) -> C {
            self.drive(|_, x| x).into_iter().collect()
        }

        /// Sum all items.
        fn sum<S: std::iter::Sum<Self::Item>>(self) -> S {
            self.drive(|_, x| x).into_iter().sum()
        }

        /// Fold-free reduction: combine all items with `op`, or `identity()`
        /// if the iterator is empty.
        fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
        where
            ID: Fn() -> Self::Item + Sync,
            OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync,
        {
            self.drive(|_, x| x).into_iter().fold(identity(), op)
        }

        /// Minimum by an `f64` key (used for argmin scans).
        fn min_by_key_f64<F>(self, key: F) -> Option<Self::Item>
        where
            F: Fn(&Self::Item) -> f64 + Sync,
        {
            self.drive(|_, x| x)
                .into_iter()
                .min_by(|a, b| key(a).partial_cmp(&key(b)).unwrap_or(std::cmp::Ordering::Equal))
        }
    }

    /// Map adapter (see [`ParallelIterator::map`]).
    pub struct Map<B, F> {
        base: B,
        f: F,
    }

    impl<B, R, F> ParallelIterator for Map<B, F>
    where
        B: ParallelIterator,
        R: Send,
        F: Fn(B::Item) -> R + Sync,
    {
        type Item = R;

        fn drive<R2, G>(self, g: G) -> Vec<R2>
        where
            R2: Send,
            G: Fn(usize, R) -> R2 + Sync,
        {
            let f = self.f;
            self.base.drive(move |i, x| g(i, f(x)))
        }
    }

    /// Enumerate adapter (see [`ParallelIterator::enumerate`]).
    pub struct Enumerate<B> {
        base: B,
    }

    impl<B: ParallelIterator> ParallelIterator for Enumerate<B> {
        type Item = (usize, B::Item);

        fn drive<R, G>(self, g: G) -> Vec<R>
        where
            R: Send,
            G: Fn(usize, (usize, B::Item)) -> R + Sync,
        {
            self.base.drive(move |i, x| g(i, (i, x)))
        }
    }

    /// Flat-map adapter (see [`ParallelIterator::flat_map_iter`]).
    pub struct FlatMapIter<B, F> {
        base: B,
        f: F,
    }

    impl<B, U, F> ParallelIterator for FlatMapIter<B, F>
    where
        B: ParallelIterator,
        U: IntoIterator,
        U::Item: Send,
        F: Fn(B::Item) -> U + Sync,
    {
        type Item = U::Item;

        fn drive<R, G>(self, g: G) -> Vec<R>
        where
            R: Send,
            G: Fn(usize, U::Item) -> R + Sync,
        {
            let f = self.f;
            let nested: Vec<Vec<U::Item>> = self.base.drive(move |_, x| f(x).into_iter().collect());
            nested.into_iter().flatten().enumerate().map(|(i, x)| g(i, x)).collect()
        }
    }

    /// Conversion into an owning parallel iterator.
    pub trait IntoParallelIterator {
        /// The element type.
        type Item: Send;
        /// The resulting iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// Convert `self`.
        fn into_par_iter(self) -> Self::Iter;
    }

    /// Parallel iterator over a materialized list of items.
    pub struct VecPar<T> {
        items: Vec<T>,
    }

    impl<T: Send> ParallelIterator for VecPar<T> {
        type Item = T;

        fn drive<R, F>(self, f: F) -> Vec<R>
        where
            R: Send,
            F: Fn(usize, T) -> R + Sync,
        {
            par_map_vec(self.items, f)
        }
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = VecPar<T>;

        fn into_par_iter(self) -> VecPar<T> {
            VecPar { items: self }
        }
    }

    macro_rules! impl_range_into_par {
        ($($t:ty),*) => {$(
            impl IntoParallelIterator for Range<$t> {
                type Item = $t;
                type Iter = VecPar<$t>;

                fn into_par_iter(self) -> VecPar<$t> {
                    VecPar { items: self.collect() }
                }
            }
        )*};
    }

    impl_range_into_par!(usize, u64, u32, i64, i32);

    /// `.par_iter()` on slices (and, via deref, `Vec`s).
    pub trait IntoParallelRefIterator<'data> {
        /// The element type (a shared reference).
        type Item: Send + 'data;
        /// The resulting iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// Borrowing conversion.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = &'data T;
        type Iter = VecPar<&'data T>;

        fn par_iter(&'data self) -> VecPar<&'data T> {
            VecPar { items: self.iter().collect() }
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = &'data T;
        type Iter = VecPar<&'data T>;

        fn par_iter(&'data self) -> VecPar<&'data T> {
            VecPar { items: self.iter().collect() }
        }
    }

    /// `.par_iter_mut()` / `.par_chunks_mut()` on mutable slices.
    pub trait ParallelSliceMut<T: Send> {
        /// Parallel iterator over non-overlapping mutable chunks of length
        /// `chunk_size` (last chunk may be shorter).
        fn par_chunks_mut(&mut self, chunk_size: usize) -> VecPar<&mut [T]>;

        /// Parallel iterator over mutable element references.
        fn par_iter_mut(&mut self) -> VecPar<&mut T>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> VecPar<&mut [T]> {
            assert!(chunk_size > 0, "chunk size must be positive");
            VecPar { items: self.chunks_mut(chunk_size).collect() }
        }

        fn par_iter_mut(&mut self) -> VecPar<&mut T> {
            VecPar { items: self.iter_mut().collect() }
        }
    }

    /// `.par_chunks()` on shared slices.
    pub trait ParallelSlice<T: Sync> {
        /// Parallel iterator over non-overlapping chunks of length
        /// `chunk_size` (last chunk may be shorter).
        fn par_chunks(&self, chunk_size: usize) -> VecPar<&[T]>;
    }

    impl<T: Sync> ParallelSlice<T> for [T] {
        fn par_chunks(&self, chunk_size: usize) -> VecPar<&[T]> {
            assert!(chunk_size > 0, "chunk size must be positive");
            VecPar { items: self.chunks(chunk_size).collect() }
        }
    }
}

/// Glob-import surface mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::IntoParallelIterator;
    pub use crate::iter::IntoParallelRefIterator;
    pub use crate::iter::ParallelIterator;
    pub use crate::iter::ParallelSlice;
    pub use crate::iter::ParallelSliceMut;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sum_matches_sequential() {
        let s: u64 = (0..1000u64).into_par_iter().sum();
        assert_eq!(s, 499_500);
    }

    #[test]
    fn chunks_mut_writes_disjoint() {
        let mut v = vec![0usize; 10];
        v.par_chunks_mut(3).enumerate().for_each(|(i, chunk)| {
            for x in chunk.iter_mut() {
                *x = i;
            }
        });
        assert_eq!(v, vec![0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
    }

    #[test]
    fn install_scopes_thread_budget() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
        // Budget restored after install returns.
        let outer = current_num_threads();
        assert!(outer >= 1);
    }

    #[test]
    fn par_iter_on_refs() {
        let data = vec![1.0_f64, 2.0, 3.0];
        let doubled: Vec<f64> = data.par_iter().map(|x| x * 2.0).collect();
        assert_eq!(doubled, vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn workers_run_nested_calls_sequentially() {
        let nested: Vec<usize> =
            (0..4usize).into_par_iter().map(|_| current_num_threads()).collect();
        // Inside a worker the budget is 1 whenever the outer loop actually
        // split; with a single-thread budget it stays whatever it was.
        assert!(nested.iter().all(|&n| n >= 1));
    }
}
