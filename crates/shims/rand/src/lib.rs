//! Offline stand-in for the `rand` crate (0.8-compatible subset).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors minimal shims for its external dependencies. This shim provides
//! the pieces the repo actually uses: [`rngs::StdRng`] (seedable,
//! deterministic), the [`Rng`] extension trait (`gen`, `gen_range`,
//! `gen_bool`, `sample_iter`), and [`distributions::Standard`].
//!
//! Determinism contract: for a fixed seed the generated stream is fixed
//! forever — `StdRng` here is xoshiro256** seeded via SplitMix64, which is
//! stable by construction (no dependence on the real `rand`'s
//! version-to-version stream changes). Deliberately, there is **no**
//! `thread_rng`: every RNG in this workspace must flow from an explicit
//! seed (see `tests/determinism.rs`).

#![warn(missing_docs)]

use std::ops::Range;
use std::ops::RangeInclusive;

/// The core trait every generator implements: a source of `u64`s.
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Next 32-bit output (high bits of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::RngCore;
    use super::SeedableRng;

    /// The workspace's standard deterministic generator: xoshiro256**
    /// seeded by SplitMix64 expansion of a 64-bit seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Distributions that can be sampled through a generator.
pub mod distributions {
    use super::RngCore;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draw one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution for a type: uniform over all values for
    /// integers, uniform in `[0, 1)` for floats.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl Distribution<u64> for Standard {
        #[inline]
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }

    impl Distribution<u32> for Standard {
        #[inline]
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }

    impl Distribution<usize> for Standard {
        #[inline]
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            rng.next_u64() as usize
        }
    }

    impl Distribution<bool> for Standard {
        #[inline]
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        /// Uniform in `[0, 1)` with 53 bits of precision, matching the
        /// real `rand`'s `Standard` for `f64`.
        #[inline]
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// A half-open or inclusive range that knows how to sample itself uniformly.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = distributions::Distribution::<f64>::sample(&distributions::Standard, rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        let u = distributions::Distribution::<f64>::sample(&distributions::Standard, rng);
        lo + u * (hi - lo)
    }
}

/// Unbiased uniform integer in `[0, bound)` via Lemire-style rejection.
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample empty range");
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let hi = ((x as u128 * bound as u128) >> 64) as u64;
        let lo = x.wrapping_mul(bound);
        if lo >= threshold {
            return hi;
        }
    }
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every value is valid.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

impl_int_sample_range!(usize, u64, u32, i64, i32);

/// Extension methods for generators, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value from the [`distributions::Standard`] distribution.
    #[inline]
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    /// Sample uniformly from `range`.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p ≤ 1`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool needs p in [0, 1]");
        let u: f64 = self.gen();
        u < p
    }

    /// Consume the generator into an iterator of samples from `dist`.
    #[inline]
    fn sample_iter<T, D>(self, dist: D) -> DistIter<D, Self, T>
    where
        D: distributions::Distribution<T>,
        Self: Sized,
    {
        DistIter { dist, rng: self, _marker: std::marker::PhantomData }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Iterator yielding samples from a distribution (see [`Rng::sample_iter`]).
#[derive(Debug)]
pub struct DistIter<D, R, T> {
    dist: D,
    rng: R,
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<D, R, T> Iterator for DistIter<D, R, T>
where
    D: distributions::Distribution<T>,
    R: RngCore,
{
    type Item = T;

    #[inline]
    fn next(&mut self) -> Option<T> {
        Some(self.dist.sample(&mut self.rng))
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::Standard;
    use super::rngs::StdRng;
    use super::Rng;
    use super::SeedableRng;

    #[test]
    fn seeded_streams_repeat() {
        let a: Vec<u64> = StdRng::seed_from_u64(42).sample_iter(Standard).take(16).collect();
        let b: Vec<u64> = StdRng::seed_from_u64(42).sample_iter(Standard).take(16).collect();
        assert_eq!(a, b);
        let c: Vec<u64> = StdRng::seed_from_u64(43).sample_iter(Standard).take(16).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = rng.gen_range(-1.0_f64..1.0);
            assert!((-1.0..1.0).contains(&x));
            let i = rng.gen_range(0_usize..7);
            assert!(i < 7);
            let j = rng.gen_range(3_usize..=5);
            assert!((3..=5).contains(&j));
        }
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn integer_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut counts = [0usize; 5];
        for _ in 0..10_000 {
            counts[rng.gen_range(0_usize..5)] += 1;
        }
        for &c in &counts {
            assert!((1700..2300).contains(&c), "skewed bucket: {counts:?}");
        }
    }
}
