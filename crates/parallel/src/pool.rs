//! Scoped rayon thread pools for scaling experiments.
//!
//! The parallel-scaling experiment (E6) needs to run the *same* solver at
//! 1, 2, 4, … threads. Rayon's global pool is process-wide, so we build
//! dedicated pools and run closures inside them; rayon parallel iterators
//! invoked within inherit the pool.

use parking_lot::Mutex;
use rayon::ThreadPool;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Cache of pools keyed by thread count (pool construction is expensive and
/// benchmark loops request the same sizes repeatedly). A `BTreeMap` so any
/// future iteration over the registry is in sorted key order (audit rule
/// D1: no hash-order iteration in deterministic modules).
static POOLS: Mutex<Option<BTreeMap<usize, Arc<ThreadPool>>>> = Mutex::new(None);

/// Get (or lazily build) a pool with exactly `threads` workers.
///
/// # Panics
/// Panics if `threads == 0` or pool construction fails (resource limits).
pub fn pool_with_threads(threads: usize) -> Arc<ThreadPool> {
    assert!(threads > 0, "thread pool needs at least one thread");
    let mut guard = POOLS.lock();
    let map = guard.get_or_insert_with(BTreeMap::new);
    map.entry(threads)
        .or_insert_with(|| {
            Arc::new(
                rayon::ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    .expect("failed to build rayon pool"),
            )
        })
        .clone()
}

/// Run `f` on a pool with `threads` workers and return its result.
pub fn run_with_threads<T: Send>(threads: usize, f: impl FnOnce() -> T + Send) -> T {
    pool_with_threads(threads).install(f)
}

/// Number of logical CPUs rayon would use by default.
pub fn available_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn pool_respects_thread_count() {
        let n = run_with_threads(2, rayon::current_num_threads);
        assert_eq!(n, 2);
        let n = run_with_threads(1, rayon::current_num_threads);
        assert_eq!(n, 1);
    }

    #[test]
    fn parallel_work_runs_in_pool() {
        let sum: u64 = run_with_threads(3, || (0..1000u64).into_par_iter().sum());
        assert_eq!(sum, 499_500);
    }

    #[test]
    fn pools_are_cached() {
        let a = pool_with_threads(2);
        let b = pool_with_threads(2);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn available_threads_positive() {
        assert!(available_threads() >= 1);
    }
}
