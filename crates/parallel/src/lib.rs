//! # psdp-parallel
//!
//! Parallel-infrastructure substrate: the analytic work–depth cost model the
//! experiments report (the paper's Corollary 1.2 is stated in that model),
//! deterministic splittable RNG streams, and scoped rayon thread pools for
//! the thread-scaling experiment.

#![warn(missing_docs)]

pub mod pool;
pub mod rng;
pub mod work_depth;

pub use pool::{available_threads, pool_with_threads, run_with_threads};
pub use rng::{derive_seed, rng_for, splitmix64};
pub use work_depth::{Cost, CostMeter};
