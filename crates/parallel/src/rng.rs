//! Deterministic, splittable random number generation.
//!
//! Parallel algorithms must not share one sequential RNG across tasks (the
//! stream would depend on scheduling). We derive independent per-purpose
//! streams from a root seed with a SplitMix64-style hash, so every sketch,
//! workload, and test is reproducible bit-for-bit regardless of thread
//! count or execution order.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// SplitMix64 finalizer: a high-quality 64-bit mixing function.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Derive a child seed from `(root, stream)` deterministically.
pub fn derive_seed(root: u64, stream: u64) -> u64 {
    splitmix64(root ^ splitmix64(stream.wrapping_mul(0xA076_1D64_78BD_642F)))
}

/// A deterministic RNG for the given `(root, stream)` pair.
///
/// Different `stream` values give statistically independent generators;
/// the same pair always gives the same stream.
pub fn rng_for(root: u64, stream: u64) -> StdRng {
    StdRng::seed_from_u64(derive_seed(root, stream))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_pair() {
        let a: Vec<u64> =
            rng_for(7, 3).sample_iter(rand::distributions::Standard).take(8).collect();
        let b: Vec<u64> =
            rng_for(7, 3).sample_iter(rand::distributions::Standard).take(8).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_streams_differ() {
        let a: u64 = rng_for(7, 0).gen();
        let b: u64 = rng_for(7, 1).gen();
        assert_ne!(a, b);
        let c: u64 = rng_for(8, 0).gen();
        assert_ne!(a, c);
    }

    #[test]
    fn splitmix_nonzero_avalanche() {
        // Adjacent inputs should produce wildly different outputs.
        let x = splitmix64(1);
        let y = splitmix64(2);
        assert_ne!(x, y);
        assert!((x ^ y).count_ones() > 10);
    }
}
