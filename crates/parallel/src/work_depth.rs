//! Analytic work–depth cost accounting.
//!
//! The paper states its complexity results in the work–depth model
//! (Corollary 1.2: `Õ(ε⁻⁶(n+m+q))` work, `O(ε⁻⁴ polylog)` depth). Wall-clock
//! measurements on a fixed machine cannot verify those *asymptotic* claims
//! directly, so the kernels additionally report analytic costs through this
//! module: a [`Cost`] is composed **sequentially** (work and depth both add)
//! or **in parallel** (work adds, depth takes the max — plus a log-factor
//! spawn overhead when requested). Experiment E5 sums these over a run and
//! checks the scaling shape against the corollary.

use std::ops::Add;

/// An analytic (work, depth) pair, in abstract flop units.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Cost {
    /// Total operation count across all processors.
    pub work: f64,
    /// Critical-path length.
    pub depth: f64,
}

impl Cost {
    /// The zero cost.
    pub const ZERO: Cost = Cost { work: 0.0, depth: 0.0 };

    /// A purely sequential cost: `depth = work`.
    pub fn seq(work: f64) -> Cost {
        Cost { work, depth: work }
    }

    /// An ideally parallel cost with explicit depth.
    pub fn new(work: f64, depth: f64) -> Cost {
        Cost { work, depth }
    }

    /// Cost of a parallel reduction over `n` items of `item_work` each:
    /// work `n·item_work`, depth `item_work + log₂(n)`.
    pub fn reduce(n: usize, item_work: f64) -> Cost {
        if n == 0 {
            return Cost::ZERO;
        }
        Cost { work: n as f64 * item_work, depth: item_work + (n as f64).log2().max(0.0) }
    }

    /// Cost of a dense `r × c` mat-vec (or one sparse pass over `nnz`
    /// entries with `log` reduction depth): work `2·nnz`, depth `log₂ c`.
    pub fn matvec(nnz: usize, reduce_len: usize) -> Cost {
        Cost { work: 2.0 * nnz as f64, depth: (reduce_len.max(2) as f64).log2() }
    }

    /// Compose in parallel: work adds, depth maxes.
    pub fn par(self, other: Cost) -> Cost {
        Cost { work: self.work + other.work, depth: self.depth.max(other.depth) }
    }

    /// Parallel composition over `k` identical branches.
    pub fn par_replicate(self, k: usize) -> Cost {
        Cost { work: self.work * k as f64, depth: self.depth + (k.max(2) as f64).log2() }
    }
}

/// Sequential composition.
impl Add for Cost {
    type Output = Cost;
    fn add(self, other: Cost) -> Cost {
        Cost { work: self.work + other.work, depth: self.depth + other.depth }
    }
}

/// A mutable accumulator for per-phase cost accounting.
///
/// Algorithms thread a `&mut CostMeter` through their inner loops; `charge`
/// composes sequentially (an iteration happens after the previous one) and
/// `charge_par` records a step whose internal structure was parallel.
#[derive(Debug, Default, Clone)]
pub struct CostMeter {
    total: Cost,
    /// Number of `charge*` calls, for averaging.
    events: usize,
}

impl CostMeter {
    /// Fresh meter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sequentially append a cost.
    pub fn charge(&mut self, c: Cost) {
        self.total = self.total + c;
        self.events += 1;
    }

    /// Total accumulated cost.
    pub fn total(&self) -> Cost {
        self.total
    }

    /// Number of charges recorded.
    pub fn events(&self) -> usize {
        self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_composition_adds_both() {
        let c = Cost::seq(10.0) + Cost::seq(5.0);
        assert_eq!(c.work, 15.0);
        assert_eq!(c.depth, 15.0);
    }

    #[test]
    fn par_composition_maxes_depth() {
        let a = Cost::new(10.0, 3.0);
        let b = Cost::new(20.0, 7.0);
        let c = a.par(b);
        assert_eq!(c.work, 30.0);
        assert_eq!(c.depth, 7.0);
    }

    #[test]
    fn reduce_has_log_depth() {
        let c = Cost::reduce(1024, 1.0);
        assert_eq!(c.work, 1024.0);
        assert_eq!(c.depth, 11.0); // 1 + log2(1024)
        assert_eq!(Cost::reduce(0, 5.0), Cost::ZERO);
    }

    #[test]
    fn matvec_cost_shape() {
        let c = Cost::matvec(1000, 100);
        assert_eq!(c.work, 2000.0);
        assert!((c.depth - 100f64.log2()).abs() < 1e-12);
    }

    #[test]
    fn par_replicate_adds_spawn_depth() {
        let c = Cost::new(5.0, 2.0).par_replicate(8);
        assert_eq!(c.work, 40.0);
        assert_eq!(c.depth, 5.0); // 2 + log2(8)
    }

    #[test]
    fn meter_accumulates() {
        let mut m = CostMeter::new();
        m.charge(Cost::seq(3.0));
        m.charge(Cost::new(7.0, 1.0));
        assert_eq!(m.total().work, 10.0);
        assert_eq!(m.total().depth, 4.0);
        assert_eq!(m.events(), 2);
    }
}
