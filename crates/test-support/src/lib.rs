//! # psdp-test-support
//!
//! Shared fixtures for the workspace's test suites. Before this crate, the
//! root integration tests each carried a hand-rolled copy of "random
//! factorized instance from a seed", "sparse G(n,p) edge-Laplacian
//! instance with empty-graph fallback", and ad-hoc LCG streams; the copies
//! drifted (different dims, widths, scales) and every new suite re-rolled
//! its own. This crate is the single home for:
//!
//! * [`FactorizedSpec`] / [`factorized_instance`] — the deterministic
//!   random-factorized packing instance every suite parameterizes,
//! * [`arb_factorized_instance`] / [`arb_sparse_graph_instance`] —
//!   proptest strategies over those families,
//! * [`diag_lp_with_columns`] — a diagonal (positive-LP) instance paired
//!   with its scalar columns, for cross-validation against LP baselines,
//! * [`arb_mixed_diagonal`] / [`MixedDiagonal`] — diagonal-embedded mixed
//!   packing–covering instances paired with their columns and the exact
//!   simplex threshold, for the mixed differential tests,
//! * [`det_stream`] — a splitmix64-backed deterministic `u64` stream for
//!   tests that need cheap reproducible pseudo-randomness without pulling
//!   in a full RNG.
//!
//! Everything here is deterministic in its seed parameters; nothing reads
//! global state.

#![warn(missing_docs)]

use proptest::prelude::*;
use psdp_baselines::mixed_exact_threshold;
use psdp_core::{MixedInstance, PackingInstance};
use psdp_parallel::splitmix64;
use psdp_sparse::PsdMatrix;
use psdp_workloads::{
    diagonal_columns, edge_packing_sparse, gnp, mixed_lp_diagonal, random_factorized,
    random_lp_diagonal, RandomFactorized,
};

/// Parameters of the shared random-factorized packing fixture.
///
/// The defaults reproduce the shape most suites used: rank-2 constraints
/// with 3 nonzeros per factor column, unit width, and a 0.5 post-scale
/// (which puts the packing optimum near the decision threshold, so both
/// dual and primal sides get exercised across seeds).
#[derive(Debug, Clone, Copy)]
pub struct FactorizedSpec {
    /// Matrix dimension `m`.
    pub dim: usize,
    /// Constraint count `n`.
    pub n: usize,
    /// Factor rank per constraint.
    pub rank: usize,
    /// Nonzeros per factor column.
    pub nnz_per_col: usize,
    /// Width knob of the generator.
    pub width: f64,
    /// Generator seed.
    pub seed: u64,
    /// Uniform post-scale applied to every constraint.
    pub scale: f64,
}

impl FactorizedSpec {
    /// The default fixture shape at a given size and seed.
    pub fn new(dim: usize, n: usize, seed: u64) -> Self {
        FactorizedSpec { dim, n, rank: 2, nnz_per_col: 3, width: 1.0, seed, scale: 0.5 }
    }

    /// Builder-style width override.
    #[must_use]
    pub fn with_width(mut self, width: f64) -> Self {
        self.width = width;
        self
    }

    /// Builder-style post-scale override (`1.0` = no scaling).
    #[must_use]
    pub fn with_scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }
}

/// Build the deterministic random-factorized packing instance described by
/// `spec`.
///
/// # Panics
/// Panics if the generated matrices fail instance validation (cannot
/// happen for positive sizes).
pub fn factorized_instance(spec: &FactorizedSpec) -> PackingInstance {
    let inst = PackingInstance::new(random_factorized(&RandomFactorized {
        dim: spec.dim,
        n: spec.n,
        rank: spec.rank,
        nnz_per_col: spec.nnz_per_col,
        width: spec.width,
        seed: spec.seed,
    }))
    .expect("random_factorized emits valid instances");
    if spec.scale == 1.0 {
        inst
    } else {
        inst.scaled(spec.scale)
    }
}

/// Proptest strategy over the factorized fixture: `dim ∈ [4, 9)`,
/// `n ∈ [3, 7)`, seeds below 1000, width 1.5, no post-scale (the shape
/// the warm-start property tests always used).
pub fn arb_factorized_instance() -> impl Strategy<Value = PackingInstance> {
    (4usize..9, 3usize..7, 0u64..1000).prop_map(|(dim, n, seed)| {
        factorized_instance(&FactorizedSpec::new(dim, n, seed).with_width(1.5).with_scale(1.0))
    })
}

/// Proptest strategy over sparse instances: CSR edge Laplacians of a
/// `G(v, 1/2)` graph, falling back to a diagonal instance when the
/// sampled graph has no edges.
pub fn arb_sparse_graph_instance() -> impl Strategy<Value = PackingInstance> {
    (6usize..12, 0u64..1000).prop_map(|(v, seed)| {
        let mats: Vec<PsdMatrix> = edge_packing_sparse(&gnp(v, 0.5, seed));
        if mats.is_empty() {
            PackingInstance::new(vec![PsdMatrix::Diagonal(vec![1.0; v])]).expect("valid")
        } else {
            PackingInstance::new(mats).expect("valid instance")
        }
    })
}

/// A random diagonal (positive-LP) packing instance paired with its scalar
/// columns, for cross-validation against the LP baselines.
///
/// # Panics
/// Panics on zero sizes (forwarded from the generator).
pub fn diag_lp_with_columns(
    m: usize,
    n: usize,
    density: f64,
    seed: u64,
) -> (PackingInstance, Vec<Vec<f64>>) {
    let mats = random_lp_diagonal(m, n, density, seed);
    let cols = diagonal_columns(&mats);
    (PackingInstance::new(mats).expect("valid diagonal instance"), cols)
}

/// A diagonal-embedded mixed instance bundled with its scalar columns and
/// the exact simplex threshold `t* = max{t : Px ≤ 1, Cx ≥ t·1}` — the
/// complete input of a mixed differential test case.
#[derive(Debug, Clone)]
pub struct MixedDiagonal {
    /// The mixed SDP instance (diagonal embedding of the columns).
    pub inst: MixedInstance,
    /// Packing columns (`pack_cols[k]` = column `k` of `P`).
    pub pack_cols: Vec<Vec<f64>>,
    /// Covering columns.
    pub cover_cols: Vec<Vec<f64>>,
    /// Exact feasibility threshold from simplex (ground truth).
    pub tstar: f64,
}

/// Build one diagonal mixed differential case from its sizes and seed.
pub fn mixed_diagonal_case(
    mp: usize,
    mc: usize,
    n: usize,
    density: f64,
    seed: u64,
) -> MixedDiagonal {
    let inst = mixed_lp_diagonal(mp, mc, n, density, seed);
    let pack_cols = diagonal_columns(inst.pack().mats());
    let cover_cols = diagonal_columns(inst.cover().mats());
    let tstar = mixed_exact_threshold(&pack_cols, &cover_cols);
    MixedDiagonal { inst, pack_cols, cover_cols, tstar }
}

/// Proptest strategy over [`MixedDiagonal`] cases: `m_P ∈ [3, 7)`,
/// `m_C ∈ [2, 5)`, `n ∈ [3, 7)`, density 0.6, seeds below 1000. Cases
/// with an unbounded coverage direction (`t* = ∞`, every covering column
/// free of packing cost) are filtered out — the approximate solvers
/// detect them as unbounded growth, which is not what these tests probe.
pub fn arb_mixed_diagonal() -> impl Strategy<Value = MixedDiagonal> {
    (3usize..7, 2usize..5, 3usize..7, 0u64..1000)
        .prop_map(|(mp, mc, n, seed)| mixed_diagonal_case(mp, mc, n, 0.6, seed))
        .prop_filter("coverage must be bounded", |case| case.tstar.is_finite())
}

/// A deterministic splitmix64 `u64` stream: each call advances the state
/// and returns the next output. The shared replacement for the ad-hoc
/// LCGs tests used to inline.
pub fn det_stream(seed: u64) -> impl FnMut() -> u64 {
    let mut state = seed;
    move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix64(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorized_fixture_is_deterministic() {
        let spec = FactorizedSpec::new(8, 5, 42);
        let a = factorized_instance(&spec);
        let b = factorized_instance(&spec);
        assert_eq!(a.n(), 5);
        assert_eq!(a.dim(), 8);
        for (x, y) in a.mats().iter().zip(b.mats()) {
            assert_eq!(x.to_dense().as_slice(), y.to_dense().as_slice());
        }
        // Scale is applied.
        let unscaled = factorized_instance(&spec.with_scale(1.0));
        assert!((a.mats()[0].trace() - 0.5 * unscaled.mats()[0].trace()).abs() < 1e-12);
    }

    #[test]
    fn diag_lp_columns_match_instance() {
        let (inst, cols) = diag_lp_with_columns(6, 4, 0.6, 7);
        assert_eq!(cols.len(), inst.n());
        for (m, c) in inst.mats().iter().zip(&cols) {
            assert_eq!(&diagonal_columns(std::slice::from_ref(m))[0], c);
        }
    }

    #[test]
    fn mixed_case_carries_consistent_oracle() {
        let case = mixed_diagonal_case(4, 3, 5, 0.6, 11);
        assert_eq!(case.pack_cols.len(), case.inst.n());
        assert_eq!(case.cover_cols.len(), case.inst.n());
        // The oracle is reproducible.
        let again = mixed_diagonal_case(4, 3, 5, 0.6, 11);
        assert_eq!(case.tstar.to_bits(), again.tstar.to_bits());
    }

    #[test]
    fn det_stream_reproducible_and_spread() {
        let mut a = det_stream(9);
        let mut b = det_stream(9);
        let xs: Vec<u64> = (0..16).map(|_| a()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b()).collect();
        assert_eq!(xs, ys);
        let distinct: std::collections::HashSet<_> = xs.iter().collect();
        assert_eq!(distinct.len(), xs.len());
    }
}
