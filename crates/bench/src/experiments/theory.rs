//! E7 — iteration-complexity comparison (Section 1.1's discussion).
//!
//! Jain–Yao '11 cannot be run (its bound exceeds 10³⁰ iterations at toy
//! sizes — that infeasibility *is* the paper's point), so this table prints
//! the bound formulas side by side with our solver's measured iterations.

use crate::table::{f, Table};
use psdp_core::{DecisionOptions, PackingInstance, Solver};
use psdp_mmw::{jain_yao_iterations, ours_decision_iterations, width_dependent_iterations};
use psdp_workloads::{random_factorized, RandomFactorized};

/// E7 table over a small (n, ε) grid.
pub fn e7_bound_comparison() -> Table {
    let mut t = Table::new(
        "E7: iteration bounds — ours (Thm 3.1) vs JY'11 vs width-dependent MMW (m=n, width=8)",
        &["n", "eps", "ours bound", "ours measured", "JY11 bound", "width-dep bound", "JY11/ours"],
    );
    for &(n, eps) in &[(8usize, 0.3), (16, 0.3), (16, 0.2), (32, 0.2), (64, 0.15)] {
        let mats = random_factorized(&RandomFactorized {
            dim: 10,
            n,
            rank: 2,
            nnz_per_col: 3,
            width: 1.0,
            seed: 13,
        });
        let inst = PackingInstance::new(mats).expect("valid").scaled(0.4);
        let solver =
            Solver::builder(&inst).options(DecisionOptions::practical(eps)).build().expect("build");
        let measured = solver.session().solve(1.0).expect("solve").stats.iterations;
        let ours = ours_decision_iterations(n, eps);
        let jy = jain_yao_iterations(n, n, eps);
        let wd = width_dependent_iterations(8.0, n, eps);
        t.row(vec![
            n.to_string(),
            f(eps),
            f(ours),
            measured.to_string(),
            f(jy),
            f(wd),
            f(jy / ours),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jy_ratio_astronomical() {
        let t = e7_bound_comparison();
        assert_eq!(t.len(), 5);
        for line in t.render().lines().skip(3) {
            let cells: Vec<&str> = line.split_whitespace().collect();
            if cells.len() == 7 {
                let ratio: f64 = cells[6].parse().unwrap();
                assert!(ratio > 1e6, "JY bound should dwarf ours: {line}");
            }
        }
    }
}
