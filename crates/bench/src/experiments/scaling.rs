//! E1 / E2 — iteration-count scaling of `decisionPSDP` under the paper's
//! constants (Theorem 3.1: `R = O(ε⁻³ log² n)`, never exceeded; measured
//! iterations should track the bound's shape).

use crate::table::{f, Table};
use psdp_core::{DecisionOptions, Outcome, PackingInstance, Solver};
use psdp_mmw::ours_decision_iterations;
use psdp_workloads::{random_factorized, RandomFactorized};

/// One strict-constants decision solve through the session API.
fn strict_solve(inst: &PackingInstance, eps: f64) -> psdp_core::DecisionResult {
    let solver =
        Solver::builder(inst).options(DecisionOptions::strict(eps)).build().expect("build");
    solver.session().solve(1.0).expect("solve")
}

/// Build a feasible-side instance (OPT ≈ 2–3) so runs exercise the dual
/// exit, which is the path whose iteration count Theorem 3.1 bounds.
fn instance(n: usize, m: usize, seed: u64) -> PackingInstance {
    let mats = random_factorized(&RandomFactorized {
        dim: m,
        n,
        rank: 2,
        nnz_per_col: 3,
        width: 1.0,
        seed,
    });
    // λmax ≈ 1 each ⇒ OPT ≥ 1; scale down to push OPT up to ≈ 2.5.
    PackingInstance::new(mats).expect("valid instance").scaled(0.4)
}

/// E1: iterations vs `n` at fixed ε, paper-strict constants.
pub fn e1_iterations_vs_n() -> Table {
    let eps = 0.25;
    let m = 10;
    let mut t = Table::new(
        format!("E1: decisionPSDP iterations vs n (paper constants, eps={eps}, m={m})"),
        &["n", "K", "alpha", "R(bound)", "iters", "iters/R", "iters/ln^2(n)", "exit"],
    );
    for &n in &[4usize, 8, 16, 32, 64] {
        let inst = instance(n, m, 42);
        let res = strict_solve(&inst, eps);
        let bound = ours_decision_iterations(n, eps);
        let ln2 = (n as f64).ln().powi(2).max(1e-9);
        let exit = match res.outcome {
            Outcome::Dual(_) => "dual",
            Outcome::Primal(_) => "primal",
        };
        t.row(vec![
            n.to_string(),
            f(res.stats.k_threshold),
            f(res.stats.alpha),
            f(bound),
            res.stats.iterations.to_string(),
            f(res.stats.iterations as f64 / bound),
            f(res.stats.iterations as f64 / ln2),
            exit.into(),
        ]);
    }
    t
}

/// E2: iterations vs ε at fixed `n`, paper-strict constants.
pub fn e2_iterations_vs_eps() -> Table {
    let n = 16;
    let m = 10;
    let mut t = Table::new(
        format!("E2: decisionPSDP iterations vs eps (paper constants, n={n}, m={m})"),
        &["eps", "R(bound)", "iters", "iters/R", "iters*eps^2", "exit"],
    );
    for &eps in &[0.5, 0.4, 0.3, 0.25, 0.2] {
        let inst = instance(n, m, 7);
        let res = strict_solve(&inst, eps);
        let bound = ours_decision_iterations(n, eps);
        let exit = match res.outcome {
            Outcome::Dual(_) => "dual",
            Outcome::Primal(_) => "primal",
        };
        t.row(vec![
            f(eps),
            f(bound),
            res.stats.iterations.to_string(),
            f(res.stats.iterations as f64 / bound),
            f(res.stats.iterations as f64 * eps * eps),
            exit.into(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_produces_rows_within_bound() {
        let t = e1_iterations_vs_n();
        assert_eq!(t.len(), 5);
        // The rendered iters/R column must never exceed 1 (Theorem 3.1).
        for line in t.render().lines().skip(3) {
            let cells: Vec<&str> = line.split_whitespace().collect();
            if cells.len() >= 6 {
                let ratio: f64 = cells[5].parse().unwrap_or(0.0);
                assert!(ratio <= 1.0 + 1e-9, "iterations exceeded R: {line}");
            }
        }
    }

    #[test]
    fn e2_produces_rows() {
        let t = e2_iterations_vs_eps();
        assert_eq!(t.len(), 5);
    }
}
