//! Experiment runners — one per row of the DESIGN.md experiment index.
//!
//! Each function returns a [`crate::table::Table`]; the `experiments` binary
//! renders them and EXPERIMENTS.md records the output.

pub mod ablation;
pub mod expdot;
pub mod mixed;
pub mod parallel;
pub mod quality;
pub mod scaling;
pub mod theory;
pub mod warmstart;
pub mod width;

use crate::table::Table;

/// All experiment ids understood by [`run`].
pub const ALL_IDS: &[&str] =
    &["e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12"];

/// Run one experiment by id and return its table(s).
///
/// # Panics
/// Panics on an unknown id (callers validate against [`ALL_IDS`]).
pub fn run(id: &str) -> Vec<Table> {
    match id {
        "e1" => vec![scaling::e1_iterations_vs_n()],
        "e2" => vec![scaling::e2_iterations_vs_eps()],
        "e3" => vec![width::e3_width_independence()],
        "e4" => vec![expdot::e4_engine_accuracy()],
        "e5" => vec![expdot::e5_work_scaling()],
        "e6" => vec![parallel::e6_thread_scaling()],
        "e7" => vec![theory::e7_bound_comparison()],
        "e8" => vec![quality::e8_approximation_quality()],
        "e9" => vec![quality::e9_figure1()],
        "e10" => vec![ablation::e10_engines(), ablation::e10_rules(), ablation::e10_alpha()],
        "e11" => vec![warmstart::e11_warmstart()],
        "e12" => vec![mixed::e12_mixed()],
        other => panic!("unknown experiment id: {other} (known: {ALL_IDS:?})"),
    }
}
