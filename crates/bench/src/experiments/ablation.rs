//! E10 — ablations over the solver's degrees of freedom: engine, update
//! rule, and step-size boost. All variants run the same instance; outputs
//! are certificate-checked so speed/quality trade-offs are visible.

use crate::table::{f, Table};
use psdp_core::{
    verify_dual, verify_primal, ConstantsMode, DecisionOptions, EngineKind, Outcome,
    PackingInstance, Solver, UpdateRule,
};
use psdp_workloads::{random_factorized, RandomFactorized};

fn instance() -> PackingInstance {
    let mats = random_factorized(&RandomFactorized {
        dim: 14,
        n: 10,
        rank: 2,
        nnz_per_col: 4,
        width: 2.0,
        seed: 31,
    });
    PackingInstance::new(mats).expect("valid").scaled(0.4)
}

fn run_row(t: &mut Table, label: &str, inst: &PackingInstance, opts: &DecisionOptions) {
    let solver = Solver::builder(inst).options(*opts).build().expect("build");
    let res = solver.session().solve(1.0).expect("solve");
    let (side, value, certified) = match &res.outcome {
        Outcome::Dual(d) => {
            let c = verify_dual(inst, d, 1e-7);
            ("dual", d.value, c.feasible)
        }
        Outcome::Primal(p) => {
            let c = verify_primal(inst, p, 1e-4);
            ("primal", p.min_dot, c.feasible)
        }
    };
    t.row(vec![
        label.into(),
        res.stats.iterations.to_string(),
        side.into(),
        f(value),
        f(res.stats.wall.as_secs_f64() * 1e3),
        f(res.stats.avg_selected),
        certified.to_string(),
    ]);
}

/// E10a: engine ablation (exact vs Taylor vs Taylor+JL).
pub fn e10_engines() -> Table {
    let inst = instance();
    let eps = 0.2;
    let mut t = Table::new(
        format!("E10a: engine ablation (eps={eps}, m=14, n=10)"),
        &["engine", "iters", "side", "value", "wall(ms)", "avg |B|", "certified"],
    );
    for (label, engine) in [
        ("exact", EngineKind::Exact),
        ("taylor", EngineKind::Taylor { eps: 0.1 }),
        ("taylor+jl", EngineKind::TaylorJl { eps: 0.2, sketch_const: 4.0 }),
    ] {
        let opts = DecisionOptions::practical(eps).with_engine(engine).with_seed(5);
        run_row(&mut t, label, &inst, &opts);
    }
    t
}

/// E10b: update-rule ablation (standard vs bucketed vs top-k vs stale).
pub fn e10_rules() -> Table {
    let inst = instance();
    let eps = 0.2;
    let mut t = Table::new(
        format!("E10b: update-rule ablation (eps={eps}, exact engine)"),
        &["rule", "iters", "side", "value", "wall(ms)", "avg |B|", "certified"],
    );
    for (label, rule) in [
        ("standard", UpdateRule::Standard),
        ("bucketed(4x)", UpdateRule::Bucketed { boost: 4.0 }),
        ("top-1", UpdateRule::TopK { k: 1 }),
        ("top-3", UpdateRule::TopK { k: 3 }),
        ("stale(8)", UpdateRule::Stale { period: 8 }),
    ] {
        let opts = DecisionOptions::practical(eps).with_rule(rule);
        run_row(&mut t, label, &inst, &opts);
    }
    t
}

/// E10c: step-size (α boost) sensitivity.
pub fn e10_alpha() -> Table {
    let inst = instance();
    let eps = 0.2;
    let mut t = Table::new(
        format!("E10c: alpha-boost sensitivity (eps={eps}, exact engine)"),
        &["alpha boost", "iters", "side", "value", "wall(ms)", "avg |B|", "certified"],
    );
    for boost in [1.0, 4.0, 16.0, 64.0] {
        let mut opts = DecisionOptions::practical(eps);
        opts.mode = ConstantsMode::Practical { alpha_boost: boost, max_iters: 100_000 };
        run_row(&mut t, &format!("{boost}x"), &inst, &opts);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_certified(t: &Table) {
        for line in t.render().lines().skip(3) {
            assert!(line.trim_end().ends_with("true"), "uncertified ablation row: {line}");
        }
    }

    #[test]
    fn engines_all_certified() {
        all_certified(&e10_engines());
    }

    #[test]
    fn rules_all_certified() {
        all_certified(&e10_rules());
    }

    #[test]
    fn alpha_monotone_iterations() {
        let t = e10_alpha();
        all_certified(&t);
        // Bigger steps ⇒ fewer iterations (on this feasible instance).
        let iters: Vec<f64> = t
            .render()
            .lines()
            .skip(3)
            .filter_map(|l| l.split_whitespace().nth(1).and_then(|c| c.parse().ok()))
            .collect();
        assert!(iters.first().unwrap() > iters.last().unwrap(), "{iters:?}");
    }
}
