//! E4 / E5 — the `exp(Φ)•A` primitive: accuracy (Lemma 4.2 / Theorem 4.1)
//! and near-linear work scaling (Corollary 1.2).

use crate::table::{f, Table};
use psdp_expdot::{exp_dot_exact, Engine, EngineKind};
use psdp_linalg::{sym_eigen, Mat};
use psdp_workloads::{edge_packing, gnp, random_factorized, RandomFactorized};

/// Random PSD `Φ` with `‖Φ‖₂ = kappa` exactly (rescaled spectrum).
fn phi_with_norm(m: usize, kappa: f64, seed: u64) -> Mat {
    let mats = random_factorized(&RandomFactorized {
        dim: m,
        n: 3,
        rank: 3,
        nnz_per_col: m / 2,
        width: 1.0,
        seed,
    });
    let mut phi = Mat::zeros(m, m);
    for a in &mats {
        a.add_scaled_into(&mut phi, 0.7);
    }
    phi.symmetrize();
    let lam = sym_eigen(&phi).expect("eigen").lambda_max().max(1e-12);
    phi.scale(kappa / lam);
    phi
}

/// E4: engine accuracy vs κ. For each κ, the worst relative error of each
/// approximate engine against the exact one, plus degree/sketch telemetry.
pub fn e4_engine_accuracy() -> Table {
    let m = 12;
    let eps_taylor = 0.1;
    let eps_jl = 0.25;
    let mut t = Table::new(
        format!(
            "E4: exp(Phi).A accuracy vs kappa (m={m}; taylor eps={eps_taylor}, jl eps={eps_jl})"
        ),
        &["kappa", "taylor deg", "taylor max-err", "jl rows", "jl max-err", "jl deg"],
    );
    let mats = random_factorized(&RandomFactorized {
        dim: m,
        n: 5,
        rank: 2,
        nnz_per_col: 4,
        width: 1.0,
        seed: 3,
    });
    let taylor = Engine::new(EngineKind::Taylor { eps: eps_taylor }, &mats, 0).expect("engine");
    let jl = Engine::new(EngineKind::TaylorJl { eps: eps_jl, sketch_const: 4.0 }, &mats, 99)
        .expect("engine");

    for &kappa in &[1.0, 2.0, 4.0, 8.0, 16.0] {
        let phi = phi_with_norm(m, kappa, 17);
        let exact: Vec<f64> = mats.iter().map(|a| exp_dot_exact(&phi, a).expect("exact")).collect();
        let ty = taylor.compute(&phi, kappa, &mats, 1).expect("taylor");
        let jy = jl.compute(&phi, kappa, &mats, 1).expect("jl");
        let max_err = |got: &[f64]| -> f64 {
            got.iter()
                .zip(&exact)
                .map(|(g, e)| (g - e).abs() / e.abs().max(1e-300))
                .fold(0.0_f64, f64::max)
        };
        t.row(vec![
            f(kappa),
            ty.degree.to_string(),
            f(max_err(&ty.dots)),
            jy.sketch_rows.to_string(),
            f(max_err(&jy.dots)),
            jy.degree.to_string(),
        ]);
    }
    t
}

/// E5: analytic work of one sketched evaluation vs factorization size `q`
/// (edge-Laplacian instances over growing random graphs; `Φ` is the sparse
/// graph Laplacian so `nnz(Φ) = Θ(q)`). Inside Algorithm 3.1, Lemma 3.2
/// pins `‖Φ‖₂ ≤ O(ε⁻¹ log n)` *independent of the instance*, so the
/// experiment normalizes each Laplacian to the same spectral norm before
/// measuring — then `work/q` must flatten, which is the nearly-linear-work
/// claim of Theorem 4.1 / Corollary 1.2.
pub fn e5_work_scaling() -> Table {
    let n_vertices = 48;
    let eps = 0.3;
    let kappa = 8.0; // stands in for the Lemma 3.2 bound (fixed across sizes)
    let mut t = Table::new(
        format!(
            "E5: near-linear work in q (TaylorJl engine, |V|={n_vertices}, eps={eps}, \
             ||Phi|| normalized to {kappa})"
        ),
        &["edges", "q", "nnz(Phi)", "work", "work/q", "depth"],
    );
    for &p in &[0.05, 0.1, 0.2, 0.4, 0.8] {
        let g = gnp(n_vertices, p, 5);
        if g.m() == 0 {
            continue;
        }
        let mats = edge_packing(&g);
        let inst_q: usize = mats.iter().map(|a| a.storage_nnz()).sum();
        let mut lap = g.laplacian();
        // Normalize ‖Φ‖₂ to κ using the certified Laplacian bound
        // λmax ≤ 2·max weighted degree.
        let deg_bound = 2.0
            * (0..n_vertices)
                .map(|v| lap.row_iter(v).map(|(_, w)| w.abs()).sum::<f64>())
                .fold(0.0_f64, f64::max);
        lap.scale(kappa / deg_bound.max(1e-12));
        let engine =
            Engine::new(EngineKind::TaylorJl { eps, sketch_const: 2.0 }, &mats, 7).expect("engine");
        let out = engine.compute_op(&lap, kappa, 1);
        t.row(vec![
            g.m().to_string(),
            inst_q.to_string(),
            psdp_linalg::SymOp::nnz(&lap).to_string(),
            f(out.cost.work),
            f(out.cost.work / inst_q as f64),
            f(out.cost.depth),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e4_taylor_errors_within_eps() {
        let t = e4_engine_accuracy();
        assert_eq!(t.len(), 5);
        for line in t.render().lines().skip(3) {
            let cells: Vec<&str> = line.split_whitespace().collect();
            if cells.len() == 6 {
                let taylor_err: f64 = cells[2].parse().unwrap_or(1.0);
                assert!(taylor_err <= 0.1 + 1e-9, "taylor error too big: {line}");
            }
        }
    }

    #[test]
    fn e5_work_per_q_flattens() {
        let t = e5_work_scaling();
        assert!(t.len() >= 4);
        // Extract work/q column; the largest instance's ratio must be within
        // 4x of the smallest's (log factors allowed, not polynomial growth),
        // while q itself grows by >10x.
        let mut qs = Vec::new();
        let mut ratios = Vec::new();
        for line in t.render().lines().skip(3) {
            let cells: Vec<&str> = line.split_whitespace().collect();
            if cells.len() == 6 {
                qs.push(cells[1].parse::<f64>().unwrap());
                ratios.push(cells[4].parse::<f64>().unwrap());
            }
        }
        let qr = qs.last().unwrap() / qs.first().unwrap();
        assert!(qr > 8.0, "q range too small: {qr}");
        let rr = ratios.last().unwrap() / ratios.first().unwrap();
        assert!(rr < 4.0, "work/q grew {rr}x over a {qr}x q range");
    }
}
