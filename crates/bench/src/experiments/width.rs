//! E3 — width-independence: the title claim.
//!
//! Our solver's iteration count must stay (near-)flat as the instance width
//! `ρ = maxᵢ λmax(Aᵢ)` grows, while the width-dependent MMW baseline's
//! schedule (and measured iterations) grows with `ρ`.

use crate::table::{f, Table};
use psdp_baselines::{ak_decision, AkOutcome};
use psdp_core::{DecisionOptions, Outcome, PackingInstance, Solver};
use psdp_mmw::width_dependent_iterations;
use psdp_workloads::{random_factorized, RandomFactorized};

/// One practical-constants decision solve through the session API.
fn practical_solve(inst: &PackingInstance, eps: f64) -> psdp_core::DecisionResult {
    let solver =
        Solver::builder(inst).options(DecisionOptions::practical(eps)).build().expect("build");
    solver.session().solve(1.0).expect("solve")
}

/// Instance with a dialed width: constraint 0 inflated `width×`.
fn instance(width: f64, seed: u64) -> PackingInstance {
    let mats = random_factorized(&RandomFactorized {
        dim: 10,
        n: 6,
        rank: 2,
        nnz_per_col: 3,
        width,
        seed,
    });
    PackingInstance::new(mats).expect("valid").scaled(0.4)
}

/// E3 table: ours vs width-dependent baseline across widths.
pub fn e3_width_independence() -> Table {
    let eps = 0.25;
    let mut t = Table::new(
        format!("E3: width-independence (eps={eps}, m=10, n=6; ours practical+exact engine)"),
        &["width", "ours iters", "ours value", "AK iters", "AK budget", "AK bound(formula)"],
    );
    for &w in &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0] {
        let inst = instance(w, 11);
        let ours = practical_solve(&inst, eps);
        let ours_val = match &ours.outcome {
            Outcome::Dual(d) => d.value,
            Outcome::Primal(p) => 1.0 / p.min_dot.max(1e-12),
        };
        let ak = ak_decision(&inst, eps, 400_000).expect("ak");
        let ak_iters = ak.iterations;
        let _ = match ak.outcome {
            AkOutcome::Dual { value, .. } => value,
            AkOutcome::Primal { .. } => f64::NAN,
        };
        t.row(vec![
            f(w),
            ours.stats.iterations.to_string(),
            f(ours_val),
            ak_iters.to_string(),
            ak.budget.to_string(),
            f(width_dependent_iterations(w.max(1.0), 10, eps)),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ours_flat_baseline_grows() {
        let eps = 0.3;
        let narrow = instance(1.0, 5);
        let wide = instance(16.0, 5);
        let ours_n = practical_solve(&narrow, eps);
        let ours_w = practical_solve(&wide, eps);
        let ak_n = ak_decision(&narrow, eps, usize::MAX).unwrap();
        let ak_w = ak_decision(&wide, eps, usize::MAX).unwrap();
        // Baseline schedule must grow ~linearly with width…
        assert!(
            ak_w.budget as f64 >= 8.0 * ak_n.budget as f64,
            "AK budget did not grow: {} vs {}",
            ak_w.budget,
            ak_n.budget
        );
        // …while ours grows far slower than the width ratio (16×).
        let ours_ratio = ours_w.stats.iterations as f64 / ours_n.stats.iterations.max(1) as f64;
        assert!(ours_ratio < 4.0, "ours grew {ours_ratio}× on 16× width");
    }
}
