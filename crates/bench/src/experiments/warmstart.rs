//! E11 — cold vs warm bisection: cross-bracket iterate continuation.
//!
//! The session API prepares the engine once per instance and warm-starts
//! each bisection bracket from the previous bracket's final iterate,
//! rescaled to the new threshold (see `psdp_core::solver`). Bracket moves
//! are driven by quantized *strong* certificates (dual value ≥ 1 / primal
//! min-dot ≥ 1), with weak warm outcomes discarded in favor of a cold
//! re-run — which is what keeps the certified brackets bitwise-identical
//! between warm and cold runs whenever both paths resolve each threshold
//! to the same strong side (see `psdp_core::solver` for the exact
//! statement and its knife-edge caveat). This experiment measures both
//! properties on
//! the E8 quality families in the serving configuration (no dense-`Y`
//! accumulation): identical brackets, and substantially fewer total
//! iterations (the cold path must ramp `‖x‖₁` from `‖x⁰‖₁ ≪ 1` up to `K`
//! inside every bracket).

use crate::table::{f, Table};
use psdp_core::{ApproxOptions, PackingInstance, PackingReport, Solver};
use psdp_workloads::{commuting_family, edge_packing, gnp, random_lp_diagonal};

/// Run the session bisection with warm starts on or off.
fn bisect(inst: &PackingInstance, opts: &ApproxOptions, warm: bool) -> PackingReport {
    let solver = Solver::builder(inst).options(opts.decision).build().expect("build");
    let mut session = solver.session().with_warm_start(warm);
    session.optimize(opts).expect("solve")
}

/// The instance families E11 sweeps (the E8 quality families).
pub fn e11_instances() -> Vec<(String, PackingInstance)> {
    let mut instances: Vec<(String, PackingInstance)> = Vec::new();
    for seed in [1u64, 2, 3] {
        instances.push((
            format!("diagonal(s{seed})"),
            PackingInstance::new(random_lp_diagonal(8, 6, 0.6, seed)).expect("valid"),
        ));
    }
    for seed in [5u64, 6] {
        instances.push((
            format!("commuting(s{seed})"),
            PackingInstance::new(commuting_family(8, 5, 0.3, seed).mats).expect("valid"),
        ));
    }
    instances.push((
        "edge_packing(gnp)".into(),
        PackingInstance::new(edge_packing(&gnp(12, 0.4, 7))).expect("valid"),
    ));
    instances
}

/// E11 table: per instance, cold vs warm total work and bracket identity.
pub fn e11_warmstart() -> Table {
    let eps = 0.1;
    let opts = ApproxOptions::serving(eps);
    let mut t = Table::new(
        format!("E11: cold vs warm bisection (eps={eps}, serving config: no dense-Y accumulation)"),
        &[
            "family",
            "calls",
            "cold iters",
            "warm iters",
            "iters saved",
            "cold evals",
            "warm evals",
            "bracket bitwise equal",
        ],
    );

    for (name, inst) in &e11_instances() {
        let cold = bisect(inst, &opts, false);
        let warm = bisect(inst, &opts, true);
        let identical = cold.value_lower.to_bits() == warm.value_lower.to_bits()
            && cold.value_upper.to_bits() == warm.value_upper.to_bits()
            && cold.decision_calls == warm.decision_calls
            && cold.converged == warm.converged;
        t.row(vec![
            name.clone(),
            warm.decision_calls.to_string(),
            cold.total_iterations.to_string(),
            warm.total_iterations.to_string(),
            f(1.0 - warm.total_iterations as f64 / cold.total_iterations.max(1) as f64),
            cold.total_engine_evals.to_string(),
            warm.total_engine_evals.to_string(),
            identical.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance criteria of the warm-start design, checked end to
    /// end: bitwise-identical certified brackets, and measurably fewer
    /// total iterations than cold start across the families.
    #[test]
    fn e11_brackets_identical_and_work_saved() {
        let t = e11_warmstart();
        assert!(t.len() >= 6);
        let mut cold_total = 0usize;
        let mut warm_total = 0usize;
        for line in t.render().lines().skip(3) {
            assert!(line.trim_end().ends_with("true"), "warm/cold diverged: {line}");
            let cells: Vec<&str> = line.split_whitespace().collect();
            let cold: usize = cells[cells.len() - 6].parse().unwrap();
            let warm: usize = cells[cells.len() - 5].parse().unwrap();
            cold_total += cold;
            warm_total += warm;
        }
        assert!(
            (warm_total as f64) < 0.8 * cold_total as f64,
            "warm start saved too little: {warm_total} vs {cold_total}"
        );
    }
}
