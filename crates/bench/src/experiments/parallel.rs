//! E6 — thread-scaling of the solver's parallel kernels.
//!
//! The paper's claim is an NC depth bound; the practical proxy on a fixed
//! machine is wall-clock speedup of the identical solve as rayon threads
//! grow. We fix the iteration count (no early exit, fixed cap) so every
//! configuration does identical numerical work.

use crate::table::{f, Table};
use psdp_core::{ConstantsMode, DecisionOptions, EngineKind, PackingInstance, Solver};
use psdp_parallel::{available_threads, run_with_threads};
use psdp_workloads::{random_factorized, RandomFactorized};
use std::time::Instant;

/// Fixed workload: moderately large dense-ish instance, Taylor engine
/// (GEMM-heavy ⇒ parallelizable), exactly `iters` iterations.
fn run_once(threads: usize, m: usize, n: usize, iters: usize) -> f64 {
    let mats = random_factorized(&RandomFactorized {
        dim: m,
        n,
        rank: 4,
        nnz_per_col: m / 2,
        width: 1.0,
        seed: 21,
    });
    let inst = PackingInstance::new(mats).expect("valid").scaled(0.4);
    let mut opts = DecisionOptions::practical(0.25).with_engine(EngineKind::Taylor { eps: 0.2 });
    opts.mode = ConstantsMode::Practical { alpha_boost: 1.0, max_iters: iters };
    opts.early_exit = false;
    opts.primal_matrix_dim_limit = 0;
    run_with_threads(threads, move || {
        let t0 = Instant::now();
        let solver = Solver::builder(&inst).options(opts).build().expect("build");
        let _ = solver.session().solve(1.0).expect("solve");
        t0.elapsed().as_secs_f64()
    })
}

/// E6 table: wall time and speedup vs thread count. The sweep stops at the
/// machine's logical core count (oversubscription only adds noise).
pub fn e6_thread_scaling() -> Table {
    let (m, n, iters) = (192, 10, 8);
    let mut t = Table::new(
        format!("E6: thread scaling (m={m}, n={n}, {iters} fixed iterations, Taylor engine)"),
        &["threads", "wall (s)", "speedup", "efficiency"],
    );
    let avail = available_threads();
    let mut base = f64::NAN;
    for &threads in &[1usize, 2, 4, 8] {
        if threads > avail.max(1) {
            break;
        }
        // Warm-up + best-of-2 to damp scheduler noise.
        let _ = run_once(threads, m, n, 2);
        let w = run_once(threads, m, n, iters).min(run_once(threads, m, n, iters));
        if threads == 1 {
            base = w;
        }
        let speedup = base / w;
        t.row(vec![threads.to_string(), f(w), f(speedup), f(speedup / threads as f64)]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_and_is_positive() {
        // Tiny smoke version: just check the harness runs at 1 and 2 threads.
        let w1 = run_once(1, 32, 6, 3);
        let w2 = run_once(2, 32, 6, 3);
        assert!(w1 > 0.0 && w2 > 0.0);
    }
}
