//! E12 — mixed packing–covering solver (Jain–Yao on the Session core).
//!
//! Two claims, one table:
//!
//! * **Agreement** — on diagonal-embedded mixed LPs the mixed SDP solver's
//!   certified threshold bracket must contain the exact simplex threshold
//!   `t* = max{t : Px ≤ 1, Cx ≥ t·1}` (`psdp_baselines::mixed_exact_threshold`),
//!   and its σ=1 feasibility verdict must agree with the scalar Young
//!   solver wherever `t*` is comfortably away from 1.
//! * **Certification** — every bracket end is backed by a re-verified
//!   witness: a measured feasible point for the lower end, a pricing
//!   certificate for the upper end (`psdp_core::verify`).
//!
//! The graph rows run the sparse edge-cover family (no scalar oracle
//! there; the certificates carry the evidence).

use crate::table::{f, Table};
use psdp_baselines::mixed_exact_threshold;
use psdp_core::{
    solve_mixed, verify_mixed_feasible, verify_mixed_infeasible, MixedApproxOptions, MixedInstance,
};
use psdp_workloads::{diagonal_columns, gnp, mixed_edge_cover, mixed_lp_diagonal};

/// The instance families E12 sweeps.
pub fn e12_instances() -> Vec<(String, MixedInstance, Option<f64>)> {
    let mut out = Vec::new();
    for seed in [1u64, 2, 3, 4] {
        let inst = mixed_lp_diagonal(6, 4, 5, 0.6, seed);
        let tstar = mixed_exact_threshold(
            &diagonal_columns(inst.pack().mats()),
            &diagonal_columns(inst.cover().mats()),
        );
        out.push((format!("mixed-lp(s{seed})"), inst, Some(tstar)));
    }
    for (seed, ridge) in [(2u64, 0.5), (7, 0.25)] {
        let g = gnp(10, 0.5, seed);
        out.push((format!("edge-cover(s{seed},r{ridge})"), mixed_edge_cover(&g, ridge), None));
    }
    out
}

/// E12 table: certified bracket vs the exact threshold, with verification
/// flags.
pub fn e12_mixed() -> Table {
    let eps = 0.1;
    let opts = MixedApproxOptions::practical(eps);
    let mut t = Table::new(
        format!("E12: mixed packing-covering solver (eps={eps}, diagonal rows vs simplex t*)"),
        &["family", "n", "t*", "lo", "hi", "calls", "iters", "lo cert", "hi cert"],
    );
    for (name, inst, tstar) in e12_instances() {
        let r = solve_mixed(&inst, &opts).expect("solve");
        if let Some(ts) = tstar {
            assert!(
                r.threshold_lower <= ts * (1.0 + 1e-6) + 1e-9,
                "{name}: certified lower bound {} exceeds exact t* {ts}",
                r.threshold_lower
            );
            assert!(
                r.threshold_upper >= ts * (1.0 - 1e-6) - 1e-9,
                "{name}: certified upper bound {} undercuts exact t* {ts}",
                r.threshold_upper
            );
        }
        let lo_ok = r.best_point.as_ref().map(|p| {
            verify_mixed_feasible(&inst, p, r.threshold_lower * (1.0 - 1e-9), 1e-7).feasible
        });
        let hi_ok =
            r.infeasibility_witness.as_ref().map(|c| verify_mixed_infeasible(&inst, c, 1e-7).valid);
        t.row(vec![
            name,
            format!("{}", inst.n()),
            tstar.map_or_else(|| "-".into(), f),
            f(r.threshold_lower),
            f(r.threshold_upper),
            format!("{}", r.decision_calls),
            format!("{}", r.total_iterations),
            lo_ok.map_or_else(|| "-".into(), |b| b.to_string()),
            hi_ok.map_or_else(|| "-".into(), |b| b.to_string()),
        ]);
    }
    t
}
