//! E8 / E9 — end-to-end `(1+ε)` approximation quality (Theorem 1.1) and the
//! Figure 1 reproduction.

use crate::table::{f, Table};
use psdp_baselines::{
    exact_commuting_opt, exact_diagonal_opt, exact_small_opt, young_packing_lp, LpResult,
};
use psdp_core::{solve_covering, ApproxOptions, PackingInstance, PackingReport, Solver};
use psdp_workloads::{
    beamforming_sdp, commuting_family, diagonal_columns, figure1_instance, random_lp_diagonal,
    Beamforming,
};

/// Session-based bisection: engine prepared once, brackets warm-started
/// (`Session::optimize` consults `opts.warm_start`).
fn optimize(inst: &PackingInstance, opts: &ApproxOptions) -> PackingReport {
    let solver = Solver::builder(inst).options(opts.decision).build().expect("build");
    solver.session().optimize(opts).expect("solve")
}

/// E8: `approxPSDP` vs exact references across instance families.
pub fn e8_approximation_quality() -> Table {
    let eps = 0.1;
    let mut t = Table::new(
        format!("E8: approxPSDP value bracket vs exact optimum (eps={eps})"),
        &["family", "n", "m", "exact OPT", "lower", "upper", "upper/lower", "calls", "ok"],
    );
    let opts = ApproxOptions::practical(eps);

    // Diagonal (positive LP) instances, exact by simplex.
    for seed in [1u64, 2, 3] {
        let mats = random_lp_diagonal(8, 6, 0.6, seed);
        let inst = PackingInstance::new(mats).expect("valid");
        let exact = exact_diagonal_opt(&inst).expect("simplex");
        let r = optimize(&inst, &opts);
        let ok = r.value_lower <= exact * (1.0 + 1e-9)
            && r.value_upper >= exact * (1.0 - 1e-9)
            && r.value_upper / r.value_lower <= 1.0 + 2.0 * eps;
        t.row(vec![
            format!("diagonal(s{seed})"),
            "6".into(),
            "8".into(),
            f(exact),
            f(r.value_lower),
            f(r.value_upper),
            f(r.value_upper / r.value_lower),
            r.decision_calls.to_string(),
            ok.to_string(),
        ]);
    }

    // Commuting families, exact via eigenbasis LP.
    for seed in [5u64, 6] {
        let fam = commuting_family(8, 5, 0.3, seed);
        let inst = PackingInstance::new(fam.mats.clone()).expect("valid");
        let exact = exact_commuting_opt(&inst, &fam.u).expect("rotated LP");
        let r = optimize(&inst, &opts);
        let ok = r.value_lower <= exact * (1.0 + 1e-9)
            && r.value_upper >= exact * (1.0 - 1e-9)
            && r.value_upper / r.value_lower <= 1.0 + 2.0 * eps;
        t.row(vec![
            format!("commuting(s{seed})"),
            "5".into(),
            "8".into(),
            f(exact),
            f(r.value_lower),
            f(r.value_upper),
            f(r.value_upper / r.value_lower),
            r.decision_calls.to_string(),
            ok.to_string(),
        ]);
    }

    // Two general dense constraints, near-exact geometric reference.
    {
        let fam = commuting_family(6, 2, 0.0, 9);
        // Perturb to break commutativity? No — use as-is through the
        // geometric n=2 method, which handles any pair.
        let inst = PackingInstance::new(fam.mats.clone()).expect("valid");
        let exact = exact_small_opt(&inst).expect("geometric");
        let r = optimize(&inst, &opts);
        let ok = r.value_lower <= exact * (1.0 + 1e-6) && r.value_upper >= exact * (1.0 - 1e-6);
        t.row(vec![
            "pair(n=2)".into(),
            "2".into(),
            "6".into(),
            f(exact),
            f(r.value_lower),
            f(r.value_upper),
            f(r.value_upper / r.value_lower),
            r.decision_calls.to_string(),
            ok.to_string(),
        ]);
    }

    // Beamforming covering SDP: no exact reference — report the certified
    // bracket and the O(log n) call count (Lemma 2.2's shape).
    {
        let sdp = beamforming_sdp(&Beamforming::default());
        let r = solve_covering(&sdp, &opts).expect("solve");
        let ok = r.value_upper / r.value_lower <= 1.0 + 2.0 * eps;
        t.row(vec![
            "beamforming".into(),
            sdp.num_constraints().to_string(),
            sdp.dim().to_string(),
            "n/a".into(),
            f(r.value_lower),
            f(r.value_upper),
            f(r.value_upper / r.value_lower),
            r.packing.decision_calls.to_string(),
            ok.to_string(),
        ]);
    }
    t
}

/// E9: the Figure 1 ellipse-packing instance, plus the axis-aligned
/// subinstance cross-checked against the LP machinery (the paper's point:
/// axis-aligned ellipses *are* positive LPs).
pub fn e9_figure1() -> Table {
    let eps = 0.1;
    let opts = ApproxOptions::practical(eps);
    let mut t = Table::new(
        "E9: Figure 1 ellipse packing (A1, A2 axis-aligned; A3 rotated)",
        &["instance", "lower", "upper", "reference", "ref value", "agree"],
    );

    // Axis-aligned subinstance {A1, A2}: a positive LP three ways.
    let fig = figure1_instance();
    let axis = PackingInstance::new(vec![fig[0].clone(), fig[1].clone()]).expect("valid");
    let r_axis = optimize(&axis, &opts);
    let cols = diagonal_columns(&[fig[0].clone(), fig[1].clone()]);
    let lp_exact = match psdp_baselines::packing_lp_opt(&cols) {
        LpResult::Optimal { value, .. } => value,
        LpResult::Unbounded => f64::INFINITY,
    };
    let young = young_packing_lp(&cols, eps, 400_000);
    let agree = r_axis.value_lower <= lp_exact * (1.0 + 1e-9)
        && r_axis.value_upper >= lp_exact * (1.0 - 1e-9)
        && young.value >= lp_exact * (1.0 - 3.0 * eps);
    t.row(vec![
        "{A1,A2} (LP case)".into(),
        f(r_axis.value_lower),
        f(r_axis.value_upper),
        "simplex".into(),
        f(lp_exact),
        agree.to_string(),
    ]);
    t.row(vec![
        "{A1,A2} via Young LP".into(),
        f(young.value),
        f(young.upper),
        "simplex".into(),
        f(lp_exact),
        (young.value >= lp_exact * (1.0 - 3.0 * eps)).to_string(),
    ]);

    // Full three-ellipse instance (the genuinely-SDP case).
    let full = PackingInstance::new(fig).expect("valid");
    let r_full = optimize(&full, &opts);
    // Sanity reference: adding A3 can only shrink the optimum.
    let agree_full = r_full.value_upper <= r_axis.value_upper * (1.0 + 1e-9);
    t.row(vec![
        "{A1,A2,A3} (SDP)".into(),
        f(r_full.value_lower),
        f(r_full.value_upper),
        "≤ OPT(A1,A2)".into(),
        f(r_axis.value_upper),
        agree_full.to_string(),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e8_all_rows_ok() {
        let t = e8_approximation_quality();
        assert!(t.len() >= 6);
        let rendered = t.render();
        for line in rendered.lines().skip(3) {
            assert!(line.trim_end().ends_with("true"), "E8 row failed its certificate: {line}");
        }
    }

    #[test]
    fn e9_all_rows_agree() {
        let t = e9_figure1();
        assert_eq!(t.len(), 3);
        for line in t.render().lines().skip(3) {
            assert!(line.trim_end().ends_with("true"), "E9 row disagreed: {line}");
        }
    }
}
