//! Experiment harness binary.
//!
//! ```text
//! cargo run -p psdp-bench --release --bin experiments            # run all
//! cargo run -p psdp-bench --release --bin experiments -- e3 e8  # run some
//! ```

use psdp_bench::experiments::{run, ALL_IDS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ids: Vec<&str> =
        if args.is_empty() { ALL_IDS.to_vec() } else { args.iter().map(|s| s.as_str()).collect() };
    for id in ids {
        if !ALL_IDS.contains(&id) {
            eprintln!("unknown experiment id {id}; known: {ALL_IDS:?}");
            std::process::exit(2);
        }
        let t0 = std::time::Instant::now();
        for table in run(id) {
            println!("{}", table.render());
        }
        println!("[{id} finished in {:.2}s]\n", t0.elapsed().as_secs_f64());
    }
}
