//! Plain-text table formatting for the experiment harness.
//!
//! EXPERIMENTS.md records exactly what these tables print, so the format is
//! deliberately stable: fixed-width columns, one header row, a rule line.

/// A simple column-aligned table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, (c, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{c:>w$}", w = w));
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format a float compactly for table cells.
pub fn f(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1e5 || v.abs() < 1e-3 {
        format!("{v:.2e}")
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["a", "longer"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["100".into(), "x".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("a  longer"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic]
    fn rejects_ragged_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn float_formats() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(1.5), "1.500");
        assert_eq!(f(123.4), "123.4");
        assert!(f(1e6).contains('e'));
        assert!(f(1e-5).contains('e'));
    }
}
