//! # psdp-bench
//!
//! The experiment harness: per-claim experiment runners ([`experiments`])
//! and the plain-text [`table`] formatter. The `experiments` binary drives
//! these; Criterion benches (in `benches/`) time the same code paths.

#![warn(missing_docs)]

pub mod experiments;
pub mod table;
