//! Mixed packing–covering solver timings.
//!
//! Two shapes:
//!
//! * one full certified bisection (`solve_mixed`) per family — the
//!   end-to-end cost a `psdp mixed` invocation pays, and
//! * one decision call at a fixed threshold over a *prepared*
//!   `MixedSolver` — the marginal cost once engines and factorizations
//!   are built, which is what a serving loop would pay per query.
//!
//! The covering side always runs the exact engine (`O(m³)` per
//! iteration, see `psdp_core::mixed`), so the graph family's wall clock
//! is dominated by `|V|³ · iterations`; the diagonal family measures the
//! loop overhead floor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psdp_core::{solve_mixed, MixedApproxOptions, MixedInstance, MixedSolver};
use psdp_workloads::{gnp, mixed_edge_cover, mixed_lp_diagonal};

fn families() -> Vec<(String, MixedInstance)> {
    vec![
        ("mixed-lp/6x4/n8".into(), mixed_lp_diagonal(6, 4, 8, 0.6, 3)),
        ("edge-cover/v12".into(), mixed_edge_cover(&gnp(12, 0.5, 2), 0.5)),
    ]
}

fn bench_mixed(c: &mut Criterion) {
    let mut g = c.benchmark_group("mixed_solver");
    g.sample_size(10);
    let opts = MixedApproxOptions::practical(0.15);

    for (name, inst) in families() {
        g.bench_with_input(BenchmarkId::new("optimize", &name), &inst, |b, inst| {
            b.iter(|| solve_mixed(inst, &opts).expect("solve"))
        });

        // Marginal decision cost over a prepared solver: σ in the middle
        // of the typical bracket so neither exit fires instantly.
        let solver = MixedSolver::builder(&inst).options(opts.decision).build().expect("build");
        g.bench_with_input(BenchmarkId::new("decision", &name), &solver, |b, solver| {
            b.iter(|| {
                let mut s = solver.session();
                s.solve(0.5).expect("decision")
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_mixed);
criterion_main!(benches);
