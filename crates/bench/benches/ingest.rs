//! Ingest-path throughput: canonical text vs `psdp-bin-1` binary decode
//! (backs experiment E16).
//!
//! The serving stack admits every request through one of two decoders:
//! the text reader (tokenize, parse floats, validate) or the binary
//! reader (header guards, checksum, bit-pattern slices). Both paths end
//! in the same validated [`psdp_core::PackingInstance`] — the corpus and
//! fixpoint suites pin that — so the timings here isolate pure decode
//! cost. The third and fourth rows measure the *fingerprint* path: what
//! a cache admission costs before any solver runs (text: full parse +
//! structural hash; binary: sniff the hash straight off the header).
//!
//! After the criterion rows the bench prints the E16 report at
//! `PSDP_E16_NNZ` nonzeros (default 200k so CI's `--test` smoke stays
//! cheap; the recorded run uses 1M): decoded bytes/s per format and the
//! binary-over-text speedup.

use criterion::{criterion_group, criterion_main, Criterion};
use psdp_core::{
    packing_content_hash, peek_content_hash, read_instance, read_instance_bin, write_instance,
    write_instance_bin, PackingInstance,
};
use psdp_sparse::{Csr, PsdMatrix};

/// Symmetric banded sparse instance with ~`nnz` total nonzeros spread
/// over `n` CSR constraints (diagonally dominant, so it passes the same
/// structural validation both decoders apply).
fn banded_instance(nnz: usize, n: usize) -> PackingInstance {
    let band = 12usize;
    // nnz per constraint ≈ dim * (1 + 2*band) ⇒ dim from the target.
    let dim = (nnz / n / (1 + 2 * band)).max(band + 2);
    let mats: Vec<PsdMatrix> = (0..n)
        .map(|c| {
            let mut trip: Vec<(usize, usize, f64)> = Vec::new();
            for i in 0..dim {
                trip.push((i, i, 2.0 + band as f64 + (c as f64) * 0.25));
                for d in 1..=band {
                    if i + d < dim {
                        let v = -0.5 / d as f64;
                        trip.push((i, i + d, v));
                        trip.push((i + d, i, v));
                    }
                }
            }
            PsdMatrix::Sparse(Csr::from_triplets(dim, dim, &trip))
        })
        .collect();
    PackingInstance::new(mats).expect("banded family is valid")
}

fn bench_ingest(c: &mut Criterion) {
    // Criterion rows at a modest size: the relative shape is scale-stable
    // and this keeps `--test` smoke cheap in CI.
    let inst = banded_instance(100_000, 8);
    let text = write_instance(&inst);
    let bytes = write_instance_bin(&inst);

    let mut g = c.benchmark_group("ingest");
    g.sample_size(10);
    g.bench_function("text_read_100k", |b| {
        b.iter(|| read_instance(&text).expect("text parses").n())
    });
    g.bench_function("bin_read_100k", |b| {
        b.iter(|| read_instance_bin(&bytes).expect("binary parses").0.n())
    });
    // Fingerprint cost at admission: text must parse before it can hash;
    // binary reads the hash off the header (verification is deferred to
    // the one decode a cache miss pays anyway).
    g.bench_function("text_fingerprint_100k", |b| {
        b.iter(|| packing_content_hash(&read_instance(&text).expect("text parses")))
    });
    g.bench_function("bin_peek_fingerprint_100k", |b| {
        b.iter(|| peek_content_hash(&bytes).expect("header carries the hash"))
    });
    g.finish();

    // E16 report: one best-of-3 timed decode per format at the scaled
    // size, plus the cross-format identity check the claim rests on.
    let nnz: usize =
        std::env::var("PSDP_E16_NNZ").ok().and_then(|v| v.parse().ok()).unwrap_or(200_000);
    let inst = banded_instance(nnz, 8);
    let text = write_instance(&inst);
    let bytes = write_instance_bin(&inst);
    println!(
        "ingest/e16: target {} nnz | text {:.1} MiB | binary {:.1} MiB",
        nnz,
        text.len() as f64 / (1024.0 * 1024.0),
        bytes.len() as f64 / (1024.0 * 1024.0),
    );
    let best_of = |f: &dyn Fn() -> usize| -> std::time::Duration {
        (0..3)
            .map(|_| {
                let t = std::time::Instant::now();
                assert_eq!(f(), inst.n());
                t.elapsed()
            })
            .min()
            .expect("three reps")
    };
    let t_text = best_of(&|| read_instance(&text).expect("text parses").n());
    let t_bin = best_of(&|| read_instance_bin(&bytes).expect("binary parses").0.n());
    let (decoded, hash) = read_instance_bin(&bytes).expect("binary parses");
    assert!(psdp_core::packing_structural_eq(&decoded, &inst), "decode drifted");
    assert_eq!(hash, packing_content_hash(&inst), "hash drifted");
    let mibs =
        |len: usize, d: std::time::Duration| len as f64 / (1024.0 * 1024.0) / d.as_secs_f64();
    println!(
        "ingest/e16: text {:.1} ms ({:.0} MiB/s) | binary {:.1} ms ({:.0} MiB/s) | speedup {:.1}x",
        t_text.as_secs_f64() * 1e3,
        mibs(text.len(), t_text),
        t_bin.as_secs_f64() * 1e3,
        mibs(bytes.len(), t_bin),
        t_text.as_secs_f64() / t_bin.as_secs_f64(),
    );
}

criterion_group!(benches, bench_ingest);
criterion_main!(benches);
