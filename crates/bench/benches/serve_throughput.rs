//! Serving throughput: the fingerprint-keyed cache vs cold per-request
//! solving on a zipf-repeated request batch (backs experiment E13).
//!
//! `cached` runs one scheduler whose cache persists across iterations —
//! repeats hit memoized results and shared prepared solvers. `cold` runs
//! with the cache disabled, so every request pays preparation and a full
//! solve. Identical batches, byte-identical response values (the cache is
//! value-neutral; `psdp-serve` unit tests and `tests/determinism.rs`
//! assert it) — only the work differs.

use criterion::{criterion_group, criterion_main, Criterion};
use psdp_core::DecisionOptions;
use psdp_serve::{Scheduler, SchedulerOptions, ServeRequest};
use psdp_workloads::{request_stream, RequestStreamSpec};
use std::sync::Arc;

fn batch() -> Vec<ServeRequest> {
    let spec = RequestStreamSpec {
        pool: 4,
        requests: 24,
        dim: 12,
        n: 8,
        zipf_s: 1.1,
        thresholds: 3,
        seed: 5,
    };
    let (instances, stream) = request_stream(&spec);
    let instances: Vec<Arc<_>> = instances.into_iter().map(Arc::new).collect();
    stream
        .into_iter()
        .map(|r| {
            ServeRequest::decision(
                r.id,
                Arc::clone(&instances[r.instance]),
                r.threshold,
                DecisionOptions::practical(0.15),
            )
        })
        .collect()
}

fn bench_serve(c: &mut Criterion) {
    let requests = batch();
    let mut g = c.benchmark_group("serve_throughput");
    g.sample_size(10);

    g.bench_function("cold_per_request", |b| {
        b.iter(|| {
            let mut sched = Scheduler::new(SchedulerOptions {
                cache_enabled: false,
                ..SchedulerOptions::default()
            });
            let out = sched.run_batch(&requests).expect("batch");
            assert_eq!(out.report.errors, 0);
            out.report.engine_evals
        })
    });

    g.bench_function("fingerprint_cached", |b| {
        let mut sched = Scheduler::new(SchedulerOptions::default());
        b.iter(|| {
            let out = sched.run_batch(&requests).expect("batch");
            assert_eq!(out.report.errors, 0);
            out.report.engine_evals
        })
    });

    g.finish();

    // Print the amortization evidence alongside the timings (E13): prep
    // reuse and memo hits visible in the batch report.
    let mut cold = Scheduler::new(SchedulerOptions { cache_enabled: false, ..Default::default() });
    let cold_out = cold.run_batch(&requests).expect("batch");
    let mut warm = Scheduler::new(SchedulerOptions::default());
    let first = warm.run_batch(&requests).expect("batch");
    let steady = warm.run_batch(&requests).expect("batch");
    println!(
        "serve_throughput/report: cold evals={} prep_builds={} | first evals={} prep_builds={} prep_reuses={} memo_hits={} | steady evals={} memo_hits={}",
        cold_out.report.engine_evals,
        cold_out.report.prep_builds,
        first.report.engine_evals,
        first.report.prep_builds,
        first.report.tiers.prep_reuses,
        first.report.tiers.memo_hits,
        steady.report.engine_evals,
        steady.report.tiers.memo_hits,
    );
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
