//! Substrate kernel timings: eigensolver, GEMM, Taylor block application —
//! the per-iteration building blocks every experiment rests on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psdp_linalg::{apply_exp_taylor_block, matmul, sym_eigen, Mat};

fn sym(m: usize) -> Mat {
    let mut a = Mat::from_fn(m, m, |i, j| ((i * 31 + j * 17) % 13) as f64 / 13.0);
    a.symmetrize();
    a.add_diag(1.0);
    a
}

fn bench_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("linalg");
    g.sample_size(10);
    for m in [32usize, 96] {
        let a = sym(m);
        g.bench_with_input(BenchmarkId::new("sym_eigen", m), &a, |b, a| {
            b.iter(|| sym_eigen(a).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("gemm", m), &a, |b, a| b.iter(|| matmul(a, a)));
        let block = Mat::from_fn(m, 16, |i, j| (i + j) as f64 / m as f64);
        g.bench_with_input(BenchmarkId::new("taylor_block_k20", m), &a, |b, a| {
            b.iter(|| apply_exp_taylor_block(a, &block, 20))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
