//! E5 wall-clock counterpart: sketched evaluation time vs factorization
//! size q on edge-Laplacian instances with normalized ||Phi||.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psdp_expdot::{Engine, EngineKind};
use psdp_workloads::{edge_packing, gnp};

fn bench_work(c: &mut Criterion) {
    let mut g = c.benchmark_group("work_scaling");
    g.sample_size(10);
    for p in [0.1, 0.4] {
        let graph = gnp(48, p, 5);
        let mats = edge_packing(&graph);
        let q: usize = mats.iter().map(|a| a.storage_nnz()).sum();
        let mut lap = graph.laplacian();
        let deg = 2.0
            * (0..graph.n())
                .map(|v| lap.row_iter(v).map(|(_, w)| w.abs()).sum::<f64>())
                .fold(0.0_f64, f64::max);
        lap.scale(8.0 / deg);
        let eng =
            Engine::new(EngineKind::TaylorJl { eps: 0.3, sketch_const: 2.0 }, &mats, 7).unwrap();
        g.bench_with_input(BenchmarkId::new("compute_op_q", q), &lap, |b, lap| {
            b.iter(|| eng.compute_op(lap, 8.0, 1))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_work);
criterion_main!(benches);
