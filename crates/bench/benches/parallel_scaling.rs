//! E6 wall-clock counterpart: fixed solve at 1 vs 2 threads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psdp_core::{decision_psdp, ConstantsMode, DecisionOptions, EngineKind, PackingInstance};
use psdp_parallel::{available_threads, run_with_threads};
use psdp_workloads::{random_factorized, RandomFactorized};

fn bench_threads(c: &mut Criterion) {
    let mats = random_factorized(&RandomFactorized {
        dim: 96,
        n: 8,
        rank: 4,
        nnz_per_col: 48,
        width: 1.0,
        seed: 21,
    });
    let inst = PackingInstance::new(mats).unwrap().scaled(0.4);
    let mut opts = DecisionOptions::practical(0.25).with_engine(EngineKind::Taylor { eps: 0.2 });
    opts.mode = ConstantsMode::Practical { alpha_boost: 1.0, max_iters: 4 };
    opts.early_exit = false;
    opts.primal_matrix_dim_limit = 0;

    let mut g = c.benchmark_group("threads");
    g.sample_size(10);
    for threads in [1usize, 2] {
        if threads > available_threads() {
            break;
        }
        g.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            let inst = &inst;
            let opts = &opts;
            b.iter(|| run_with_threads(t, move || decision_psdp(inst, opts).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_threads);
criterion_main!(benches);
