//! E10 wall-clock counterpart: engine and update-rule ablations on one
//! fixed instance.

use criterion::{criterion_group, criterion_main, Criterion};
use psdp_core::{decision_psdp, DecisionOptions, EngineKind, PackingInstance, UpdateRule};
use psdp_workloads::{random_factorized, RandomFactorized};

fn bench_ablations(c: &mut Criterion) {
    let mats = random_factorized(&RandomFactorized {
        dim: 14,
        n: 10,
        rank: 2,
        nnz_per_col: 4,
        width: 2.0,
        seed: 31,
    });
    let inst = PackingInstance::new(mats).unwrap().scaled(0.4);

    let mut g = c.benchmark_group("ablation");
    g.sample_size(10);
    for (name, kind) in [
        ("exact", EngineKind::Exact),
        ("taylor", EngineKind::Taylor { eps: 0.1 }),
        ("taylor_jl", EngineKind::TaylorJl { eps: 0.2, sketch_const: 4.0 }),
    ] {
        let opts = DecisionOptions::practical(0.2).with_engine(kind);
        g.bench_function(format!("engine_{name}"), |b| {
            b.iter(|| decision_psdp(&inst, &opts).unwrap())
        });
    }
    for (name, rule) in [
        ("standard", UpdateRule::Standard),
        ("bucketed", UpdateRule::Bucketed { boost: 4.0 }),
        ("stale8", UpdateRule::Stale { period: 8 }),
    ] {
        let opts = DecisionOptions::practical(0.2).with_rule(rule);
        g.bench_function(format!("rule_{name}"), |b| {
            b.iter(|| decision_psdp(&inst, &opts).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
