//! Criterion timing for the decision procedure across n (E1/E2 wall-clock
//! counterpart).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psdp_core::{decision_psdp, DecisionOptions, PackingInstance};
use psdp_workloads::{random_factorized, RandomFactorized};

fn instance(n: usize) -> PackingInstance {
    let mats = random_factorized(&RandomFactorized {
        dim: 10,
        n,
        rank: 2,
        nnz_per_col: 3,
        width: 1.0,
        seed: 42,
    });
    PackingInstance::new(mats).unwrap().scaled(0.4)
}

fn bench_iterations(c: &mut Criterion) {
    let mut g = c.benchmark_group("decision_psdp");
    g.sample_size(10);
    for n in [4usize, 16, 64] {
        let inst = instance(n);
        g.bench_with_input(BenchmarkId::new("practical_eps0.25", n), &inst, |b, inst| {
            b.iter(|| decision_psdp(inst, &DecisionOptions::practical(0.25)).unwrap())
        });
    }
    for eps in [0.5, 0.25] {
        let inst = instance(16);
        g.bench_with_input(
            BenchmarkId::new("strict_n16", format!("eps{eps}")),
            &inst,
            |b, inst| b.iter(|| decision_psdp(inst, &DecisionOptions::strict(eps)).unwrap()),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_iterations);
criterion_main!(benches);
