//! E8 wall-clock counterpart: approxPSDP end to end on two instance
//! families.

use criterion::{criterion_group, criterion_main, Criterion};
use psdp_core::{solve_covering, solve_packing, ApproxOptions, PackingInstance};
use psdp_workloads::{beamforming_sdp, random_lp_diagonal, Beamforming};

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("approx_psdp");
    g.sample_size(10);

    let inst = PackingInstance::new(random_lp_diagonal(8, 6, 0.6, 1)).unwrap();
    g.bench_function("diagonal_m8_n6", |b| {
        b.iter(|| solve_packing(&inst, &ApproxOptions::practical(0.1)).unwrap())
    });

    let sdp = beamforming_sdp(&Beamforming::default());
    g.bench_function("beamforming_m16_n6", |b| {
        b.iter(|| solve_covering(&sdp, &ApproxOptions::practical(0.1)).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
