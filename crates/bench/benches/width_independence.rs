//! E3 wall-clock counterpart: ours vs the width-dependent baseline as the
//! instance width grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psdp_baselines::ak_decision;
use psdp_core::{decision_psdp, DecisionOptions, PackingInstance};
use psdp_workloads::{random_factorized, RandomFactorized};

fn instance(width: f64) -> PackingInstance {
    let mats = random_factorized(&RandomFactorized {
        dim: 10,
        n: 6,
        rank: 2,
        nnz_per_col: 3,
        width,
        seed: 11,
    });
    PackingInstance::new(mats).unwrap().scaled(0.4)
}

fn bench_width(c: &mut Criterion) {
    let mut g = c.benchmark_group("width");
    g.sample_size(10);
    for width in [1.0, 8.0] {
        let inst = instance(width);
        g.bench_with_input(BenchmarkId::new("ours", width as u64), &inst, |b, inst| {
            b.iter(|| decision_psdp(inst, &DecisionOptions::practical(0.25)).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("width_dep_ak", width as u64), &inst, |b, inst| {
            b.iter(|| ak_decision(inst, 0.25, 100_000).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_width);
criterion_main!(benches);
