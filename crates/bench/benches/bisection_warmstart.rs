//! Cold vs warm session bisection (backs experiment E11): the same
//! certified bracket, computed with and without cross-bracket iterate
//! continuation, on representative E8-family instances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psdp_core::{ApproxOptions, PackingInstance, Solver};
use psdp_workloads::{edge_packing, gnp, random_lp_diagonal};

fn instances() -> Vec<(&'static str, PackingInstance)> {
    vec![
        ("diagonal_lp", PackingInstance::new(random_lp_diagonal(8, 6, 0.6, 1)).expect("valid")),
        ("edge_packing", PackingInstance::new(edge_packing(&gnp(12, 0.4, 7))).expect("valid")),
    ]
}

fn bench_bisection(c: &mut Criterion) {
    let opts = ApproxOptions::serving(0.1);
    let mut g = c.benchmark_group("bisection_warmstart");
    g.sample_size(10);
    for (name, inst) in instances() {
        let solver = Solver::builder(&inst).options(opts.decision).build().expect("build");
        g.bench_with_input(BenchmarkId::new("cold", name), &inst, |b, _| {
            b.iter(|| solver.session().with_warm_start(false).optimize(&opts).expect("solve"))
        });
        g.bench_with_input(BenchmarkId::new("warm", name), &inst, |b, _| {
            b.iter(|| solver.session().with_warm_start(true).optimize(&opts).expect("solve"))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_bisection);
criterion_main!(benches);
