//! Streaming-service throughput: `psdp serve --listen` vs the one-shot
//! batch scheduler on the full-protocol zipf workload (backs experiment
//! E15).
//!
//! Both modes consume the identical JSONL bytes from
//! `psdp_workloads::stream_jsonl` — a heavy-tailed solve/optimize/mixed
//! command mix over shared instance pools — and both are value-neutral
//! (`tests/determinism.rs` pins the response streams byte-identical), so
//! the timings isolate pure orchestration cost: batch-barrier admission
//! against streaming admission with sharded cache and sequencer.
//!
//! After the criterion rows, the bench prints the E15 sustained-load
//! report at `PSDP_E15_REQUESTS` requests (default 2000 so CI's `--test`
//! smoke stays cheap; the recorded run uses 100k): wall clock, req/s,
//! p50/p99 service latency, per-tier hit counters, and queue high-water
//! marks from the service's stderr summary.

use criterion::{criterion_group, criterion_main, Criterion};
use psdp_cli::args::Args;
use psdp_workloads::{mixed_request_stream, stream_jsonl, MixedStreamSpec, RequestStreamSpec};

fn workload(requests: usize, pool: usize) -> String {
    stream_jsonl(&mixed_request_stream(&MixedStreamSpec {
        base: RequestStreamSpec {
            pool,
            requests,
            dim: 10,
            n: 6,
            zipf_s: 1.1,
            thresholds: 3,
            seed: 15,
        },
        mixed_pool: 2,
        optimize_share: 0.1,
        mixed_share: 0.05,
        eps: 0.2,
    }))
}

fn args(argv: &[&str]) -> Args {
    Args::parse(&argv.iter().map(|s| s.to_string()).collect::<Vec<_>>()).expect("argv parses")
}

fn run_one_shot(input: &str) -> psdp_cli::serve::ServeRun {
    psdp_cli::serve::serve_on_input(&args(&["serve"]), input).expect("serve runs")
}

fn run_listen(input: &str, shards: usize) -> psdp_cli::serve::ServeRun {
    let shards = shards.to_string();
    psdp_cli::serve::serve_listen_on_input(
        &args(&["serve", "--listen", "--shards", &shards]),
        input,
    )
    .expect("listen runs")
}

fn bench_stream(c: &mut Criterion) {
    let input = workload(48, 4);
    let mut g = c.benchmark_group("serve_stream");
    g.sample_size(10);

    g.bench_function("one_shot_batch", |b| {
        b.iter(|| {
            let run = run_one_shot(&input);
            assert!(!run.stdout.is_empty());
            run.stdout.len()
        })
    });

    for shards in [1usize, 4] {
        g.bench_function(format!("listen_{shards}_shards"), |b| {
            b.iter(|| {
                let run = run_listen(&input, shards);
                assert!(!run.stdout.is_empty());
                run.stdout.len()
            })
        });
    }
    g.finish();

    // E15 sustained-load report: one timed pass per mode over a scaled
    // stream, summaries straight from the modes' own telemetry.
    let requests: usize =
        std::env::var("PSDP_E15_REQUESTS").ok().and_then(|v| v.parse().ok()).unwrap_or(2_000);
    let input = workload(requests, 16);
    println!(
        "serve_stream/e15: {} requests ({} MiB of JSONL), pool 16 packing + 2 mixed",
        requests,
        input.len() / (1024 * 1024),
    );
    let t = std::time::Instant::now();
    let batch = run_one_shot(&input);
    let batch_wall = t.elapsed();
    let t = std::time::Instant::now();
    let listen = run_listen(&input, 4);
    let listen_wall = t.elapsed();
    assert_eq!(
        batch.stdout.lines().count(),
        listen.stdout.lines().count(),
        "modes answered different request counts"
    );
    let rps = |n: usize, w: std::time::Duration| n as f64 / w.as_secs_f64();
    println!(
        "serve_stream/e15: one-shot {:.2} s ({:.0} req/s) | listen(4 shards) {:.2} s ({:.0} req/s)",
        batch_wall.as_secs_f64(),
        rps(requests, batch_wall),
        listen_wall.as_secs_f64(),
        rps(requests, listen_wall),
    );
    for (mode, summary) in [("one-shot", &batch.summary), ("listen", &listen.summary)] {
        for line in summary.lines() {
            println!("serve_stream/e15 [{mode}] {line}");
        }
    }
}

criterion_group!(benches, bench_stream);
criterion_main!(benches);
