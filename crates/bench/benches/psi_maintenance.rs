//! Incremental Ψ maintenance vs dense from-scratch rebuild.
//!
//! The tentpole claim behind `psdp_core::PsiMaintainer`: on a rank-1
//! Laplacian packing workload (n ≥ 500 edges), applying only the selected
//! coordinates' scaled constraints per round costs `O(Σ nnz(selected))`,
//! while rebuilding `Ψ = Σᵢ xᵢAᵢ` densely costs `Θ(n·m²)` per round — the
//! gap Corollary 1.2's nearly-linear work bound lives in. Both paths run
//! the same update schedule; the timing ratio is the payoff.
//!
//! `ROUNDS` exceeds the default rebuild period (64), so the incremental
//! timing *includes* the periodic drift-checked full rebuilds the solver
//! actually pays — the measured ratio is the honest amortized one, not a
//! rebuild-free best case.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use psdp_core::{PackingInstance, PsiMaintainer};
use psdp_workloads::{edge_packing, edge_packing_sparse, gnp};

/// Rounds simulated per measured iteration (> the rebuild period of 64 so
/// at least one full rebuild lands in the incremental path), and the
/// selection stride (every `STRIDE`-th coordinate steps each round,
/// rotating).
const ROUNDS: usize = 80;
const STRIDE: usize = 8;
const ALPHA: f64 = 0.05;

fn schedule(n: usize, round: usize) -> Vec<usize> {
    (0..n).filter(|i| (i + round).is_multiple_of(STRIDE)).collect()
}

fn bench_psi(c: &mut Criterion) {
    let mut g = c.benchmark_group("psi_maintenance");
    g.sample_size(10);

    // G(n,p) with ≥ 500 edges: m = 64 vertices, ~600 edge constraints.
    let graph = gnp(64, 0.3, 7);
    assert!(graph.m() >= 500, "want ≥ 500 edges, got {}", graph.m());

    for (label, mats) in [("factor", edge_packing(&graph)), ("sparse", edge_packing_sparse(&graph))]
    {
        let inst = PackingInstance::new(mats).unwrap();
        let n = inst.n();
        let x0: Vec<f64> = inst.mats().iter().map(|a| 1.0 / (n as f64 * a.trace())).collect();

        g.bench_with_input(
            BenchmarkId::new("dense_rebuild", format!("{label}/n{n}")),
            &inst,
            |b, inst| {
                b.iter(|| {
                    let mut x = x0.clone();
                    let mut psi = inst.weighted_sum(&x);
                    for round in 0..ROUNDS {
                        for i in schedule(n, round) {
                            x[i] *= 1.0 + ALPHA;
                        }
                        psi = inst.weighted_sum(&x);
                    }
                    psi
                })
            },
        );

        g.bench_with_input(
            BenchmarkId::new("incremental", format!("{label}/n{n}")),
            &inst,
            |b, inst| {
                b.iter(|| {
                    let mut x = x0.clone();
                    let mut psi = PsiMaintainer::new(inst, &x, 64);
                    for round in 0..ROUNDS {
                        let deltas: Vec<(usize, f64)> = schedule(n, round)
                            .into_iter()
                            .map(|i| {
                                let d = ALPHA * x[i];
                                x[i] += d;
                                (i, d)
                            })
                            .collect();
                        psi.apply_updates(&deltas);
                        psi.maybe_rebuild(&x);
                    }
                    psi.matrix().trace()
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_psi);
criterion_main!(benches);
