//! E4 wall-clock counterpart: the three exp(Phi).A engines on a fixed
//! constraint set.

use criterion::{criterion_group, criterion_main, Criterion};
use psdp_expdot::{Engine, EngineKind};
use psdp_linalg::{sym_eigen, Mat};
use psdp_sparse::PsdMatrix;
use psdp_workloads::{random_factorized, RandomFactorized};

fn fixture(m: usize) -> (Mat, Vec<PsdMatrix>) {
    let mats = random_factorized(&RandomFactorized {
        dim: m,
        n: 8,
        rank: 2,
        nnz_per_col: 4,
        width: 1.0,
        seed: 3,
    });
    let mut phi = Mat::zeros(m, m);
    for a in &mats {
        a.add_scaled_into(&mut phi, 0.3);
    }
    phi.symmetrize();
    let lam = sym_eigen(&phi).unwrap().lambda_max();
    phi.scale(4.0 / lam);
    (phi, mats)
}

fn bench_engines(c: &mut Criterion) {
    let mut g = c.benchmark_group("expdot");
    g.sample_size(20);
    for m in [16usize, 48] {
        let (phi, mats) = fixture(m);
        for kind in [
            EngineKind::Exact,
            EngineKind::Taylor { eps: 0.1 },
            EngineKind::TaylorJl { eps: 0.25, sketch_const: 2.0 },
        ] {
            let eng = Engine::new(kind, &mats, 0).unwrap();
            g.bench_function(format!("{}_m{m}", kind.name()), |b| {
                b.iter(|| eng.compute(&phi, 4.0, &mats, 1).unwrap())
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
