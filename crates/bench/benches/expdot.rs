//! E4/E14 wall-clock counterpart: the exp(Phi).A engines on fixed
//! constraint sets, including the large-m regime where the expm-action
//! (expv) path is expected to dominate (EXPERIMENTS.md E14).

use criterion::{criterion_group, criterion_main, Criterion};
use psdp_expdot::{Engine, EngineKind};
use psdp_linalg::{sym_eigen, Mat};
use psdp_sparse::{Csr, PsdMatrix};
use psdp_workloads::{random_factorized, RandomFactorized};

fn fixture(m: usize) -> (Mat, Vec<PsdMatrix>) {
    let mats = random_factorized(&RandomFactorized {
        dim: m,
        n: 8,
        rank: 2,
        nnz_per_col: 4,
        width: 1.0,
        seed: 3,
    });
    let mut phi = Mat::zeros(m, m);
    for a in &mats {
        a.add_scaled_into(&mut phi, 0.3);
    }
    phi.symmetrize();
    let lam = sym_eigen(&phi).unwrap().lambda_max();
    phi.scale(4.0 / lam);
    (phi, mats)
}

fn bench_engines(c: &mut Criterion) {
    let mut g = c.benchmark_group("expdot");
    g.sample_size(20);
    for m in [16usize, 48] {
        let (phi, mats) = fixture(m);
        for kind in [
            EngineKind::Exact,
            EngineKind::Taylor { eps: 0.1 },
            EngineKind::TaylorJl { eps: 0.25, sketch_const: 2.0 },
        ] {
            let eng = Engine::new(kind, &mats, 0).unwrap();
            g.bench_function(format!("{}_m{m}", kind.name()), |b| {
                b.iter(|| eng.compute(&phi, 4.0, &mats, 1).unwrap())
            });
        }
    }
    g.finish();
}

/// E14: the m = 512 regime. The dense-eigendecomposition engine is O(m^3)
/// per call; the Taylor+JL engine is O(k * m^2) dense GEMMs; the expv
/// engine works through matvecs only, so on a sparse `Phi` (CSR operator,
/// `compute_op`) its cost is nearly linear in nnz.
fn bench_engines_large(c: &mut Criterion) {
    let m = 512;
    let mats = random_factorized(&RandomFactorized {
        dim: m,
        n: 8,
        rank: 1,
        nnz_per_col: 3,
        width: 1.0,
        seed: 5,
    });
    let mut phi = Mat::zeros(m, m);
    for a in &mats {
        a.add_scaled_into(&mut phi, 0.3);
    }
    phi.symmetrize();
    let lam = sym_eigen(&phi).unwrap().lambda_max();
    phi.scale(16.0 / lam); // kappa = 16: the solver's mid-bisection regime
    let kappa = 16.0;
    let sparse = Csr::from_dense(&phi, 0.0);

    {
        let mut g = c.benchmark_group("expdot_large");
        g.sample_size(2); // one exact call eigendecomposes a 512x512 matrix
        let eng = Engine::new(EngineKind::Exact, &mats, 0).unwrap();
        g.bench_function(format!("exact_m{m}"), |b| {
            b.iter(|| eng.compute(&phi, kappa, &mats, 1).unwrap())
        });
        g.finish();
    }

    let mut g = c.benchmark_group("expdot_large");
    g.sample_size(10);
    for kind in
        [EngineKind::TaylorJl { eps: 0.25, sketch_const: 2.0 }, EngineKind::Expv { eps: 0.25 }]
    {
        let eng = Engine::new(kind, &mats, 0).unwrap();
        g.bench_function(format!("{}_m{m}_dense", kind.name()), |b| {
            b.iter(|| eng.compute(&phi, kappa, &mats, 1).unwrap())
        });
        g.bench_function(format!("{}_m{m}_sparse_op", kind.name()), |b| {
            b.iter(|| eng.compute_op(&sparse, kappa, 1))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_engines, bench_engines_large);
criterion_main!(benches);
