//! Property tests: the Theorem 2.1 regret bound holds against randomized
//! adversaries, and the scalar/matrix games agree on diagonal gains.

use proptest::prelude::*;
use psdp_linalg::Mat;
use psdp_mmw::{Hedge, MmwGame};

/// A random PSD gain with ‖M‖ ≤ 1: convex combination of rank-1 projectors.
fn gain(dim: usize, coords: &[f64]) -> Mat {
    let mut v: Vec<f64> = coords.iter().take(dim).cloned().collect();
    while v.len() < dim {
        v.push(0.1);
    }
    let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-9);
    for x in &mut v {
        *x /= norm;
    }
    let mut g = Mat::zeros(dim, dim);
    g.rank1_update(1.0, &v); // unit projector: eigenvalues {1, 0…}
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theorem 2.1 against random rank-1 adversaries.
    #[test]
    fn regret_bound_random_adversary(
        dim in 2usize..5,
        eps0 in 0.05_f64..0.5,
        seeds in proptest::collection::vec(proptest::collection::vec(-1.0_f64..1.0, 5), 10..40),
    ) {
        let mut game = MmwGame::new(dim, eps0);
        for s in &seeds {
            game.play(&gain(dim, s)).unwrap();
        }
        let (lhs, rhs) = game.regret_bound_sides().unwrap();
        prop_assert!(lhs >= rhs - 1e-8, "regret violated: {lhs} < {rhs}");
    }

    /// Hedge regret bound on random [0,1] gain sequences.
    #[test]
    fn hedge_regret_random(
        n in 2usize..6,
        eps0 in 0.05_f64..0.5,
        rounds in proptest::collection::vec(proptest::collection::vec(0.0_f64..1.0, 6), 5..50),
    ) {
        let mut h = Hedge::new(n, eps0);
        for r in &rounds {
            h.play(&r[..n]);
        }
        let (lhs, rhs) = h.regret_bound_sides();
        prop_assert!(lhs >= rhs - 1e-8, "hedge regret violated: {lhs} < {rhs}");
    }

    /// Diagonal gains: the matrix game's probability diagonal equals Hedge.
    #[test]
    fn matrix_game_specializes_to_hedge(
        n in 2usize..5,
        rounds in proptest::collection::vec(proptest::collection::vec(0.0_f64..1.0, 5), 3..12),
    ) {
        let mut h = Hedge::new(n, 0.4);
        let mut g = MmwGame::new(n, 0.4);
        for r in &rounds {
            let gains = &r[..n];
            let hp = h.probabilities();
            let gp = g.probability_matrix().unwrap();
            for i in 0..n {
                prop_assert!((hp[i] - gp[(i, i)]).abs() < 1e-8);
                for j in 0..n {
                    if i != j {
                        prop_assert!(gp[(i, j)].abs() < 1e-10, "off-diagonal leakage");
                    }
                }
            }
            h.play(gains);
            g.play(&Mat::from_diag(gains)).unwrap();
        }
    }
}
