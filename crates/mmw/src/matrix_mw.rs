//! The matrix multiplicative weights (MMW) game of Section 2.1.
//!
//! For a fixed `ε₀ ≤ 1/2` and `W⁽¹⁾ = I`, iteration `t` of the game:
//!
//! 1. produces the probability matrix `P⁽ᵗ⁾ = W⁽ᵗ⁾ / Tr W⁽ᵗ⁾`,
//! 2. incurs a gain matrix `M⁽ᵗ⁾` (chosen adversarially), and
//! 3. updates `W⁽ᵗ⁺¹⁾ = exp(ε₀ Σ_{t'≤t} M⁽ᵗ'⁾)`.
//!
//! Arora–Kale's regret bound (Theorem 2.1) then guarantees, for PSD gains
//! `M⁽ᵗ⁾ ⪯ I`:
//!
//! ```text
//!   (1+ε₀) Σ_t M⁽ᵗ⁾ • P⁽ᵗ⁾  ≥  λmax(Σ_t M⁽ᵗ⁾) − ln(m)/ε₀.
//! ```
//!
//! This standalone implementation exists for three reasons: it documents the
//! mechanism the solver's convergence proof runs through, it is property-
//! tested against the regret bound directly (the bound is the *only* fact
//! Lemma 3.2 needs from the framework), and the width-dependent baseline
//! solver is built on it.

use psdp_linalg::{sym_eigen, LinalgError, Mat};

/// State of a matrix multiplicative weights game.
///
/// ```
/// use psdp_mmw::MmwGame;
/// use psdp_linalg::Mat;
///
/// let mut game = MmwGame::new(2, 0.5);
/// // Feed the same rank-1 gain repeatedly: weights concentrate on it, and
/// // the Theorem 2.1 regret bound holds throughout.
/// let gain = Mat::from_diag(&[1.0, 0.0]);
/// for _ in 0..20 {
///     game.play(&gain)?;
/// }
/// let p = game.probability_matrix()?;
/// assert!(p[(0, 0)] > 0.95);
/// let (lhs, rhs) = game.regret_bound_sides()?;
/// assert!(lhs >= rhs);
/// # Ok::<(), psdp_linalg::LinalgError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MmwGame {
    eps0: f64,
    dim: usize,
    /// Running sum of gain matrices `Σ M⁽ᵗ'⁾`.
    gain_sum: Mat,
    /// Running sum of observed gains `Σ M⁽ᵗ⁾ • P⁽ᵗ⁾`.
    observed_gain: f64,
    /// Rounds played.
    rounds: usize,
}

impl MmwGame {
    /// Start a game on `dim × dim` matrices with learning rate `eps0`.
    ///
    /// # Panics
    /// Panics unless `0 < eps0 ≤ 1/2` (the Theorem 2.1 regime).
    pub fn new(dim: usize, eps0: f64) -> Self {
        assert!(eps0 > 0.0 && eps0 <= 0.5, "MMW needs 0 < eps0 <= 1/2, got {eps0}");
        MmwGame { eps0, dim, gain_sum: Mat::zeros(dim, dim), observed_gain: 0.0, rounds: 0 }
    }

    /// The current probability matrix `P = exp(ε₀ ΣM) / Tr[exp(ε₀ ΣM)]`.
    ///
    /// Computed with a spectral shift so large cumulative gains cannot
    /// overflow.
    ///
    /// # Errors
    /// Propagates eigensolver failures.
    pub fn probability_matrix(&self) -> Result<Mat, LinalgError> {
        let mut scaled = self.gain_sum.clone();
        scaled.scale(self.eps0);
        scaled.symmetrize();
        let eig = sym_eigen(&scaled)?;
        let shift = eig.lambda_max();
        let w = eig.apply_fn(|lam| (lam - shift).exp());
        let tr = w.trace();
        Ok(w.scaled(1.0 / tr))
    }

    /// Play one round: observe `P⁽ᵗ⁾`, incur the gain `M⁽ᵗ⁾`, update state.
    /// Returns the scalar gain `M⁽ᵗ⁾ • P⁽ᵗ⁾` of this round.
    ///
    /// `m_gain` should satisfy `0 ⪯ M ⪯ I` for the regret bound to hold; this
    /// is the caller's contract (checked only in debug builds, where it costs
    /// an eigendecomposition).
    ///
    /// # Errors
    /// Propagates eigensolver failures.
    pub fn play(&mut self, m_gain: &Mat) -> Result<f64, LinalgError> {
        assert_eq!(m_gain.nrows(), self.dim, "gain dimension mismatch");
        #[cfg(debug_assertions)]
        {
            let eig = sym_eigen(m_gain)?;
            debug_assert!(eig.lambda_min() > -1e-8, "gain not PSD: {}", eig.lambda_min());
            debug_assert!(eig.lambda_max() < 1.0 + 1e-8, "gain exceeds I: {}", eig.lambda_max());
        }
        let p = self.probability_matrix()?;
        let g = m_gain.dot(&p);
        self.observed_gain += g;
        self.gain_sum.axpy(1.0, m_gain);
        self.rounds += 1;
        Ok(g)
    }

    /// Rounds played so far.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Accumulated observed gain `Σ_t M⁽ᵗ⁾ • P⁽ᵗ⁾`.
    pub fn observed_gain(&self) -> f64 {
        self.observed_gain
    }

    /// The two sides of the Theorem 2.1 regret bound,
    /// `(lhs, rhs) = ((1+ε₀)·Σ M•P,  λmax(Σ M) − ln(m)/ε₀)`.
    /// The bound asserts `lhs ≥ rhs`.
    ///
    /// # Errors
    /// Propagates eigensolver failures.
    pub fn regret_bound_sides(&self) -> Result<(f64, f64), LinalgError> {
        let lam = sym_eigen(&self.gain_sum)?.lambda_max();
        let lhs = (1.0 + self.eps0) * self.observed_gain;
        let rhs = lam - (self.dim as f64).ln() / self.eps0;
        Ok((lhs, rhs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probability_matrix_starts_uniform() {
        let g = MmwGame::new(4, 0.5);
        let p = g.probability_matrix().unwrap();
        for i in 0..4 {
            assert!((p[(i, i)] - 0.25).abs() < 1e-12);
            for j in 0..4 {
                if i != j {
                    assert!(p[(i, j)].abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn probability_matrix_trace_one_always() {
        let mut g = MmwGame::new(3, 0.3);
        let gain = Mat::from_diag(&[1.0, 0.5, 0.0]);
        for _ in 0..5 {
            g.play(&gain).unwrap();
            let p = g.probability_matrix().unwrap();
            assert!((p.trace() - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn weights_concentrate_on_high_gain_direction() {
        let mut g = MmwGame::new(2, 0.5);
        let gain = Mat::from_diag(&[1.0, 0.0]);
        for _ in 0..30 {
            g.play(&gain).unwrap();
        }
        let p = g.probability_matrix().unwrap();
        assert!(p[(0, 0)] > 0.99, "should concentrate on coordinate 0: {}", p[(0, 0)]);
    }

    #[test]
    fn regret_bound_holds_diagonal_adversary() {
        // Alternating adversary on diagonal gains.
        let mut g = MmwGame::new(3, 0.25);
        let gains = [
            Mat::from_diag(&[1.0, 0.0, 0.3]),
            Mat::from_diag(&[0.0, 1.0, 0.3]),
            Mat::from_diag(&[0.2, 0.2, 1.0]),
        ];
        for t in 0..60 {
            g.play(&gains[t % 3]).unwrap();
        }
        let (lhs, rhs) = g.regret_bound_sides().unwrap();
        assert!(lhs >= rhs - 1e-9, "regret bound violated: {lhs} < {rhs}");
    }

    #[test]
    fn regret_bound_holds_rotating_adversary() {
        // Non-commuting gains exercise the genuinely "matrix" part.
        let mut g = MmwGame::new(2, 0.5);
        let m1 = Mat::from_rows(&[&[0.5, 0.5], &[0.5, 0.5]]); // projector onto (1,1)/√2
        let m2 = Mat::from_rows(&[&[0.5, -0.5], &[-0.5, 0.5]]); // projector onto (1,-1)/√2
        let m3 = Mat::from_diag(&[1.0, 0.0]);
        for t in 0..45 {
            let m = match t % 3 {
                0 => &m1,
                1 => &m2,
                _ => &m3,
            };
            g.play(m).unwrap();
        }
        let (lhs, rhs) = g.regret_bound_sides().unwrap();
        assert!(lhs >= rhs - 1e-9, "regret bound violated: {lhs} < {rhs}");
    }

    #[test]
    #[should_panic]
    fn rejects_large_eps0() {
        let _ = MmwGame::new(2, 0.9);
    }
}
