//! Scalar multiplicative weights (Hedge), the diagonal special case.
//!
//! When every gain matrix is diagonal, the MMW game of Section 2.1 collapses
//! to the classical Hedge algorithm over `m` experts. The solver's LP
//! cross-validation path uses this to confirm that the matrix machinery
//! specializes correctly, and the Young-style positive LP baseline builds on
//! the same soft-max potential.

/// State of a Hedge game over `m` experts.
#[derive(Debug, Clone)]
pub struct Hedge {
    eps0: f64,
    /// Cumulative gains per expert.
    gain_sum: Vec<f64>,
    /// Σ_t <gain⁽ᵗ⁾, p⁽ᵗ⁾>.
    observed_gain: f64,
    rounds: usize,
}

impl Hedge {
    /// Start a Hedge game with learning rate `eps0 ∈ (0, 1/2]`.
    ///
    /// # Panics
    /// Panics outside that range.
    pub fn new(num_experts: usize, eps0: f64) -> Self {
        assert!(eps0 > 0.0 && eps0 <= 0.5, "Hedge needs 0 < eps0 <= 1/2");
        assert!(num_experts > 0, "need at least one expert");
        Hedge { eps0, gain_sum: vec![0.0; num_experts], observed_gain: 0.0, rounds: 0 }
    }

    /// Current probability distribution `p ∝ exp(ε₀ · gain_sum)`, computed
    /// with a max-shift to avoid overflow.
    pub fn probabilities(&self) -> Vec<f64> {
        let hi = self.gain_sum.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
        let weights: Vec<f64> =
            self.gain_sum.iter().map(|&g| (self.eps0 * (g - hi)).exp()).collect();
        let z: f64 = weights.iter().sum();
        weights.into_iter().map(|w| w / z).collect()
    }

    /// Play one round with per-expert gains in `[0, 1]`; returns `<g, p>`.
    pub fn play(&mut self, gains: &[f64]) -> f64 {
        assert_eq!(gains.len(), self.gain_sum.len(), "gain length mismatch");
        debug_assert!(gains.iter().all(|&g| (-1e-12..=1.0 + 1e-12).contains(&g)));
        let p = self.probabilities();
        let g: f64 = gains.iter().zip(&p).map(|(a, b)| a * b).sum();
        self.observed_gain += g;
        for (s, &x) in self.gain_sum.iter_mut().zip(gains) {
            *s += x;
        }
        self.rounds += 1;
        g
    }

    /// Rounds played.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Scalar regret bound sides `((1+ε₀)·observed, max_i gain_sum_i − ln(m)/ε₀)`.
    pub fn regret_bound_sides(&self) -> (f64, f64) {
        let best = self.gain_sum.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
        let m = self.gain_sum.len() as f64;
        ((1.0 + self.eps0) * self.observed_gain, best - m.ln() / self.eps0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_uniform() {
        let h = Hedge::new(4, 0.5);
        for p in h.probabilities() {
            assert!((p - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn concentrates_on_best_expert() {
        let mut h = Hedge::new(3, 0.5);
        for _ in 0..40 {
            h.play(&[1.0, 0.2, 0.0]);
        }
        let p = h.probabilities();
        assert!(p[0] > 0.99);
    }

    #[test]
    fn regret_bound_holds() {
        let mut h = Hedge::new(5, 0.25);
        // Adversarial-ish rotating gains.
        for t in 0..100 {
            let mut g = vec![0.0; 5];
            g[t % 5] = 1.0;
            g[(t * 3 + 1) % 5] = 0.6;
            h.play(&g);
        }
        let (lhs, rhs) = h.regret_bound_sides();
        assert!(lhs >= rhs - 1e-9, "{lhs} < {rhs}");
    }

    #[test]
    fn matches_matrix_mw_on_diagonal_gains() {
        // Hedge and MmwGame must agree when all gains are diagonal.
        use crate::matrix_mw::MmwGame;
        let mut h = Hedge::new(3, 0.4);
        let mut g = MmwGame::new(3, 0.4);
        let gains = [[1.0, 0.0, 0.5], [0.0, 1.0, 0.5], [0.3, 0.3, 0.3]];
        for t in 0..12 {
            let gv = gains[t % 3];
            let hp = h.probabilities();
            let mp = g.probability_matrix().unwrap();
            for i in 0..3 {
                assert!((hp[i] - mp[(i, i)]).abs() < 1e-9, "round {t} expert {i}");
            }
            h.play(&gv);
            g.play(&psdp_linalg::Mat::from_diag(&gv)).unwrap();
        }
    }

    #[test]
    fn overflow_safe_probabilities() {
        let mut h = Hedge::new(2, 0.5);
        // Huge cumulative gains must not produce NaN.
        for _ in 0..100_000 {
            h.gain_sum[0] += 1.0;
        }
        let p = h.probabilities();
        assert!(p[0] > 0.999 && p[0].is_finite());
        assert!((p[0] + p[1] - 1.0).abs() < 1e-12);
    }
}
