//! Closed-form iteration-bound calculators for the solvers the paper
//! compares (Section 1.1's complexity discussion).
//!
//! Jain–Yao '11 cannot be *run* at any interesting size — its bound is
//! `O(ε⁻¹³ log¹³ m · log n)` iterations of `Ω(m^ω)` work each — so
//! experiment E7 compares bound *formulas* (all with constant 1, i.e. as
//! printed these are the bounds' growth terms, not calibrated constants)
//! alongside measured iteration counts for the runnable algorithms.

/// Parameters of Algorithm 3.1 for a given `(n, ε)`:
/// `K = (1 + ln n)/ε`, `α = ε / (K(1+10ε))`, `R = (32/(εα)) ln n`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperConstants {
    /// Dual-norm termination threshold `K`.
    pub k_threshold: f64,
    /// Multiplicative step size `α`.
    pub alpha: f64,
    /// Iteration cap `R`.
    pub r_cap: f64,
}

/// Compute the paper's constants for `n` constraints at accuracy `ε`.
///
/// # Panics
/// Panics unless `0 < eps < 1` and `n ≥ 1`.
pub fn paper_constants(n: usize, eps: f64) -> PaperConstants {
    assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1)");
    assert!(n >= 1, "need at least one constraint");
    let ln_n = (n as f64).ln().max(1e-9);
    let k = (1.0 + ln_n) / eps;
    let alpha = eps / (k * (1.0 + 10.0 * eps));
    let r = 32.0 / (eps * alpha) * ln_n;
    PaperConstants { k_threshold: k, alpha, r_cap: r }
}

/// Our decision-procedure iteration bound `R = O(ε⁻³ log² n)` (Theorem 3.1),
/// with the paper's explicit constants.
pub fn ours_decision_iterations(n: usize, eps: f64) -> f64 {
    paper_constants(n, eps).r_cap
}

/// Total iterations of `approxPSDP` = decision bound × `O(log n)` binary
/// search calls (Lemma 2.2; we charge `log₂(n/ε)` calls).
pub fn ours_total_iterations(n: usize, eps: f64) -> f64 {
    ours_decision_iterations(n, eps) * (n as f64 / eps).log2().max(1.0)
}

/// Jain–Yao 2011 iteration bound `ε⁻¹³ log¹³ m · log n` (constant 1).
pub fn jain_yao_iterations(m: usize, n: usize, eps: f64) -> f64 {
    assert!(eps > 0.0 && eps < 1.0);
    let lm = (m.max(2) as f64).ln();
    let ln = (n.max(2) as f64).ln();
    eps.powi(-13) * lm.powi(13) * ln
}

/// Width-dependent MMW packing bound `ρ ln(m) / ε²` for the primal–dual
/// best-response oracle (Arora–Kale style; ρ is the width of the oracle's
/// responses — PST-style general oracles pay `ρ²`). This matches the
/// baseline implemented in `psdp-baselines::ak` and is the quantity the
/// width-independence experiment (E3) shows growing while ours stays flat.
pub fn width_dependent_iterations(rho: f64, m: usize, eps: f64) -> f64 {
    assert!(rho >= 1.0, "width at least 1");
    assert!(eps > 0.0 && eps < 1.0);
    rho * (m.max(2) as f64).ln() / (eps * eps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_match_formulas() {
        let c = paper_constants(100, 0.1);
        let ln_n = 100f64.ln();
        assert!((c.k_threshold - (1.0 + ln_n) / 0.1).abs() < 1e-12);
        assert!((c.alpha - 0.1 / (c.k_threshold * 2.0)).abs() < 1e-12);
        assert!((c.r_cap - 32.0 / (0.1 * c.alpha) * ln_n).abs() < 1e-9);
    }

    #[test]
    fn ours_scales_as_eps_cubed() {
        // R = 32 (1+ln n)(1+10ε) ln(n) / ε³, so halving ε multiplies R by
        // 8 · (1+5ε)/(1+10ε) → 8 as ε → 0.
        let r1 = ours_decision_iterations(1000, 0.02);
        let r2 = ours_decision_iterations(1000, 0.01);
        let ratio = r2 / r1;
        let want = 8.0 * (1.0 + 10.0 * 0.01) / (1.0 + 10.0 * 0.02);
        assert!((ratio - want).abs() < 1e-9, "ratio {ratio} want {want}");
        // And the ε→0 limit is indeed the cubic law.
        let r3 = ours_decision_iterations(1000, 2e-4);
        let r4 = ours_decision_iterations(1000, 1e-4);
        assert!((r4 / r3 - 8.0).abs() < 0.02, "asymptotic ratio {}", r4 / r3);
    }

    #[test]
    fn ours_scales_as_log_squared_n() {
        // R(n²)/R(n) → 4 for large n at fixed eps.
        let r1 = ours_decision_iterations(1_000, 0.1);
        let r2 = ours_decision_iterations(1_000_000, 0.1);
        let l1 = 1_000f64.ln();
        let l2 = 1_000_000f64.ln();
        let want = ((1.0 + l2) * l2) / ((1.0 + l1) * l1);
        assert!((r2 / r1 - want).abs() < 1e-6);
    }

    #[test]
    fn jain_yao_dwarfs_ours() {
        // The headline comparison: at m = n = 64, eps = 0.1, JY'11's bound is
        // astronomically larger than ours.
        let ours = ours_decision_iterations(64, 0.1);
        let jy = jain_yao_iterations(64, 64, 0.1);
        assert!(jy / ours > 1e12, "jy {jy} vs ours {ours}");
    }

    #[test]
    fn width_dependence_linear() {
        let a = width_dependent_iterations(2.0, 64, 0.1);
        let b = width_dependent_iterations(4.0, 64, 0.1);
        assert!((b / a - 2.0).abs() < 1e-12);
    }

    #[test]
    fn total_includes_binary_search_factor() {
        let d = ours_decision_iterations(128, 0.2);
        let t = ours_total_iterations(128, 0.2);
        assert!(t > d);
        assert!((t / d - (128f64 / 0.2).log2()).abs() < 1e-9);
    }
}
