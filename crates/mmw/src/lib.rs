//! # psdp-mmw
//!
//! The multiplicative-weights layer:
//!
//! * [`matrix_mw::MmwGame`] — the Section 2.1 matrix multiplicative weights
//!   game with the Arora–Kale regret bound (Theorem 2.1) checkable at
//!   runtime,
//! * [`scalar_mw::Hedge`] — the diagonal/scalar specialization,
//! * [`theory`] — closed-form iteration-bound calculators for the
//!   complexity comparison in Section 1.1 (ours vs Jain–Yao '11 vs
//!   width-dependent MMW).

#![warn(missing_docs)]

pub mod matrix_mw;
pub mod scalar_mw;
pub mod theory;

pub use matrix_mw::MmwGame;
pub use scalar_mw::Hedge;
pub use theory::{
    jain_yao_iterations, ours_decision_iterations, ours_total_iterations, paper_constants,
    width_dependent_iterations, PaperConstants,
};
