//! Per-solve telemetry: iteration counts, analytic work/depth, trajectories.
//!
//! Every experiment in EXPERIMENTS.md reads these numbers, so the solver
//! records them unconditionally (the overhead is a handful of scalars per
//! iteration).

use crate::solution::ExitReason;
use psdp_parallel::Cost;
use std::time::Duration;

/// Telemetry from one `decisionPSDP` run.
#[derive(Debug, Clone)]
pub struct SolveStats {
    /// Iterations executed (the paper's `t` at exit).
    pub iterations: usize,
    /// Why the loop stopped.
    pub exit: ExitReason,
    /// `‖x‖₁` at exit.
    pub final_norm1: f64,
    /// The `K` threshold in force.
    pub k_threshold: f64,
    /// The step size `α` in force.
    pub alpha: f64,
    /// The iteration cap in force (`R` or practical `max_iters`).
    pub iteration_cap: usize,
    /// Sum of analytic engine costs (work–depth model, Corollary 1.2).
    pub cost: Cost,
    /// Engine name (`exact` / `taylor` / `taylor+jl`).
    pub engine: &'static str,
    /// Mean number of coordinates stepped per iteration.
    pub avg_selected: f64,
    /// Largest `κ` (spectral-norm bound for `Ψ`) passed to the engine —
    /// compare against the Lemma 3.2 bound `(1+10ε)K`.
    pub kappa_max: f64,
    /// Full from-scratch rebuilds the incremental Ψ maintenance performed
    /// (see [`crate::psi::PsiMaintainer`]).
    pub psi_rebuilds: usize,
    /// Largest relative drift between the incrementally maintained Ψ and a
    /// from-scratch rebuild, across all rebuilds (0 when none happened).
    pub psi_max_drift: f64,
    /// The decision threshold `σ` this solve tested (1.0 for the classic
    /// one-shot [`crate::decision_psdp`]).
    pub threshold: f64,
    /// Whether any iterations were replayed from the session's warm-start
    /// trajectory cache (see `crate::solver`).
    pub warm_started: bool,
    /// Live engine evaluations performed (excludes replayed rounds).
    pub engine_evals: usize,
    /// Iterations replayed from the warm-start cache (engine evaluation
    /// skipped; results are bitwise-identical to a cold run).
    pub replayed: usize,
    /// Wall-clock time of the solve.
    pub wall: Duration,
    /// Sampled `‖x(t)‖₁` trajectory (every `sample_every` iterations).
    pub norm_trajectory: Vec<(usize, f64)>,
}

impl SolveStats {
    /// Mean analytic work per iteration.
    pub fn work_per_iteration(&self) -> f64 {
        if self.iterations == 0 {
            0.0
        } else {
            self.cost.work / self.iterations as f64
        }
    }
}

/// Per-bracket breakdown of one [`crate::Session::optimize`] /
/// [`crate::solve_packing`] run: which threshold was tested, which side was
/// certified, where the bracket moved, and what the warm start saved.
#[derive(Debug, Clone)]
pub struct BracketStats {
    /// The tested threshold `σ = √(lo·hi)`.
    pub sigma: f64,
    /// Whether the call certified the dual (feasible) side.
    pub dual_side: bool,
    /// Certified lower bound after this bracket's update.
    pub lo: f64,
    /// Certified upper bound after this bracket's update.
    pub hi: f64,
    /// Total iterations spent on this bracket, including any discarded
    /// warm attempts and certificate-seeking escalations.
    pub iterations: usize,
    /// Live engine evaluations spent on this bracket, including discarded
    /// attempts.
    pub engine_evals: usize,
    /// Rounds replayed from the warm-start cache, including discarded
    /// attempts.
    pub replayed: usize,
    /// Whether any solve of this bracket used a warm start (replay or
    /// iterate continuation).
    pub warm_started: bool,
    /// Wall-clock time spent on this bracket, including discarded
    /// attempts.
    pub wall: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_per_iteration_handles_zero() {
        let s = SolveStats {
            iterations: 0,
            exit: ExitReason::IterationCap,
            final_norm1: 0.0,
            k_threshold: 1.0,
            alpha: 0.1,
            iteration_cap: 10,
            cost: Cost::ZERO,
            engine: "exact",
            avg_selected: 0.0,
            kappa_max: 0.0,
            psi_rebuilds: 0,
            psi_max_drift: 0.0,
            threshold: 1.0,
            warm_started: false,
            engine_evals: 0,
            replayed: 0,
            wall: Duration::ZERO,
            norm_trajectory: vec![],
        };
        assert_eq!(s.work_per_iteration(), 0.0);
    }
}
