//! Error type for the solver crate.

use psdp_linalg::LinalgError;
use std::fmt;

/// Errors surfaced by instance validation and solving.
#[derive(Debug, Clone)]
pub enum PsdpError {
    /// The instance is malformed (mismatched dims, zero/negative traces,
    /// empty constraint set, non-PSD inputs…). Carries a human explanation.
    InvalidInstance(String),
    /// An underlying dense linear algebra kernel failed.
    Linalg(LinalgError),
    /// The bisection in `approxPSDP` exhausted its budget without bracketing
    /// the optimum to the requested accuracy.
    BisectionStalled {
        /// Best certified lower bound at the time of failure.
        lo: f64,
        /// Best certified upper bound at the time of failure.
        hi: f64,
    },
}

impl fmt::Display for PsdpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PsdpError::InvalidInstance(s) => write!(f, "invalid instance: {s}"),
            PsdpError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
            PsdpError::BisectionStalled { lo, hi } => {
                write!(f, "bisection stalled with bracket [{lo:.6e}, {hi:.6e}]")
            }
        }
    }
}

impl std::error::Error for PsdpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PsdpError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for PsdpError {
    fn from(e: LinalgError) -> Self {
        PsdpError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = PsdpError::InvalidInstance("empty".into());
        assert!(e.to_string().contains("empty"));
        let e: PsdpError = LinalgError::NotFinite.into();
        assert!(e.to_string().contains("linear algebra"));
        let e = PsdpError::BisectionStalled { lo: 1.0, hi: 2.0 };
        assert!(e.to_string().contains("bracket"));
    }
}
