//! The `psdp-bin-1` binary instance format — zero-copy reads, streaming
//! writes, and the structural content hash the serving stack fingerprints
//! with (DESIGN.md §14).
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic        8 bytes   b"PSDPBIN1"
//! version      u32       1
//! family       u32       0 = packing, 1 = mixed
//! dims         u64       packing: dim; mixed: pack_dim, cover_dim
//! n            u64       constraint count (coordinates for mixed)
//! content_hash u64       structural 4-lane FNV-1a hash (see below)
//! records      [len u64][payload] × n   (mixed: n pack then n cover)
//! trailer      u64       4-lane FNV-1a over every preceding byte
//! ```
//!
//! Record payloads start with a `u32` kind tag (0 diagonal, 1 sparse,
//! 2 factor, 3 dense) followed by the constraint's canonical CSR / dense
//! storage verbatim (`f64` bit patterns, `u64` indices). The **content
//! hash** is the structural hash of `[family byte, dims, n, record
//! payloads…]` — a function of the *parsed* instance, so a text submission
//! and a binary submission of the same instance hash identically, and the
//! serving cache can fingerprint a binary request straight off the header
//! without decoding, let alone re-serializing, anything.
//!
//! Both integrity hashes use **4-lane FNV-1a** ([`FnvWide`]'s scheme):
//! byte `p` of the logical stream feeds lane `p mod 4`, and the final
//! value folds the four lane states plus the stream length through a
//! plain FNV-1a chain. A single FNV-1a chain is latency-bound near
//! 1 ns/byte (each step is an xor feeding a 64-bit multiply); four
//! independent chains pipeline on one core, so verification runs ~4×
//! faster with the same per-byte, order-sensitive error detection. The
//! scalar [`fnv1a`] stays as the cheap short-key hash (cache keys,
//! fingerprint mixing).
//!
//! The reader validates in place over the input `&[u8]`: header guards
//! first (`checked_mul` on every size precomputation, the same
//! `MAX_DIM`-family limits as the text reader), then the length-prefixed
//! record table is sliced without copying, the trailer and content hash are
//! verified, and only then are records decoded — in parallel via rayon,
//! one independent decoder per record slice. Decoded constraints pass
//! through the same [`PackingInstance::new`] / [`MixedInstance::new`]
//! structural validation as the text path, so the two formats accept
//! exactly the same instances.

use crate::error::PsdpError;
use crate::instance::{MixedInstance, PackingInstance};
use crate::io::{MAX_DENSE_DIM, MAX_DIM, MAX_PREALLOC};
use psdp_linalg::Mat;
use psdp_sparse::{Csr, FactorPsd, PsdMatrix};
use rayon::prelude::*;

/// Magic bytes opening every `psdp-bin-1` file or frame.
pub const BIN_MAGIC: &[u8; 8] = b"PSDPBIN1";
/// Current (only) binary format version.
pub const BIN_VERSION: u32 = 1;
/// Family tag for packing instances.
pub const BIN_FAMILY_PACKING: u32 = 0;
/// Family tag for mixed packing–covering instances.
pub const BIN_FAMILY_MIXED: u32 = 1;

const KIND_DIAGONAL: u32 = 0;
const KIND_SPARSE: u32 = 1;
const KIND_FACTOR: u32 = 2;
const KIND_DENSE: u32 = 3;

const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn fnv_step(h: u64, b: u8) -> u64 {
    (h ^ u64::from(b)).wrapping_mul(FNV_PRIME)
}

/// FNV-1a 64-bit hash of a byte slice (the repo-wide fingerprint hash;
/// the serving cache re-exports this).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut f = Fnv1a::new();
    f.update(bytes);
    f.finish()
}

/// Incremental FNV-1a 64 hasher, for hashing discontiguous slices without
/// concatenating them.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// Start a fresh hash at the FNV offset basis.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    /// Absorb `bytes`.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h = fnv_step(h, b);
        }
        self.0 = h;
    }

    /// The hash of everything absorbed so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Incremental **4-lane** FNV-1a 64: byte `p` of the logical stream feeds
/// lane `p mod 4`; [`FnvWide::finish`] folds the lane states and the
/// stream length through a plain FNV-1a chain. Exactly deterministic and
/// split-invariant (absorbing one slice or the same bytes in pieces gives
/// the same value), but roughly 4× the throughput of a single chain —
/// four xor-multiply dependency chains pipeline on one core. This is the
/// hash behind the binary format's trailer and the structural content
/// hash; it is *not* interchangeable with [`fnv1a`].
#[derive(Debug, Clone)]
pub struct FnvWide {
    /// Lane states, rotated so the lane absorbing the next byte is first.
    lanes: [u64; 4],
    /// Total bytes absorbed.
    pos: u64,
}

impl FnvWide {
    /// Start a fresh hash (per-lane bases are distinct one-byte chains).
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        FnvWide { lanes: [0, 1, 2, 3].map(|i| fnv_step(FNV_BASIS, i)), pos: 0 }
    }

    /// Absorb `bytes`.
    pub fn update(&mut self, bytes: &[u8]) {
        let [mut a, mut b, mut c, mut d] = self.lanes;
        let mut chunks = bytes.chunks_exact(4);
        for q in &mut chunks {
            // Slice pattern, not indexing: chunks_exact guarantees len 4.
            if let &[x0, x1, x2, x3] = q {
                a = fnv_step(a, x0);
                b = fnv_step(b, x1);
                c = fnv_step(c, x2);
                d = fnv_step(d, x3);
            }
        }
        let mut lanes = [a, b, c, d];
        let rem = chunks.remainder();
        for (lane, &x) in lanes.iter_mut().zip(rem) {
            *lane = fnv_step(*lane, x);
        }
        // Keep the invariant: the lane the next byte feeds sits first.
        lanes.rotate_left(rem.len());
        self.lanes = lanes;
        self.pos = self.pos.wrapping_add(bytes.len() as u64);
    }

    /// The hash of everything absorbed so far.
    pub fn finish(&self) -> u64 {
        // Undo the rotation so lanes fold in stream order.
        let mut lanes = self.lanes;
        lanes.rotate_right((self.pos % 4) as usize);
        let mut h = FNV_BASIS;
        for lane in lanes {
            for byte in lane.to_le_bytes() {
                h = fnv_step(h, byte);
            }
        }
        for byte in self.pos.to_le_bytes() {
            h = fnv_step(h, byte);
        }
        h
    }
}

/// One-shot [`FnvWide`] over a byte slice — the binary format's trailer
/// and whole-buffer integrity hash.
pub fn fnv_wide(bytes: &[u8]) -> u64 {
    let mut f = FnvWide::new();
    f.update(bytes);
    f.finish()
}

/// Does this byte slice start with the `psdp-bin-1` magic? The sniff the
/// CLI's `--format auto` and the frame loaders use.
pub fn is_binary_instance(bytes: &[u8]) -> bool {
    bytes.len() >= BIN_MAGIC.len() && &bytes[..BIN_MAGIC.len()] == BIN_MAGIC
}

/// Family tag of a binary instance (`BIN_FAMILY_PACKING` /
/// `BIN_FAMILY_MIXED`) read straight off the header, or `None` when the
/// bytes are not a plausible `psdp-bin-1` header.
pub fn binary_family(bytes: &[u8]) -> Option<u32> {
    if !is_binary_instance(bytes) || rd_u32(bytes, 8)? != BIN_VERSION {
        return None;
    }
    rd_u32(bytes, 12)
}

/// Content hash read straight off a binary header without decoding the
/// payload — the hash-first admission path of the serving stack. The full
/// reader re-verifies it against the records, so trusting it for *routing*
/// is sound: a lying header fails validation before any solver runs.
pub fn peek_content_hash(bytes: &[u8]) -> Option<u64> {
    match binary_family(bytes)? {
        BIN_FAMILY_PACKING => rd_u64(bytes, 32),
        BIN_FAMILY_MIXED => rd_u64(bytes, 40),
        _ => None,
    }
}

fn rd_u32(b: &[u8], off: usize) -> Option<u32> {
    let s = b.get(off..off.checked_add(4)?)?;
    s.try_into().ok().map(u32::from_le_bytes)
}

fn rd_u64(b: &[u8], off: usize) -> Option<u64> {
    let s = b.get(off..off.checked_add(8)?)?;
    s.try_into().ok().map(u64::from_le_bytes)
}

fn bad(off: usize, msg: &str) -> PsdpError {
    PsdpError::InvalidInstance(format!("psdp-bin-1 byte {off}: {msg}"))
}

/// Bounds-checked little-endian cursor over the input buffer. Every read
/// is via `slice::get` — malformed input surfaces as a typed error with a
/// byte offset, never a panic (audit rule R1).
struct Bytes<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Bytes<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Bytes { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], PsdpError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| bad(self.pos, &format!("{what}: length overflows")))?;
        let s = self.buf.get(self.pos..end).ok_or_else(|| {
            bad(self.pos, &format!("{what}: truncated ({n} bytes declared, input ends)"))
        })?;
        self.pos = end;
        Ok(s)
    }

    fn u32(&mut self, what: &str) -> Result<u32, PsdpError> {
        let s = self.take(4, what)?;
        s.try_into().map(u32::from_le_bytes).map_err(|_| bad(self.pos, what))
    }

    fn u64(&mut self, what: &str) -> Result<u64, PsdpError> {
        let s = self.take(8, what)?;
        s.try_into().map(u64::from_le_bytes).map_err(|_| bad(self.pos, what))
    }

    /// Read a `u64` that must fit under `cap` (an untrusted size field).
    fn size(&mut self, cap: usize, what: &str) -> Result<usize, PsdpError> {
        let at = self.pos;
        let v = self.u64(what)?;
        if v > cap as u64 {
            return Err(bad(at, &format!("{what} {v} exceeds limit {cap}")));
        }
        Ok(v as usize)
    }

    fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }
}

/// `a * b` with overflow as a typed error (satellite: every `nnz * 8`-style
/// size precomputation on untrusted headers goes through here).
fn checked_mul(a: usize, b: usize, off: usize, what: &str) -> Result<usize, PsdpError> {
    a.checked_mul(b).ok_or_else(|| bad(off, &format!("{what}: size {a}*{b} overflows")))
}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Canonical record payload for one constraint — also the exact byte
/// sequence the structural content hash absorbs for it.
fn record_bytes(a: &PsdMatrix) -> Vec<u8> {
    let mut out = Vec::new();
    match a {
        PsdMatrix::Diagonal(d) => {
            push_u32(&mut out, KIND_DIAGONAL);
            let nz: Vec<(usize, f64)> =
                d.iter().enumerate().filter(|(_, &v)| v != 0.0).map(|(j, &v)| (j, v)).collect();
            push_u64(&mut out, nz.len() as u64);
            for (j, v) in nz {
                push_u64(&mut out, j as u64);
                push_u64(&mut out, v.to_bits());
            }
        }
        PsdMatrix::Sparse(s) => {
            push_u32(&mut out, KIND_SPARSE);
            push_u64(&mut out, s.nnz() as u64);
            for &p in s.row_ptr() {
                push_u64(&mut out, p as u64);
            }
            for &c in s.col_idx() {
                push_u64(&mut out, c as u64);
            }
            for &v in s.values() {
                push_u64(&mut out, v.to_bits());
            }
        }
        PsdMatrix::Factor(fp) => {
            let q = fp.factor();
            push_u32(&mut out, KIND_FACTOR);
            push_u64(&mut out, q.ncols() as u64);
            push_u64(&mut out, q.nnz() as u64);
            for &p in q.row_ptr() {
                push_u64(&mut out, p as u64);
            }
            for &c in q.col_idx() {
                push_u64(&mut out, c as u64);
            }
            for &v in q.values() {
                push_u64(&mut out, v.to_bits());
            }
        }
        PsdMatrix::Dense(m) => {
            push_u32(&mut out, KIND_DENSE);
            for &v in m.as_slice() {
                push_u64(&mut out, v.to_bits());
            }
        }
    }
    out
}

fn packing_hash_parts(dim: usize, n: usize, records: &[impl AsRef<[u8]>]) -> u64 {
    let mut f = FnvWide::new();
    f.update(&[BIN_FAMILY_PACKING as u8]);
    f.update(&(dim as u64).to_le_bytes());
    f.update(&(n as u64).to_le_bytes());
    for r in records {
        f.update(r.as_ref());
    }
    f.finish()
}

fn mixed_hash_parts(
    pack_dim: usize,
    cover_dim: usize,
    n: usize,
    records: &[impl AsRef<[u8]>],
) -> u64 {
    let mut f = FnvWide::new();
    f.update(&[BIN_FAMILY_MIXED as u8]);
    f.update(&(pack_dim as u64).to_le_bytes());
    f.update(&(cover_dim as u64).to_le_bytes());
    f.update(&(n as u64).to_le_bytes());
    for r in records {
        f.update(r.as_ref());
    }
    f.finish()
}

/// Structural content hash of a packing instance — identical whether the
/// instance arrived as text or as `psdp-bin-1` bytes. Text requests compute
/// this once at parse time; binary requests carry it in their header.
pub fn packing_content_hash(inst: &PackingInstance) -> u64 {
    let records: Vec<Vec<u8>> = inst.mats().iter().map(record_bytes).collect();
    packing_hash_parts(inst.dim(), inst.n(), &records)
}

/// Structural content hash of a mixed instance (see
/// [`packing_content_hash`]).
pub fn mixed_content_hash(inst: &MixedInstance) -> u64 {
    let records: Vec<Vec<u8>> =
        inst.pack().mats().iter().chain(inst.cover().mats()).map(record_bytes).collect();
    mixed_hash_parts(inst.pack_dim(), inst.cover_dim(), inst.n(), &records)
}

fn write_preamble(out: &mut Vec<u8>, family: u32) {
    out.extend_from_slice(BIN_MAGIC);
    push_u32(out, BIN_VERSION);
    push_u32(out, family);
}

fn write_records_and_trailer(out: &mut Vec<u8>, records: &[Vec<u8>]) {
    for r in records {
        push_u64(out, r.len() as u64);
        out.extend_from_slice(r);
    }
    let trailer = fnv_wide(out);
    push_u64(out, trailer);
}

/// Serialize a packing instance to `psdp-bin-1` bytes.
pub fn write_instance_bin(inst: &PackingInstance) -> Vec<u8> {
    let records: Vec<Vec<u8>> = inst.mats().iter().map(record_bytes).collect();
    let hash = packing_hash_parts(inst.dim(), inst.n(), &records);
    let mut out = Vec::new();
    write_preamble(&mut out, BIN_FAMILY_PACKING);
    push_u64(&mut out, inst.dim() as u64);
    push_u64(&mut out, inst.n() as u64);
    push_u64(&mut out, hash);
    write_records_and_trailer(&mut out, &records);
    out
}

/// Serialize a mixed instance to `psdp-bin-1` bytes.
pub fn write_mixed_instance_bin(inst: &MixedInstance) -> Vec<u8> {
    let records: Vec<Vec<u8>> =
        inst.pack().mats().iter().chain(inst.cover().mats()).map(record_bytes).collect();
    let hash = mixed_hash_parts(inst.pack_dim(), inst.cover_dim(), inst.n(), &records);
    let mut out = Vec::new();
    write_preamble(&mut out, BIN_FAMILY_MIXED);
    push_u64(&mut out, inst.pack_dim() as u64);
    push_u64(&mut out, inst.cover_dim() as u64);
    push_u64(&mut out, inst.n() as u64);
    push_u64(&mut out, hash);
    write_records_and_trailer(&mut out, &records);
    out
}

// ---------------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------------

fn check_magic_version(c: &mut Bytes<'_>) -> Result<(), PsdpError> {
    let magic = c.take(BIN_MAGIC.len(), "magic")?;
    if magic != BIN_MAGIC {
        return Err(bad(0, "bad magic (not a psdp-bin-1 file)"));
    }
    let version = c.u32("version")?;
    if version != BIN_VERSION {
        return Err(bad(8, &format!("unsupported version {version} (want {BIN_VERSION})")));
    }
    Ok(())
}

/// Slice the length-prefixed record table without copying.
fn slice_records<'a>(c: &mut Bytes<'a>, count: usize) -> Result<Vec<&'a [u8]>, PsdpError> {
    let mut records = Vec::with_capacity(count.min(MAX_PREALLOC));
    for i in 0..count {
        let at = c.pos;
        let len = c.u64("record length")?;
        // The record must fit in what's left of the buffer (minus the
        // 8-byte trailer); comparing against `remaining` keeps the check
        // overflow-free without trusting the declared length.
        if len > c.remaining() as u64 {
            return Err(bad(
                at,
                &format!("record {i}: declared {len} bytes but only {} remain", c.remaining()),
            ));
        }
        records.push(c.take(len as usize, "record payload")?);
    }
    Ok(records)
}

/// Verify the whole-file trailer checksum and that nothing follows it.
fn check_trailer(c: &mut Bytes<'_>, bytes: &[u8]) -> Result<(), PsdpError> {
    let body_end = c.pos;
    let want = fnv_wide(bytes.get(..body_end).unwrap_or(&[]));
    let at = c.pos;
    let got = c.u64("trailer checksum")?;
    if got != want {
        return Err(bad(
            at,
            &format!("checksum mismatch (stored {got:#018x}, computed {want:#018x})"),
        ));
    }
    if c.remaining() != 0 {
        return Err(bad(c.pos, &format!("{} trailing bytes after checksum", c.remaining())));
    }
    Ok(())
}

/// Split an 8-byte chunk into its `u64` (the chunk is always 8 bytes —
/// callers iterate `chunks_exact(8)` — but the conversion stays checked).
#[inline]
fn chunk_u64(q: &[u8], at: usize, what: &str) -> Result<u64, PsdpError> {
    <[u8; 8]>::try_from(q).map(u64::from_le_bytes).map_err(|_| bad(at, what))
}

fn decode_diagonal(c: &mut Bytes<'_>, dim: usize) -> Result<PsdMatrix, PsdpError> {
    let nnz = c.size(dim, "diagonal nnz")?;
    let at = c.pos;
    // One bulk slice for all (coordinate, value) pairs, decoded by chunks.
    let raw = c.take(checked_mul(nnz, 16, at, "diagonal entries")?, "diagonal entries")?;
    let mut d = vec![0.0; dim];
    let mut prev: Option<usize> = None;
    for pair in raw.chunks_exact(16) {
        let (jq, vq) = pair.split_at(8);
        let j = chunk_u64(jq, at, "diagonal coordinate")?;
        if j >= dim as u64 {
            return Err(bad(at, &format!("diagonal coordinate {j} exceeds limit {}", dim - 1)));
        }
        let j = j as usize;
        if prev.is_some_and(|p| p >= j) {
            return Err(bad(at, "diagonal coordinates not strictly increasing"));
        }
        prev = Some(j);
        let v = f64::from_bits(chunk_u64(vq, at, "diagonal value")?);
        if let Some(slot) = d.get_mut(j) {
            *slot = v;
        }
    }
    Ok(PsdMatrix::Diagonal(d))
}

fn decode_csr(
    c: &mut Bytes<'_>,
    nrows: usize,
    ncols: usize,
    nnz: usize,
    what: &str,
) -> Result<Csr, PsdpError> {
    let at = c.pos;
    // All three array byte-sizes via checked_mul before any allocation.
    let rp_len = checked_mul(nrows.saturating_add(1), 8, at, what)?;
    let idx_len = checked_mul(nnz, 8, at, what)?;
    let need = rp_len
        .checked_add(checked_mul(idx_len, 2, at, what)?)
        .ok_or_else(|| bad(at, &format!("{what}: total size overflows")))?;
    if need > c.remaining() {
        return Err(bad(
            at,
            &format!("{what}: needs {need} bytes but only {} remain", c.remaining()),
        ));
    }
    // Bulk-slice each array once, then convert by 8-byte chunks: no
    // per-element cursor bookkeeping on the hot path.
    let read_u64s = |c: &mut Bytes<'_>, count: usize, cap: usize, label: &str| {
        let at = c.pos;
        let raw = c.take(count.saturating_mul(8), label)?;
        let mut out = Vec::with_capacity(count.min(MAX_PREALLOC));
        for q in raw.chunks_exact(8) {
            let v = chunk_u64(q, at, label)?;
            if v > cap as u64 {
                return Err(bad(at, &format!("{label} {v} exceeds limit {cap}")));
            }
            out.push(v as usize);
        }
        Ok::<Vec<usize>, PsdpError>(out)
    };
    let row_ptr = read_u64s(c, nrows + 1, nnz, &format!("{what} row_ptr entry"))?;
    let col_idx = read_u64s(c, nnz, ncols.saturating_sub(1), &format!("{what} column index"))?;
    let raw = c.take(idx_len, &format!("{what} values"))?;
    let mut values = Vec::with_capacity(nnz.min(MAX_PREALLOC));
    // `chunks_exact(8)` only yields full chunks, so the conversion cannot
    // fail; skipping the fallible path keeps this loop allocation-free.
    for q in raw.chunks_exact(8) {
        if let Ok(arr) = <[u8; 8]>::try_from(q) {
            values.push(f64::from_bits(u64::from_le_bytes(arr)));
        }
    }
    Csr::try_from_raw(nrows, ncols, row_ptr, col_idx, values)
        .map_err(|msg| bad(at, &format!("{what}: {msg}")))
}

fn decode_dense(c: &mut Bytes<'_>, dim: usize) -> Result<PsdMatrix, PsdpError> {
    let at = c.pos;
    if dim > MAX_DENSE_DIM {
        return Err(bad(at, &format!("dense block dim {dim} exceeds limit {MAX_DENSE_DIM}")));
    }
    let cells = checked_mul(dim, dim, at, "dense block")?;
    let need = checked_mul(cells, 8, at, "dense block")?;
    if need != c.remaining() {
        return Err(bad(
            at,
            &format!("dense block: needs {need} bytes, record has {}", c.remaining()),
        ));
    }
    let payload = c.take(need, "dense values")?;
    let mut m = Mat::zeros(dim, dim);
    for (slot, chunk) in m.as_mut_slice().iter_mut().zip(payload.chunks_exact(8)) {
        if let Ok(arr) = <[u8; 8]>::try_from(chunk) {
            *slot = f64::from_bits(u64::from_le_bytes(arr));
        }
    }
    // Same post-read normalization as the text path; bitwise identity on
    // exactly-symmetric input, so roundtrips stay exact.
    m.symmetrize();
    Ok(PsdMatrix::Dense(m))
}

fn decode_record(payload: &[u8], dim: usize) -> Result<PsdMatrix, PsdpError> {
    let mut c = Bytes::new(payload);
    let kind = c.u32("record kind")?;
    let mat = match kind {
        KIND_DIAGONAL => decode_diagonal(&mut c, dim)?,
        KIND_SPARSE => {
            let nnz = c.size(MAX_DIM.saturating_mul(MAX_DIM), "sparse nnz")?;
            PsdMatrix::Sparse(decode_csr(&mut c, dim, dim, nnz, "sparse")?)
        }
        KIND_FACTOR => {
            let rank = c.size(MAX_DIM, "factor rank")?;
            if rank == 0 {
                return Err(bad(4, "factor rank must be >= 1"));
            }
            let nnz = c.size(MAX_DIM.saturating_mul(MAX_DIM), "factor nnz")?;
            PsdMatrix::Factor(FactorPsd::new(decode_csr(&mut c, dim, rank, nnz, "factor")?))
        }
        KIND_DENSE => decode_dense(&mut c, dim)?,
        other => return Err(bad(0, &format!("unknown record kind {other}"))),
    };
    if c.remaining() != 0 {
        return Err(bad(c.pos, &format!("{} trailing bytes in record", c.remaining())));
    }
    Ok(mat)
}

/// Decode record slices in parallel (order-preserving map+collect; the
/// first error in record order wins, so messages are deterministic).
fn decode_records(records: &[&[u8]], dims: &[usize]) -> Result<Vec<PsdMatrix>, PsdpError> {
    let decoded: Vec<Result<PsdMatrix, PsdpError>> = (0..records.len())
        .into_par_iter()
        .map(|i| {
            let r = records.get(i).copied().unwrap_or(&[]);
            let dim = dims.get(i).copied().unwrap_or(0);
            decode_record(r, dim)
                .map_err(|e| PsdpError::InvalidInstance(format!("record {i}: {e}")))
        })
        .collect();
    decoded.into_iter().collect()
}

/// Parse `psdp-bin-1` packing bytes, returning the instance and its
/// verified structural content hash.
///
/// # Errors
/// [`PsdpError::InvalidInstance`] with a byte-offset-anchored message on
/// any malformed input (bad magic, truncated blob, checksum or content-hash
/// mismatch, overflowing header sizes, trailing bytes, or a constraint that
/// fails structural validation).
pub fn read_instance_bin(bytes: &[u8]) -> Result<(PackingInstance, u64), PsdpError> {
    let mut c = Bytes::new(bytes);
    check_magic_version(&mut c)?;
    let at = c.pos;
    let family = c.u32("family")?;
    if family != BIN_FAMILY_PACKING {
        return Err(bad(at, &format!("family {family} is not a packing instance")));
    }
    let dim = c.size(MAX_DIM, "dim")?;
    let n = c.size(MAX_PREALLOC, "constraint count")?;
    let content_hash = c.u64("content hash")?;
    let records = slice_records(&mut c, n)?;
    check_trailer(&mut c, bytes)?;
    let computed = packing_hash_parts(dim, n, &records);
    if computed != content_hash {
        return Err(bad(
            32,
            &format!(
                "content hash mismatch (stored {content_hash:#018x}, computed {computed:#018x})"
            ),
        ));
    }
    let dims = vec![dim; records.len()];
    let mats = decode_records(&records, &dims)?;
    let inst = PackingInstance::new(mats)?;
    Ok((inst, content_hash))
}

/// Parse `psdp-bin-1` mixed bytes (see [`read_instance_bin`]).
///
/// # Errors
/// [`PsdpError::InvalidInstance`] on any malformed input.
pub fn read_mixed_instance_bin(bytes: &[u8]) -> Result<(MixedInstance, u64), PsdpError> {
    let mut c = Bytes::new(bytes);
    check_magic_version(&mut c)?;
    let at = c.pos;
    let family = c.u32("family")?;
    if family != BIN_FAMILY_MIXED {
        return Err(bad(at, &format!("family {family} is not a mixed instance")));
    }
    let pack_dim = c.size(MAX_DIM, "pack-dim")?;
    let cover_dim = c.size(MAX_DIM, "cover-dim")?;
    let n = c.size(MAX_PREALLOC, "coordinate count")?;
    let content_hash = c.u64("content hash")?;
    let count =
        n.checked_mul(2).ok_or_else(|| bad(at, "coordinate count overflows record count"))?;
    let records = slice_records(&mut c, count)?;
    check_trailer(&mut c, bytes)?;
    let computed = mixed_hash_parts(pack_dim, cover_dim, n, &records);
    if computed != content_hash {
        return Err(bad(
            40,
            &format!(
                "content hash mismatch (stored {content_hash:#018x}, computed {computed:#018x})"
            ),
        ));
    }
    let mut dims = vec![pack_dim; n];
    dims.resize(count, cover_dim);
    let mats = decode_records(&records, &dims)?;
    let mut pack = mats;
    let cover = pack.split_off(n);
    let inst = MixedInstance::new(pack, cover)?;
    Ok((inst, content_hash))
}

// ---------------------------------------------------------------------------
// Structural equality (allocation-free verify-on-hit)
// ---------------------------------------------------------------------------

fn bits_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

fn mat_structural_eq(a: &PsdMatrix, b: &PsdMatrix) -> bool {
    match (a, b) {
        (PsdMatrix::Diagonal(x), PsdMatrix::Diagonal(y)) => bits_eq(x, y),
        (PsdMatrix::Sparse(x), PsdMatrix::Sparse(y)) => {
            x.nrows() == y.nrows()
                && x.ncols() == y.ncols()
                && x.row_ptr() == y.row_ptr()
                && x.col_idx() == y.col_idx()
                && bits_eq(x.values(), y.values())
        }
        (PsdMatrix::Factor(x), PsdMatrix::Factor(y)) => {
            let (qx, qy) = (x.factor(), y.factor());
            qx.nrows() == qy.nrows()
                && qx.ncols() == qy.ncols()
                && qx.row_ptr() == qy.row_ptr()
                && qx.col_idx() == qy.col_idx()
                && bits_eq(qx.values(), qy.values())
        }
        (PsdMatrix::Dense(x), PsdMatrix::Dense(y)) => {
            x.nrows() == y.nrows() && x.ncols() == y.ncols() && bits_eq(x.as_slice(), y.as_slice())
        }
        _ => false,
    }
}

/// Bitwise structural equality of two packing instances — the
/// hash-collision verifier of the serving cache. Bit-level (`to_bits`)
/// rather than `PartialEq` so `-0.0` and `0.0` stay distinct, making this
/// exactly as strong as comparing canonical serializations, with zero
/// allocation.
pub fn packing_structural_eq(a: &PackingInstance, b: &PackingInstance) -> bool {
    a.dim() == b.dim()
        && a.n() == b.n()
        && a.mats().iter().zip(b.mats()).all(|(x, y)| mat_structural_eq(x, y))
}

/// Bitwise structural equality of two mixed instances (see
/// [`packing_structural_eq`]).
pub fn mixed_structural_eq(a: &MixedInstance, b: &MixedInstance) -> bool {
    packing_structural_eq(a.pack(), b.pack()) && packing_structural_eq(a.cover(), b.cover())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{read_instance, write_instance, write_mixed_instance};

    fn sample() -> PackingInstance {
        let diag = PsdMatrix::Diagonal(vec![1.5, 0.0, 0.5]);
        let factor = PsdMatrix::Factor(FactorPsd::new(Csr::from_triplets(
            3,
            2,
            &[(0, 0, 1.0), (1, 1, 2.0), (2, 0, -1.0)],
        )));
        let sparse = PsdMatrix::Sparse(Csr::from_triplets(
            3,
            3,
            &[(0, 0, 2.0), (0, 2, -1.0), (2, 0, -1.0), (2, 2, 1.0)],
        ));
        let mut d = Mat::zeros(3, 3);
        d.rank1_update(0.7, &[1.0, 0.5, 0.0]);
        d.add_diag(0.1);
        PackingInstance::new(vec![diag, factor, sparse, PsdMatrix::Dense(d)]).unwrap()
    }

    fn sample_mixed() -> MixedInstance {
        let pack = sample().mats().to_vec();
        let cover = vec![
            PsdMatrix::Diagonal(vec![1.0, 0.5]),
            PsdMatrix::Sparse(Csr::from_triplets(
                2,
                2,
                &[(0, 0, 1.0), (0, 1, -0.5), (1, 0, -0.5), (1, 1, 1.0)],
            )),
            PsdMatrix::Diagonal(vec![0.0, 2.0]),
            PsdMatrix::Diagonal(vec![0.25, 0.25]),
        ];
        MixedInstance::new(pack, cover).unwrap()
    }

    #[test]
    fn packing_roundtrip_bitwise() {
        let inst = sample();
        let bytes = write_instance_bin(&inst);
        assert!(is_binary_instance(&bytes));
        assert_eq!(binary_family(&bytes), Some(BIN_FAMILY_PACKING));
        let (back, hash) = read_instance_bin(&bytes).unwrap();
        assert!(packing_structural_eq(&inst, &back));
        assert_eq!(hash, packing_content_hash(&inst));
        assert_eq!(peek_content_hash(&bytes), Some(hash));
        // Re-serialize: byte fixpoint.
        assert_eq!(write_instance_bin(&back), bytes);
    }

    #[test]
    fn mixed_roundtrip_bitwise() {
        let inst = sample_mixed();
        let bytes = write_mixed_instance_bin(&inst);
        assert_eq!(binary_family(&bytes), Some(BIN_FAMILY_MIXED));
        let (back, hash) = read_mixed_instance_bin(&bytes).unwrap();
        assert!(mixed_structural_eq(&inst, &back));
        assert_eq!(hash, mixed_content_hash(&inst));
        assert_eq!(peek_content_hash(&bytes), Some(hash));
        assert_eq!(write_mixed_instance_bin(&back), bytes);
    }

    #[test]
    fn text_and_binary_hash_identically() {
        let inst = sample();
        let text = write_instance(&inst);
        let parsed = read_instance(&text).unwrap();
        let bytes = write_instance_bin(&inst);
        let (from_bin, bin_hash) = read_instance_bin(&bytes).unwrap();
        assert_eq!(packing_content_hash(&parsed), bin_hash);
        assert!(packing_structural_eq(&parsed, &from_bin));
        let m = sample_mixed();
        let parsed = crate::io::read_mixed_instance(&write_mixed_instance(&m)).unwrap();
        let (_, bin_hash) = read_mixed_instance_bin(&write_mixed_instance_bin(&m)).unwrap();
        assert_eq!(mixed_content_hash(&parsed), bin_hash);
    }

    #[test]
    fn corruption_is_rejected_with_typed_errors() {
        let inst = sample();
        let bytes = write_instance_bin(&inst);

        // Bad magic.
        let mut b = bytes.clone();
        b[0] = b'X';
        assert!(read_instance_bin(&b).is_err());

        // Unsupported version.
        let mut b = bytes.clone();
        b[8] = 99;
        let e = read_instance_bin(&b).unwrap_err().to_string();
        assert!(e.contains("version"), "{e}");

        // Wrong family.
        let mut b = bytes.clone();
        b[12] = 1;
        assert!(read_instance_bin(&b).is_err());
        assert!(read_mixed_instance_bin(&b).is_err()); // checksum now stale

        // Truncation anywhere.
        for cut in [4, 20, 40, bytes.len() - 3] {
            assert!(read_instance_bin(&bytes[..cut]).is_err(), "cut at {cut}");
        }

        // Flipped payload byte (inside the final record's values, so the
        // structure still parses) -> trailer checksum catches it.
        let mut b = bytes.clone();
        let mid = bytes.len() - 16;
        b[mid] ^= 0xff;
        let e = read_instance_bin(&b).unwrap_err().to_string();
        assert!(e.contains("checksum") || e.contains("hash"), "{e}");

        // Trailing junk.
        let mut b = bytes.clone();
        b.push(0);
        assert!(read_instance_bin(&b).is_err());

        // Absurd dim header (checked guards, not allocator aborts). Patch
        // dim and fix the trailer so the guard itself is what fires.
        let mut b = bytes.clone();
        b[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        let tl = b.len() - 8;
        let fixed = fnv_wide(&b[..tl]);
        b[tl..].copy_from_slice(&fixed.to_le_bytes());
        let e = read_instance_bin(&b).unwrap_err().to_string();
        assert!(e.contains("exceeds limit"), "{e}");

        // Lying content hash with a consistent trailer.
        let mut b = bytes.clone();
        b[32..40].copy_from_slice(&0xdead_beef_u64.to_le_bytes());
        let tl = b.len() - 8;
        let fixed = fnv_wide(&b[..tl]);
        b[tl..].copy_from_slice(&fixed.to_le_bytes());
        let e = read_instance_bin(&b).unwrap_err().to_string();
        assert!(e.contains("content hash mismatch"), "{e}");
    }

    #[test]
    fn structural_eq_distinguishes_negative_zero() {
        let a = PackingInstance::new(vec![PsdMatrix::Sparse(Csr::from_triplets(
            2,
            2,
            &[(0, 0, 1.0), (0, 1, 0.0), (1, 0, 0.0), (1, 1, 1.0)],
        ))])
        .unwrap();
        let b = PackingInstance::new(vec![PsdMatrix::Sparse(Csr::from_triplets(
            2,
            2,
            &[(0, 0, 1.0), (0, 1, -0.0), (1, 0, -0.0), (1, 1, 1.0)],
        ))])
        .unwrap();
        assert!(!packing_structural_eq(&a, &b), "-0.0 must stay distinct from 0.0");
        assert_ne!(packing_content_hash(&a), packing_content_hash(&b));
        assert!(packing_structural_eq(&a, &a));
    }

    #[test]
    fn peek_refuses_non_binary() {
        assert_eq!(peek_content_hash(b"psdp 1\n"), None);
        assert_eq!(binary_family(b"PSDPBIN"), None);
        assert!(!is_binary_instance(b"psdp 1\n"));
    }
}
