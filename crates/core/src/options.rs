//! Solver configuration.
//!
//! Two regimes are supported (see DESIGN.md §3):
//!
//! * [`ConstantsMode::PaperStrict`] — Algorithm 3.1 verbatim: `K`, `α`, `R`
//!   exactly as defined in the paper. This is what the iteration-count
//!   experiments (E1/E2) run, because those experiments are about the
//!   *bounds*.
//! * [`ConstantsMode::Practical`] — same update rule with an aggressive step
//!   size and certificate-based early exit. Outputs are always verified
//!   numerically, so this mode trades the worst-case guarantee for speed
//!   without ever returning an uncertified answer.

pub use psdp_expdot::EngineKind;

/// How the algorithm's constants `(K, α, R)` are chosen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConstantsMode {
    /// The paper's constants: `K = (1+ln n)/ε`, `α = ε/(K(1+10ε))`,
    /// `R = (32/(εα)) ln n`.
    PaperStrict,
    /// Practical constants: the same `K`, a boosted step `α' = boost·α`
    /// (default boost 16), and an iteration cap `max_iters`.
    Practical {
        /// Multiplier on the paper's `α`.
        alpha_boost: f64,
        /// Hard iteration cap replacing `R`.
        max_iters: usize,
    },
}

impl ConstantsMode {
    /// Reasonable practical defaults (boost 16, cap 20 000).
    pub fn practical_default() -> Self {
        ConstantsMode::Practical { alpha_boost: 16.0, max_iters: 20_000 }
    }
}

/// Which coordinates are stepped each iteration, and by how much.
///
/// `Standard` is the paper's Algorithm 3.1; the others are clearly-labelled
/// ablations/extensions evaluated by experiment E10 (their outputs are still
/// certificate-checked, see DESIGN.md §3 "Phases").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UpdateRule {
    /// Algorithm 3.1: every `i` with `P•Aᵢ ≤ 1+ε` steps by `α·xᵢ`.
    Standard,
    /// Dynamic-bucketing heuristic inspired by \[WMMR15\]: coordinate `i`
    /// steps by `α·min((1+ε−ratioᵢ)/ε · boost, boost)·xᵢ`, so constraints
    /// far below threshold move up to `boost×` faster.
    Bucketed {
        /// Maximum step multiplier.
        boost: f64,
    },
    /// Only the `k` smallest-ratio coordinates step (sequential-flavored).
    TopK {
        /// Number of coordinates stepped per iteration.
        k: usize,
    },
    /// Recompute the matrix exponential only every `period` iterations,
    /// reusing the stale eligible set in between (lazy-exponential ablation).
    Stale {
        /// Refresh period in iterations (≥ 1).
        period: usize,
    },
}

/// Full configuration for one `decisionPSDP` run.
#[derive(Debug, Clone, Copy)]
pub struct DecisionOptions {
    /// Target accuracy `ε ∈ (0, 1)` of the decision problem.
    pub eps: f64,
    /// Constants regime.
    pub mode: ConstantsMode,
    /// Engine for the `exp(Φ)•A` primitive.
    pub engine: EngineKind,
    /// Update rule (Standard = the paper).
    pub rule: UpdateRule,
    /// Allow returning a primal solution as soon as the running average
    /// certifies feasibility (sound; saves iterations in practical mode).
    pub early_exit: bool,
    /// Accumulate the dense primal matrix `Y = avg P(τ)` when `m` is at most
    /// this limit (0 disables). Needed if you want the primal *matrix* and
    /// not just its constraint dot products.
    pub primal_matrix_dim_limit: usize,
    /// Full-rebuild cadence of the incremental `Ψ = Σ xᵢAᵢ` maintenance:
    /// every this-many iterations the solver recomputes Ψ from scratch and
    /// records the floating-point drift of the incremental accumulation
    /// (`0` = never rebuild). See [`crate::psi::PsiMaintainer`] and
    /// `DESIGN.md` §4.
    pub psi_rebuild_period: usize,
    /// Root seed for sketches.
    pub seed: u64,
}

impl DecisionOptions {
    /// Paper-faithful configuration at accuracy `eps` with the exact engine.
    pub fn strict(eps: f64) -> Self {
        DecisionOptions {
            eps,
            mode: ConstantsMode::PaperStrict,
            engine: EngineKind::Exact,
            rule: UpdateRule::Standard,
            early_exit: false,
            primal_matrix_dim_limit: 512,
            psi_rebuild_period: 64,
            seed: 0,
        }
    }

    /// Practical configuration at accuracy `eps` with the exact engine.
    pub fn practical(eps: f64) -> Self {
        DecisionOptions {
            eps,
            mode: ConstantsMode::practical_default(),
            engine: EngineKind::Exact,
            rule: UpdateRule::Standard,
            early_exit: true,
            primal_matrix_dim_limit: 512,
            psi_rebuild_period: 64,
            seed: 0,
        }
    }

    /// Builder-style engine override.
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Builder-style update-rule override.
    pub fn with_rule(mut self, rule: UpdateRule) -> Self {
        self.rule = rule;
        self
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validate parameter ranges.
    ///
    /// # Errors
    /// [`crate::PsdpError::InvalidInstance`] on out-of-range values.
    pub fn validate(&self) -> Result<(), crate::PsdpError> {
        if !(self.eps > 0.0 && self.eps < 1.0) {
            return Err(crate::PsdpError::InvalidInstance(format!(
                "eps must be in (0,1), got {}",
                self.eps
            )));
        }
        if let ConstantsMode::Practical { alpha_boost, max_iters } = self.mode {
            if alpha_boost.is_nan() || alpha_boost <= 0.0 || max_iters == 0 {
                return Err(crate::PsdpError::InvalidInstance(
                    "practical mode needs alpha_boost > 0 and max_iters > 0".into(),
                ));
            }
        }
        match self.rule {
            // `!boost.is_finite()` (not just NaN): an infinite boost would
            // make the Bucketed step multiplier unbounded, overshooting the
            // iterate to ±∞ instead of failing fast here.
            UpdateRule::Bucketed { boost } if !boost.is_finite() || boost < 1.0 => Err(
                crate::PsdpError::InvalidInstance("bucketed boost must be finite and ≥ 1".into()),
            ),
            UpdateRule::TopK { k: 0 } => {
                Err(crate::PsdpError::InvalidInstance("top-k needs k ≥ 1".into()))
            }
            UpdateRule::Stale { period: 0 } => {
                Err(crate::PsdpError::InvalidInstance("stale period must be ≥ 1".into()))
            }
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        assert!(DecisionOptions::strict(0.2).validate().is_ok());
        assert!(DecisionOptions::practical(0.1).validate().is_ok());
    }

    #[test]
    fn rejects_bad_eps() {
        assert!(DecisionOptions::strict(0.0).validate().is_err());
        assert!(DecisionOptions::strict(1.0).validate().is_err());
    }

    #[test]
    fn rejects_bad_rules() {
        let o = DecisionOptions::practical(0.1).with_rule(UpdateRule::TopK { k: 0 });
        assert!(o.validate().is_err());
        let o = DecisionOptions::practical(0.1).with_rule(UpdateRule::Bucketed { boost: 0.5 });
        assert!(o.validate().is_err());
        let o = DecisionOptions::practical(0.1).with_rule(UpdateRule::Stale { period: 0 });
        assert!(o.validate().is_err());
    }

    /// Non-finite nested rule parameters must be rejected, not looped on:
    /// an infinite or NaN Bucketed boost (and non-positive/zero nested
    /// values generally) would otherwise surface as overshoot or panics
    /// deep inside the iterate loop.
    #[test]
    fn rejects_non_finite_rule_parameters() {
        for boost in [f64::INFINITY, f64::NEG_INFINITY, f64::NAN, 0.0, -3.0] {
            let o = DecisionOptions::practical(0.1).with_rule(UpdateRule::Bucketed { boost });
            assert!(o.validate().is_err(), "boost {boost} accepted");
        }
        // Valid boundary: boost = 1.0 is the smallest allowed multiplier.
        let o = DecisionOptions::practical(0.1).with_rule(UpdateRule::Bucketed { boost: 1.0 });
        assert!(o.validate().is_ok());
    }

    #[test]
    fn builders_chain() {
        let o = DecisionOptions::practical(0.1)
            .with_engine(EngineKind::Taylor { eps: 0.05 })
            .with_rule(UpdateRule::TopK { k: 2 })
            .with_seed(9);
        assert_eq!(o.seed, 9);
        assert!(matches!(o.engine, EngineKind::Taylor { .. }));
        assert!(o.validate().is_ok());
    }
}
