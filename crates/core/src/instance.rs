//! Problem instances: the general positive SDP (1.1) and the normalized
//! packing form of Figure 2.

use crate::error::PsdpError;
use psdp_linalg::Mat;
use psdp_sparse::PsdMatrix;
use rayon::prelude::*;

/// The constraint storage type of the solver: a PSD matrix in one of four
/// formats — dense `Mat`, sparse symmetric [`psdp_sparse::Csr`], factorized
/// [`psdp_sparse::FactorPsd`] (`A = QQᵀ`), or nonnegative diagonal. Storage
/// never changes semantics, only cost: the incremental-Ψ scatter path and
/// the engines exploit whatever structure the chosen variant exposes.
pub type Constraint = PsdMatrix;

/// Constraint count below which [`PackingInstance::weighted_sum`] stays
/// sequential (chunked partial accumulators cost `m²` each to merge).
const PARALLEL_WEIGHTED_SUM_MIN_N: usize = 128;

/// Fixed constraints-per-chunk of the parallel [`PackingInstance::weighted_sum`]
/// path. Deliberately **not** derived from the thread count: the
/// floating-point summation grouping (and therefore the result, bitwise)
/// must be identical across thread pools, preserving the repo's
/// thread-count-invariance contract (`tests/determinism.rs`).
const WEIGHTED_SUM_CHUNK: usize = 64;

/// A general positive SDP in the paper's standard primal form (1.1):
///
/// ```text
///   minimize   C • Y
///   subject to Aᵢ • Y ≥ bᵢ   (i = 1…n),   Y ⪰ 0,
/// ```
///
/// with `C, Aᵢ ⪰ 0` and `bᵢ ≥ 0`.
#[derive(Debug, Clone)]
pub struct PositiveSdp {
    /// Objective matrix `C` (PSD).
    pub objective: PsdMatrix,
    /// Constraint matrices `Aᵢ` (PSD).
    pub constraints: Vec<PsdMatrix>,
    /// Right-hand sides `bᵢ ≥ 0`.
    pub rhs: Vec<f64>,
}

impl PositiveSdp {
    /// Validate shapes and sign conditions.
    ///
    /// # Errors
    /// [`PsdpError::InvalidInstance`] with an explanation.
    pub fn validate(&self) -> Result<(), PsdpError> {
        let m = self.objective.dim();
        if self.constraints.is_empty() {
            return Err(PsdpError::InvalidInstance("no constraints".into()));
        }
        if self.constraints.len() != self.rhs.len() {
            return Err(PsdpError::InvalidInstance(format!(
                "{} constraints but {} right-hand sides",
                self.constraints.len(),
                self.rhs.len()
            )));
        }
        for (i, a) in self.constraints.iter().enumerate() {
            if a.dim() != m {
                return Err(PsdpError::InvalidInstance(format!(
                    "constraint {i} has dim {} != objective dim {m}",
                    a.dim()
                )));
            }
        }
        for (i, &b) in self.rhs.iter().enumerate() {
            if !b.is_finite() || b < 0.0 {
                return Err(PsdpError::InvalidInstance(format!("rhs b[{i}] = {b} not in [0,∞)")));
            }
        }
        Ok(())
    }

    /// Matrix dimension `m`.
    pub fn dim(&self) -> usize {
        self.objective.dim()
    }

    /// Number of constraints `n`.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Evaluate the objective `C • Y` for a candidate primal `Y`.
    pub fn objective_value(&self, y: &Mat) -> f64 {
        self.objective.dot_dense(y)
    }
}

/// A normalized **packing** instance (the dual side of Figure 2):
///
/// ```text
///   maximize 1ᵀx   subject to   Σᵢ xᵢ Aᵢ ⪯ I,   x ≥ 0,
/// ```
///
/// equivalently the covering primal `min Tr Y` s.t. `Aᵢ • Y ≥ 1`. This is
/// the form `decisionPSDP` (Algorithm 3.1) consumes.
#[derive(Debug, Clone)]
pub struct PackingInstance {
    mats: Vec<Constraint>,
    dim: usize,
}

impl PackingInstance {
    /// Build and validate an instance.
    ///
    /// # Errors
    /// [`PsdpError::InvalidInstance`] on an empty set, dimension mismatches,
    /// or a constraint with non-positive trace (a zero matrix makes the
    /// packing value unbounded, so it is rejected rather than silently
    /// accepted).
    pub fn new(mats: Vec<Constraint>) -> Result<Self, PsdpError> {
        if mats.is_empty() {
            return Err(PsdpError::InvalidInstance("no constraint matrices".into()));
        }
        let dim = mats[0].dim();
        if dim == 0 {
            return Err(PsdpError::InvalidInstance("zero-dimensional matrices".into()));
        }
        for (i, a) in mats.iter().enumerate() {
            if a.dim() != dim {
                return Err(PsdpError::InvalidInstance(format!(
                    "matrix {i} has dim {} != {dim}",
                    a.dim()
                )));
            }
            if let Err(msg) = a.validate_cheap() {
                return Err(PsdpError::InvalidInstance(format!("matrix {i}: {msg}")));
            }
            let tr = a.trace();
            if !tr.is_finite() || tr <= 0.0 {
                return Err(PsdpError::InvalidInstance(format!(
                    "matrix {i} has trace {tr}; every Aᵢ must be PSD and nonzero"
                )));
            }
        }
        Ok(PackingInstance { mats, dim })
    }

    /// The constraint matrices.
    pub fn mats(&self) -> &[Constraint] {
        &self.mats
    }

    /// Number of constraints `n`.
    pub fn n(&self) -> usize {
        self.mats.len()
    }

    /// Matrix dimension `m`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Total storage nonzeros across constraints (the `q` of Theorem 4.1
    /// when all constraints are factorized).
    pub fn total_nnz(&self) -> usize {
        self.mats.iter().map(|a| a.storage_nnz()).sum()
    }

    /// `Σᵢ xᵢ Aᵢ` as a dense symmetric matrix.
    ///
    /// Large storage-heavy instances accumulate rayon-parallel over
    /// fixed-size constraint chunks (one partial `m × m` accumulator per
    /// chunk, summed in chunk order at the end); this is the full-rebuild
    /// path of the incremental Ψ maintenance in
    /// [`crate::psi::PsiMaintainer`]. The chunking — and therefore the
    /// floating-point summation grouping and the bitwise result — depends
    /// only on the instance, never on the thread count. The parallel path
    /// engages only when the scatter work (total storage nonzeros)
    /// dominates the `m²`-per-chunk accumulator merge cost, so sparse
    /// instances with large `m` stay on the cheap sequential scatter.
    pub fn weighted_sum(&self, x: &[f64]) -> Mat {
        assert_eq!(x.len(), self.n(), "weighted_sum: coefficient length");
        let merge_cost = self.n().div_ceil(WEIGHTED_SUM_CHUNK) * self.dim * self.dim;
        let parallel_pays =
            self.n() >= PARALLEL_WEIGHTED_SUM_MIN_N && self.total_nnz() >= 2 * merge_cost;
        let mut out = if parallel_pays {
            let partials: Vec<Mat> = self
                .mats
                .par_chunks(WEIGHTED_SUM_CHUNK)
                .enumerate()
                .map(|(ci, part)| {
                    let mut acc = Mat::zeros(self.dim, self.dim);
                    for (j, a) in part.iter().enumerate() {
                        let xi = x[ci * WEIGHTED_SUM_CHUNK + j];
                        if xi != 0.0 {
                            a.add_scaled_into(&mut acc, xi);
                        }
                    }
                    acc
                })
                .collect();
            let mut total = Mat::zeros(self.dim, self.dim);
            for p in partials {
                total.axpy(1.0, &p);
            }
            total
        } else {
            let mut acc = Mat::zeros(self.dim, self.dim);
            for (a, &xi) in self.mats.iter().zip(x) {
                if xi != 0.0 {
                    a.add_scaled_into(&mut acc, xi);
                }
            }
            acc
        };
        out.symmetrize();
        out
    }

    /// Return a copy with every matrix scaled by `sigma > 0` (the bisection
    /// of `approxPSDP` tests "OPT ≥ σ" by scaling and asking the ε-decision
    /// problem at threshold 1).
    pub fn scaled(&self, sigma: f64) -> PackingInstance {
        assert!(sigma > 0.0 && sigma.is_finite(), "scale must be positive");
        let mats = self
            .mats
            .iter()
            .map(|a| {
                let mut b = a.clone();
                b.scale(sigma);
                b
            })
            .collect();
        PackingInstance { mats, dim: self.dim }
    }

    /// Restrict to a subset of constraint indices (Lemma 2.2 trace pruning).
    ///
    /// # Errors
    /// [`PsdpError::InvalidInstance`] if `keep` is empty or out of range.
    pub fn restrict(&self, keep: &[usize]) -> Result<PackingInstance, PsdpError> {
        if keep.is_empty() {
            return Err(PsdpError::InvalidInstance("restriction keeps no constraints".into()));
        }
        let mut mats = Vec::with_capacity(keep.len());
        for &i in keep {
            if i >= self.n() {
                return Err(PsdpError::InvalidInstance(format!("index {i} out of range")));
            }
            mats.push(self.mats[i].clone());
        }
        Ok(PackingInstance { mats, dim: self.dim })
    }
}

/// A normalized **mixed packing–covering** instance (Jain–Yao):
///
/// ```text
///   find x ≥ 0   with   Σᵢ xᵢ Pᵢ ⪯ I   and   Σᵢ xᵢ Cᵢ ⪰ σ·I,
/// ```
///
/// one packing matrix `Pᵢ` and one covering matrix `Cᵢ` per coordinate.
/// The two sides live in independent spaces: `Pᵢ` are `pack_dim × pack_dim`
/// and `Cᵢ` are `cover_dim × cover_dim`, and the dimensions need not match.
/// [`crate::mixed::solve_mixed`] answers the feasibility question for a
/// given `σ` and optimizes the largest feasible `σ*` by certified
/// bisection.
///
/// Internally each side is a [`PackingInstance`] so the mixed solver
/// reuses the packing stack wholesale: the same storage formats, the same
/// incremental [`crate::psi::PsiMaintainer`] on both aggregates
/// `Ψ_P = Σ xᵢPᵢ` and `Ψ_C = Σ xᵢCᵢ`, and the same engines. Every `Pᵢ`
/// and `Cᵢ` must therefore be PSD with positive trace (a coordinate with a
/// zero matrix on either side is rejected; scale a tiny multiple of the
/// identity in if a side is genuinely unconstrained).
#[derive(Debug, Clone)]
pub struct MixedInstance {
    pack: PackingInstance,
    cover: PackingInstance,
}

impl MixedInstance {
    /// Build and validate a mixed instance from per-coordinate packing and
    /// covering matrices (`pack[k]` and `cover[k]` belong to coordinate
    /// `k`).
    ///
    /// # Errors
    /// [`PsdpError::InvalidInstance`] when the two sides disagree on the
    /// coordinate count, or either side fails [`PackingInstance::new`]
    /// validation (empty set, dimension mismatch, non-PSD storage,
    /// non-positive trace).
    pub fn new(pack: Vec<Constraint>, cover: Vec<Constraint>) -> Result<Self, PsdpError> {
        if pack.len() != cover.len() {
            return Err(PsdpError::InvalidInstance(format!(
                "mixed instance needs one packing and one covering matrix per coordinate, got \
                 {} packing vs {} covering",
                pack.len(),
                cover.len()
            )));
        }
        let pack = PackingInstance::new(pack)
            .map_err(|e| PsdpError::InvalidInstance(format!("packing side: {e}")))?;
        let cover = PackingInstance::new(cover)
            .map_err(|e| PsdpError::InvalidInstance(format!("covering side: {e}")))?;
        Ok(MixedInstance { pack, cover })
    }

    /// The packing side `P₁ … Pₙ` as a packing instance.
    pub fn pack(&self) -> &PackingInstance {
        &self.pack
    }

    /// The covering side `C₁ … Cₙ` as a packing instance.
    pub fn cover(&self) -> &PackingInstance {
        &self.cover
    }

    /// Number of coordinates `n` (shared by both sides).
    pub fn n(&self) -> usize {
        self.pack.n()
    }

    /// Packing-side matrix dimension.
    pub fn pack_dim(&self) -> usize {
        self.pack.dim()
    }

    /// Covering-side matrix dimension.
    pub fn cover_dim(&self) -> usize {
        self.cover.dim()
    }

    /// Total storage nonzeros across both sides.
    pub fn total_nnz(&self) -> usize {
        self.pack.total_nnz() + self.cover.total_nnz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(d: &[f64]) -> PsdMatrix {
        PsdMatrix::Diagonal(d.to_vec())
    }

    #[test]
    fn packing_instance_validates() {
        let inst = PackingInstance::new(vec![diag(&[1.0, 0.0]), diag(&[0.0, 2.0])]).unwrap();
        assert_eq!(inst.n(), 2);
        assert_eq!(inst.dim(), 2);
        assert_eq!(inst.total_nnz(), 2);
    }

    #[test]
    fn rejects_empty_and_mismatched() {
        assert!(PackingInstance::new(vec![]).is_err());
        let r = PackingInstance::new(vec![diag(&[1.0]), diag(&[1.0, 1.0])]);
        assert!(r.is_err());
    }

    #[test]
    fn rejects_zero_trace() {
        let r = PackingInstance::new(vec![diag(&[0.0, 0.0])]);
        assert!(matches!(r, Err(PsdpError::InvalidInstance(_))));
    }

    #[test]
    fn rejects_structurally_non_psd_input() {
        // Negative diagonal entry.
        let r = PackingInstance::new(vec![diag(&[1.0, -0.5])]);
        assert!(matches!(r, Err(PsdpError::InvalidInstance(_))));
        // NaN entry.
        let r = PackingInstance::new(vec![diag(&[f64::NAN, 1.0])]);
        assert!(matches!(r, Err(PsdpError::InvalidInstance(_))));
        // Asymmetric dense matrix.
        let m = Mat::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]);
        let r = PackingInstance::new(vec![PsdMatrix::Dense(m)]);
        assert!(matches!(r, Err(PsdpError::InvalidInstance(_))));
        // Negative dense diagonal (necessary-condition check).
        let m = Mat::from_rows(&[&[-1.0, 0.0], &[0.0, 1.0]]);
        let r = PackingInstance::new(vec![PsdMatrix::Dense(m)]);
        assert!(matches!(r, Err(PsdpError::InvalidInstance(_))));
    }

    #[test]
    fn weighted_sum_matches_hand_calc() {
        let inst = PackingInstance::new(vec![diag(&[1.0, 0.0]), diag(&[0.0, 3.0])]).unwrap();
        let s = inst.weighted_sum(&[2.0, 0.5]);
        assert_eq!(s[(0, 0)], 2.0);
        assert_eq!(s[(1, 1)], 1.5);
        assert_eq!(s[(0, 1)], 0.0);
    }

    #[test]
    fn weighted_sum_parallel_path_matches_sequential() {
        // n ≥ 128 dense-stored constraints trigger the chunked rayon path
        // (total nnz = n·m² dominates the merge cost); compare against a
        // hand-rolled sequential accumulation.
        let n = 150;
        let dim = 6;
        let mats: Vec<PsdMatrix> = (0..n)
            .map(|i| {
                let mut a = Mat::zeros(dim, dim);
                let mut v = vec![0.0; dim];
                v[i % dim] = 1.0 + (i % 4) as f64 * 0.5;
                v[(i + 2) % dim] = 0.5;
                a.rank1_update(1.0, &v);
                PsdMatrix::Dense(a)
            })
            .collect();
        let inst = PackingInstance::new(mats).unwrap();
        assert!(inst.total_nnz() >= 2 * inst.n().div_ceil(64) * dim * dim, "gate must engage");
        let x: Vec<f64> = (0..n).map(|i| 0.01 * (1 + i % 7) as f64).collect();
        let got = inst.weighted_sum(&x);
        let mut want = Mat::zeros(dim, dim);
        for (a, &xi) in inst.mats().iter().zip(&x) {
            a.add_scaled_into(&mut want, xi);
        }
        want.symmetrize();
        for (g, w) in got.as_slice().iter().zip(want.as_slice()) {
            assert!((g - w).abs() < 1e-12, "{g} vs {w}");
        }
    }

    #[test]
    fn scaled_multiplies_matrices() {
        let inst = PackingInstance::new(vec![diag(&[1.0, 2.0])]).unwrap();
        let s = inst.scaled(3.0);
        assert_eq!(s.mats()[0].trace(), 9.0);
    }

    #[test]
    fn restrict_picks_subset() {
        let inst =
            PackingInstance::new(vec![diag(&[1.0, 0.0]), diag(&[0.0, 1.0]), diag(&[1.0, 1.0])])
                .unwrap();
        let sub = inst.restrict(&[0, 2]).unwrap();
        assert_eq!(sub.n(), 2);
        assert_eq!(sub.mats()[1].trace(), 2.0);
        assert!(inst.restrict(&[]).is_err());
        assert!(inst.restrict(&[7]).is_err());
    }

    #[test]
    fn mixed_instance_validates_and_exposes_sides() {
        let inst = MixedInstance::new(
            vec![diag(&[1.0, 0.0]), diag(&[0.0, 2.0])],
            vec![diag(&[0.5, 0.5, 0.0]), diag(&[0.0, 0.0, 1.0])],
        )
        .unwrap();
        assert_eq!(inst.n(), 2);
        assert_eq!(inst.pack_dim(), 2);
        assert_eq!(inst.cover_dim(), 3);
        assert_eq!(inst.total_nnz(), 2 + 3);
        assert_eq!(inst.pack().n(), inst.cover().n());
    }

    #[test]
    fn mixed_instance_rejects_mismatch_and_zero_sides() {
        // Coordinate counts must match.
        assert!(MixedInstance::new(vec![diag(&[1.0])], vec![]).is_err());
        // A zero matrix on either side is rejected (positive trace).
        let r = MixedInstance::new(vec![diag(&[0.0, 0.0])], vec![diag(&[1.0, 0.0])]);
        assert!(matches!(r, Err(PsdpError::InvalidInstance(msg)) if msg.contains("packing side")));
        let r = MixedInstance::new(vec![diag(&[1.0, 0.0])], vec![diag(&[0.0, 0.0])]);
        assert!(matches!(r, Err(PsdpError::InvalidInstance(msg)) if msg.contains("covering side")));
    }

    #[test]
    fn positive_sdp_validation() {
        let sdp = PositiveSdp {
            objective: diag(&[1.0, 1.0]),
            constraints: vec![diag(&[1.0, 0.0])],
            rhs: vec![1.0],
        };
        assert!(sdp.validate().is_ok());
        assert_eq!(sdp.dim(), 2);
        assert_eq!(sdp.num_constraints(), 1);

        let bad = PositiveSdp {
            objective: diag(&[1.0, 1.0]),
            constraints: vec![diag(&[1.0, 0.0])],
            rhs: vec![-1.0],
        };
        assert!(bad.validate().is_err());

        let mismatch = PositiveSdp {
            objective: diag(&[1.0, 1.0]),
            constraints: vec![diag(&[1.0, 0.0]), diag(&[1.0, 0.0])],
            rhs: vec![1.0],
        };
        assert!(mismatch.validate().is_err());
    }

    #[test]
    fn objective_value_dot() {
        let sdp = PositiveSdp {
            objective: diag(&[2.0, 1.0]),
            constraints: vec![diag(&[1.0, 1.0])],
            rhs: vec![1.0],
        };
        let y = Mat::from_diag(&[1.0, 4.0]);
        assert_eq!(sdp.objective_value(&y), 6.0);
    }
}
