//! Session-based solver API: prepare once, solve many times.
//!
//! [`decision_psdp`](crate::decision_psdp) is a one-shot free function:
//! every call re-validates the instance, re-resolves
//! [`EngineKind::Auto`](psdp_expdot::EngineKind), re-factorizes every
//! constraint, rebuilds `Ψ` from scratch, and restarts `x` at `x⁰`. The
//! geometric bisection of `approxPSDP` (Lemma 2.2) makes `O(log(n/ε))` such
//! calls on the *same* constraint set, differing only in the threshold `σ`,
//! so all of that preparation is repaid nothing across brackets.
//!
//! This module splits the solver into:
//!
//! * [`Solver`] — the prepared problem: instance validated once, engine
//!   constructed (and `Auto` resolved, support-local factorizations built)
//!   once, per-constraint traces and `λmax` estimates cached once.
//! * [`Session`] — mutable solve state: the iterate, the incremental
//!   [`PsiMaintainer`], the warm-start trajectory cache, and the registered
//!   [`Observer`]s. [`Session::solve`] answers one ε-decision question
//!   "is the packing optimum ≥ `threshold`?"; [`Session::optimize`] runs
//!   the full certified bisection over one session.
//!
//! ## Cross-bracket warm starts
//!
//! Two complementary mechanisms, designed so that the certified brackets
//! of [`Session::optimize`] are **bitwise-identical** to a cold-start run
//! (the first unconditionally; the second whenever warm and cold resolve
//! each tested threshold to the same strong certificate — see below;
//! `tests/warmstart_bisection.rs` and experiment E11 verify the equality
//! end to end):
//!
//! **1. The trajectory replay cache (bitwise-neutral, per-solve).**
//! The decision loop at threshold `σ` nominally runs on the scaled
//! constraints `σAᵢ`. In *original* coordinates `u = σ·x` the whole state
//! is `σ`-invariant:
//!
//! * start point: `u⁰ᵢ = σ·x⁰ᵢ = σ/(n·Tr(σAᵢ)) = 1/(n·Tr Aᵢ)`,
//! * maintained matrix: `Ψ = Σ xᵢ·σAᵢ = Σ uᵢAᵢ`,
//! * engine output: `exp(Ψ)•(σAᵢ) = σ·(exp(Ψ)•Aᵢ)`.
//!
//! The threshold enters only through the eligibility test
//! `σ·ρᵢ(t) ≤ 1+ε` (where `ρᵢ = (exp Ψ • Aᵢ)/Tr exp Ψ`) and the exit test
//! `‖u‖₁ > σK`. Two cold solves therefore share a bitwise-identical
//! trajectory prefix for as long as they select the same step vectors. The
//! session caches, per round, the engine output `ρ(t)` and the step vector
//! taken; a later cold solve *replays* the cached rounds — skipping the
//! engine evaluation, the dominant per-round cost — until its own step
//! vector (computed from the cached `ρ` under the *new* threshold)
//! diverges. Because replay re-derives every decision from cached engine
//! values, a replayed solve returns **bitwise-identical results** to a
//! from-scratch one — only [`SolveStats::engine_evals`] /
//! [`SolveStats::replayed`] differ. Replay pays off when thresholds are
//! close (repeated or clustered queries over one session); it is disabled
//! for solves that accumulate the dense primal matrix `Y` (the cache holds
//! dot products, not `m×m` probability matrices).
//!
//! **2. Iterate continuation in the bisection (certified-quantized).**
//! Distant thresholds share essentially no trajectory prefix, so
//! [`Session::optimize`] additionally warm-starts each bracket's iterate
//! from the previous bracket's final `u`, rescaled so its threshold-frame
//! mass is `β·K` (β = 1/2) — the "previous iterate rescaled to remain
//! feasible for the new threshold". A warm-started trajectory differs
//! numerically from the cold one, so the bisection only accepts its
//! outcome when it is **strong** — a dual with measured value ≥ 1
//! (certifying `OPT ≥ σ` exactly) or a primal with min-dot ≥ 1 (certifying
//! `OPT ≤ σ·(1+pruning slack)` exactly) — and then applies the *quantized*
//! bracket update `lo ← σ` / `hi ← σ·(1+slack)`, a deterministic function
//! of `σ` alone. Weak warm outcomes are discarded and the bracket re-runs
//! cold (replay-assisted), reproducing exactly what the cold bisection
//! would have done; a weak *cold* outcome escalates to a deterministic
//! certificate-seeking continuation before falling back to the
//! measured-value update.
//!
//! Strong certificates are true statements about `OPT` regardless of the
//! path that found them, so warm and cold bisections walk the same `σ`
//! sequence — and report the same certified bracket — **whenever each
//! tested `σ` resolves to the same strong side on both paths** (or both
//! end weak, where the shared fallback is cold-deterministic). The two
//! sides are simultaneously certifiable only when `σ` sits within the
//! solver's ε-resolution of `OPT`; there, and when only one path finds a
//! strong certificate at all, warm and cold could in principle diverge —
//! both brackets stay individually certified. The warm-start unit tests,
//! the `tests/warmstart_bisection.rs` property test, and experiment E11
//! check that on the tested families the brackets are in fact equal bit
//! for bit, while the warm run reaches each certificate in far fewer
//! live iterations (the cold path must ramp `‖x‖₁` from `‖x⁰‖₁ ≪ 1` to
//! `K` at rate `(1+α)` per round). Warm attempts and the escalation
//! engage only in practical constants mode: under
//! [`ConstantsMode::PaperStrict`] the dual is scaled by `(1+10ε)K` while
//! the exit fires just above `K`, so a strong dual is unreachable and
//! strict-mode bisections run every bracket cold with measured-value
//! updates.
//!
//! ## Observers
//!
//! [`Observer`]s registered on a session receive [`IterationEvent`]s from
//! inside the iterate loop and [`PhaseEvent`]s at solve/bracket
//! boundaries; an observer can stop a solve early by returning
//! [`ObserverControl::Stop`] (the solve exits with
//! [`ExitReason::ObserverStopped`] and an *uncertified* averaged primal).
//! Telemetry, progress streaming, and early-stop injection therefore no
//! longer require forking the solver loop.

use crate::approx::{ApproxOptions, PackingReport};
use crate::decision::DecisionResult;
use crate::error::PsdpError;
use crate::instance::PackingInstance;
use crate::options::{ConstantsMode, DecisionOptions, UpdateRule};
use crate::psi::PsiMaintainer;
use crate::solution::{DualSolution, ExitReason, Outcome, PrimalSolution};
use crate::stats::{BracketStats, SolveStats};
use psdp_expdot::{Engine, EngineKind, ExpDots};
use psdp_linalg::{lambda_max_upper_bound, sym_eigen, vecops, Mat};
use psdp_mmw::paper_constants;
use psdp_parallel::Cost;
use std::sync::Arc;
use std::time::Instant;

/// Upper bound on the floats retained by the warm-start trajectory cache.
/// Each cached round stores up to `2n` floats (an `n`-length dot-product
/// vector plus an `n`-length step vector), so the cap corresponds to
/// ≈ 32 MB of `f64`s.
const CACHE_MAX_FLOATS: usize = 1 << 22;

/// Threshold-frame `‖x‖₁` mass (as a fraction of the dual-exit threshold
/// `K`) a warm-started bracket iterate is rescaled to. Half of `K` leaves
/// the loop room to re-balance the iterate before any exit can trigger.
const WARM_MASS_FRACTION: f64 = 0.5;

/// Builder for a prepared [`Solver`].
///
/// Obtained from [`Solver::builder`]; configure with
/// [`SolverBuilder::options`] and finish with [`SolverBuilder::build`].
#[derive(Debug, Clone)]
pub struct SolverBuilder<'i> {
    inst: &'i PackingInstance,
    opts: DecisionOptions,
}

impl<'i> SolverBuilder<'i> {
    /// Set the decision options (engine, constants mode, update rule, …)
    /// the solver prepares for. The engine kind and sketch seed are fixed
    /// at [`SolverBuilder::build`] time; per-solve overrides passed to
    /// [`Session::solve_with`] may change everything else.
    pub fn options(mut self, opts: DecisionOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Validate the options, resolve [`EngineKind::Auto`] against the
    /// instance's storage profile, and construct the engine (including any
    /// support-local constraint factorizations) exactly once.
    ///
    /// # Errors
    /// Option validation failures and constraint factorization failures.
    pub fn build(self) -> Result<Solver<'i>, PsdpError> {
        self.opts.validate()?;
        let engine = Arc::new(Engine::new(self.opts.engine, self.inst.mats(), self.opts.seed)?);
        Self::assemble(self.inst, self.opts, engine)
    }

    /// Like [`SolverBuilder::build`], but reuse an already-prepared engine
    /// instead of constructing one — the amortization hook the serving
    /// layer's fingerprint cache relies on (`psdp-serve`): factorizations
    /// and `Auto` resolution are paid once per distinct instance, not once
    /// per request.
    ///
    /// The engine **must** have been built (via [`SolverBuilder::build`] on
    /// an earlier solver, read back with [`Solver::engine_handle`]) from
    /// the same constraint set. That cannot be fully re-verified here, so
    /// this checks everything observable — dimension, seed, and that the
    /// engine's concrete kind equals what resolving the requested kind
    /// against this instance would produce — and the caller is responsible
    /// for keying its cache on the full instance identity (see
    /// `DESIGN.md` §10 on cache-key soundness).
    ///
    /// # Errors
    /// Option validation failures, or an engine inconsistent with this
    /// instance/options pair.
    pub fn build_with_engine(self, engine: Arc<Engine>) -> Result<Solver<'i>, PsdpError> {
        self.opts.validate()?;
        if engine.dim() != self.inst.dim() {
            return Err(PsdpError::InvalidInstance(format!(
                "prepared engine has dim {}, instance has dim {}",
                engine.dim(),
                self.inst.dim()
            )));
        }
        if engine.seed() != self.opts.seed {
            return Err(PsdpError::InvalidInstance(format!(
                "prepared engine was built with seed {}, options ask for seed {}",
                engine.seed(),
                self.opts.seed
            )));
        }
        let want = self.opts.engine.resolve(self.inst.dim(), self.inst.total_nnz());
        if engine.kind() != want {
            return Err(PsdpError::InvalidInstance(format!(
                "prepared engine kind {:?} does not match requested kind {:?}",
                engine.kind(),
                want
            )));
        }
        Self::assemble(self.inst, self.opts, engine)
    }

    fn assemble(
        inst: &'i PackingInstance,
        opts: DecisionOptions,
        engine: Arc<Engine>,
    ) -> Result<Solver<'i>, PsdpError> {
        let traces: Vec<f64> = inst.mats().iter().map(|a| a.trace()).collect();
        let lambda_caps: Vec<f64> =
            inst.mats().iter().map(|a| 1.0 / a.lambda_max_est().max(1e-300)).collect();
        Ok(Solver { inst, opts, engine, traces, lambda_caps })
    }
}

/// A prepared positive-SDP solver bound to one [`PackingInstance`].
///
/// Construction work — validation, engine resolution, constraint
/// factorization, per-constraint scalars — happens once here; all solves
/// run through [`Session`]s created by [`Solver::session`].
///
/// ```
/// use psdp_core::{DecisionOptions, PackingInstance, Solver};
/// use psdp_sparse::PsdMatrix;
///
/// let inst = PackingInstance::new(vec![
///     PsdMatrix::Diagonal(vec![1.0, 0.0]),
///     PsdMatrix::Diagonal(vec![0.0, 1.0]),
/// ])?;
/// let solver = Solver::builder(&inst).options(DecisionOptions::practical(0.2)).build()?;
/// let mut session = solver.session();
/// // "Is the packing optimum ≥ 1?" — yes (it is 2): a dual is certified.
/// let res = session.solve(1.0)?;
/// assert!(res.outcome.dual().is_some());
/// // "Is it ≥ 3?" — no: the same prepared engine answers the other side.
/// let res = session.solve(3.0)?;
/// assert!(res.outcome.primal().is_some());
/// # Ok::<(), psdp_core::PsdpError>(())
/// ```
pub struct Solver<'i> {
    inst: &'i PackingInstance,
    opts: DecisionOptions,
    engine: Arc<Engine>,
    traces: Vec<f64>,
    lambda_caps: Vec<f64>,
}

impl<'i> Solver<'i> {
    /// Start building a solver for `inst`.
    pub fn builder(inst: &'i PackingInstance) -> SolverBuilder<'i> {
        SolverBuilder { inst, opts: DecisionOptions::practical(0.1) }
    }

    /// The instance this solver was prepared for.
    pub fn instance(&self) -> &PackingInstance {
        self.inst
    }

    /// The options the solver was built with.
    pub fn options(&self) -> &DecisionOptions {
        &self.opts
    }

    /// The concrete engine kind in use ([`EngineKind::Auto`] is resolved at
    /// build time).
    pub fn engine_kind(&self) -> EngineKind {
        self.engine.kind()
    }

    /// A shareable handle to the prepared engine (factorizations included).
    /// Hand this to [`SolverBuilder::build_with_engine`] to prepare another
    /// solver for the *same* constraint set without redoing the work.
    pub fn engine_handle(&self) -> Arc<Engine> {
        Arc::clone(&self.engine)
    }

    /// Open a fresh session (empty warm-start cache, no observers).
    pub fn session(&self) -> Session<'i, '_> {
        Session {
            solver: self,
            cache: TrajectoryCache::default(),
            observers: Vec::new(),
            warm: true,
            solves: 0,
            last_u: None,
            last_mask: Vec::new(),
            last_key: None,
        }
    }
}

/// What an [`Observer`] tells the solve loop after each iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObserverControl {
    /// Keep iterating.
    Continue,
    /// Stop the solve now; it exits with [`ExitReason::ObserverStopped`].
    Stop,
}

/// Per-iteration telemetry delivered to [`Observer::on_iteration`].
///
/// All quantities are in the scaled (threshold-1) frame the decision
/// problem is stated in, matching [`SolveStats`].
#[derive(Debug, Clone, Copy)]
pub struct IterationEvent {
    /// The threshold `σ` of the running solve.
    pub threshold: f64,
    /// Iteration counter `t` (1-based).
    pub t: usize,
    /// `‖x‖₁` after this iteration's update.
    pub norm1: f64,
    /// Number of coordinates stepped this iteration.
    pub selected: usize,
    /// Spectral-norm bound `κ` passed to the engine this iteration.
    pub kappa: f64,
    /// Smallest constraint ratio `P•Aᵢ` this iteration (over active
    /// coordinates).
    pub min_ratio: f64,
    /// Whether this iteration was replayed from the warm-start cache
    /// (engine evaluation skipped).
    pub replayed: bool,
}

/// Phase-boundary events delivered to [`Observer::on_phase`].
#[derive(Debug, Clone, Copy)]
pub enum PhaseEvent<'a> {
    /// A decision solve is starting.
    SolveStarted {
        /// Threshold `σ` being tested.
        threshold: f64,
        /// Whether the warm-start cache is armed for this solve.
        warm: bool,
    },
    /// A decision solve finished; full telemetry attached.
    SolveFinished {
        /// Threshold `σ` that was tested.
        threshold: f64,
        /// The solve's telemetry.
        stats: &'a SolveStats,
    },
    /// [`Session::optimize`] moved its bracket after a decision call.
    BracketUpdated {
        /// Threshold that was tested.
        sigma: f64,
        /// Certified lower bound after the update.
        lo: f64,
        /// Certified upper bound after the update.
        hi: f64,
        /// Whether the call certified the dual (feasible) side.
        dual_side: bool,
    },
}

/// Hooks threaded through the iterate loop and the bisection.
///
/// Default implementations do nothing, so an observer only implements what
/// it needs. Observers run synchronously on the solve thread; keep
/// [`Observer::on_iteration`] cheap.
pub trait Observer {
    /// Called at solve and bracket boundaries.
    fn on_phase(&mut self, _event: &PhaseEvent<'_>) {}

    /// Called once per iteration, after the update and exit checks.
    /// Returning [`ObserverControl::Stop`] ends the solve with
    /// [`ExitReason::ObserverStopped`].
    fn on_iteration(&mut self, _event: &IterationEvent) -> ObserverControl {
        ObserverControl::Continue
    }
}

/// One cached trajectory round: the engine output (only for rounds that
/// refreshed it — `None` for stale-rule reuse rounds) and the step vector
/// the cached trajectory took.
struct CachedRound {
    dots: Option<ExpDots>,
    steps: Vec<f64>,
}

/// Options fingerprint a cached trajectory is valid for. Anything that
/// changes the per-round state evolution (or the engine inputs) must be
/// part of this key; `threshold` deliberately is not — sharing across
/// thresholds is the whole point.
#[derive(Debug, Clone, Copy, PartialEq)]
struct CacheKey {
    eps: f64,
    mode: ConstantsMode,
    rule: UpdateRule,
    psi_rebuild_period: usize,
}

impl CacheKey {
    fn of(opts: &DecisionOptions) -> CacheKey {
        CacheKey {
            eps: opts.eps,
            mode: opts.mode,
            rule: opts.rule,
            psi_rebuild_period: opts.psi_rebuild_period,
        }
    }
}

#[derive(Default)]
struct TrajectoryCache {
    key: Option<CacheKey>,
    mask: Vec<bool>,
    rounds: Vec<CachedRound>,
}

/// A stateful solve session over a prepared [`Solver`].
///
/// Owns the warm-start trajectory cache and the registered observers.
/// Create with [`Solver::session`]; run ε-decision solves with
/// [`Session::solve`] / [`Session::solve_with`] and full certified
/// optimization with [`Session::optimize`].
pub struct Session<'i, 's> {
    solver: &'s Solver<'i>,
    cache: TrajectoryCache,
    observers: Vec<Box<dyn Observer>>,
    warm: bool,
    solves: usize,
    /// Final original-coordinate iterate of the most recent solve, the
    /// seed for iterate continuation in [`Session::optimize`].
    last_u: Option<Vec<f64>>,
    /// Active mask of the most recent solve (iterate continuation requires
    /// an identical mask).
    last_mask: Vec<bool>,
    /// Options fingerprint of the most recent solve.
    last_key: Option<CacheKey>,
}

impl<'i, 's> Session<'i, 's> {
    /// Enable or disable cross-bracket warm starts (trajectory replay).
    /// Warm and cold solves return bitwise-identical results; disabling is
    /// useful for measuring the savings (experiment E11 does exactly that).
    pub fn set_warm_start(&mut self, warm: bool) {
        self.warm = warm;
    }

    /// Builder-style form of [`Session::set_warm_start`].
    #[must_use]
    pub fn with_warm_start(mut self, warm: bool) -> Self {
        self.warm = warm;
        self
    }

    /// Register an observer for subsequent solves.
    pub fn add_observer(&mut self, obs: Box<dyn Observer>) {
        self.observers.push(obs);
    }

    /// Drop the warm-start cache (subsequent solves start cold and rebuild
    /// it). Needed after switching to per-solve options the cache is not
    /// keyed for — the session does this implicitly by refusing to replay,
    /// but an explicit reset lets the new configuration take over the
    /// cache.
    pub fn reset_cache(&mut self) {
        self.cache = TrajectoryCache::default();
    }

    /// Number of rounds currently held by the warm-start cache.
    pub fn cached_rounds(&self) -> usize {
        self.cache.rounds.len()
    }

    /// Number of decision solves this session has run.
    pub fn solves(&self) -> usize {
        self.solves
    }

    /// Run the ε-decision problem "is the packing optimum ≥ `threshold`?"
    /// with the solver's build-time options.
    ///
    /// # Errors
    /// Invalid threshold, option validation, or linear-algebra failures.
    pub fn solve(&mut self, threshold: f64) -> Result<DecisionResult, PsdpError> {
        let opts = self.solver.opts;
        self.solve_with(threshold, &opts)
    }

    /// Like [`Session::solve`] with per-solve option overrides. The engine
    /// kind and sketch seed are fixed at [`SolverBuilder::build`] time and
    /// ignored here; everything else (eps, constants mode, update rule,
    /// early exit, …) takes effect for this solve only.
    ///
    /// # Errors
    /// Invalid threshold, option validation, or linear-algebra failures.
    pub fn solve_with(
        &mut self,
        threshold: f64,
        opts: &DecisionOptions,
    ) -> Result<DecisionResult, PsdpError> {
        opts.validate()?;
        self.run_decision(threshold, opts, None, None, false)
    }

    fn emit_phase(&mut self, event: &PhaseEvent<'_>) {
        for obs in &mut self.observers {
            obs.on_phase(event);
        }
    }

    /// The decision loop (Algorithm 3.1) at threshold `sigma`, optionally
    /// restricted to an active-coordinate mask (Lemma 2.2 trace pruning)
    /// and optionally starting from a warm iterate (`start`, original
    /// coordinates; replay and recording are disabled for warm starts —
    /// the cache only ever holds cold trajectories). State is kept in
    /// original coordinates `u = σ·x` (see the module docs), which is what
    /// makes the replay cache threshold-invariant.
    ///
    /// `cert_seek` switches the exit logic to *strong-certificate hunting*
    /// (the bisection's deterministic escalation for weak outcomes): the
    /// dual exit fires only once `‖x‖₁ ≥ κ·(1+1e-6)` — which guarantees
    /// the measured dual value is ≥ 1 since `λmax(Ψ) ≤ κ` — and the
    /// primal running-average check runs regardless of
    /// [`DecisionOptions::early_exit`].
    fn run_decision(
        &mut self,
        sigma: f64,
        opts: &DecisionOptions,
        mask: Option<Vec<bool>>,
        start: Option<Vec<f64>>,
        cert_seek: bool,
    ) -> Result<DecisionResult, PsdpError> {
        if !(sigma > 0.0 && sigma.is_finite()) {
            return Err(PsdpError::InvalidInstance(format!(
                "decision threshold must be positive and finite, got {sigma}"
            )));
        }
        let wall_start = Instant::now();
        self.solves += 1;
        let inst = self.solver.inst;
        let engine = &self.solver.engine;
        let n = inst.n();
        let m = inst.dim();
        let eps = opts.eps;

        let active: Vec<bool> = mask.unwrap_or_else(|| vec![true; n]);
        debug_assert_eq!(active.len(), n);
        let n_active = active.iter().filter(|&&b| b).count();
        if n_active == 0 {
            return Err(PsdpError::InvalidInstance("active-coordinate mask is empty".into()));
        }
        let active_min = |vals: &[f64]| {
            vals.iter()
                .zip(&active)
                .filter(|&(_, &a)| a)
                .fold(f64::INFINITY, |acc, (&v, _)| acc.min(v))
        };

        let pc = paper_constants(n_active, eps);
        let (k_threshold, alpha, cap) = match opts.mode {
            ConstantsMode::PaperStrict => (pc.k_threshold, pc.alpha, pc.r_cap.ceil() as usize),
            ConstantsMode::Practical { alpha_boost, max_iters } => {
                (pc.k_threshold, pc.alpha * alpha_boost, max_iters)
            }
        };
        let lemma_bound = (1.0 + 10.0 * eps) * k_threshold;

        // Original-coordinate start point u⁰ᵢ = 1/(n_active·Tr Aᵢ)
        // (σ-invariant; equals σ·x⁰ᵢ for the scaled instance), unless a
        // warm iterate was handed in. Masked coordinates are frozen at 0 —
        // exactly the Lemma 2.2 restriction.
        let warm_init = start.is_some();
        let mut x: Vec<f64> = match start {
            Some(u) => {
                debug_assert_eq!(u.len(), n);
                u
            }
            None => self
                .solver
                .traces
                .iter()
                .zip(&active)
                .map(|(&tr, &a)| if a { 1.0 / (n_active as f64 * tr) } else { 0.0 })
                .collect(),
        };
        let mut psi = PsiMaintainer::new(inst, &x, opts.psi_rebuild_period);

        let engine_kind = engine.kind();
        // Only the engines that can materialize a dense P (exact always,
        // Taylor via one extra symmetric square) feed the primal average;
        // the sketched and expm-action engines never form exp(Φ).
        let accumulate_y = opts.primal_matrix_dim_limit > 0
            && m <= opts.primal_matrix_dim_limit
            && matches!(engine_kind, EngineKind::Exact | EngineKind::Taylor { .. });
        let mut y_acc: Option<Mat> = accumulate_y.then(|| Mat::zeros(m, m));

        // Replay arming: needs a cold start, a compatible cached
        // trajectory, and no dense-Y accumulation (the cache has no P
        // matrices). Recording is allowed when extending a verified prefix
        // (replay armed) or when the cache is empty and can adopt this
        // (cold) solve.
        let key = CacheKey::of(opts);
        let compatible = self.cache.key == Some(key) && self.cache.mask == active;
        let mut replaying = self.warm && compatible && !accumulate_y && !warm_init;
        let recording = if warm_init {
            false
        } else if self.cache.rounds.is_empty() {
            self.cache.key = Some(key);
            self.cache.mask = active.clone();
            true
        } else {
            replaying
        };
        let max_rounds = (CACHE_MAX_FLOATS / (2 * n.max(1))).clamp(64, 1 << 14);

        let phase = PhaseEvent::SolveStarted { threshold: sigma, warm: replaying || warm_init };
        self.emit_phase(&phase);

        let mut dot_sums = vec![0.0_f64; n];
        let mut rounds_accumulated = 0usize;
        let mut cost_total = Cost::ZERO;
        let mut selected_total = 0usize;
        let mut kappa_max = 0.0_f64;
        let mut engine_evals = 0usize;
        let mut replayed = 0usize;
        let mut exit = ExitReason::IterationCap;
        let sample_every = (cap / 200).max(1);
        let mut trajectory: Vec<(usize, f64)> = Vec::new();
        let mut cur: Option<ExpDots> = None;
        let mut t = 0usize;
        let mut empty_b_snapshot: Option<(Vec<f64>, Option<Mat>)> = None;

        if cert_seek {
            let kappa0 = lambda_max_upper_bound(psi.matrix());
            if vecops::sum(&x) / sigma >= (kappa0 * (1.0 + 1e-6)).max(1.0) {
                exit = ExitReason::DualNormCrossed;
            }
        } else if vecops::sum(&x) / sigma > k_threshold {
            exit = ExitReason::DualNormCrossed;
        }

        while t < cap && exit != ExitReason::DualNormCrossed {
            t += 1;
            let idx = t - 1;

            let mut kappa = lambda_max_upper_bound(psi.matrix());
            if matches!(opts.mode, ConstantsMode::PaperStrict) {
                kappa = kappa.min(lemma_bound * 1.01);
            }
            kappa_max = kappa_max.max(kappa);

            let refresh = match opts.rule {
                UpdateRule::Stale { period } => (t - 1).is_multiple_of(period) || cur.is_none(),
                _ => true,
            };
            let mut from_cache = false;
            if refresh {
                let cached_dots = if replaying {
                    self.cache.rounds.get(idx).and_then(|r| r.dots.clone())
                } else {
                    None
                };
                let dots = match cached_dots {
                    Some(d) => {
                        from_cache = true;
                        replayed += 1;
                        d
                    }
                    None => {
                        if replaying {
                            // Cache exhausted (or misaligned): go live and
                            // let recording extend it from here.
                            self.cache.rounds.truncate(idx);
                            replaying = false;
                        }
                        engine_evals += 1;
                        if accumulate_y {
                            engine.compute_dense(psi.matrix(), kappa, inst.mats(), t as u64)?
                        } else {
                            engine.compute(psi.matrix(), kappa, inst.mats(), t as u64)?
                        }
                    }
                };
                cost_total = cost_total + dots.cost;
                cur = Some(dots);
            } else if replaying && self.cache.rounds.get(idx).is_none() {
                self.cache.rounds.truncate(idx);
                replaying = false;
            }
            let dots = cur.as_ref().expect("engine output present");

            // Ratios P(t) • (σAᵢ) = σ·(W•Aᵢ)/Tr W.
            let inv_tr = 1.0 / dots.tr_w;
            let ratios: Vec<f64> = dots.dots.iter().map(|d| d * inv_tr * sigma).collect();

            if refresh {
                for (s, &r) in dot_sums.iter_mut().zip(&ratios) {
                    *s += r;
                }
                if let (Some(acc), Some(p)) = (y_acc.as_mut(), dots.dense_p.as_ref()) {
                    acc.axpy(1.0, p);
                }
                rounds_accumulated += 1;
            }

            let steps = select_steps(&ratios, eps, alpha, opts.rule, Some(&active));
            if replaying && idx < self.cache.rounds.len() && self.cache.rounds[idx].steps != steps {
                // Divergence: the new threshold selects differently here.
                // The cached dots were still valid for this round (the state
                // was shared up to it); everything after is not.
                self.cache.rounds.truncate(idx);
                replaying = false;
            }
            if recording && idx == self.cache.rounds.len() && self.cache.rounds.len() < max_rounds {
                let stored = if refresh {
                    cur.as_ref().map(|d| ExpDots {
                        tr_w: d.tr_w,
                        dots: d.dots.clone(),
                        log_scale: d.log_scale,
                        cost: d.cost,
                        degree: d.degree,
                        sketch_rows: d.sketch_rows,
                        dense_p: None,
                    })
                } else {
                    None
                };
                self.cache.rounds.push(CachedRound { dots: stored, steps: steps.clone() });
            }
            let dots = cur.as_ref().expect("engine output present");

            let selected = steps.iter().filter(|&&s| s > 0.0).count();
            if selected == 0 {
                // Every active constraint has P•Aᵢ > 1+ε: the current P is a
                // feasible primal. Replayed rounds carry no dense P, so
                // re-evaluate the engine once to rebuild the snapshot the
                // cold path would have had — but only for the exact engine,
                // the only one whose plain `compute` produces a dense P
                // (replay implies `accumulate_y` is off, so a cold Taylor/
                // sketched solve would have had `None` here anyway).
                let dense_p = if from_cache {
                    if matches!(engine_kind, EngineKind::Exact) {
                        engine_evals += 1;
                        engine.compute(psi.matrix(), kappa, inst.mats(), t as u64)?.dense_p
                    } else {
                        None
                    }
                } else {
                    dots.dense_p.clone()
                };
                empty_b_snapshot = Some((ratios.clone(), dense_p));
                exit = ExitReason::EmptyEligibleSet;
                break;
            }
            selected_total += selected;

            let mut deltas: Vec<(usize, f64)> = Vec::with_capacity(selected);
            for (i, &step) in steps.iter().enumerate() {
                if step > 0.0 {
                    let delta = step * x[i];
                    x[i] += delta;
                    deltas.push((i, delta));
                }
            }
            psi.apply_updates(&deltas);
            psi.maybe_rebuild(&x);

            let norm1 = vecops::sum(&x) / sigma;
            if t.is_multiple_of(sample_every) {
                trajectory.push((t, norm1));
            }
            if cert_seek {
                // Strong-dual hunt: exit only once the measured value is
                // guaranteed ≥ 1 (λmax(Ψ) ≤ κ, so ‖x‖₁ ≥ κ ⇒ value ≥ 1).
                let kappa_now = lambda_max_upper_bound(psi.matrix());
                if norm1 >= (kappa_now * (1.0 + 1e-6)).max(1.0) {
                    exit = ExitReason::DualNormCrossed;
                    break;
                }
            } else if norm1 > k_threshold {
                exit = ExitReason::DualNormCrossed;
                break;
            }
            if (opts.early_exit || cert_seek) && rounds_accumulated > 0 {
                let min_avg = active_min(&dot_sums) / rounds_accumulated as f64;
                if min_avg >= 1.0 {
                    exit = ExitReason::PrimalEarly;
                    break;
                }
            }
            if !self.observers.is_empty() {
                let event = IterationEvent {
                    threshold: sigma,
                    t,
                    norm1,
                    selected,
                    kappa,
                    min_ratio: active_min(&ratios),
                    replayed: from_cache,
                };
                let mut stop = false;
                for obs in &mut self.observers {
                    if obs.on_iteration(&event) == ObserverControl::Stop {
                        stop = true;
                    }
                }
                if stop {
                    exit = ExitReason::ObserverStopped;
                    break;
                }
            }
        }

        let final_norm1 = vecops::sum(&x) / sigma;
        let outcome = match exit {
            ExitReason::DualNormCrossed => {
                let x_scaled: Vec<f64> = x.iter().map(|v| v / sigma).collect();
                Outcome::Dual(build_dual(&x_scaled, psi.matrix(), eps, k_threshold, opts.mode)?)
            }
            ExitReason::EmptyEligibleSet => {
                let (ratios, p) = empty_b_snapshot.expect("snapshot recorded");
                let min_dot = active_min(&ratios);
                Outcome::Primal(PrimalSolution {
                    constraint_dots: ratios,
                    y: p,
                    min_dot,
                    rounds_averaged: 1,
                })
            }
            // `CoverageReached` belongs to the mixed loop (`crate::mixed`)
            // and is never produced here; it falls through to the averaged
            // primal like the other soft exits.
            ExitReason::IterationCap
            | ExitReason::PrimalEarly
            | ExitReason::ObserverStopped
            | ExitReason::CoverageReached => {
                let rounds = rounds_accumulated.max(1) as f64;
                let constraint_dots: Vec<f64> = dot_sums.iter().map(|s| s / rounds).collect();
                let min_dot = active_min(&constraint_dots);
                let y = y_acc.map(|mut acc| {
                    acc.scale(1.0 / rounds);
                    let tr = acc.trace();
                    if tr > 0.0 {
                        acc.scale(1.0 / tr);
                    }
                    acc
                });
                Outcome::Primal(PrimalSolution {
                    constraint_dots,
                    y,
                    min_dot,
                    rounds_averaged: rounds_accumulated.max(1),
                })
            }
        };

        let stats = SolveStats {
            iterations: t,
            exit,
            final_norm1,
            k_threshold,
            alpha,
            iteration_cap: cap,
            cost: cost_total,
            engine: engine_kind.name(),
            avg_selected: if t > 0 { selected_total as f64 / t as f64 } else { 0.0 },
            kappa_max,
            psi_rebuilds: psi.rebuilds(),
            psi_max_drift: psi.max_drift(),
            threshold: sigma,
            warm_started: replayed > 0 || warm_init,
            engine_evals,
            replayed,
            wall: wall_start.elapsed(),
            norm_trajectory: trajectory,
        };
        self.last_u = Some(x);
        self.last_mask = active;
        self.last_key = Some(key);
        self.emit_phase(&PhaseEvent::SolveFinished { threshold: sigma, stats: &stats });
        Ok(DecisionResult { outcome, stats })
    }

    /// Optimize the packing instance to `(1+ε)` relative accuracy by
    /// certified geometric bisection (Lemma 2.2) over this session: every
    /// bracket reuses the prepared engine, and — when warm starts are on
    /// and the constants mode is practical — continues from the previous
    /// bracket's iterate (rescaled to the new threshold; see the module
    /// docs for the warm-vs-cold equivalence and its caveat).
    ///
    /// Bracket moves are driven by certified quantities only. A **strong**
    /// outcome (dual value ≥ 1, or primal min-dot ≥ 1) proves `OPT ≥ σ` /
    /// `OPT ≤ σ·(1+pruning slack)` exactly, and the bracket moves to that
    /// deterministic value — which is what lets warm and cold runs walk
    /// identical `σ` sequences. A weak outcome from a warm-started solve
    /// is discarded and the bracket re-runs cold; a weak cold outcome
    /// escalates to a certificate-seeking continuation and then falls
    /// back to the measured-value update (`lo ← σ·value`,
    /// `hi ← σ/min_dot`), still certified.
    ///
    /// # Errors
    /// Validation or solver failures; a bracket that fails to close within
    /// `max_calls` is reported with `converged = false`, not an error.
    pub fn optimize(&mut self, opts: &ApproxOptions) -> Result<PackingReport, PsdpError> {
        // Warm starts require BOTH the session flag and the options flag:
        // [`ApproxOptions::warm_start`] must not be silently ignored.
        let session_warm = self.warm;
        self.warm = session_warm && opts.warm_start;
        let result = self.optimize_inner(opts);
        self.warm = session_warm;
        result
    }

    fn optimize_inner(&mut self, opts: &ApproxOptions) -> Result<PackingReport, PsdpError> {
        if !(opts.eps > 0.0 && opts.eps < 1.0) {
            return Err(PsdpError::InvalidInstance(format!("eps {} not in (0,1)", opts.eps)));
        }
        opts.decision.validate()?;
        let inst = self.solver.inst;
        let n = inst.n();

        let mut lo = self.solver.lambda_caps.iter().fold(0.0_f64, |m, &v| m.max(v)) * 0.5;
        let mut hi = self.solver.lambda_caps.iter().sum::<f64>() * 2.0;
        if lo.is_nan() || lo <= 0.0 || !hi.is_finite() {
            return Err(PsdpError::InvalidInstance("degenerate λmax estimates".into()));
        }
        // Externally certified bracket (serving-layer reuse): intersect with
        // the structural bounds — both are certified, so the intersection is
        // certified and at least as tight. An inconsistent injection (empty
        // intersection, non-finite, or non-positive) is dropped, not
        // trusted.
        if let Some((inj_lo, inj_hi)) = opts.initial_bracket {
            if inj_lo > 0.0 && inj_lo.is_finite() && inj_hi.is_finite() && inj_lo <= inj_hi {
                let cand_lo = lo.max(inj_lo);
                let cand_hi = hi.min(inj_hi);
                if cand_lo <= cand_hi {
                    lo = cand_lo;
                    hi = cand_hi;
                }
            }
        }

        let mut best_dual: Option<DualSolution> = None;
        let mut upper_witness: Option<(f64, PrimalSolution)> = None;
        let mut call_stats = Vec::new();
        let mut brackets: Vec<BracketStats> = Vec::new();
        let mut total_iterations = 0;
        let mut total_engine_evals = 0usize;
        let mut total_replayed = 0usize;
        let mut calls = 0;
        let mut pruned_max = 0usize;
        let mut stopped = false;
        let decision = opts.decision;
        let key = CacheKey::of(&decision);
        // Strong duals are unreachable under the paper's strict scaling
        // (the dual exit fires just above K while the value is scaled by
        // (1+10ε)K, so measured value ≈ 1/(1+10ε) < 1): warm attempts and
        // the certificate-seeking escalation would always be discarded.
        // Strict-mode bisections therefore run every bracket cold with
        // measured-value updates, exactly like the pre-session optimizer.
        let practical = matches!(decision.mode, ConstantsMode::Practical { .. });

        while hi > lo * (1.0 + opts.eps) && calls < opts.max_calls {
            calls += 1;
            let sigma = (lo * hi).sqrt();
            // Lemma 2.2 trace pruning with the certified cutoff
            // max(n³, 2nm/ε): at threshold 1 any feasible x has
            // xᵢ ≤ m/Tr(Aᵢ'), so dropped coordinates carry ≤ ε/2 total mass.
            let n_f = n as f64;
            let cutoff = (n_f * n_f * n_f).max(2.0 * n_f * inst.dim() as f64 / opts.eps);
            let mut mask = vec![true; n];
            let mut dropped: Vec<usize> = Vec::new();
            for (i, &tr) in self.solver.traces.iter().enumerate() {
                if sigma * tr > cutoff {
                    mask[i] = false;
                    dropped.push(i);
                }
            }
            pruned_max = pruned_max.max(dropped.len());
            let use_mask = !dropped.is_empty() && dropped.len() < n;
            let active: Vec<bool> = if use_mask { mask } else { vec![true; n] };
            // Certified repair for pruned coordinates: any feasible x of
            // the scaled instance has xᵢ ≤ m/Tr(Aᵢ'), so the dropped
            // coordinates contribute at most Σ_dropped m/(σ·Tr Aᵢ) to the
            // scaled value. Deterministic in (σ, mask).
            let dropped_slack: f64 = if use_mask {
                dropped
                    .iter()
                    .map(|&i| inst.dim() as f64 / (sigma * self.solver.traces[i]).max(1e-300))
                    .sum()
            } else {
                0.0
            };

            // Rescale an iterate to threshold-frame mass β·K — "the
            // previous iterate rescaled to remain feasible for the new
            // threshold" (the loop has room to re-balance before any exit
            // can trigger).
            let n_active = active.iter().filter(|&&b| b).count();
            let k_threshold = paper_constants(n_active, decision.eps).k_threshold;
            let rescale = |u: &Vec<f64>| {
                let gamma = WARM_MASS_FRACTION * k_threshold * sigma / vecops::sum(u).max(1e-300);
                u.iter().map(|v| v * gamma).collect::<Vec<f64>>()
            };
            // Iterate continuation: warm-start from the previous bracket's
            // final iterate and accept its outcome only if strong;
            // otherwise fall back to a cold solve, which reproduces the
            // cold bisection bitwise.
            let warm_seed =
                if practical && self.warm && self.last_key == Some(key) && self.last_mask == active
                {
                    self.last_u.as_ref().map(&rescale)
                } else {
                    None
                };
            let mask_arg = use_mask.then(|| active.clone());
            let is_strong = |r: &DecisionResult| match &r.outcome {
                Outcome::Dual(d) => d.value >= 1.0,
                Outcome::Primal(p) => p.min_dot >= 1.0,
            };
            let stopped_early = |r: &DecisionResult| r.stats.exit == ExitReason::ObserverStopped;

            // Per-σ decision protocol (identical for warm and cold runs —
            // warm attempts are only *accepted* when strong, and every
            // fallback step is cold-deterministic):
            //   1. warm-seeded attempt (if available); accept if strong;
            //   2. cold solve; accept if strong;
            //   3. certificate-seeking continuation from the cold solve's
            //      final iterate; accept if strong;
            //   4. otherwise use the cold solve's weak outcome with
            //      measured-value bracket updates.
            // Work spent on discarded attempts still happened: count it in
            // every exported total so warm-start savings are never
            // overstated.
            let mut discarded: Vec<SolveStats> = Vec::new();
            let mut res = match warm_seed {
                Some(seed) => {
                    let attempt =
                        self.run_decision(sigma, &decision, mask_arg.clone(), Some(seed), false)?;
                    if is_strong(&attempt) || stopped_early(&attempt) {
                        attempt
                    } else {
                        discarded.push(attempt.stats);
                        self.run_decision(sigma, &decision, mask_arg.clone(), None, false)?
                    }
                }
                None => self.run_decision(sigma, &decision, mask_arg.clone(), None, false)?,
            };
            if practical && !is_strong(&res) && !stopped_early(&res) {
                // Certificate-seeking escalation, deterministic from the
                // weak cold solve's final iterate (rescaled to β·K mass so
                // the overshot state can re-balance toward either
                // certificate).
                let seed = self.last_u.as_ref().map(&rescale);
                let retry = self.run_decision(sigma, &decision, mask_arg, seed, true)?;
                if is_strong(&retry) || stopped_early(&retry) {
                    discarded.push(res.stats.clone());
                    res = retry;
                } else {
                    discarded.push(retry.stats);
                }
            }
            let wasted_iters: usize = discarded.iter().map(|s| s.iterations).sum();
            let wasted_evals: usize = discarded.iter().map(|s| s.engine_evals).sum();
            let wasted_replayed: usize = discarded.iter().map(|s| s.replayed).sum();
            let wasted_wall: std::time::Duration = discarded.iter().map(|s| s.wall).sum();
            total_iterations += res.stats.iterations + wasted_iters;
            total_engine_evals += res.stats.engine_evals + wasted_evals;
            total_replayed += res.stats.replayed + wasted_replayed;
            if res.stats.exit == ExitReason::ObserverStopped {
                // Keep the brackets-cover-every-call invariant: record the
                // aborted call (bracket unchanged) before stopping.
                brackets.push(BracketStats {
                    sigma,
                    dual_side: false,
                    lo,
                    hi,
                    iterations: res.stats.iterations + wasted_iters,
                    engine_evals: res.stats.engine_evals + wasted_evals,
                    replayed: res.stats.replayed + wasted_replayed,
                    warm_started: res.stats.warm_started
                        || discarded.iter().any(|s| s.warm_started),
                    wall: res.stats.wall + wasted_wall,
                });
                call_stats.push(res.stats);
                stopped = true;
                break;
            }
            let dual_side = res.outcome.is_dual();
            match res.outcome {
                Outcome::Dual(d) => {
                    // x' feasible for σAᵢ ⇒ x = σx' feasible for Aᵢ (masked
                    // coordinates are already zero).
                    let x: Vec<f64> = d.x.iter().map(|v| v * sigma).collect();
                    let value = sigma * d.value;
                    if d.value >= 1.0 {
                        // Strong: a feasible dual of scaled value ≥ 1
                        // proves OPT ≥ σ. Quantized, deterministic update.
                        lo = lo.max(sigma);
                    } else if value > lo {
                        lo = value;
                    } else {
                        // Degenerate progress (very weak dual): still move
                        // the bracket a little to guarantee termination.
                        lo = (lo * sigma).sqrt().max(lo);
                    }
                    if best_dual.as_ref().is_none_or(|b| value > b.value) {
                        best_dual =
                            Some(DualSolution { x, value, feasibility_scale: d.feasibility_scale });
                    }
                }
                Outcome::Primal(p) => {
                    let new_hi = if p.min_dot >= 1.0 {
                        // Strong: a trace-1 covering witness proves
                        // OPT ≤ σ (plus pruning slack). Quantized update.
                        sigma * (1.0 + dropped_slack)
                    } else {
                        let margin = p.min_dot.max(1e-12);
                        sigma * (1.0 / margin + dropped_slack)
                    };
                    if new_hi < hi {
                        hi = new_hi;
                    } else {
                        hi = (hi * sigma).sqrt().min(hi);
                    }
                    upper_witness = Some((sigma, p));
                }
            }
            if lo > hi {
                // Certified bounds crossed: numerical noise at convergence;
                // collapse the bracket.
                let mid = (lo * hi).sqrt();
                lo = mid;
                hi = mid;
            }
            brackets.push(BracketStats {
                sigma,
                dual_side,
                lo,
                hi,
                iterations: res.stats.iterations + wasted_iters,
                engine_evals: res.stats.engine_evals + wasted_evals,
                replayed: res.stats.replayed + wasted_replayed,
                warm_started: res.stats.warm_started || discarded.iter().any(|s| s.warm_started),
                wall: res.stats.wall + wasted_wall,
            });
            call_stats.push(res.stats);
            self.emit_phase(&PhaseEvent::BracketUpdated { sigma, lo, hi, dual_side });
            if lo == hi {
                break;
            }
        }

        Ok(PackingReport {
            value_lower: lo,
            value_upper: hi,
            best_dual,
            upper_witness,
            decision_calls: calls,
            total_iterations,
            converged: !stopped && hi <= lo * (1.0 + opts.eps) * (1.0 + 1e-12),
            pruned_max,
            call_stats,
            brackets,
            total_engine_evals,
            total_replayed,
        })
    }
}

/// Per-coordinate step multipliers (0 = not stepped) under the chosen rule,
/// restricted to the active coordinates. The returned value is the
/// multiplicative step: `x_i ← x_i·(1 + stepᵢ)`.
pub(crate) fn select_steps(
    ratios: &[f64],
    eps: f64,
    alpha: f64,
    rule: UpdateRule,
    active: Option<&[bool]>,
) -> Vec<f64> {
    let is_active = |i: usize| active.is_none_or(|a| a[i]);
    let threshold = 1.0 + eps;
    match rule {
        UpdateRule::Standard | UpdateRule::Stale { .. } => ratios
            .iter()
            .enumerate()
            .map(|(i, &r)| if r <= threshold && is_active(i) { alpha } else { 0.0 })
            .collect(),
        UpdateRule::Bucketed { boost } => ratios
            .iter()
            .enumerate()
            .map(|(i, &r)| {
                if r <= threshold && is_active(i) {
                    // Slack-proportional boost, floored so near-threshold
                    // coordinates keep moving, capped at `boost`.
                    let slack = (threshold - r) / eps;
                    alpha * slack.clamp(0.25, boost)
                } else {
                    0.0
                }
            })
            .collect(),
        UpdateRule::TopK { k } => {
            let mut eligible: Vec<(usize, f64)> = ratios
                .iter()
                .copied()
                .enumerate()
                .filter(|&(i, r)| r <= threshold && is_active(i))
                .collect();
            eligible.sort_by(|a, b| a.1.total_cmp(&b.1));
            let mut steps = vec![0.0; ratios.len()];
            for &(i, _) in eligible.iter().take(k) {
                steps[i] = alpha;
            }
            steps
        }
    }
}

/// Build a certified dual solution from the raw (threshold-frame) iterate.
fn build_dual(
    x: &[f64],
    psi: &Mat,
    eps: f64,
    k_threshold: f64,
    mode: ConstantsMode,
) -> Result<DualSolution, PsdpError> {
    let scale = match mode {
        ConstantsMode::PaperStrict => (1.0 + 10.0 * eps) * k_threshold,
        ConstantsMode::Practical { .. } => {
            // Certify by measurement: λmax(Σ xᵢAᵢ) from the maintained Ψ.
            let lam = match sym_eigen(psi) {
                Ok(eig) => eig.lambda_max(),
                Err(_) => lambda_max_upper_bound(psi),
            };
            (lam * (1.0 + 1e-9)).max(1.0)
        }
    };
    let xs: Vec<f64> = x.iter().map(|v| v / scale).collect();
    let value = vecops::sum(&xs);
    Ok(DualSolution { x: xs, value, feasibility_scale: scale })
}

#[cfg(test)]
mod tests {
    use super::*;
    use psdp_sparse::PsdMatrix;

    fn diag_instance(rows: &[&[f64]]) -> PackingInstance {
        PackingInstance::new(rows.iter().map(|r| PsdMatrix::Diagonal(r.to_vec())).collect())
            .unwrap()
    }

    #[test]
    fn solver_session_answers_both_sides() {
        let inst = diag_instance(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let solver =
            Solver::builder(&inst).options(DecisionOptions::practical(0.2)).build().unwrap();
        let mut s = solver.session();
        // OPT = 2: threshold 1 certifies a dual, threshold 4 a primal.
        let d = s.solve(1.0).unwrap();
        assert!(d.outcome.dual().is_some());
        assert_eq!(d.stats.threshold, 1.0);
        let p = s.solve(4.0).unwrap();
        assert!(p.outcome.primal().is_some());
        assert_eq!(s.solves(), 2);
    }

    #[test]
    fn warm_and_cold_solves_are_bitwise_identical() {
        let inst = diag_instance(&[&[1.0, 0.0, 0.5], &[0.0, 1.0, 0.5], &[0.5, 0.5, 0.0]]);
        let mut opts = DecisionOptions::practical(0.15);
        opts.primal_matrix_dim_limit = 0; // enable replay
        let solver = Solver::builder(&inst).options(opts).build().unwrap();

        let thresholds = [0.8, 1.1, 0.95, 1.02];
        let mut warm = solver.session();
        let warm_results: Vec<DecisionResult> =
            thresholds.iter().map(|&s| warm.solve(s).unwrap()).collect();
        assert!(warm_results.iter().any(|r| r.stats.replayed > 0), "warm session never replayed");

        for (&sigma, wr) in thresholds.iter().zip(&warm_results) {
            let mut cold = solver.session().with_warm_start(false);
            let cr = cold.solve(sigma).unwrap();
            assert_eq!(cr.stats.iterations, wr.stats.iterations, "σ={sigma}");
            assert_eq!(cr.stats.exit, wr.stats.exit, "σ={sigma}");
            match (&cr.outcome, &wr.outcome) {
                (Outcome::Dual(a), Outcome::Dual(b)) => {
                    assert_eq!(a.x, b.x, "σ={sigma}: dual iterates diverged");
                    assert_eq!(a.value.to_bits(), b.value.to_bits(), "σ={sigma}");
                }
                (Outcome::Primal(a), Outcome::Primal(b)) => {
                    assert_eq!(a.constraint_dots, b.constraint_dots, "σ={sigma}");
                    assert_eq!(a.min_dot.to_bits(), b.min_dot.to_bits(), "σ={sigma}");
                }
                _ => panic!("σ={sigma}: outcome sides diverged warm vs cold"),
            }
        }
    }

    #[test]
    fn replay_skips_engine_evaluations() {
        let inst = diag_instance(&[&[2.0, 0.0], &[0.0, 4.0]]);
        let mut opts = DecisionOptions::practical(0.1);
        opts.primal_matrix_dim_limit = 0;
        let solver = Solver::builder(&inst).options(opts).build().unwrap();
        let mut s = solver.session();
        let first = s.solve(0.7).unwrap();
        assert_eq!(first.stats.replayed, 0);
        assert!(s.cached_rounds() > 0);
        // A nearby threshold shares a long prefix.
        let second = s.solve(0.71).unwrap();
        assert!(second.stats.replayed > 0, "no rounds replayed: {:?}", second.stats);
        assert!(second.stats.engine_evals < second.stats.iterations + 1);
        assert!(second.stats.warm_started);
    }

    #[test]
    fn session_optimize_matches_known_optimum() {
        // OPT = 1/2 + 1/4 = 0.75.
        let inst = diag_instance(&[&[2.0, 0.0], &[0.0, 4.0]]);
        let solver =
            Solver::builder(&inst).options(DecisionOptions::practical(0.025)).build().unwrap();
        let mut s = solver.session();
        let r = s.optimize(&ApproxOptions::practical(0.1)).unwrap();
        assert!(r.converged);
        assert!(r.value_lower <= 0.75 + 1e-9 && r.value_upper >= 0.75 - 1e-9);
        assert_eq!(r.brackets.len(), r.decision_calls);
        assert!(r.brackets.iter().all(|b| b.iterations > 0));
    }

    /// Strict constants mode can never produce a strong dual (the paper
    /// scaling divides by (1+10ε)K), so the bisection must skip warm
    /// attempts and escalation entirely — warm and cold are then the same
    /// cold path, and no discarded work appears in the totals.
    #[test]
    fn strict_mode_optimize_runs_cold_and_matches() {
        let inst = diag_instance(&[&[2.0, 0.0], &[0.0, 4.0]]);
        let mut opts = ApproxOptions::practical(0.2);
        opts.decision = DecisionOptions::strict(0.05);
        let solver = Solver::builder(&inst).options(opts.decision).build().unwrap();
        let warm = solver.session().with_warm_start(true).optimize(&opts).unwrap();
        let cold = solver.session().with_warm_start(false).optimize(&opts).unwrap();
        assert_eq!(warm.value_lower.to_bits(), cold.value_lower.to_bits());
        assert_eq!(warm.value_upper.to_bits(), cold.value_upper.to_bits());
        assert_eq!(warm.total_iterations, cold.total_iterations);
        assert_eq!(warm.total_engine_evals, cold.total_engine_evals);
        assert!(warm.value_lower <= 0.75 && warm.value_upper >= 0.75);
        // No warm attempts were made, so per-call and total accounting
        // coincide exactly.
        let accepted: usize = warm.call_stats.iter().map(|s| s.iterations).sum();
        assert_eq!(warm.total_iterations, accepted);
    }

    /// Discarded warm attempts and escalations still happened: their
    /// engine evaluations must be part of the exported totals.
    #[test]
    fn discarded_attempts_counted_in_totals() {
        let inst = diag_instance(&[&[1.0, 0.0, 0.5], &[0.0, 1.0, 0.5], &[0.5, 0.5, 0.0]]);
        let opts = ApproxOptions::serving(0.1);
        let solver = Solver::builder(&inst).options(opts.decision).build().unwrap();
        let r = solver.session().optimize(&opts).unwrap();
        let accepted_iters: usize = r.call_stats.iter().map(|s| s.iterations).sum();
        let accepted_evals: usize = r.call_stats.iter().map(|s| s.engine_evals).sum();
        assert!(r.total_iterations >= accepted_iters);
        assert!(r.total_engine_evals >= accepted_evals);
        // Per-bracket totals must cover everything the report counts.
        let bracket_iters: usize = r.brackets.iter().map(|b| b.iterations).sum();
        let bracket_evals: usize = r.brackets.iter().map(|b| b.engine_evals).sum();
        assert_eq!(bracket_iters, r.total_iterations);
        assert_eq!(bracket_evals, r.total_engine_evals);
    }

    #[test]
    fn observer_sees_iterations_and_can_stop() {
        struct Counter {
            iters: usize,
            phases: usize,
            stop_at: usize,
        }
        impl Observer for Counter {
            fn on_phase(&mut self, _: &PhaseEvent<'_>) {
                self.phases += 1;
            }
            fn on_iteration(&mut self, ev: &IterationEvent) -> ObserverControl {
                self.iters += 1;
                assert!(ev.t >= 1 && ev.norm1 >= 0.0);
                if self.iters >= self.stop_at {
                    ObserverControl::Stop
                } else {
                    ObserverControl::Continue
                }
            }
        }

        let inst = diag_instance(&[&[0.5, 0.0], &[0.0, 0.5]]);
        let solver =
            Solver::builder(&inst).options(DecisionOptions::practical(0.2)).build().unwrap();
        let mut s = solver.session();
        s.add_observer(Box::new(Counter { iters: 0, phases: 0, stop_at: 3 }));
        let res = s.solve(1.0).unwrap();
        assert_eq!(res.stats.exit, ExitReason::ObserverStopped);
        assert_eq!(res.stats.iterations, 3);
    }

    #[test]
    fn masked_solve_freezes_pruned_coordinates() {
        let inst = diag_instance(&[&[1.0, 0.0], &[0.0, 1.0], &[100.0, 100.0]]);
        let solver =
            Solver::builder(&inst).options(DecisionOptions::practical(0.2)).build().unwrap();
        let mut s = solver.session();
        let res = s
            .run_decision(
                1.0,
                &DecisionOptions::practical(0.2),
                Some(vec![true, true, false]),
                None,
                false,
            )
            .unwrap();
        let d = res.outcome.dual().expect("dual side");
        assert_eq!(d.x[2], 0.0, "masked coordinate moved");
        assert!(d.value >= 0.8);
    }

    #[test]
    fn rejects_bad_threshold() {
        let inst = diag_instance(&[&[1.0]]);
        let solver = Solver::builder(&inst).build().unwrap();
        let mut s = solver.session();
        assert!(s.solve(0.0).is_err());
        assert!(s.solve(f64::NAN).is_err());
        assert!(s.solve(f64::INFINITY).is_err());
    }

    #[test]
    fn select_steps_standard_and_topk() {
        let ratios = vec![0.5, 1.05, 1.3];
        let s = select_steps(&ratios, 0.1, 0.01, UpdateRule::Standard, None);
        assert!(s[0] > 0.0 && s[1] > 0.0 && s[2] == 0.0);
        let s = select_steps(&ratios, 0.1, 0.01, UpdateRule::TopK { k: 1 }, None);
        assert!(s[0] > 0.0 && s[1] == 0.0 && s[2] == 0.0);
        // Masking removes the smallest-ratio coordinate from TopK.
        let s =
            select_steps(&ratios, 0.1, 0.01, UpdateRule::TopK { k: 1 }, Some(&[false, true, true]));
        assert!(s[0] == 0.0 && s[1] > 0.0 && s[2] == 0.0);
    }

    #[test]
    fn select_steps_bucketed_orders_by_slack() {
        let ratios = vec![0.1, 1.0, 2.0];
        let s = select_steps(&ratios, 0.1, 0.01, UpdateRule::Bucketed { boost: 8.0 }, None);
        assert!(s[0] > s[1], "lower ratio should step more: {s:?}");
        assert_eq!(s[2], 0.0);
        assert!(s[0] <= 0.01 * 8.0 + 1e-15);
    }
}
