//! Appendix A: normalization of a general positive SDP to the Figure 2 form.
//!
//! Given the primal `min C•Y` s.t. `Aᵢ•Y ≥ bᵢ`, `Y ⪰ 0`, define
//! `Bᵢ = (1/bᵢ) C^{-1/2} Aᵢ C^{-1/2}`; then `min Tr Z` s.t. `Bᵢ•Z ≥ 1` has
//! the same optimum under the substitution `Z = C^{1/2} Y C^{1/2}`.
//!
//! Two edge cases the paper dispatches in prose, handled explicitly here:
//!
//! * `bᵢ = 0` constraints are vacuous (any PSD `Y` satisfies them) and are
//!   dropped; their indices are recorded.
//! * Constraints with mass outside the support of `C` force the
//!   corresponding dual variable to 0 ("we know that the corresponding dual
//!   variable must be set to 0 and therefore can be removed"); we detect
//!   them via the projector onto `range(C)` and drop them, recording the
//!   indices. `C^{-1/2}` is the Moore–Penrose inverse square root on the
//!   support, so the remaining algebra goes through unchanged.

use crate::error::PsdpError;
use crate::instance::{Constraint, MixedInstance, PackingInstance, PositiveSdp};
use psdp_linalg::{inv_sqrt_psd, matmul, sym_eigen, Mat};
use psdp_sparse::{Csr, PsdMatrix};

/// Output of normalization: the packing/covering instance plus the data
/// needed to map solutions back to the original program.
#[derive(Debug, Clone)]
pub struct Normalized {
    /// The normalized instance over the `Bᵢ`.
    pub instance: PackingInstance,
    /// `C^{-1/2}` (pseudo-inverse square root), for mapping `Y = C^{-1/2} Z C^{-1/2}`.
    pub c_inv_sqrt: Mat,
    /// Indices (into the original constraint list) retained, in order.
    pub kept: Vec<usize>,
    /// Original indices dropped because `bᵢ = 0`.
    pub dropped_zero_rhs: Vec<usize>,
    /// Original indices dropped because `Aᵢ` leaves the support of `C`.
    pub dropped_off_support: Vec<usize>,
    /// Right-hand sides of the kept constraints (for mapping duals back:
    /// `λᵢ = xᵢ / bᵢ`).
    pub kept_rhs: Vec<f64>,
}

/// Relative tolerance for the support test `‖(I − Π_C) Aᵢ (I − Π_C)‖`.
const SUPPORT_TOL: f64 = 1e-8;

/// Normalize a general positive SDP (Appendix A).
///
/// # Errors
/// Validation failures, a non-PSD objective, or an instance where *every*
/// constraint is dropped.
pub fn normalize(sdp: &PositiveSdp) -> Result<Normalized, PsdpError> {
    sdp.validate()?;
    let m = sdp.dim();
    let c_dense = sdp.objective.to_dense();
    let c_inv_sqrt = inv_sqrt_psd(&c_dense, 1e-12)?;

    // Projector onto range(C): Π = C^{1/2}·C^{-1/2} = C·C^{+}… cheapest from
    // the same eigenbasis: Π = c_inv_sqrt · C · c_inv_sqrt.
    let proj = matmul(&matmul(&c_inv_sqrt, &c_dense), &c_inv_sqrt);
    let mut off_support_probe = Mat::identity(m);
    off_support_probe.axpy(-1.0, &proj); // I − Π

    let mut mats = Vec::new();
    let mut kept = Vec::new();
    let mut kept_rhs = Vec::new();
    let mut dropped_zero_rhs = Vec::new();
    let mut dropped_off_support = Vec::new();

    for (i, (a, &b)) in sdp.constraints.iter().zip(&sdp.rhs).enumerate() {
        if b == 0.0 {
            dropped_zero_rhs.push(i);
            continue;
        }
        let a_dense = a.to_dense();
        // Support test: (I−Π) Aᵢ (I−Π) should vanish if Aᵢ lives in range(C).
        let outside = matmul(&matmul(&off_support_probe, &a_dense), &off_support_probe);
        let scale = a_dense.max_abs().max(1e-300);
        if outside.max_abs() > SUPPORT_TOL * scale {
            dropped_off_support.push(i);
            continue;
        }
        // Bᵢ = (1/bᵢ)·C^{-1/2} Aᵢ C^{-1/2}.
        let mut bi = matmul(&matmul(&c_inv_sqrt, &a_dense), &c_inv_sqrt);
        bi.scale(1.0 / b);
        bi.symmetrize();
        // Keep sparsity the conjugation preserved (diagonal C with sparse
        // Aᵢ is the common case): store entry-sparse results in CSR so the
        // solver's incremental Ψ path scatter-adds only real nonzeros.
        // Only exact zeros are dropped — storage never changes values.
        let nnz = bi.as_slice().iter().filter(|&&v| v != 0.0).count();
        if nnz * 4 <= m * m {
            mats.push(PsdMatrix::Sparse(Csr::from_dense(&bi, 0.0)));
        } else {
            mats.push(PsdMatrix::Dense(bi));
        }
        kept.push(i);
        kept_rhs.push(b);
    }

    if mats.is_empty() {
        return Err(PsdpError::InvalidInstance(
            "normalization dropped every constraint (all bᵢ = 0 or off-support)".into(),
        ));
    }
    let instance = PackingInstance::new(mats)?;
    Ok(Normalized { instance, c_inv_sqrt, kept, dropped_zero_rhs, dropped_off_support, kept_rhs })
}

impl Normalized {
    /// Map a normalized primal `Z` back to the original variable
    /// `Y = C^{-1/2} Z C^{-1/2}` (so `C•Y = Tr Z` and `Aᵢ•Y = bᵢ·(Bᵢ•Z)`).
    pub fn primal_back(&self, z: &Mat) -> Mat {
        let mut y = matmul(&matmul(&self.c_inv_sqrt, z), &self.c_inv_sqrt);
        y.symmetrize();
        y
    }

    /// Map a normalized dual `x` (indexed over kept constraints) back to the
    /// original dual `λ` over all `n` constraints: `λ_{kept[j]} = x_j / b_j`,
    /// zero elsewhere.
    pub fn dual_back(&self, x: &[f64], n_original: usize) -> Vec<f64> {
        assert_eq!(x.len(), self.kept.len(), "dual_back: length mismatch");
        let mut lam = vec![0.0; n_original];
        for ((&idx, &b), &xi) in self.kept.iter().zip(&self.kept_rhs).zip(x) {
            lam[idx] = xi / b;
        }
        lam
    }
}

/// Output of mixed normalization: the identity-form mixed instance plus
/// the conjugations needed to map aggregate matrices back to the original
/// frames. The coordinate vector `x` itself is unchanged by normalization
/// (conjugation rescales matrices, not multipliers).
#[derive(Debug, Clone)]
pub struct MixedNormalized {
    /// The normalized instance over `B^{-1/2}PᵢB^{-1/2}` /
    /// `D^{-1/2}CᵢD^{-1/2}`.
    pub instance: MixedInstance,
    /// `B^{-1/2}` (packing target), for mapping packing aggregates back.
    pub b_inv_sqrt: Mat,
    /// `D^{-1/2}` (covering target), for mapping covering aggregates back.
    pub d_inv_sqrt: Mat,
}

/// Relative eigenvalue floor below which a normalization target counts as
/// singular.
const TARGET_RANK_TOL: f64 = 1e-10;

/// Normalize a general mixed packing–covering program
///
/// ```text
///   find x ≥ 0  with  Σᵢ xᵢPᵢ ⪯ B   and   Σᵢ xᵢCᵢ ⪰ σ·D
/// ```
///
/// to the identity-target form [`MixedInstance`] consumes, by conjugating
/// each side with the inverse square root of its target:
/// `P̃ᵢ = B^{-1/2}PᵢB^{-1/2}`, `C̃ᵢ = D^{-1/2}CᵢD^{-1/2}`. Feasibility at
/// threshold `σ` is preserved exactly, with the *same* `x` (conjugation
/// rescales matrices, not multipliers), so solver outputs need no back-map
/// beyond the aggregate conjugations carried in [`MixedNormalized`].
///
/// Both targets must be positive definite: a singular packing target
/// forces some coordinates to zero outside its range, and a singular
/// covering target makes every threshold `σ > 0` unreachable — both are
/// better handled by projecting the program onto the target's range first.
///
/// # Errors
/// [`PsdpError::InvalidInstance`] on singular/ill-conditioned targets,
/// dimension mismatches, or sides that fail [`MixedInstance::new`]
/// validation after conjugation.
pub fn normalize_mixed(
    pack: &[Constraint],
    b: &Constraint,
    cover: &[Constraint],
    d: &Constraint,
) -> Result<MixedNormalized, PsdpError> {
    // One eigendecomposition per target: the singularity gate and the
    // inverse square root are built from the same spectrum, with the same
    // tolerance (the gate rejects anything the pseudo-inverse cut would
    // zero out, so no eigenvalue is ever silently dropped).
    let conjugator = |target: &Constraint, side: &str| -> Result<Mat, PsdpError> {
        let dense = target.to_dense();
        let eig = sym_eigen(&dense)?;
        if eig.lambda_min() <= TARGET_RANK_TOL * eig.lambda_max().max(1e-300) {
            return Err(PsdpError::InvalidInstance(format!(
                "{side} normalization target is singular (λmin = {:.3e}); project the program \
                 onto its range first",
                eig.lambda_min()
            )));
        }
        Ok(eig.apply_fn(|lam| 1.0 / lam.sqrt()))
    };
    let b_inv_sqrt = conjugator(b, "packing")?;
    let d_inv_sqrt = conjugator(d, "covering")?;

    let conjugate =
        |mats: &[Constraint], half: &Mat, dim: usize| -> Result<Vec<Constraint>, PsdpError> {
            let mut out = Vec::with_capacity(mats.len());
            for (i, a) in mats.iter().enumerate() {
                if a.dim() != dim {
                    return Err(PsdpError::InvalidInstance(format!(
                        "constraint {i} has dim {} != target dim {dim}",
                        a.dim()
                    )));
                }
                let mut m = matmul(&matmul(half, &a.to_dense()), half);
                m.symmetrize();
                // Keep conjugation-preserved sparsity in CSR, as `normalize`
                // does (diagonal targets with sparse constraints are common).
                let nnz = m.as_slice().iter().filter(|&&v| v != 0.0).count();
                if nnz * 4 <= dim * dim {
                    out.push(PsdMatrix::Sparse(Csr::from_dense(&m, 0.0)));
                } else {
                    out.push(PsdMatrix::Dense(m));
                }
            }
            Ok(out)
        };
    let pack_n = conjugate(pack, &b_inv_sqrt, b.dim())?;
    let cover_n = conjugate(cover, &d_inv_sqrt, d.dim())?;
    Ok(MixedNormalized { instance: MixedInstance::new(pack_n, cover_n)?, b_inv_sqrt, d_inv_sqrt })
}

/// Lemma 2.2 trace pruning with the paper's `n³` cutoff: indices of
/// constraints whose (scaled) trace is below the cutoff. The paper shows
/// dropping the rest changes the optimum by at most an `ε` relative amount
/// in its normalized regime (`m ≤ poly(n)`, decision threshold 1).
pub fn trace_prune(inst: &PackingInstance) -> (Vec<usize>, Vec<usize>) {
    let n = inst.n() as f64;
    trace_prune_with(inst, n * n * n)
}

/// Trace pruning with an explicit cutoff. The optimizer uses the *certified*
/// cutoff `max(n³, 2nm/ε)`: any feasible `x` of a threshold-1 decision
/// instance has `xᵢ ≤ m/Tr(Aᵢ)`, so coordinates above that cutoff carry at
/// most `ε/2` total mass regardless of the `m` vs `n` balance.
pub fn trace_prune_with(inst: &PackingInstance, cutoff: f64) -> (Vec<usize>, Vec<usize>) {
    let mut keep = Vec::new();
    let mut dropped = Vec::new();
    for (i, a) in inst.mats().iter().enumerate() {
        if a.trace() <= cutoff {
            keep.push(i);
        } else {
            dropped.push(i);
        }
    }
    (keep, dropped)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(d: &[f64]) -> PsdMatrix {
        PsdMatrix::Diagonal(d.to_vec())
    }

    #[test]
    fn identity_objective_is_noop() {
        let sdp = PositiveSdp {
            objective: diag(&[1.0, 1.0]),
            constraints: vec![diag(&[2.0, 0.0]), diag(&[0.0, 4.0])],
            rhs: vec![1.0, 2.0],
        };
        let nz = normalize(&sdp).unwrap();
        assert_eq!(nz.instance.n(), 2);
        // B₁ = A₁/1 = diag(2,0); B₂ = A₂/2 = diag(0,2).
        let b0 = nz.instance.mats()[0].to_dense();
        assert!((b0[(0, 0)] - 2.0).abs() < 1e-12);
        let b1 = nz.instance.mats()[1].to_dense();
        assert!((b1[(1, 1)] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn scaling_by_c_preserves_optimum_diagonal_case() {
        // Covering: min C•Y s.t. A•Y ≥ b with everything diagonal reduces to
        // a scalar problem: min Σ c_j y_j s.t. Σ a_j y_j ≥ b; OPT =
        // b·min_j(c_j/a_j)…  for one constraint OPT = b·min over support.
        let sdp = PositiveSdp {
            objective: diag(&[4.0, 1.0]),
            constraints: vec![diag(&[1.0, 1.0])],
            rhs: vec![2.0],
        };
        // Original OPT: put all mass on the cheaper ratio c_j/a_j = 1 at
        // j = 1: Y = diag(0, 2), C•Y = 2.
        let nz = normalize(&sdp).unwrap();
        // Normalized OPT = min Tr Z s.t. B•Z ≥ 1 where B = C^{-1/2}AC^{-1/2}/b
        // = diag(1/8, 1/2). OPT = 1/λmax(B) = 2 = original OPT.
        let b = nz.instance.mats()[0].to_dense();
        assert!((b[(0, 0)] - 1.0 / 8.0).abs() < 1e-12);
        assert!((b[(1, 1)] - 1.0 / 2.0).abs() < 1e-12);
    }

    #[test]
    fn drops_zero_rhs() {
        let sdp = PositiveSdp {
            objective: diag(&[1.0, 1.0]),
            constraints: vec![diag(&[1.0, 0.0]), diag(&[0.0, 1.0])],
            rhs: vec![0.0, 1.0],
        };
        let nz = normalize(&sdp).unwrap();
        assert_eq!(nz.dropped_zero_rhs, vec![0]);
        assert_eq!(nz.kept, vec![1]);
        assert_eq!(nz.instance.n(), 1);
    }

    #[test]
    fn drops_off_support_constraints() {
        // C supported on coordinate 0 only; A₂ lives on coordinate 1.
        let sdp = PositiveSdp {
            objective: diag(&[1.0, 0.0]),
            constraints: vec![diag(&[1.0, 0.0]), diag(&[0.0, 1.0])],
            rhs: vec![1.0, 1.0],
        };
        let nz = normalize(&sdp).unwrap();
        assert_eq!(nz.dropped_off_support, vec![1]);
        assert_eq!(nz.kept, vec![0]);
    }

    #[test]
    fn errors_when_everything_dropped() {
        let sdp = PositiveSdp {
            objective: diag(&[1.0, 0.0]),
            constraints: vec![diag(&[0.0, 1.0])],
            rhs: vec![1.0],
        };
        assert!(normalize(&sdp).is_err());
    }

    #[test]
    fn primal_back_roundtrip_objective() {
        // For any Z: C • primal_back(Z) = Tr Z (on the support of C).
        let sdp = PositiveSdp {
            objective: diag(&[4.0, 9.0]),
            constraints: vec![diag(&[1.0, 1.0])],
            rhs: vec![1.0],
        };
        let nz = normalize(&sdp).unwrap();
        let z = Mat::from_diag(&[0.3, 0.7]);
        let y = nz.primal_back(&z);
        let cy = sdp.objective.dot_dense(&y);
        assert!((cy - z.trace()).abs() < 1e-10, "C•Y = {cy} vs Tr Z = {}", z.trace());
    }

    #[test]
    fn dual_back_places_and_scales() {
        let sdp = PositiveSdp {
            objective: diag(&[1.0, 1.0]),
            constraints: vec![diag(&[1.0, 0.0]), diag(&[0.0, 1.0]), diag(&[1.0, 1.0])],
            rhs: vec![0.0, 2.0, 4.0],
        };
        let nz = normalize(&sdp).unwrap();
        assert_eq!(nz.kept, vec![1, 2]);
        let lam = nz.dual_back(&[1.0, 2.0], 3);
        assert_eq!(lam, vec![0.0, 0.5, 0.5]);
    }

    #[test]
    fn mixed_normalize_diagonal_targets_rescale() {
        // B = diag(4, 1): P̃ = B^{-1/2} P B^{-1/2} halves the first row/col
        // scale; D = diag(1, 9) likewise on the covering side.
        let pack = vec![diag(&[2.0, 1.0])];
        let cover = vec![diag(&[1.0, 3.0])];
        let nz = normalize_mixed(&pack, &diag(&[4.0, 1.0]), &cover, &diag(&[1.0, 9.0])).unwrap();
        let p = nz.instance.pack().mats()[0].to_dense();
        assert!((p[(0, 0)] - 0.5).abs() < 1e-12);
        assert!((p[(1, 1)] - 1.0).abs() < 1e-12);
        let c = nz.instance.cover().mats()[0].to_dense();
        assert!((c[(0, 0)] - 1.0).abs() < 1e-12);
        assert!((c[(1, 1)] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn mixed_normalize_preserves_feasibility_threshold() {
        // Identity-form feasibility at σ must match the original program:
        // here Σ xP ⪯ B with P = B means x ≤ 1, and C = D means coverage
        // threshold σ* = 1 on both sides.
        let b = diag(&[2.0, 5.0]);
        let d = diag(&[0.5, 3.0]);
        let nz =
            normalize_mixed(std::slice::from_ref(&b), &b, std::slice::from_ref(&d), &d).unwrap();
        let p = nz.instance.pack().mats()[0].to_dense();
        let c = nz.instance.cover().mats()[0].to_dense();
        for j in 0..2 {
            assert!((p[(j, j)] - 1.0).abs() < 1e-10, "P̃ should be I");
            assert!((c[(j, j)] - 1.0).abs() < 1e-10, "C̃ should be I");
        }
    }

    #[test]
    fn mixed_normalize_rejects_singular_targets() {
        let pack = vec![diag(&[1.0, 1.0])];
        let cover = vec![diag(&[1.0, 1.0])];
        let r = normalize_mixed(&pack, &diag(&[1.0, 0.0]), &cover, &diag(&[1.0, 1.0]));
        assert!(matches!(r, Err(PsdpError::InvalidInstance(msg)) if msg.contains("packing")));
        let r = normalize_mixed(&pack, &diag(&[1.0, 1.0]), &cover, &diag(&[0.0, 1.0]));
        assert!(matches!(r, Err(PsdpError::InvalidInstance(msg)) if msg.contains("covering")));
        // Dimension mismatch is caught before conjugation.
        let r = normalize_mixed(&[diag(&[1.0])], &diag(&[1.0, 1.0]), &cover, &diag(&[1.0, 1.0]));
        assert!(r.is_err());
    }

    #[test]
    fn trace_prune_splits_by_cutoff() {
        // n = 2 → cutoff 8.
        let inst = PackingInstance::new(vec![diag(&[1.0, 1.0]), diag(&[100.0, 100.0])]).unwrap();
        let (keep, dropped) = trace_prune(&inst);
        assert_eq!(keep, vec![0]);
        assert_eq!(dropped, vec![1]);
    }

    #[test]
    fn non_diagonal_objective() {
        // C = rank-2 PSD with off-diagonal structure; normalization must
        // still produce PSD Bᵢ and keep the dual mapping consistent.
        let mut c = Mat::zeros(2, 2);
        c.rank1_update(1.0, &[1.0, 0.5]);
        c.rank1_update(2.0, &[0.0, 1.0]);
        let mut a = Mat::zeros(2, 2);
        a.rank1_update(1.0, &[1.0, 1.0]);
        let sdp = PositiveSdp {
            objective: PsdMatrix::Dense(c),
            constraints: vec![PsdMatrix::Dense(a)],
            rhs: vec![3.0],
        };
        let nz = normalize(&sdp).unwrap();
        let b = nz.instance.mats()[0].to_dense();
        let eig = psdp_linalg::sym_eigen(&b).unwrap();
        assert!(eig.lambda_min() > -1e-10, "B must stay PSD");
        assert!(b.trace() > 0.0);
    }
}
