//! # psdp-core
//!
//! Width-independent parallel positive SDP solving — the reproduction of
//! Peng–Tangwongsan–Zhang (SPAA 2012).
//!
//! * [`solver`] — the session API and the iterate loop itself:
//!   [`Solver`] (instance validated, engine resolved and constructed once)
//!   → [`Session`] (stateful solves with cross-bracket warm starts and
//!   per-iteration [`Observer`]s). **This is the primary entry point.**
//! * [`instance`] — problem types: general positive SDPs (1.1),
//!   normalized packing instances (Figure 2), and mixed packing–covering
//!   instances, all over [`Constraint`] storage (dense / sparse CSR /
//!   factorized / diagonal),
//! * [`mixed`] — the Jain–Yao mixed packing–covering solver on the same
//!   session core: [`MixedSolver`] → [`MixedSession`] with certified
//!   feasibility answers and threshold bisection ([`solve_mixed`]),
//! * [`decision`] / [`approx`] — the classic one-shot entry points
//!   ([`decision_psdp`], [`solve_packing`], [`solve_covering`]), kept as
//!   thin convenience wrappers over the session API,
//! * [`psi`] — incremental maintenance of `Ψ = Σ xᵢAᵢ` with periodic
//!   drift-checked rebuilds,
//! * [`options`] — solver configuration (paper-strict vs practical
//!   constants, engines including auto-selection, update-rule variants),
//! * [`solution`] / [`stats`] — certified outcomes and telemetry.
//!
//! Architecture and experiment index: see `DESIGN.md` at the repository
//! root (§8 covers the Solver/Session/Observer design); recorded
//! experiment outputs live in `EXPERIMENTS.md`.

#![warn(missing_docs)]

pub mod approx;
pub mod bin_io;
pub mod decision;
pub mod error;
pub mod instance;
pub mod io;
pub mod mixed;
pub mod normalize;
pub mod options;
pub mod psi;
pub mod solution;
pub mod solver;
pub mod stats;
pub mod verify;

pub use approx::{solve_covering, solve_packing, ApproxOptions, CoveringReport, PackingReport};
pub use bin_io::{
    binary_family, fnv1a, fnv_wide, is_binary_instance, mixed_content_hash, mixed_structural_eq,
    packing_content_hash, packing_structural_eq, peek_content_hash, read_instance_bin,
    read_mixed_instance_bin, write_instance_bin, write_mixed_instance_bin, Fnv1a, FnvWide,
    BIN_FAMILY_MIXED, BIN_FAMILY_PACKING, BIN_MAGIC, BIN_VERSION,
};
pub use decision::{decision_psdp, DecisionResult};
pub use error::PsdpError;
pub use instance::{Constraint, MixedInstance, PackingInstance, PositiveSdp};
pub use io::{read_instance, read_mixed_instance, write_instance, write_mixed_instance};
pub use mixed::{
    coverage_target, solve_mixed, MixedApproxOptions, MixedDecision, MixedOptions, MixedReport,
    MixedSession, MixedSolver, MixedSolverBuilder,
};
pub use normalize::{normalize, normalize_mixed, trace_prune, MixedNormalized, Normalized};
pub use options::{ConstantsMode, DecisionOptions, EngineKind, UpdateRule};
pub use psi::PsiMaintainer;
pub use solution::{
    DualSolution, ExitReason, MixedCertificate, MixedFeasible, MixedOutcome, Outcome,
    PrimalSolution,
};
pub use solver::{
    IterationEvent, Observer, ObserverControl, PhaseEvent, Session, Solver, SolverBuilder,
};
pub use stats::{BracketStats, SolveStats};
pub use verify::{
    verify_dual, verify_mixed_feasible, verify_mixed_infeasible, verify_primal, DualCertificate,
    MixedFeasibleCertificate, MixedInfeasibleCertificate, PrimalCertificate,
};
