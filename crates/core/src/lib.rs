//! # psdp-core
//!
//! Width-independent parallel positive SDP solving — the reproduction of
//! Peng–Tangwongsan–Zhang (SPAA 2012).
//!
//! * [`instance`] — problem types: general positive SDPs (1.1) and
//!   normalized packing instances (Figure 2),
//! * [`decision`] — `decisionPSDP` (Algorithm 3.1),
//! * [`options`] — solver configuration (paper-strict vs practical
//!   constants, engines, update-rule variants),
//! * [`solution`] / [`stats`] — certified outcomes and telemetry.

#![warn(missing_docs)]

pub mod approx;
pub mod decision;
pub mod error;
pub mod instance;
pub mod io;
pub mod normalize;
pub mod options;
pub mod solution;
pub mod stats;
pub mod verify;

pub use approx::{solve_covering, solve_packing, ApproxOptions, CoveringReport, PackingReport};
pub use decision::{decision_psdp, DecisionResult};
pub use error::PsdpError;
pub use instance::{PackingInstance, PositiveSdp};
pub use io::{read_instance, write_instance};
pub use normalize::{normalize, trace_prune, Normalized};
pub use options::{ConstantsMode, DecisionOptions, EngineKind, UpdateRule};
pub use solution::{DualSolution, ExitReason, Outcome, PrimalSolution};
pub use stats::SolveStats;
pub use verify::{verify_dual, verify_primal, DualCertificate, PrimalCertificate};
