//! Incremental maintenance of `Ψ(t) = Σᵢ xᵢ(t) Aᵢ`.
//!
//! Algorithm 3.1 changes only the *selected* coordinates `B(t)` each round,
//! so the dense matrix the engines exponentiate can be maintained by
//! scatter-adding the selected constraints' entries — work proportional to
//! the storage nonzeros of the update, never `Θ(n·m²)` as a from-scratch
//! `Σᵢ xᵢAᵢ` rebuild would cost. This is the structural step that makes the
//! Corollary 1.2 "nearly linear total work in the factorization size"
//! regime reachable on graph workloads, where constraints are rank-1 edge
//! Laplacians with `O(1)` nonzeros each (see `DESIGN.md` §4).
//!
//! Floating-point drift is bounded by a **periodic full rebuild**: every
//! `rebuild_period` updates the maintainer recomputes `Σᵢ xᵢAᵢ` from
//! scratch (rayon-parallel over constraint chunks, see
//! [`crate::instance::PackingInstance::weighted_sum`]), records the
//! relative drift between the incremental and rebuilt matrices, and adopts
//! the rebuilt one. The largest observed drift is reported through
//! [`crate::stats::SolveStats::psi_max_drift`], so every experiment that
//! relies on the incremental path also measures its numerical honesty.

use crate::instance::PackingInstance;
use psdp_linalg::Mat;
use psdp_sparse::PsdMatrix;
use rayon::prelude::*;

/// Minimum total update nonzeros before the scatter path fans out to
/// rayon workers (below this the buffers cost more than they save).
const PARALLEL_SCATTER_NNZ: usize = 1 << 14;

/// Incrementally maintained `Ψ = Σᵢ xᵢAᵢ` with periodic drift-checked
/// rebuilds.
///
/// ```
/// use psdp_core::{PackingInstance, PsiMaintainer};
/// use psdp_sparse::PsdMatrix;
///
/// let inst = PackingInstance::new(vec![
///     PsdMatrix::Diagonal(vec![1.0, 0.0]),
///     PsdMatrix::Diagonal(vec![0.0, 2.0]),
/// ])?;
/// let mut x = vec![0.5, 0.25];
/// let mut psi = PsiMaintainer::new(&inst, &x, 16);
/// // Step coordinate 1 by +0.1: apply only that constraint's entries.
/// x[1] += 0.1;
/// psi.apply_updates(&[(1, 0.1)]);
/// assert!((psi.matrix()[(1, 1)] - 0.7).abs() < 1e-15);
/// # Ok::<(), psdp_core::PsdpError>(())
/// ```
#[derive(Debug)]
pub struct PsiMaintainer<'a> {
    inst: &'a PackingInstance,
    psi: Mat,
    /// Full rebuild cadence in updates; `0` disables periodic rebuilds.
    rebuild_period: usize,
    updates_since_rebuild: usize,
    rebuilds: usize,
    max_drift: f64,
    /// Dense-stored constraints may carry asymmetry up to the validation
    /// tolerance, so their updates re-symmetrize; all other storage kinds
    /// produce exactly symmetric scatter-adds and skip the `O(m²)` pass.
    has_dense: bool,
}

impl<'a> PsiMaintainer<'a> {
    /// Build `Ψ = Σᵢ xᵢAᵢ` from scratch and start maintaining it.
    /// `rebuild_period` is the number of incremental updates between full
    /// drift-checked rebuilds (`0` = never rebuild).
    pub fn new(inst: &'a PackingInstance, x: &[f64], rebuild_period: usize) -> Self {
        let psi = inst.weighted_sum(x);
        let has_dense = inst.mats().iter().any(|a| matches!(a, PsdMatrix::Dense(_)));
        PsiMaintainer {
            inst,
            psi,
            rebuild_period,
            updates_since_rebuild: 0,
            rebuilds: 0,
            max_drift: 0.0,
            has_dense,
        }
    }

    /// The current dense `Ψ` (symmetric; what the engines exponentiate).
    pub fn matrix(&self) -> &Mat {
        &self.psi
    }

    /// Apply one round of coordinate updates: `Ψ += Σ_{(i,δ)} δ·Aᵢ`.
    ///
    /// Work is proportional to the updated constraints' storage nonzeros.
    /// Large update batches are expanded into per-chunk triplet buffers on
    /// rayon workers (the arithmetic — e.g. factor outer-product expansion —
    /// parallelizes; the final scatter into `Ψ` is a cheap sequential pass).
    pub fn apply_updates(&mut self, deltas: &[(usize, f64)]) {
        let mats = self.inst.mats();
        let nnz_total: usize = deltas.iter().map(|&(i, _)| mats[i].storage_nnz()).sum();
        if deltas.len() >= 8
            && nnz_total >= PARALLEL_SCATTER_NNZ
            && rayon::current_num_threads() > 1
        {
            let chunk = deltas.len().div_ceil(rayon::current_num_threads());
            let buffers: Vec<Vec<(u32, u32, f64)>> = deltas
                .par_chunks(chunk)
                .map(|part| {
                    let mut buf = Vec::new();
                    for &(i, d) in part {
                        mats[i].for_each_entry(|r, c, v| {
                            buf.push((r as u32, c as u32, d * v));
                        });
                    }
                    buf
                })
                .collect();
            for buf in buffers {
                for (r, c, v) in buf {
                    self.psi[(r as usize, c as usize)] += v;
                }
            }
        } else {
            for &(i, d) in deltas {
                mats[i].add_scaled_into(&mut self.psi, d);
            }
        }
        if self.has_dense {
            self.psi.symmetrize();
        }
        self.updates_since_rebuild += 1;
    }

    /// Rebuild from scratch if the periodic cadence says so; returns `true`
    /// when a rebuild happened. `x` must be the *current* full iterate.
    pub fn maybe_rebuild(&mut self, x: &[f64]) -> bool {
        if self.rebuild_period == 0 || self.updates_since_rebuild < self.rebuild_period {
            return false;
        }
        self.rebuild(x);
        true
    }

    /// Unconditionally recompute `Ψ = Σᵢ xᵢAᵢ` from scratch, record the
    /// relative drift of the incremental matrix against it, and adopt the
    /// fresh one.
    pub fn rebuild(&mut self, x: &[f64]) {
        let fresh = self.inst.weighted_sum(x);
        let scale = fresh.max_abs().max(1e-300);
        let mut drift = 0.0_f64;
        for (a, b) in self.psi.as_slice().iter().zip(fresh.as_slice()) {
            drift = drift.max((a - b).abs());
        }
        self.max_drift = self.max_drift.max(drift / scale);
        self.psi = fresh;
        self.rebuilds += 1;
        self.updates_since_rebuild = 0;
    }

    /// Number of full rebuilds performed so far.
    pub fn rebuilds(&self) -> usize {
        self.rebuilds
    }

    /// Largest relative drift `‖Ψ_inc − Ψ_fresh‖_max / ‖Ψ_fresh‖_max`
    /// observed at any rebuild (0 if none happened).
    pub fn max_drift(&self) -> f64 {
        self.max_drift
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psdp_sparse::{Csr, FactorPsd};

    fn mixed_instance() -> PackingInstance {
        let mut dense = Mat::zeros(4, 4);
        dense.rank1_update(0.5, &[1.0, 0.0, 1.0, 0.0]);
        dense.add_diag(0.1);
        let sparse = Csr::from_triplets(
            4,
            4,
            &[(0, 0, 1.0), (1, 1, 2.0), (1, 2, -0.5), (2, 1, -0.5), (2, 2, 1.0)],
        );
        let factor = FactorPsd::from_vector(&[0.0, 1.0, -1.0, 0.0]);
        PackingInstance::new(vec![
            PsdMatrix::Dense(dense),
            PsdMatrix::Sparse(sparse),
            PsdMatrix::Factor(factor),
            PsdMatrix::Diagonal(vec![0.5, 0.0, 0.0, 1.5]),
        ])
        .unwrap()
    }

    #[test]
    fn incremental_matches_rebuild_over_many_rounds() {
        let inst = mixed_instance();
        let mut x = vec![0.1, 0.2, 0.3, 0.4];
        let mut psi = PsiMaintainer::new(&inst, &x, 0);
        for round in 0..200 {
            let i = round % inst.n();
            let delta = 0.01 * (1.0 + (round % 3) as f64);
            x[i] += delta;
            psi.apply_updates(&[(i, delta)]);
        }
        let fresh = inst.weighted_sum(&x);
        let scale = fresh.max_abs();
        for (a, b) in psi.matrix().as_slice().iter().zip(fresh.as_slice()) {
            assert!((a - b).abs() <= 1e-12 * scale, "{a} vs {b}");
        }
    }

    #[test]
    fn periodic_rebuild_fires_and_tracks_drift() {
        let inst = mixed_instance();
        let mut x = vec![0.1; 4];
        let mut psi = PsiMaintainer::new(&inst, &x, 4);
        let mut rebuilt = 0;
        for round in 0..20 {
            let i = round % 4;
            x[i] += 0.05;
            psi.apply_updates(&[(i, 0.05)]);
            if psi.maybe_rebuild(&x) {
                rebuilt += 1;
            }
        }
        assert_eq!(rebuilt, 5);
        assert_eq!(psi.rebuilds(), 5);
        assert!(psi.max_drift() < 1e-12, "drift {}", psi.max_drift());
    }

    #[test]
    fn batch_updates_match_sequential() {
        let inst = mixed_instance();
        let x = vec![0.25; 4];
        let mut a = PsiMaintainer::new(&inst, &x, 0);
        let mut b = PsiMaintainer::new(&inst, &x, 0);
        let deltas = [(0, 0.1), (2, 0.2), (3, 0.05)];
        a.apply_updates(&deltas);
        for &d in &deltas {
            b.apply_updates(&[d]);
        }
        for (p, q) in a.matrix().as_slice().iter().zip(b.matrix().as_slice()) {
            assert!((p - q).abs() < 1e-14);
        }
    }

    #[test]
    fn symmetry_preserved_without_per_round_symmetrize() {
        let inst = mixed_instance();
        let mut x = vec![0.1; 4];
        let mut psi = PsiMaintainer::new(&inst, &x, 0);
        for round in 0..100 {
            let i = (round * 7 + 1) % 4;
            x[i] += 0.02;
            psi.apply_updates(&[(i, 0.02)]);
        }
        let asym = psi.matrix().asymmetry();
        assert!(asym <= 1e-12 * psi.matrix().max_abs().max(1.0), "asymmetry {asym}");
    }
}
