//! `approxPSDP` — the `(1+ε)`-approximate optimizer (Theorem 1.1).
//!
//! Lemma 2.2 reduces optimization to `O(log n)` calls of the ε-decision
//! problem via scaling + binary search. For the packing program
//! `OPT = max 1ᵀx` s.t. `Σ xᵢAᵢ ⪯ I`, testing "`OPT ≥ σ`?" is the decision
//! problem on the scaled matrices `σAᵢ` (substituting `x' = x/σ` maps one
//! feasible region onto the other).
//!
//! Bracketing uses the structural bounds
//! `maxᵢ 1/λmax(Aᵢ) ≤ OPT ≤ Σᵢ 1/λmax(Aᵢ)` (each `xᵢ ≤ 1/λmax(Aᵢ)` for any
//! feasible point, and any single coordinate at its cap is feasible), so the
//! initial bracket ratio is at most `n` and geometric bisection needs
//! `O(log(n/ε))` decision calls.
//!
//! Every bracket move is driven by a *certified* quantity: a dual outcome at
//! `σ` yields a feasible original-scale `x` with measured value (new lower
//! bound); a primal outcome yields a covering witness establishing
//! `OPT ≤ σ/min_dot` (new upper bound). Estimate-based initial brackets are
//! therefore self-correcting.
//!
//! The bisection itself is implemented by
//! [`crate::solver::Session::optimize`], which prepares the engine once and
//! warm-starts brackets from the shared trajectory prefix (see
//! `crate::solver`); [`solve_packing`] and [`solve_covering`] are kept as
//! one-shot convenience wrappers over that API.

use crate::error::PsdpError;
use crate::instance::{PackingInstance, PositiveSdp};
use crate::normalize::{normalize, Normalized};
use crate::options::DecisionOptions;
use crate::solution::{DualSolution, PrimalSolution};
use crate::solver::Solver;
use crate::stats::{BracketStats, SolveStats};
use psdp_linalg::Mat;

/// Configuration for the optimizer.
#[derive(Debug, Clone, Copy)]
pub struct ApproxOptions {
    /// Target relative accuracy of the returned value bracket.
    pub eps: f64,
    /// Configuration for each decision call (its `eps` is used as-is; pick
    /// something ≤ `eps/4` for the bracket to close).
    pub decision: DecisionOptions,
    /// Cap on decision calls.
    pub max_calls: usize,
    /// Reuse the session's trajectory cache across brackets (bitwise
    /// result-neutral; see `crate::solver`). Replay only engages when the
    /// dense primal matrix is not being accumulated — set
    /// [`DecisionOptions::primal_matrix_dim_limit`] to 0 to maximize reuse
    /// when only values and dual certificates are needed.
    pub warm_start: bool,
    /// An externally supplied *certified* bracket `(lo, hi)` on OPT for
    /// this exact instance, intersected with the structural bounds before
    /// bisection starts. The caller asserts certification: the serving
    /// layer (`psdp-serve`) passes the bracket a previous `optimize` run on
    /// the same fingerprint certified, so repeat or tightened-accuracy
    /// submissions skip the brackets already resolved. An inconsistent
    /// bracket (empty intersection with the structural bounds) is ignored
    /// rather than trusted. `None` (the default) bisects from the
    /// structural bounds alone. Note: when the injected bracket already
    /// satisfies the accuracy target, the report's bounds come from the
    /// bracket and `best_dual` may be `None` — witnesses live with whoever
    /// certified the bracket.
    pub initial_bracket: Option<(f64, f64)>,
}

impl ApproxOptions {
    /// Default practical configuration at accuracy `eps`.
    pub fn practical(eps: f64) -> Self {
        ApproxOptions {
            eps,
            decision: DecisionOptions::practical(eps / 4.0),
            max_calls: 60,
            warm_start: true,
            initial_bracket: None,
        }
    }

    /// Serving configuration: like [`ApproxOptions::practical`] but with
    /// dense-`Y` accumulation disabled so cross-bracket trajectory replay
    /// is fully effective (experiment E11's configuration). Use when only
    /// the value bracket and the dual certificate are needed.
    pub fn serving(eps: f64) -> Self {
        let mut o = ApproxOptions::practical(eps);
        o.decision.primal_matrix_dim_limit = 0;
        o
    }
}

/// Result of optimizing a packing instance.
#[derive(Debug, Clone)]
pub struct PackingReport {
    /// Certified lower bound on OPT (value of `best_dual`).
    pub value_lower: f64,
    /// Certified upper bound on OPT.
    pub value_upper: f64,
    /// The best feasible dual found, in original scale.
    pub best_dual: Option<DualSolution>,
    /// A primal witness for the upper bound: `(σ, solution)` where the
    /// covering matrix `Z = σ·Y/min_dot` certifies `OPT ≤ σ/min_dot`.
    pub upper_witness: Option<(f64, PrimalSolution)>,
    /// Number of decision calls made.
    pub decision_calls: usize,
    /// Total inner iterations across all calls.
    pub total_iterations: usize,
    /// Whether the bracket closed to `(1+eps)`.
    pub converged: bool,
    /// Largest number of constraints trace-pruned (Lemma 2.2) in any single
    /// decision call (0 = pruning never triggered).
    pub pruned_max: usize,
    /// Per-call solver stats (the *accepted* solve of each bracket;
    /// discarded warm/escalation attempts contribute to
    /// [`PackingReport::total_iterations`], [`PackingReport::total_engine_evals`],
    /// and the per-bracket [`BracketStats`] totals instead).
    pub call_stats: Vec<SolveStats>,
    /// Per-bracket breakdown: the tested `σ`, certified side, bracket after
    /// the move, and the warm-start savings of each call.
    pub brackets: Vec<BracketStats>,
    /// Total live engine evaluations across all solves, **including**
    /// discarded warm attempts and certificate-seeking escalations.
    pub total_engine_evals: usize,
    /// Total rounds replayed from the warm-start cache across all solves
    /// (replayed rounds skip the engine evaluation; results are bitwise
    /// unchanged).
    pub total_replayed: usize,
}

impl PackingReport {
    /// Midpoint estimate of OPT (geometric mean of the bracket).
    pub fn value_estimate(&self) -> f64 {
        (self.value_lower * self.value_upper).sqrt()
    }
}

/// Optimize a normalized packing instance to `(1+ε)` relative accuracy.
///
/// One-shot convenience over [`crate::Solver`] / [`crate::Session`]: the
/// engine is constructed exactly once and every bracket of the bisection
/// reuses it (plus the warm-start trajectory cache when enabled).
///
/// ```
/// use psdp_core::{solve_packing, ApproxOptions, PackingInstance};
/// use psdp_sparse::PsdMatrix;
///
/// // max x₁+x₂ s.t. x₁·diag(2,0) + x₂·diag(0,4) ⪯ I:  OPT = 1/2 + 1/4.
/// let inst = PackingInstance::new(vec![
///     PsdMatrix::Diagonal(vec![2.0, 0.0]),
///     PsdMatrix::Diagonal(vec![0.0, 4.0]),
/// ])?;
/// let r = solve_packing(&inst, &ApproxOptions::practical(0.1))?;
/// assert!(r.converged);
/// assert!(r.value_lower <= 0.75 && 0.75 <= r.value_upper);
/// # Ok::<(), psdp_core::PsdpError>(())
/// ```
///
/// # Errors
/// Instance/option validation or linear-algebra failures. A bracket that
/// fails to close within `max_calls` is **not** an error — the report
/// carries `converged = false` with the certified bracket reached.
pub fn solve_packing(
    inst: &PackingInstance,
    opts: &ApproxOptions,
) -> Result<PackingReport, PsdpError> {
    let solver = Solver::builder(inst).options(opts.decision).build()?;
    // `optimize` consults `opts.warm_start` itself; a fresh session's own
    // flag defaults to on.
    solver.session().optimize(opts)
}

/// Result of optimizing a general covering positive SDP (1.1).
#[derive(Debug, Clone)]
pub struct CoveringReport {
    /// Certified bracket on the optimum `C • Y` (equal to the packing
    /// optimum by strong duality, which the paper assumes).
    pub value_lower: f64,
    /// Upper end of the bracket.
    pub value_upper: f64,
    /// A feasible primal `Y` achieving `C•Y = value_upper` (when a primal
    /// witness with a dense matrix was produced).
    pub y: Option<Mat>,
    /// Original-scale dual multipliers `λ` (feasible for the dual of (1.1)).
    pub lambda: Vec<f64>,
    /// The underlying packing report on the normalized instance.
    pub packing: PackingReport,
    /// Normalization bookkeeping (dropped constraints etc.).
    pub normalized: Normalized,
}

/// Optimize a general positive SDP via Appendix-A normalization +
/// [`solve_packing`].
///
/// # Errors
/// Validation, normalization, or solver failures.
pub fn solve_covering(
    sdp: &PositiveSdp,
    opts: &ApproxOptions,
) -> Result<CoveringReport, PsdpError> {
    let nz = normalize(sdp)?;
    let packing = solve_packing(&nz.instance, opts)?;

    // Primal back-map: Z = σ·Y/min_dot is covering-feasible for the
    // normalized program with Tr Z = σ/min_dot = value_upper.
    let y = packing.upper_witness.as_ref().and_then(|(sigma, p)| {
        p.y.as_ref().map(|ymat| {
            let mut z = ymat.clone();
            z.scale(sigma / p.min_dot.max(1e-12));
            nz.primal_back(&z)
        })
    });

    // Dual back-map: λ_kept = x/b, zeros elsewhere.
    let lambda = match &packing.best_dual {
        Some(d) => nz.dual_back(&d.x, sdp.num_constraints()),
        None => vec![0.0; sdp.num_constraints()],
    };

    Ok(CoveringReport {
        value_lower: packing.value_lower,
        value_upper: packing.value_upper,
        y,
        lambda,
        packing,
        normalized: nz,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use psdp_sparse::PsdMatrix;

    fn diag(d: &[f64]) -> PsdMatrix {
        PsdMatrix::Diagonal(d.to_vec())
    }

    /// Single constraint: OPT = 1/λmax(A) exactly.
    #[test]
    fn single_constraint_known_optimum() {
        let inst = PackingInstance::new(vec![diag(&[2.0, 0.5])]).unwrap();
        let r = solve_packing(&inst, &ApproxOptions::practical(0.1)).unwrap();
        assert!(r.converged, "bracket [{}, {}]", r.value_lower, r.value_upper);
        // OPT = 1/2.
        assert!(r.value_lower <= 0.5 + 1e-9);
        assert!(r.value_upper >= 0.5 - 1e-9);
        assert!(r.value_upper / r.value_lower <= 1.11);
        let d = r.best_dual.expect("dual found");
        assert!((d.x[0] * 2.0) <= 1.0 + 1e-8, "feasibility");
    }

    /// Orthogonal diagonal constraints: OPT = Σ 1/λmax(Aᵢ).
    #[test]
    fn orthogonal_constraints_sum() {
        let inst = PackingInstance::new(vec![diag(&[2.0, 0.0]), diag(&[0.0, 4.0])]).unwrap();
        let r = solve_packing(&inst, &ApproxOptions::practical(0.1)).unwrap();
        // OPT = 1/2 + 1/4 = 0.75.
        assert!(r.converged);
        assert!(r.value_lower <= 0.75 + 1e-9 && r.value_upper >= 0.75 - 1e-9);
        assert!((r.value_estimate() - 0.75).abs() < 0.08);
    }

    /// Competing constraints on the same coordinate: OPT set by the sum.
    /// A₁ = A₂ = diag(1,1): any x with x₁+x₂ ≤ 1 is feasible, OPT = 1.
    #[test]
    fn shared_direction_caps_sum() {
        let inst = PackingInstance::new(vec![diag(&[1.0, 1.0]), diag(&[1.0, 1.0])]).unwrap();
        let r = solve_packing(&inst, &ApproxOptions::practical(0.1)).unwrap();
        assert!(r.converged);
        assert!((r.value_estimate() - 1.0).abs() < 0.1, "estimate {}", r.value_estimate());
    }

    /// Bracket is always certified: lower by a feasible dual, upper by a
    /// covering witness.
    #[test]
    fn bracket_certificates() {
        let inst = PackingInstance::new(vec![
            diag(&[1.0, 0.3, 0.0]),
            diag(&[0.0, 0.7, 1.0]),
            diag(&[0.5, 0.5, 0.5]),
        ])
        .unwrap();
        let r = solve_packing(&inst, &ApproxOptions::practical(0.15)).unwrap();
        let d = r.best_dual.as_ref().expect("dual");
        let cert = crate::verify::verify_dual(&inst, d, 1e-8);
        assert!(cert.feasible, "λmax {}", cert.lambda_max);
        // The feasible dual certifies the reported lower bound (its value
        // is at least value_lower; quantized bracket moves may report a
        // slightly smaller — still certified — bound than the witness).
        assert!(cert.value >= r.value_lower - 1e-9, "{} < {}", cert.value, r.value_lower);
        assert!(r.decision_calls <= 60);
        // Per-bracket breakdown covers every decision call.
        assert_eq!(r.brackets.len(), r.decision_calls);
    }

    /// Covering wrapper on a diagonal SDP with a known optimum.
    #[test]
    fn covering_diagonal_known() {
        // min C•Y s.t. A•Y ≥ b, all diagonal:
        // C = diag(4,1), A = diag(1,1), b = 2 → OPT = 2 (put mass on j=1).
        let sdp = PositiveSdp {
            objective: diag(&[4.0, 1.0]),
            constraints: vec![diag(&[1.0, 1.0])],
            rhs: vec![2.0],
        };
        let r = solve_covering(&sdp, &ApproxOptions::practical(0.1)).unwrap();
        assert!(
            r.value_lower <= 2.0 + 1e-6 && r.value_upper >= 2.0 - 1e-6,
            "bracket [{}, {}]",
            r.value_lower,
            r.value_upper
        );
        // The primal witness, if materialized, must be covering-feasible
        // and certify a bound inside the reported bracket (the witness may
        // be tighter than the quantized value_upper, never looser).
        if let Some(y) = &r.y {
            let ay = sdp.constraints[0].dot_dense(y);
            assert!(ay >= 2.0 * (1.0 - 1e-6), "A•Y = {ay}");
            let cy = sdp.objective.dot_dense(y);
            assert!(cy <= r.value_upper * (1.0 + 1e-6), "C•Y = {cy} > {}", r.value_upper);
            assert!(cy >= r.value_lower * (1.0 - 1e-6), "C•Y = {cy} < {}", r.value_lower);
        }
        // Dual multipliers feasible: Σ λᵢAᵢ ⪯ C elementwise on the diagonal,
        // i.e. λ₀·1 ≤ C_jj for both j; the binding coordinate is min_j C_jj = 1.
        let c_diag = [4.0, 1.0];
        let bound = c_diag.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(r.lambda[0] <= bound + 1e-9, "λ₀ = {} exceeds {bound}", r.lambda[0]);
    }

    #[test]
    fn rejects_bad_eps() {
        let inst = PackingInstance::new(vec![diag(&[1.0])]).unwrap();
        let mut o = ApproxOptions::practical(0.1);
        o.eps = 0.0;
        assert!(solve_packing(&inst, &o).is_err());
    }

    /// Lemma 2.2 pruning path: an instance with one pathological huge-trace
    /// constraint still brackets the true optimum. With the pathological
    /// coordinate essentially unusable (λmax ≈ trace ≫ 1), OPT is set by the
    /// benign constraints.
    #[test]
    fn pruning_keeps_bracket_valid() {
        let huge = 1e9;
        let inst = PackingInstance::new(vec![
            diag(&[1.0, 0.0, 0.0]),
            diag(&[0.0, 1.0, 0.0]),
            diag(&[huge, huge, huge]),
        ])
        .unwrap();
        // Exact optimum: x₃ ≤ 1/huge ≈ 0, x₁ = x₂ = 1 ⇒ OPT ≈ 2.
        let r = solve_packing(&inst, &ApproxOptions::practical(0.1)).unwrap();
        assert!(r.value_lower <= 2.0 + 1e-6, "lower {}", r.value_lower);
        assert!(r.value_upper >= 2.0 - 1e-6 - 2.0 / huge, "upper {}", r.value_upper);
        assert!(r.converged);
        // The huge constraint must actually have been pruned in some call.
        assert!(r.pruned_max >= 1, "pruning never triggered");
        // And the returned dual keeps it at (near) zero.
        let d = r.best_dual.unwrap();
        assert!(d.x[2] <= 1.0 / huge * 2.0);
    }

    /// `ApproxOptions::warm_start = false` must actually disable warm
    /// starts, even on a fresh session whose own flag defaults to on.
    #[test]
    fn warm_start_option_is_respected() {
        let inst = PackingInstance::new(vec![diag(&[2.0, 0.0]), diag(&[0.0, 4.0])]).unwrap();
        let mut o = ApproxOptions::serving(0.1);
        o.warm_start = false;
        let r = solve_packing(&inst, &o).unwrap();
        assert!(r.call_stats.iter().all(|s| !s.warm_started), "a bracket warm-started");
        assert_eq!(r.total_replayed, 0);
    }

    /// The serving preset disables dense-Y accumulation, maximizing replay,
    /// and returns the same certified bracket as the practical preset.
    #[test]
    fn serving_matches_practical_bracket() {
        let inst = PackingInstance::new(vec![diag(&[2.0, 0.0]), diag(&[0.0, 4.0])]).unwrap();
        let a = solve_packing(&inst, &ApproxOptions::practical(0.1)).unwrap();
        let b = solve_packing(&inst, &ApproxOptions::serving(0.1)).unwrap();
        assert_eq!(a.value_lower.to_bits(), b.value_lower.to_bits());
        assert_eq!(a.value_upper.to_bits(), b.value_upper.to_bits());
        assert_eq!(a.decision_calls, b.decision_calls);
        assert!(b.call_stats.iter().any(|s| s.warm_started), "serving preset never warm-started");
    }
}
