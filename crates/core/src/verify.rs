//! Numerical certification of solutions.
//!
//! Every solution the solver returns can be re-checked against the instance
//! with exact (eigensolver-backed) linear algebra, independent of which
//! engine or constants mode produced it. The experiments report these
//! certificates, so a buggy fast path cannot silently inflate results.

use crate::instance::PackingInstance;
use crate::solution::{DualSolution, PrimalSolution};
use psdp_linalg::{sym_eigen, vecops};

/// Result of checking a dual (packing) solution.
#[derive(Debug, Clone, Copy)]
pub struct DualCertificate {
    /// Measured `λmax(Σ xᵢAᵢ)`; feasible iff `≤ 1` (up to `tol`).
    pub lambda_max: f64,
    /// The packing value `1ᵀx`.
    pub value: f64,
    /// Whether the solution passes at the requested tolerance.
    pub feasible: bool,
}

/// Result of checking a primal (covering) solution.
#[derive(Debug, Clone, Copy)]
pub struct PrimalCertificate {
    /// `Tr Y` (should be 1). `NaN` when no dense `Y` was accumulated.
    pub trace: f64,
    /// Measured `minᵢ Aᵢ • Y` (from the dense `Y` if present, otherwise the
    /// solver's reported averages).
    pub min_dot: f64,
    /// Smallest eigenvalue of `Y` (PSD check); `NaN` without a dense `Y`.
    pub lambda_min: f64,
    /// Whether the matrix itself was checked (vs engine-reported averages).
    pub matrix_checked: bool,
    /// Whether the solution passes at the requested tolerance.
    pub feasible: bool,
}

/// Certify a dual solution: `x ≥ 0`, `λmax(Σ xᵢAᵢ) ≤ 1 + tol`.
pub fn verify_dual(inst: &PackingInstance, sol: &DualSolution, tol: f64) -> DualCertificate {
    let nonneg = sol.x.iter().all(|&v| v >= -tol);
    let psi = inst.weighted_sum(&sol.x);
    let lambda_max = match sym_eigen(&psi) {
        Ok(e) => e.lambda_max(),
        Err(_) => f64::INFINITY,
    };
    let value = vecops::sum(&sol.x);
    DualCertificate { lambda_max, value, feasible: nonneg && lambda_max <= 1.0 + tol }
}

/// Certify a primal solution: `Tr Y = 1`, `Y ⪰ 0`, `Aᵢ • Y ≥ 1 − tol`.
///
/// When the dense `Y` is available the dots are recomputed from it;
/// otherwise the solver-reported averages are used and
/// `matrix_checked = false` records the weaker evidence.
pub fn verify_primal(inst: &PackingInstance, sol: &PrimalSolution, tol: f64) -> PrimalCertificate {
    match &sol.y {
        Some(y) => {
            let trace = y.trace();
            let lambda_min = match sym_eigen(y) {
                Ok(e) => e.lambda_min(),
                Err(_) => f64::NEG_INFINITY,
            };
            let min_dot = inst.mats().iter().map(|a| a.dot_dense(y)).fold(f64::INFINITY, f64::min);
            let feasible = (trace - 1.0).abs() <= tol && lambda_min >= -tol && min_dot >= 1.0 - tol;
            PrimalCertificate { trace, min_dot, lambda_min, matrix_checked: true, feasible }
        }
        None => {
            let min_dot = sol.min_dot;
            PrimalCertificate {
                trace: f64::NAN,
                min_dot,
                lambda_min: f64::NAN,
                matrix_checked: false,
                feasible: min_dot >= 1.0 - tol,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decision::decision_psdp;
    use crate::options::DecisionOptions;
    use crate::solution::Outcome;
    use psdp_linalg::Mat;
    use psdp_sparse::PsdMatrix;

    fn inst2() -> PackingInstance {
        PackingInstance::new(vec![
            PsdMatrix::Diagonal(vec![1.0, 0.0]),
            PsdMatrix::Diagonal(vec![0.0, 1.0]),
        ])
        .unwrap()
    }

    #[test]
    fn verifies_known_feasible_dual() {
        let inst = inst2();
        let sol = DualSolution { x: vec![0.9, 0.8], value: 1.7, feasibility_scale: 1.0 };
        let c = verify_dual(&inst, &sol, 1e-9);
        assert!(c.feasible);
        assert!((c.lambda_max - 0.9).abs() < 1e-12);
        assert!((c.value - 1.7).abs() < 1e-12);
    }

    #[test]
    fn rejects_infeasible_dual() {
        let inst = inst2();
        let sol = DualSolution { x: vec![1.5, 0.2], value: 1.7, feasibility_scale: 1.0 };
        let c = verify_dual(&inst, &sol, 1e-9);
        assert!(!c.feasible);
    }

    #[test]
    fn rejects_negative_dual() {
        let inst = inst2();
        let sol = DualSolution { x: vec![-0.5, 0.2], value: -0.3, feasibility_scale: 1.0 };
        assert!(!verify_dual(&inst, &sol, 1e-9).feasible);
    }

    #[test]
    fn verifies_primal_with_matrix() {
        let inst = PackingInstance::new(vec![PsdMatrix::Diagonal(vec![2.0, 2.0])]).unwrap();
        let y = Mat::from_diag(&[0.5, 0.5]);
        let sol = PrimalSolution {
            constraint_dots: vec![2.0],
            y: Some(y),
            min_dot: 2.0,
            rounds_averaged: 1,
        };
        let c = verify_primal(&inst, &sol, 1e-9);
        assert!(c.feasible);
        assert!(c.matrix_checked);
        assert!((c.trace - 1.0).abs() < 1e-12);
        assert!((c.min_dot - 2.0).abs() < 1e-12);
    }

    #[test]
    fn primal_without_matrix_uses_reported_dots() {
        let inst = inst2();
        let sol = PrimalSolution {
            constraint_dots: vec![1.2, 1.1],
            y: None,
            min_dot: 1.1,
            rounds_averaged: 5,
        };
        let c = verify_primal(&inst, &sol, 1e-6);
        assert!(c.feasible);
        assert!(!c.matrix_checked);
        assert!(c.trace.is_nan());
    }

    #[test]
    fn solver_outputs_pass_verification() {
        // End-to-end: whatever side the solver certifies must verify.
        let insts = [
            inst2(),
            PackingInstance::new(vec![PsdMatrix::Diagonal(vec![3.0, 3.0, 3.0])]).unwrap(),
        ];
        for inst in &insts {
            let res = decision_psdp(inst, &DecisionOptions::practical(0.2)).unwrap();
            match res.outcome {
                Outcome::Dual(d) => {
                    assert!(verify_dual(inst, &d, 1e-8).feasible, "dual failed verify");
                }
                Outcome::Primal(p) => {
                    assert!(verify_primal(inst, &p, 1e-6).feasible, "primal failed verify: {p:?}");
                }
            }
        }
    }
}
