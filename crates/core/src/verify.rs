//! Numerical certification of solutions.
//!
//! Every solution the solver returns can be re-checked against the instance
//! with exact (eigensolver-backed) linear algebra, independent of which
//! engine or constants mode produced it. The experiments report these
//! certificates, so a buggy fast path cannot silently inflate results.

use crate::instance::{MixedInstance, PackingInstance};
use crate::solution::{DualSolution, MixedCertificate, MixedFeasible, PrimalSolution};
use psdp_linalg::{sym_eigen, vecops};

/// Result of checking a dual (packing) solution.
#[derive(Debug, Clone, Copy)]
pub struct DualCertificate {
    /// Measured `λmax(Σ xᵢAᵢ)`; feasible iff `≤ 1` (up to `tol`).
    pub lambda_max: f64,
    /// The packing value `1ᵀx`.
    pub value: f64,
    /// Whether the solution passes at the requested tolerance.
    pub feasible: bool,
}

/// Result of checking a primal (covering) solution.
#[derive(Debug, Clone, Copy)]
pub struct PrimalCertificate {
    /// `Tr Y` (should be 1). `NaN` when no dense `Y` was accumulated.
    pub trace: f64,
    /// Measured `minᵢ Aᵢ • Y` (from the dense `Y` if present, otherwise the
    /// solver's reported averages).
    pub min_dot: f64,
    /// Smallest eigenvalue of `Y` (PSD check); `NaN` without a dense `Y`.
    pub lambda_min: f64,
    /// Whether the matrix itself was checked (vs engine-reported averages).
    pub matrix_checked: bool,
    /// Whether the solution passes at the requested tolerance.
    pub feasible: bool,
}

/// Certify a dual solution: `x ≥ 0`, `λmax(Σ xᵢAᵢ) ≤ 1 + tol`.
pub fn verify_dual(inst: &PackingInstance, sol: &DualSolution, tol: f64) -> DualCertificate {
    let nonneg = sol.x.iter().all(|&v| v >= -tol);
    let psi = inst.weighted_sum(&sol.x);
    let lambda_max = match sym_eigen(&psi) {
        Ok(e) => e.lambda_max(),
        Err(_) => f64::INFINITY,
    };
    let value = vecops::sum(&sol.x);
    DualCertificate { lambda_max, value, feasible: nonneg && lambda_max <= 1.0 + tol }
}

/// Certify a primal solution: `Tr Y = 1`, `Y ⪰ 0`, `Aᵢ • Y ≥ 1 − tol`.
///
/// When the dense `Y` is available the dots are recomputed from it;
/// otherwise the solver-reported averages are used and
/// `matrix_checked = false` records the weaker evidence.
pub fn verify_primal(inst: &PackingInstance, sol: &PrimalSolution, tol: f64) -> PrimalCertificate {
    match &sol.y {
        Some(y) => {
            let trace = y.trace();
            let lambda_min = match sym_eigen(y) {
                Ok(e) => e.lambda_min(),
                Err(_) => f64::NEG_INFINITY,
            };
            let min_dot = inst.mats().iter().map(|a| a.dot_dense(y)).fold(f64::INFINITY, f64::min);
            let feasible = (trace - 1.0).abs() <= tol && lambda_min >= -tol && min_dot >= 1.0 - tol;
            PrimalCertificate { trace, min_dot, lambda_min, matrix_checked: true, feasible }
        }
        None => {
            let min_dot = sol.min_dot;
            PrimalCertificate {
                trace: f64::NAN,
                min_dot,
                lambda_min: f64::NAN,
                matrix_checked: false,
                feasible: min_dot >= 1.0 - tol,
            }
        }
    }
}

/// Result of checking a mixed feasible point against a
/// [`MixedInstance`] at coverage threshold `sigma`.
#[derive(Debug, Clone, Copy)]
pub struct MixedFeasibleCertificate {
    /// Measured `λmax(Σ xᵢPᵢ)`; packing-feasible iff `≤ 1` (up to `tol`).
    pub pack_lambda_max: f64,
    /// Measured `λmin(Σ xᵢCᵢ)`; covers threshold `sigma` iff
    /// `≥ sigma·(1 − tol)`.
    pub cover_lambda_min: f64,
    /// Whether the point passes both sides at the requested tolerance.
    pub feasible: bool,
}

/// Result of checking a mixed infeasibility certificate.
#[derive(Debug, Clone, Copy)]
pub struct MixedInfeasibleCertificate {
    /// Re-measured pricing margin `minₖ σ·(Pₖ•Y_P)/(Cₖ•Y_C)` (from the
    /// dense weight matrices when both are present, otherwise from the
    /// solver-reported dots).
    pub margin: f64,
    /// The coverage threshold the certificate proves unreachable:
    /// `σ* ≤ σ/margin`.
    pub refuted_threshold: f64,
    /// Whether **both** weight matrices were re-checked (trace 1, PSD,
    /// dots recomputed). Sides without a materialized matrix fall back
    /// to the solver-reported dot products (each side is re-measured
    /// independently whenever its matrix is present).
    pub matrix_checked: bool,
    /// Whether the certificate is valid at the requested tolerance:
    /// margin `> 1` and every present weight matrix is trace-1 PSD.
    pub valid: bool,
}

/// Certify a mixed feasible point: `x ≥ 0`, `λmax(Σ xᵢPᵢ) ≤ 1 + tol`,
/// `λmin(Σ xᵢCᵢ) ≥ sigma·(1 − tol)`. Both aggregates are rebuilt from the
/// instance and measured with the exact eigensolver — the certificate is
/// independent of whichever engine produced `sol`.
pub fn verify_mixed_feasible(
    inst: &MixedInstance,
    sol: &MixedFeasible,
    sigma: f64,
    tol: f64,
) -> MixedFeasibleCertificate {
    let nonneg = sol.x.iter().all(|&v| v >= -tol);
    let psi_p = inst.pack().weighted_sum(&sol.x);
    let pack_lambda_max = match sym_eigen(&psi_p) {
        Ok(e) => e.lambda_max(),
        Err(_) => f64::INFINITY,
    };
    let psi_c = inst.cover().weighted_sum(&sol.x);
    let cover_lambda_min = match sym_eigen(&psi_c) {
        Ok(e) => e.lambda_min(),
        Err(_) => f64::NEG_INFINITY,
    };
    let feasible =
        nonneg && pack_lambda_max <= 1.0 + tol && cover_lambda_min >= sigma * (1.0 - tol);
    MixedFeasibleCertificate { pack_lambda_max, cover_lambda_min, feasible }
}

/// Certify a mixed infeasibility certificate (see
/// [`MixedCertificate`] for the pricing argument). Each weight matrix is
/// verified independently when present — checked to be trace-1 PSD with
/// its dot products recomputed from the instance — so a sketched packing
/// engine (`y_pack = None`) still gets its covering side re-measured
/// (the covering weights are always materialized). `matrix_checked` is
/// `true` only when *both* sides were re-measured; sides without a
/// matrix fall back to the solver-reported dots. The pricing minimum
/// runs over the certificate's active mask — with Lemma-2.2 pruning in
/// play the certificate refutes the *restricted* instance, and the
/// bisection adds the pruned coordinates' certified coverage slack on
/// top.
pub fn verify_mixed_infeasible(
    inst: &MixedInstance,
    cert: &MixedCertificate,
    tol: f64,
) -> MixedInfeasibleCertificate {
    let sigma = cert.sigma;
    let weight_ok = |y: &psdp_linalg::Mat| {
        (y.trace() - 1.0).abs() <= tol
            && match sym_eigen(y) {
                Ok(e) => e.lambda_min() >= -tol,
                Err(_) => false,
            }
    };
    let (pack_dots, pack_checked, pack_ok) = match &cert.y_pack {
        Some(yp) => (
            inst.pack().mats().iter().map(|a| a.dot_dense(yp)).collect::<Vec<f64>>(),
            true,
            weight_ok(yp),
        ),
        None => (cert.pack_dots.clone(), false, true),
    };
    let (cover_dots, cover_checked, cover_ok) = match &cert.y_cover {
        Some(yc) => (
            inst.cover().mats().iter().map(|a| a.dot_dense(yc)).collect::<Vec<f64>>(),
            true,
            weight_ok(yc),
        ),
        None => (cert.cover_dots.clone(), false, true),
    };
    let matrix_checked = pack_checked && cover_checked;
    let matrices_ok = pack_ok && cover_ok;
    let is_active = |k: usize| cert.active.get(k).copied().unwrap_or(true);
    let mut counted = 0usize;
    let margin = pack_dots
        .iter()
        .zip(&cover_dots)
        .enumerate()
        .filter(|&(k, _)| is_active(k))
        .map(|(_, (&p, &c))| {
            counted += 1;
            if c > 0.0 {
                sigma * p / c
            } else {
                f64::INFINITY
            }
        })
        .fold(f64::INFINITY, f64::min);
    // Reject vacuous certificates outright: the pricing minimum must have
    // actually run over every coordinate (short dot vectors would silently
    // truncate the zip) and priced at least one active one. An *infinite*
    // margin (every active covering value 0, so λmin(Σ xC) ≤ 0) is only
    // meaningful when backed by a re-measured trace-1 PSD `Y_C` — from
    // reported numbers alone it is indistinguishable from garbage.
    let structurally_ok = counted > 0
        && pack_dots.len() == inst.pack().n()
        && cover_dots.len() == inst.cover().n()
        && (margin.is_finite() || cover_checked);
    MixedInfeasibleCertificate {
        margin,
        refuted_threshold: sigma / margin.max(1e-300),
        matrix_checked,
        valid: matrices_ok && structurally_ok && margin > 1.0 + tol,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decision::decision_psdp;
    use crate::options::DecisionOptions;
    use crate::solution::Outcome;
    use psdp_linalg::Mat;
    use psdp_sparse::PsdMatrix;

    fn inst2() -> PackingInstance {
        PackingInstance::new(vec![
            PsdMatrix::Diagonal(vec![1.0, 0.0]),
            PsdMatrix::Diagonal(vec![0.0, 1.0]),
        ])
        .unwrap()
    }

    #[test]
    fn verifies_known_feasible_dual() {
        let inst = inst2();
        let sol = DualSolution { x: vec![0.9, 0.8], value: 1.7, feasibility_scale: 1.0 };
        let c = verify_dual(&inst, &sol, 1e-9);
        assert!(c.feasible);
        assert!((c.lambda_max - 0.9).abs() < 1e-12);
        assert!((c.value - 1.7).abs() < 1e-12);
    }

    #[test]
    fn rejects_infeasible_dual() {
        let inst = inst2();
        let sol = DualSolution { x: vec![1.5, 0.2], value: 1.7, feasibility_scale: 1.0 };
        let c = verify_dual(&inst, &sol, 1e-9);
        assert!(!c.feasible);
    }

    #[test]
    fn rejects_negative_dual() {
        let inst = inst2();
        let sol = DualSolution { x: vec![-0.5, 0.2], value: -0.3, feasibility_scale: 1.0 };
        assert!(!verify_dual(&inst, &sol, 1e-9).feasible);
    }

    #[test]
    fn verifies_primal_with_matrix() {
        let inst = PackingInstance::new(vec![PsdMatrix::Diagonal(vec![2.0, 2.0])]).unwrap();
        let y = Mat::from_diag(&[0.5, 0.5]);
        let sol = PrimalSolution {
            constraint_dots: vec![2.0],
            y: Some(y),
            min_dot: 2.0,
            rounds_averaged: 1,
        };
        let c = verify_primal(&inst, &sol, 1e-9);
        assert!(c.feasible);
        assert!(c.matrix_checked);
        assert!((c.trace - 1.0).abs() < 1e-12);
        assert!((c.min_dot - 2.0).abs() < 1e-12);
    }

    #[test]
    fn primal_without_matrix_uses_reported_dots() {
        let inst = inst2();
        let sol = PrimalSolution {
            constraint_dots: vec![1.2, 1.1],
            y: None,
            min_dot: 1.1,
            rounds_averaged: 5,
        };
        let c = verify_primal(&inst, &sol, 1e-6);
        assert!(c.feasible);
        assert!(!c.matrix_checked);
        assert!(c.trace.is_nan());
    }

    #[test]
    fn mixed_feasible_verification_both_sides() {
        // P = diag(2, 2), C = diag(1, 3): x = 0.4 has λmax(ΣxP) = 0.8,
        // λmin(ΣxC) = 0.4.
        let inst = MixedInstance::new(
            vec![PsdMatrix::Diagonal(vec![2.0, 2.0])],
            vec![PsdMatrix::Diagonal(vec![1.0, 3.0])],
        )
        .unwrap();
        let sol = MixedFeasible { x: vec![0.4], pack_lambda_max: 0.8, cover_lambda_min: 0.4 };
        let c = verify_mixed_feasible(&inst, &sol, 0.4, 1e-9);
        assert!(c.feasible);
        assert!((c.pack_lambda_max - 0.8).abs() < 1e-12);
        assert!((c.cover_lambda_min - 0.4).abs() < 1e-12);
        // Asking for more coverage than the point delivers must fail.
        assert!(!verify_mixed_feasible(&inst, &sol, 0.6, 1e-9).feasible);
        // Packing violations must fail too.
        let bad = MixedFeasible { x: vec![0.6], pack_lambda_max: 1.2, cover_lambda_min: 0.6 };
        assert!(!verify_mixed_feasible(&inst, &bad, 0.1, 1e-9).feasible);
    }

    #[test]
    fn mixed_infeasible_verification_margin() {
        // P = diag(2, 2), C = diag(1, 1): σ* = 1/2. At σ = 2 the uniform
        // weight pair prices every coordinate out with margin σ·2/1 = 4.
        let inst = MixedInstance::new(
            vec![PsdMatrix::Diagonal(vec![2.0, 2.0])],
            vec![PsdMatrix::Diagonal(vec![1.0, 1.0])],
        )
        .unwrap();
        let half = Mat::from_diag(&[0.5, 0.5]);
        let cert = MixedCertificate {
            sigma: 2.0,
            y_pack: Some(half.clone()),
            y_cover: Some(half),
            pack_dots: vec![2.0],
            cover_dots: vec![1.0],
            active: vec![true],
            margin: 4.0,
        };
        let v = verify_mixed_infeasible(&inst, &cert, 1e-9);
        assert!(v.valid);
        assert!(v.matrix_checked);
        assert!((v.margin - 4.0).abs() < 1e-12);
        // The refuted threshold bounds the true optimum σ* = 1/2.
        assert!((v.refuted_threshold - 0.5).abs() < 1e-12);

        // A non-trace-1 weight matrix invalidates the certificate.
        let bad = MixedCertificate { y_pack: Some(Mat::from_diag(&[0.5, 0.9])), ..cert.clone() };
        assert!(!verify_mixed_infeasible(&inst, &bad, 1e-9).valid);
    }

    #[test]
    fn mixed_infeasible_rejects_vacuous_certificates() {
        let inst = MixedInstance::new(
            vec![PsdMatrix::Diagonal(vec![2.0, 2.0])],
            vec![PsdMatrix::Diagonal(vec![1.0, 1.0])],
        )
        .unwrap();
        // All-inactive mask: nothing was priced — not a proof of anything.
        let vacuous = MixedCertificate {
            sigma: 1.0,
            y_pack: None,
            y_cover: None,
            pack_dots: vec![2.0],
            cover_dots: vec![1.0],
            active: vec![false],
            margin: 2.0,
        };
        assert!(!verify_mixed_infeasible(&inst, &vacuous, 1e-9).valid);
        // Truncated dot vectors silently shorten the zip: reject.
        let truncated = MixedCertificate {
            pack_dots: vec![],
            cover_dots: vec![],
            active: vec![true],
            ..vacuous.clone()
        };
        assert!(!verify_mixed_infeasible(&inst, &truncated, 1e-9).valid);
        // An infinite margin from *reported* numbers alone is untrusted…
        let unbacked = MixedCertificate {
            cover_dots: vec![0.0],
            active: vec![true],
            margin: f64::INFINITY,
            ..vacuous.clone()
        };
        assert!(!verify_mixed_infeasible(&inst, &unbacked, 1e-9).valid);
        // …but becomes acceptable when a re-measured Y_C backs it. (Here
        // C•Y_C = 1 ≠ 0, so the margin is finite after re-measurement and
        // the certificate is judged on the re-measured numbers.)
        let backed = MixedCertificate { y_cover: Some(Mat::from_diag(&[0.5, 0.5])), ..unbacked };
        let v = verify_mixed_infeasible(&inst, &backed, 1e-9);
        assert!(v.margin.is_finite(), "re-measured cover dots must replace the reported zeros");
    }

    #[test]
    fn mixed_infeasible_cover_side_checked_without_pack_matrix() {
        // Sketched packing engines leave y_pack = None; the covering
        // matrix must still be independently re-measured.
        let inst = MixedInstance::new(
            vec![PsdMatrix::Diagonal(vec![2.0, 2.0])],
            vec![PsdMatrix::Diagonal(vec![1.0, 1.0])],
        )
        .unwrap();
        let half = Mat::from_diag(&[0.5, 0.5]);
        let cert = MixedCertificate {
            sigma: 2.0,
            y_pack: None,
            y_cover: Some(half),
            pack_dots: vec![2.0],
            // Inflated reported cover value: the re-measurement from
            // y_cover (C•Y = 1.0) must override it.
            cover_dots: vec![100.0],
            active: vec![true],
            margin: 4.0,
        };
        let v = verify_mixed_infeasible(&inst, &cert, 1e-9);
        assert!(!v.matrix_checked, "only one side had a matrix");
        assert!((v.margin - 4.0).abs() < 1e-12, "cover side not re-measured: {v:?}");
        // A broken covering weight matrix invalidates the certificate
        // even without a packing matrix.
        let bad = MixedCertificate { y_cover: Some(Mat::from_diag(&[0.5, 0.9])), ..cert };
        assert!(!verify_mixed_infeasible(&inst, &bad, 1e-9).valid);
    }

    #[test]
    fn solver_outputs_pass_verification() {
        // End-to-end: whatever side the solver certifies must verify.
        let insts = [
            inst2(),
            PackingInstance::new(vec![PsdMatrix::Diagonal(vec![3.0, 3.0, 3.0])]).unwrap(),
        ];
        for inst in &insts {
            let res = decision_psdp(inst, &DecisionOptions::practical(0.2)).unwrap();
            match res.outcome {
                Outcome::Dual(d) => {
                    assert!(verify_dual(inst, &d, 1e-8).feasible, "dual failed verify");
                }
                Outcome::Primal(p) => {
                    assert!(verify_primal(inst, &p, 1e-6).feasible, "primal failed verify: {p:?}");
                }
            }
        }
    }
}
