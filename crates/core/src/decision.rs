//! `decisionPSDP` — Algorithm 3.1, the paper's core contribution.
//!
//! Solves the ε-decision problem for a normalized packing SDP
//! (`max 1ᵀx` s.t. `Σ xᵢAᵢ ⪯ I`): it returns **either**
//!
//! * a dual `x ≥ 0` with `‖x‖₁ ≥ 1 − O(ε)` and `Σ xᵢAᵢ ⪯ I`
//!   ("the packing optimum is at least 1"), **or**
//! * a primal `Y ⪰ 0` with `Tr Y = 1` and `Aᵢ • Y ≥ 1` for all `i`
//!   ("the covering optimum — hence by duality the packing optimum — is at
//!   most 1").
//!
//! ## The loop (pseudocode from the paper)
//!
//! ```text
//! K = (1+ln n)/ε, α = ε/(K(1+10ε)), R = (32/(εα)) ln n
//! x⁰ᵢ = 1/(n·Tr Aᵢ)
//! while ‖x‖₁ ≤ K and t < R:
//!     W ← exp(Σᵢ xᵢAᵢ)
//!     B ← { i : W • Aᵢ ≤ (1+ε)·Tr W }
//!     x ← x + α·x_B
//! if ‖x‖₁ > K: return x/((1+10ε)K) as dual
//! else:        return Y = avg_τ W(τ)/Tr W(τ) as primal
//! ```
//!
//! ## Notes on the implementation
//!
//! * `Ψ(t) = Σ xᵢ(t)Aᵢ` is maintained **incrementally** through
//!   [`crate::psi::PsiMaintainer`]: each round scatter-adds only the
//!   selected coordinates' scaled constraints (work proportional to their
//!   storage nonzeros — `O(1)` per rank-1 Laplacian factor). A
//!   from-scratch `Σᵢ xᵢAᵢ` happens only at the drift-check cadence
//!   ([`DecisionOptions::psi_rebuild_period`], default every 64 rounds),
//!   so its `Θ(n·m²)` cost is amortized to a `1/period` fraction per
//!   iteration rather than paid every round.
//! * [`psdp_expdot::EngineKind::Auto`] resolves against the instance's
//!   storage profile at engine construction; the *resolved* engine name is
//!   what [`SolveStats::engine`] reports.
//! * **Empty `B(t)`**: every constraint has `P•Aᵢ > 1+ε`, so the *current*
//!   `P` is already a feasible primal (`Tr P = 1`, `Aᵢ•P > 1+ε ≥ 1`). With
//!   exact arithmetic the paper's loop would idle until `R` and return an
//!   average whose tail is this same `P`; returning it immediately is
//!   equivalent and we do so (exit reason [`ExitReason::EmptyEligibleSet`]).
//! * **Certified dual scaling**: in strict mode the dual is scaled by the
//!   paper's `(1+10ε)K` (sound by Lemma 3.2). In practical mode (boosted α,
//!   where Lemma 3.2's induction need not apply) the returned dual is scaled
//!   by the *measured* `λmax(Σ xᵢAᵢ)`, so feasibility is certified
//!   unconditionally.

use crate::error::PsdpError;
use crate::instance::PackingInstance;
use crate::options::{ConstantsMode, DecisionOptions, UpdateRule};
use crate::psi::PsiMaintainer;
use crate::solution::{DualSolution, ExitReason, Outcome, PrimalSolution};
use crate::stats::SolveStats;
use psdp_expdot::{Engine, ExpDots};
use psdp_linalg::{lambda_max_upper_bound, sym_eigen, vecops, Mat};
use psdp_mmw::paper_constants;
use psdp_parallel::Cost;
use std::time::Instant;

/// Outcome + telemetry of one decision run.
#[derive(Debug, Clone)]
pub struct DecisionResult {
    /// Which side was certified.
    pub outcome: Outcome,
    /// Telemetry.
    pub stats: SolveStats,
}

/// Run Algorithm 3.1 on a normalized packing instance.
///
/// ```
/// use psdp_core::{decision_psdp, DecisionOptions, Outcome, PackingInstance};
/// use psdp_sparse::PsdMatrix;
///
/// // Two orthogonal projectors: packing OPT = 2 ≥ 1, so the ε-decision
/// // procedure certifies the dual side with value ≥ 1−O(ε).
/// let inst = PackingInstance::new(vec![
///     PsdMatrix::Diagonal(vec![1.0, 0.0]),
///     PsdMatrix::Diagonal(vec![0.0, 1.0]),
/// ])?;
/// let res = decision_psdp(&inst, &DecisionOptions::practical(0.2))?;
/// let dual = res.outcome.dual().expect("feasible side");
/// assert!(dual.value >= 0.8);
/// # Ok::<(), psdp_core::PsdpError>(())
/// ```
///
/// Constraints can be stored sparse (CSR) or factorized — storage changes
/// cost, not answers — and [`psdp_expdot::EngineKind::Auto`] picks the
/// engine from the storage profile; the telemetry reports what actually
/// ran:
///
/// ```
/// use psdp_core::{decision_psdp, DecisionOptions, EngineKind, PackingInstance};
/// use psdp_sparse::{Csr, PsdMatrix};
///
/// // One sparse edge Laplacian on 3 vertices (λmax = 2, so OPT = 1/2 < 1).
/// let lap = Csr::from_triplets(3, 3, &[(0, 0, 1.0), (0, 1, -1.0), (1, 0, -1.0), (1, 1, 1.0)]);
/// let inst = PackingInstance::new(vec![PsdMatrix::Sparse(lap)])?;
/// let opts = DecisionOptions::practical(0.2).with_engine(EngineKind::Auto { eps: 0.2 });
/// let res = decision_psdp(&inst, &opts)?;
/// assert_eq!(res.stats.engine, "exact"); // auto resolved: tiny instance
/// assert!(res.outcome.primal().is_some()); // OPT < 1 ⇒ covering witness
/// # Ok::<(), psdp_core::PsdpError>(())
/// ```
///
/// # Errors
/// Instance/option validation failures and linear-algebra errors.
pub fn decision_psdp(
    inst: &PackingInstance,
    opts: &DecisionOptions,
) -> Result<DecisionResult, PsdpError> {
    opts.validate()?;
    let start = Instant::now();
    let n = inst.n();
    let m = inst.dim();
    let eps = opts.eps;

    let pc = paper_constants(n, eps);
    let (k_threshold, alpha, cap) = match opts.mode {
        ConstantsMode::PaperStrict => (pc.k_threshold, pc.alpha, pc.r_cap.ceil() as usize),
        ConstantsMode::Practical { alpha_boost, max_iters } => {
            (pc.k_threshold, pc.alpha * alpha_boost, max_iters)
        }
    };
    // Lemma 3.2 spectral bound, used to cap the κ passed to the engines in
    // strict mode (where the induction guarantees it holds).
    let lemma_bound = (1.0 + 10.0 * eps) * k_threshold;

    // x⁰ᵢ = 1/(n · Tr Aᵢ)  (Claim 3.3: Σ xᵢ⁰Aᵢ ⪯ I).
    let traces: Vec<f64> = inst.mats().iter().map(|a| a.trace()).collect();
    let mut x: Vec<f64> = traces.iter().map(|t| 1.0 / (n as f64 * t)).collect();
    let mut psi = PsiMaintainer::new(inst, &x, opts.psi_rebuild_period);

    // `EngineKind::Auto` resolves against the storage profile here; all
    // later decisions (primal accumulation, telemetry) use the resolved
    // kind, not the requested one.
    let engine = Engine::new(opts.engine, inst.mats(), opts.seed)?;
    let engine_kind = engine.kind();
    let accumulate_y = opts.primal_matrix_dim_limit > 0
        && m <= opts.primal_matrix_dim_limit
        && !matches!(engine_kind, psdp_expdot::EngineKind::TaylorJl { .. });
    let mut y_acc: Option<Mat> = accumulate_y.then(|| Mat::zeros(m, m));

    // Running sums of P(τ)•Aᵢ for the averaged primal.
    let mut dot_sums = vec![0.0_f64; n];
    let mut rounds_accumulated = 0usize;

    let mut cost_total = Cost::ZERO;
    let mut selected_total = 0usize;
    let mut kappa_max = 0.0_f64;
    let mut exit = ExitReason::IterationCap;
    let sample_every = (cap / 200).max(1);
    let mut trajectory: Vec<(usize, f64)> = Vec::new();

    // State for the Stale update rule.
    let mut cached: Option<ExpDots> = None;

    let mut t = 0usize;
    let mut empty_b_snapshot: Option<(Vec<f64>, Option<Mat>)> = None;

    // The paper's while-loop guards on ‖x‖₁ ≤ K *before* the first
    // iteration: if the starting point already crosses K (possible when
    // traces are ≪ 1, making x⁰ large), it is returned as the dual answer
    // directly — Ψ⁰ ⪯ I (Claim 3.3) makes the scaled x⁰ feasible.
    if vecops::sum(&x) > k_threshold {
        exit = ExitReason::DualNormCrossed;
    }

    while t < cap && exit != ExitReason::DualNormCrossed {
        t += 1;

        // κ for the Taylor degree: certified Gershgorin/Frobenius bound,
        // additionally clamped by the Lemma 3.2 bound in strict mode.
        let mut kappa = lambda_max_upper_bound(psi.matrix());
        if matches!(opts.mode, ConstantsMode::PaperStrict) {
            kappa = kappa.min(lemma_bound * 1.01);
        }
        kappa_max = kappa_max.max(kappa);

        // Engine evaluation (possibly reused under the Stale rule).
        let refresh = match opts.rule {
            UpdateRule::Stale { period } => (t - 1).is_multiple_of(period) || cached.is_none(),
            _ => true,
        };
        if refresh {
            let dots = if accumulate_y {
                engine.compute_dense(psi.matrix(), kappa, inst.mats(), t as u64)?
            } else {
                engine.compute(psi.matrix(), kappa, inst.mats(), t as u64)?
            };
            cost_total = cost_total + dots.cost;
            cached = Some(dots);
        }
        let dots = cached.as_ref().expect("engine output present");

        // Ratios P(t) • Aᵢ = (W•Aᵢ)/Tr W.
        let inv_tr = 1.0 / dots.tr_w;
        let ratios: Vec<f64> = dots.dots.iter().map(|d| d * inv_tr).collect();

        // Primal averaging uses the *current* P (i.e. x^{t-1}); only when
        // the engine output is fresh (stale reuse would double-count one P).
        if refresh {
            for (s, &r) in dot_sums.iter_mut().zip(&ratios) {
                *s += r;
            }
            if let (Some(acc), Some(p)) = (y_acc.as_mut(), dots.dense_p.as_ref()) {
                acc.axpy(1.0, p);
            }
            rounds_accumulated += 1;
        }

        // Eligible set B(t) and per-coordinate steps.
        let steps = select_steps(&ratios, eps, alpha, opts.rule);
        let selected = steps.iter().filter(|&&s| s > 0.0).count();
        if selected == 0 {
            // Every constraint already has P•Aᵢ > 1+ε: the current P is a
            // feasible primal. Snapshot it and exit.
            empty_b_snapshot = Some((ratios.clone(), dots.dense_p.clone()));
            exit = ExitReason::EmptyEligibleSet;
            break;
        }
        selected_total += selected;

        // x ← x + δ, Ψ ← Ψ + Σ δᵢAᵢ (incremental scatter-adds over the
        // selected coordinates only; periodic drift-checked rebuild).
        let mut deltas: Vec<(usize, f64)> = Vec::with_capacity(selected);
        for (i, &step) in steps.iter().enumerate() {
            if step > 0.0 {
                let delta = step * x[i];
                x[i] += delta;
                deltas.push((i, delta));
            }
        }
        psi.apply_updates(&deltas);
        psi.maybe_rebuild(&x);

        let norm1 = vecops::sum(&x);
        if t.is_multiple_of(sample_every) {
            trajectory.push((t, norm1));
        }
        if norm1 > k_threshold {
            exit = ExitReason::DualNormCrossed;
            break;
        }
        if opts.early_exit && rounds_accumulated > 0 {
            let min_avg = dot_sums
                .iter()
                .fold(f64::INFINITY, |acc, &s| acc.min(s / rounds_accumulated as f64));
            if min_avg >= 1.0 {
                exit = ExitReason::PrimalEarly;
                break;
            }
        }
    }

    let final_norm1 = vecops::sum(&x);
    let outcome = match exit {
        ExitReason::DualNormCrossed => {
            Outcome::Dual(build_dual(&x, psi.matrix(), eps, k_threshold, opts.mode)?)
        }
        ExitReason::EmptyEligibleSet => {
            let (ratios, p) = empty_b_snapshot.expect("snapshot recorded");
            let min_dot = ratios.iter().copied().fold(f64::INFINITY, f64::min);
            Outcome::Primal(PrimalSolution {
                constraint_dots: ratios,
                y: p,
                min_dot,
                rounds_averaged: 1,
            })
        }
        ExitReason::IterationCap | ExitReason::PrimalEarly => {
            let rounds = rounds_accumulated.max(1) as f64;
            let constraint_dots: Vec<f64> = dot_sums.iter().map(|s| s / rounds).collect();
            let min_dot = constraint_dots.iter().copied().fold(f64::INFINITY, f64::min);
            let y = y_acc.map(|mut acc| {
                acc.scale(1.0 / rounds);
                // Renormalize trace against numeric drift.
                let tr = acc.trace();
                if tr > 0.0 {
                    acc.scale(1.0 / tr);
                }
                acc
            });
            Outcome::Primal(PrimalSolution {
                constraint_dots,
                y,
                min_dot,
                rounds_averaged: rounds_accumulated.max(1),
            })
        }
    };

    let stats = SolveStats {
        iterations: t,
        exit,
        final_norm1,
        k_threshold,
        alpha,
        iteration_cap: cap,
        cost: cost_total,
        engine: engine_kind.name(),
        avg_selected: if t > 0 { selected_total as f64 / t as f64 } else { 0.0 },
        kappa_max,
        psi_rebuilds: psi.rebuilds(),
        psi_max_drift: psi.max_drift(),
        wall: start.elapsed(),
        norm_trajectory: trajectory,
    };
    Ok(DecisionResult { outcome, stats })
}

/// Per-coordinate step multipliers (0 = not stepped) under the chosen rule.
/// The returned value is the multiplicative step: `x_i ← x_i·(1 + stepᵢ)`.
fn select_steps(ratios: &[f64], eps: f64, alpha: f64, rule: UpdateRule) -> Vec<f64> {
    let threshold = 1.0 + eps;
    match rule {
        UpdateRule::Standard | UpdateRule::Stale { .. } => {
            ratios.iter().map(|&r| if r <= threshold { alpha } else { 0.0 }).collect()
        }
        UpdateRule::Bucketed { boost } => ratios
            .iter()
            .map(|&r| {
                if r <= threshold {
                    // Slack-proportional boost, floored so near-threshold
                    // coordinates keep moving, capped at `boost`.
                    let slack = (threshold - r) / eps;
                    alpha * slack.clamp(0.25, boost)
                } else {
                    0.0
                }
            })
            .collect(),
        UpdateRule::TopK { k } => {
            let mut eligible: Vec<(usize, f64)> =
                ratios.iter().copied().enumerate().filter(|&(_, r)| r <= threshold).collect();
            eligible.sort_by(|a, b| a.1.total_cmp(&b.1));
            let mut steps = vec![0.0; ratios.len()];
            for &(i, _) in eligible.iter().take(k) {
                steps[i] = alpha;
            }
            steps
        }
    }
}

/// Build a certified dual solution from the raw iterate.
fn build_dual(
    x: &[f64],
    psi: &Mat,
    eps: f64,
    k_threshold: f64,
    mode: ConstantsMode,
) -> Result<DualSolution, PsdpError> {
    let scale = match mode {
        ConstantsMode::PaperStrict => (1.0 + 10.0 * eps) * k_threshold,
        ConstantsMode::Practical { .. } => {
            // Certify by measurement: λmax(Σ xᵢAᵢ) from the maintained Ψ.
            let lam = match sym_eigen(psi) {
                Ok(eig) => eig.lambda_max(),
                Err(_) => lambda_max_upper_bound(psi),
            };
            (lam * (1.0 + 1e-9)).max(1.0)
        }
    };
    let xs: Vec<f64> = x.iter().map(|v| v / scale).collect();
    let value = vecops::sum(&xs);
    Ok(DualSolution { x: xs, value, feasibility_scale: scale })
}

#[cfg(test)]
mod tests {
    use super::*;
    use psdp_sparse::PsdMatrix;

    fn diag_instance(rows: &[&[f64]]) -> PackingInstance {
        PackingInstance::new(rows.iter().map(|r| PsdMatrix::Diagonal(r.to_vec())).collect())
            .unwrap()
    }

    /// Feasible case: identity split across 2 diagonal constraints. The
    /// packing optimum of {diag(1,0), diag(0,1)} is 2 > 1, so the decision
    /// procedure must find a dual with value ≥ 1−O(ε).
    #[test]
    fn dual_side_on_easy_feasible_instance() {
        let inst = diag_instance(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let res = decision_psdp(&inst, &DecisionOptions::practical(0.2)).unwrap();
        let d = res.outcome.dual().expect("should certify dual side");
        assert!(d.value >= 0.8, "dual value {}", d.value);
        // Feasibility: Σ x_i A_i ⪯ I, i.e. every diag entry ≤ 1.
        assert!(d.x[0] <= 1.0 + 1e-9 && d.x[1] <= 1.0 + 1e-9);
        assert_eq!(res.stats.exit, ExitReason::DualNormCrossed);
    }

    /// Infeasible case: OPT < 1. With A₁ = diag(4,4) the packing optimum is
    /// 1/4, so the procedure must certify the primal side.
    #[test]
    fn primal_side_on_small_optimum() {
        let inst = diag_instance(&[&[4.0, 4.0]]);
        let res = decision_psdp(&inst, &DecisionOptions::practical(0.2)).unwrap();
        let p = res.outcome.primal().expect("should certify primal side");
        // Y has trace 1 and A•Y = 4 ≥ 1 for any such Y.
        assert!(p.min_dot >= 1.0 - 1e-9, "min dot {}", p.min_dot);
    }

    /// Paper-strict constants on a tiny instance: the loop must stay within
    /// R iterations and produce a certified answer.
    #[test]
    fn strict_mode_terminates_with_certificate() {
        let inst = diag_instance(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let opts = DecisionOptions::strict(0.3);
        let res = decision_psdp(&inst, &opts).unwrap();
        assert!(res.stats.iterations <= res.stats.iteration_cap);
        match res.outcome {
            Outcome::Dual(d) => {
                assert!(d.value >= 1.0 - 10.0 * 0.3 - 1e-9, "value {}", d.value);
            }
            Outcome::Primal(p) => {
                assert!(p.min_dot >= 1.0 - 1e-6);
            }
        }
    }

    /// Claim 3.5: ‖x‖₁ ≤ (1+ε)K at exit (strict constants).
    #[test]
    fn norm_never_overshoots_much() {
        let inst = diag_instance(&[&[0.5, 0.0], &[0.0, 0.5], &[0.25, 0.25]]);
        let opts = DecisionOptions::strict(0.3);
        let res = decision_psdp(&inst, &opts).unwrap();
        let k = res.stats.k_threshold;
        assert!(
            res.stats.final_norm1 <= (1.0 + 0.3) * k + 1e-9,
            "‖x‖ = {} exceeds (1+ε)K = {}",
            res.stats.final_norm1,
            (1.0 + 0.3) * k
        );
    }

    /// The empty-B shortcut: a single constraint with huge eigenvalues makes
    /// every ratio exceed 1+ε immediately.
    #[test]
    fn empty_eligible_set_returns_current_p() {
        let inst = diag_instance(&[&[100.0, 100.0]]);
        let res = decision_psdp(&inst, &DecisionOptions::practical(0.1)).unwrap();
        assert_eq!(res.stats.exit, ExitReason::EmptyEligibleSet);
        let p = res.outcome.primal().unwrap();
        assert!(p.min_dot > 1.1);
        assert_eq!(p.rounds_averaged, 1);
    }

    /// Non-diagonal instance through the dense path.
    #[test]
    fn dense_constraints_work() {
        let mut a1 = Mat::zeros(3, 3);
        a1.rank1_update(1.0, &[1.0, 0.0, 0.0]);
        let mut a2 = Mat::zeros(3, 3);
        a2.rank1_update(1.0, &[0.0, 1.0, 1.0]);
        a2.scale(0.5);
        let inst = PackingInstance::new(vec![PsdMatrix::Dense(a1), PsdMatrix::Dense(a2)]).unwrap();
        let res = decision_psdp(&inst, &DecisionOptions::practical(0.2)).unwrap();
        // Both constraints have λmax ≤ 1, so OPT ≥ 2 > 1: dual side.
        let d = res.outcome.dual().expect("dual expected");
        assert!(d.value >= 0.75, "value {}", d.value);
        // Certify feasibility directly.
        let psi = inst.weighted_sum(&d.x);
        let lam = sym_eigen(&psi).unwrap().lambda_max();
        assert!(lam <= 1.0 + 1e-8, "λmax {lam}");
    }

    /// All update-rule variants return certified outcomes on the same
    /// instance.
    #[test]
    fn update_rule_variants_all_certify() {
        let inst = diag_instance(&[&[1.0, 0.0, 0.5], &[0.0, 1.0, 0.5], &[0.5, 0.5, 0.0]]);
        for rule in [
            UpdateRule::Standard,
            UpdateRule::Bucketed { boost: 4.0 },
            UpdateRule::TopK { k: 1 },
            UpdateRule::Stale { period: 5 },
        ] {
            let opts = DecisionOptions::practical(0.2).with_rule(rule);
            let res = decision_psdp(&inst, &opts).unwrap();
            match res.outcome {
                Outcome::Dual(d) => {
                    let psi = inst.weighted_sum(&d.x);
                    let lam = sym_eigen(&psi).unwrap().lambda_max();
                    assert!(lam <= 1.0 + 1e-8, "{rule:?}: λmax {lam}");
                    assert!(d.value > 0.5, "{rule:?}: value {}", d.value);
                }
                Outcome::Primal(p) => {
                    assert!(p.min_dot >= 0.9, "{rule:?}: min_dot {}", p.min_dot);
                }
            }
        }
    }

    /// The primal matrix, when accumulated, has trace 1 and matches the
    /// reported constraint dots.
    #[test]
    fn primal_matrix_consistent_with_dots() {
        let inst = diag_instance(&[&[2.0, 3.0]]);
        let mut opts = DecisionOptions::practical(0.2);
        opts.early_exit = false;
        opts.mode = ConstantsMode::Practical { alpha_boost: 16.0, max_iters: 40 };
        let res = decision_psdp(&inst, &opts).unwrap();
        if let Outcome::Primal(p) = res.outcome {
            if p.rounds_averaged > 1 {
                let y = p.y.expect("dense Y accumulated");
                assert!((y.trace() - 1.0).abs() < 1e-9);
                let want = inst.mats()[0].dot_dense(&y);
                assert!(
                    (want - p.constraint_dots[0]).abs() < 1e-6,
                    "{want} vs {}",
                    p.constraint_dots[0]
                );
            }
        }
    }

    #[test]
    fn select_steps_standard_and_topk() {
        let ratios = vec![0.5, 1.05, 1.3];
        let s = select_steps(&ratios, 0.1, 0.01, UpdateRule::Standard);
        assert!(s[0] > 0.0 && s[1] > 0.0 && s[2] == 0.0);
        let s = select_steps(&ratios, 0.1, 0.01, UpdateRule::TopK { k: 1 });
        assert!(s[0] > 0.0 && s[1] == 0.0 && s[2] == 0.0);
    }

    #[test]
    fn select_steps_bucketed_orders_by_slack() {
        let ratios = vec![0.1, 1.0, 2.0];
        let s = select_steps(&ratios, 0.1, 0.01, UpdateRule::Bucketed { boost: 8.0 });
        assert!(s[0] > s[1], "lower ratio should step more: {s:?}");
        assert_eq!(s[2], 0.0);
        // Cap respected.
        assert!(s[0] <= 0.01 * 8.0 + 1e-15);
    }
}
