//! `decisionPSDP` — Algorithm 3.1, the paper's core contribution.
//!
//! Solves the ε-decision problem for a normalized packing SDP
//! (`max 1ᵀx` s.t. `Σ xᵢAᵢ ⪯ I`): it returns **either**
//!
//! * a dual `x ≥ 0` with `‖x‖₁ ≥ 1 − O(ε)` and `Σ xᵢAᵢ ⪯ I`
//!   ("the packing optimum is at least 1"), **or**
//! * a primal `Y ⪰ 0` with `Tr Y = 1` and `Aᵢ • Y ≥ 1` for all `i`
//!   ("the covering optimum — hence by duality the packing optimum — is at
//!   most 1").
//!
//! ## The loop (pseudocode from the paper)
//!
//! ```text
//! K = (1+ln n)/ε, α = ε/(K(1+10ε)), R = (32/(εα)) ln n
//! x⁰ᵢ = 1/(n·Tr Aᵢ)
//! while ‖x‖₁ ≤ K and t < R:
//!     W ← exp(Σᵢ xᵢAᵢ)
//!     B ← { i : W • Aᵢ ≤ (1+ε)·Tr W }
//!     x ← x + α·x_B
//! if ‖x‖₁ > K: return x/((1+10ε)K) as dual
//! else:        return Y = avg_τ W(τ)/Tr W(τ) as primal
//! ```
//!
//! ## Where the implementation lives
//!
//! The iterate loop itself is implemented by [`crate::solver::Session`]
//! (see `crate::solver` for the Solver/Session/Observer architecture and
//! the warm-start trajectory cache); this module keeps the classic
//! one-shot entry point [`decision_psdp`] as a **convenience wrapper**
//! that prepares a [`crate::Solver`], opens a session, and answers the
//! threshold-1 question. Implementation notes that still apply verbatim:
//!
//! * `Ψ(t) = Σ xᵢ(t)Aᵢ` is maintained **incrementally** through
//!   [`crate::psi::PsiMaintainer`]: each round scatter-adds only the
//!   selected coordinates' scaled constraints. A from-scratch `Σᵢ xᵢAᵢ`
//!   happens only at the drift-check cadence
//!   ([`DecisionOptions::psi_rebuild_period`], default every 64 rounds).
//! * [`psdp_expdot::EngineKind::Auto`] resolves against the instance's
//!   storage profile at engine construction; the *resolved* engine name is
//!   what [`crate::SolveStats::engine`] reports.
//! * **Empty `B(t)`**: every constraint has `P•Aᵢ > 1+ε`, so the *current*
//!   `P` is already a feasible primal and is returned immediately (exit
//!   reason [`crate::ExitReason::EmptyEligibleSet`]).
//! * **Certified dual scaling**: strict mode scales by the paper's
//!   `(1+10ε)K` (Lemma 3.2); practical mode scales by the *measured*
//!   `λmax(Σ xᵢAᵢ)`, certifying feasibility unconditionally.

use crate::error::PsdpError;
use crate::instance::PackingInstance;
use crate::options::DecisionOptions;
use crate::solution::Outcome;
use crate::solver::Solver;
use crate::stats::SolveStats;

/// Outcome + telemetry of one decision run.
#[derive(Debug, Clone)]
pub struct DecisionResult {
    /// Which side was certified.
    pub outcome: Outcome,
    /// Telemetry.
    pub stats: SolveStats,
}

/// Run Algorithm 3.1 on a normalized packing instance.
///
/// This is a one-shot convenience over the session API — it builds a
/// [`crate::Solver`] (engine construction and all) for a single threshold-1
/// solve. Callers making several solves on the same instance (bisection,
/// serving) should hold a [`crate::Solver`] and reuse a
/// [`crate::Session`] instead.
///
/// ```
/// use psdp_core::{decision_psdp, DecisionOptions, Outcome, PackingInstance};
/// use psdp_sparse::PsdMatrix;
///
/// // Two orthogonal projectors: packing OPT = 2 ≥ 1, so the ε-decision
/// // procedure certifies the dual side with value ≥ 1−O(ε).
/// let inst = PackingInstance::new(vec![
///     PsdMatrix::Diagonal(vec![1.0, 0.0]),
///     PsdMatrix::Diagonal(vec![0.0, 1.0]),
/// ])?;
/// let res = decision_psdp(&inst, &DecisionOptions::practical(0.2))?;
/// let dual = res.outcome.dual().expect("feasible side");
/// assert!(dual.value >= 0.8);
/// # Ok::<(), psdp_core::PsdpError>(())
/// ```
///
/// Constraints can be stored sparse (CSR) or factorized — storage changes
/// cost, not answers — and [`psdp_expdot::EngineKind::Auto`] picks the
/// engine from the storage profile; the telemetry reports what actually
/// ran:
///
/// ```
/// use psdp_core::{decision_psdp, DecisionOptions, EngineKind, PackingInstance};
/// use psdp_sparse::{Csr, PsdMatrix};
///
/// // One sparse edge Laplacian on 3 vertices (λmax = 2, so OPT = 1/2 < 1).
/// let lap = Csr::from_triplets(3, 3, &[(0, 0, 1.0), (0, 1, -1.0), (1, 0, -1.0), (1, 1, 1.0)]);
/// let inst = PackingInstance::new(vec![PsdMatrix::Sparse(lap)])?;
/// let opts = DecisionOptions::practical(0.2).with_engine(EngineKind::Auto { eps: 0.2 });
/// let res = decision_psdp(&inst, &opts)?;
/// assert_eq!(res.stats.engine, "exact"); // auto resolved: tiny instance
/// assert!(res.outcome.primal().is_some()); // OPT < 1 ⇒ covering witness
/// # Ok::<(), psdp_core::PsdpError>(())
/// ```
///
/// # Errors
/// Instance/option validation failures and linear-algebra errors.
pub fn decision_psdp(
    inst: &PackingInstance,
    opts: &DecisionOptions,
) -> Result<DecisionResult, PsdpError> {
    let solver = Solver::builder(inst).options(*opts).build()?;
    let mut session = solver.session();
    session.solve(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::{ConstantsMode, UpdateRule};
    use crate::solution::ExitReason;
    use psdp_linalg::{sym_eigen, Mat};
    use psdp_sparse::PsdMatrix;

    fn diag_instance(rows: &[&[f64]]) -> PackingInstance {
        PackingInstance::new(rows.iter().map(|r| PsdMatrix::Diagonal(r.to_vec())).collect())
            .unwrap()
    }

    /// Feasible case: identity split across 2 diagonal constraints. The
    /// packing optimum of {diag(1,0), diag(0,1)} is 2 > 1, so the decision
    /// procedure must find a dual with value ≥ 1−O(ε).
    #[test]
    fn dual_side_on_easy_feasible_instance() {
        let inst = diag_instance(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let res = decision_psdp(&inst, &DecisionOptions::practical(0.2)).unwrap();
        let d = res.outcome.dual().expect("should certify dual side");
        assert!(d.value >= 0.8, "dual value {}", d.value);
        // Feasibility: Σ x_i A_i ⪯ I, i.e. every diag entry ≤ 1.
        assert!(d.x[0] <= 1.0 + 1e-9 && d.x[1] <= 1.0 + 1e-9);
        assert_eq!(res.stats.exit, ExitReason::DualNormCrossed);
    }

    /// Infeasible case: OPT < 1. With A₁ = diag(4,4) the packing optimum is
    /// 1/4, so the procedure must certify the primal side.
    #[test]
    fn primal_side_on_small_optimum() {
        let inst = diag_instance(&[&[4.0, 4.0]]);
        let res = decision_psdp(&inst, &DecisionOptions::practical(0.2)).unwrap();
        let p = res.outcome.primal().expect("should certify primal side");
        // Y has trace 1 and A•Y = 4 ≥ 1 for any such Y.
        assert!(p.min_dot >= 1.0 - 1e-9, "min dot {}", p.min_dot);
    }

    /// Paper-strict constants on a tiny instance: the loop must stay within
    /// R iterations and produce a certified answer.
    #[test]
    fn strict_mode_terminates_with_certificate() {
        let inst = diag_instance(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let opts = DecisionOptions::strict(0.3);
        let res = decision_psdp(&inst, &opts).unwrap();
        assert!(res.stats.iterations <= res.stats.iteration_cap);
        match res.outcome {
            Outcome::Dual(d) => {
                assert!(d.value >= 1.0 - 10.0 * 0.3 - 1e-9, "value {}", d.value);
            }
            Outcome::Primal(p) => {
                assert!(p.min_dot >= 1.0 - 1e-6);
            }
        }
    }

    /// Claim 3.5: ‖x‖₁ ≤ (1+ε)K at exit (strict constants).
    #[test]
    fn norm_never_overshoots_much() {
        let inst = diag_instance(&[&[0.5, 0.0], &[0.0, 0.5], &[0.25, 0.25]]);
        let opts = DecisionOptions::strict(0.3);
        let res = decision_psdp(&inst, &opts).unwrap();
        let k = res.stats.k_threshold;
        assert!(
            res.stats.final_norm1 <= (1.0 + 0.3) * k + 1e-9,
            "‖x‖ = {} exceeds (1+ε)K = {}",
            res.stats.final_norm1,
            (1.0 + 0.3) * k
        );
    }

    /// The empty-B shortcut: a single constraint with huge eigenvalues makes
    /// every ratio exceed 1+ε immediately.
    #[test]
    fn empty_eligible_set_returns_current_p() {
        let inst = diag_instance(&[&[100.0, 100.0]]);
        let res = decision_psdp(&inst, &DecisionOptions::practical(0.1)).unwrap();
        assert_eq!(res.stats.exit, ExitReason::EmptyEligibleSet);
        let p = res.outcome.primal().unwrap();
        assert!(p.min_dot > 1.1);
        assert_eq!(p.rounds_averaged, 1);
    }

    /// Non-diagonal instance through the dense path.
    #[test]
    fn dense_constraints_work() {
        let mut a1 = Mat::zeros(3, 3);
        a1.rank1_update(1.0, &[1.0, 0.0, 0.0]);
        let mut a2 = Mat::zeros(3, 3);
        a2.rank1_update(1.0, &[0.0, 1.0, 1.0]);
        a2.scale(0.5);
        let inst = PackingInstance::new(vec![PsdMatrix::Dense(a1), PsdMatrix::Dense(a2)]).unwrap();
        let res = decision_psdp(&inst, &DecisionOptions::practical(0.2)).unwrap();
        // Both constraints have λmax ≤ 1, so OPT ≥ 2 > 1: dual side.
        let d = res.outcome.dual().expect("dual expected");
        assert!(d.value >= 0.75, "value {}", d.value);
        // Certify feasibility directly.
        let psi = inst.weighted_sum(&d.x);
        let lam = sym_eigen(&psi).unwrap().lambda_max();
        assert!(lam <= 1.0 + 1e-8, "λmax {lam}");
    }

    /// All update-rule variants return certified outcomes on the same
    /// instance.
    #[test]
    fn update_rule_variants_all_certify() {
        let inst = diag_instance(&[&[1.0, 0.0, 0.5], &[0.0, 1.0, 0.5], &[0.5, 0.5, 0.0]]);
        for rule in [
            UpdateRule::Standard,
            UpdateRule::Bucketed { boost: 4.0 },
            UpdateRule::TopK { k: 1 },
            UpdateRule::Stale { period: 5 },
        ] {
            let opts = DecisionOptions::practical(0.2).with_rule(rule);
            let res = decision_psdp(&inst, &opts).unwrap();
            match res.outcome {
                Outcome::Dual(d) => {
                    let psi = inst.weighted_sum(&d.x);
                    let lam = sym_eigen(&psi).unwrap().lambda_max();
                    assert!(lam <= 1.0 + 1e-8, "{rule:?}: λmax {lam}");
                    assert!(d.value > 0.5, "{rule:?}: value {}", d.value);
                }
                Outcome::Primal(p) => {
                    assert!(p.min_dot >= 0.9, "{rule:?}: min_dot {}", p.min_dot);
                }
            }
        }
    }

    /// The primal matrix, when accumulated, has trace 1 and matches the
    /// reported constraint dots.
    #[test]
    fn primal_matrix_consistent_with_dots() {
        let inst = diag_instance(&[&[2.0, 3.0]]);
        let mut opts = DecisionOptions::practical(0.2);
        opts.early_exit = false;
        opts.mode = ConstantsMode::Practical { alpha_boost: 16.0, max_iters: 40 };
        let res = decision_psdp(&inst, &opts).unwrap();
        if let Outcome::Primal(p) = res.outcome {
            if p.rounds_averaged > 1 {
                let y = p.y.expect("dense Y accumulated");
                assert!((y.trace() - 1.0).abs() < 1e-9);
                let want = inst.mats()[0].dot_dense(&y);
                assert!(
                    (want - p.constraint_dots[0]).abs() < 1e-6,
                    "{want} vs {}",
                    p.constraint_dots[0]
                );
            }
        }
    }
}
