//! Solution types returned by the decision procedure.

use psdp_linalg::Mat;

/// A dual (packing) solution: `x ≥ 0` scaled so `Σ xᵢAᵢ ⪯ I` holds.
#[derive(Debug, Clone)]
pub struct DualSolution {
    /// The feasible dual vector.
    pub x: Vec<f64>,
    /// Its packing value `1ᵀx` (= `‖x‖₁` since `x ≥ 0`).
    pub value: f64,
    /// The scaling that was applied to the raw iterate to certify
    /// feasibility (`x = x_raw / scale`). In strict mode this is the
    /// paper's `(1+10ε)K`; in practical mode it is the measured
    /// `λmax(Σ x_raw Aᵢ)` padded by the certificate tolerance.
    pub feasibility_scale: f64,
}

/// A primal (covering) solution `Y = (1/T) Σ_τ P(τ)` with `Tr Y = 1`.
#[derive(Debug, Clone)]
pub struct PrimalSolution {
    /// Per-constraint values `Aᵢ • Y` (running averages of `P(τ) • Aᵢ`).
    pub constraint_dots: Vec<f64>,
    /// The dense matrix `Y` itself, if accumulation was enabled and the
    /// dimension was within the configured limit.
    pub y: Option<Mat>,
    /// `minᵢ Aᵢ • Y` — the primal feasibility margin (`≥ 1` means every
    /// covering constraint holds).
    pub min_dot: f64,
    /// Number of probability matrices averaged.
    pub rounds_averaged: usize,
}

/// Which side the decision procedure certified.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// Found a near-optimal feasible dual (packing value ≥ 1−O(ε)):
    /// "the packing optimum is ≥ 1".
    Dual(DualSolution),
    /// Found a feasible primal with `Tr Y = 1`:
    /// "the packing optimum is ≤ 1".
    Primal(PrimalSolution),
}

impl Outcome {
    /// True if this is a dual outcome.
    pub fn is_dual(&self) -> bool {
        matches!(self, Outcome::Dual(_))
    }

    /// Borrow the dual solution, if any.
    pub fn dual(&self) -> Option<&DualSolution> {
        match self {
            Outcome::Dual(d) => Some(d),
            Outcome::Primal(_) => None,
        }
    }

    /// Borrow the primal solution, if any.
    pub fn primal(&self) -> Option<&PrimalSolution> {
        match self {
            Outcome::Primal(p) => Some(p),
            Outcome::Dual(_) => None,
        }
    }
}

/// Why the main loop stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitReason {
    /// `‖x‖₁` crossed `K` (the paper's dual exit).
    DualNormCrossed,
    /// The iteration cap `R` (or practical `max_iters`) was reached.
    IterationCap,
    /// The eligible set `B(t)` was empty: the current `P(t)` already
    /// certifies the primal side (see `decision.rs` docs).
    EmptyEligibleSet,
    /// The running primal average certified feasibility early
    /// (practical-mode `early_exit`).
    PrimalEarly,
    /// A registered [`crate::solver::Observer`] returned
    /// [`crate::solver::ObserverControl::Stop`]. The returned primal
    /// average is telemetry, **not** a certificate.
    ObserverStopped,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_accessors() {
        let d = Outcome::Dual(DualSolution { x: vec![1.0], value: 1.0, feasibility_scale: 1.0 });
        assert!(d.is_dual());
        assert!(d.dual().is_some());
        assert!(d.primal().is_none());

        let p = Outcome::Primal(PrimalSolution {
            constraint_dots: vec![1.1],
            y: None,
            min_dot: 1.1,
            rounds_averaged: 3,
        });
        assert!(!p.is_dual());
        assert!(p.primal().is_some());
        assert!(p.dual().is_none());
    }
}
