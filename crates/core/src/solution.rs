//! Solution types returned by the decision procedure.

use psdp_linalg::Mat;

/// A dual (packing) solution: `x ≥ 0` scaled so `Σ xᵢAᵢ ⪯ I` holds.
#[derive(Debug, Clone)]
pub struct DualSolution {
    /// The feasible dual vector.
    pub x: Vec<f64>,
    /// Its packing value `1ᵀx` (= `‖x‖₁` since `x ≥ 0`).
    pub value: f64,
    /// The scaling that was applied to the raw iterate to certify
    /// feasibility (`x = x_raw / scale`). In strict mode this is the
    /// paper's `(1+10ε)K`; in practical mode it is the measured
    /// `λmax(Σ x_raw Aᵢ)` padded by the certificate tolerance.
    pub feasibility_scale: f64,
}

/// A primal (covering) solution `Y = (1/T) Σ_τ P(τ)` with `Tr Y = 1`.
#[derive(Debug, Clone)]
pub struct PrimalSolution {
    /// Per-constraint values `Aᵢ • Y` (running averages of `P(τ) • Aᵢ`).
    pub constraint_dots: Vec<f64>,
    /// The dense matrix `Y` itself, if accumulation was enabled and the
    /// dimension was within the configured limit.
    pub y: Option<Mat>,
    /// `minᵢ Aᵢ • Y` — the primal feasibility margin (`≥ 1` means every
    /// covering constraint holds).
    pub min_dot: f64,
    /// Number of probability matrices averaged.
    pub rounds_averaged: usize,
}

/// Which side the decision procedure certified.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// Found a near-optimal feasible dual (packing value ≥ 1−O(ε)):
    /// "the packing optimum is ≥ 1".
    Dual(DualSolution),
    /// Found a feasible primal with `Tr Y = 1`:
    /// "the packing optimum is ≤ 1".
    Primal(PrimalSolution),
}

impl Outcome {
    /// True if this is a dual outcome.
    pub fn is_dual(&self) -> bool {
        matches!(self, Outcome::Dual(_))
    }

    /// Borrow the dual solution, if any.
    pub fn dual(&self) -> Option<&DualSolution> {
        match self {
            Outcome::Dual(d) => Some(d),
            Outcome::Primal(_) => None,
        }
    }

    /// Borrow the primal solution, if any.
    pub fn primal(&self) -> Option<&PrimalSolution> {
        match self {
            Outcome::Primal(p) => Some(p),
            Outcome::Dual(_) => None,
        }
    }
}

/// Why the main loop stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitReason {
    /// `‖x‖₁` crossed `K` (the paper's dual exit).
    DualNormCrossed,
    /// The iteration cap `R` (or practical `max_iters`) was reached.
    IterationCap,
    /// The eligible set `B(t)` was empty: the current `P(t)` already
    /// certifies the primal side (see `decision.rs` docs). For the mixed
    /// solver this is the **infeasibility** exit (the weight pair
    /// `(Y_P, Y_C)` prices every coordinate out; see
    /// [`MixedCertificate`]).
    EmptyEligibleSet,
    /// The running primal average certified feasibility early
    /// (practical-mode `early_exit`).
    PrimalEarly,
    /// The mixed solver's soft-min coverage bound reached its target
    /// `T = Θ(log(m)/ε)`: the rescaled iterate is approximately feasible
    /// (see [`crate::mixed`]). Never produced by the packing loop.
    CoverageReached,
    /// A registered [`crate::solver::Observer`] returned
    /// [`crate::solver::ObserverControl::Stop`]. The returned primal
    /// average is telemetry, **not** a certificate.
    ObserverStopped,
}

/// An approximately feasible point for a [`crate::MixedInstance`]: mixed
/// packing–covering feasibility certified **by measurement** (exact
/// eigensolver on both aggregates), independent of the engine that found
/// it.
#[derive(Debug, Clone)]
pub struct MixedFeasible {
    /// The point, rescaled so `λmax(Σ xᵢPᵢ) ≤ 1` holds exactly (up to the
    /// measurement).
    pub x: Vec<f64>,
    /// Measured `λmax(Σ xᵢPᵢ)` after rescaling (≤ 1).
    pub pack_lambda_max: f64,
    /// Measured `λmin(Σ xᵢCᵢ)` after rescaling — the coverage level this
    /// point certifies. "Feasible at threshold σ" means this is
    /// `≥ σ·(1 − O(ε))`.
    pub cover_lambda_min: f64,
}

/// A mixed-infeasibility certificate: a pair of trace-1 PSD weight
/// matrices `(Y_P, Y_C)` under which every coordinate's packing price
/// strictly exceeds its covering price. Concretely, with
/// `margin = minₖ σ·(Pₖ•Y_P)/(Cₖ•Y_C) > 1`:
///
/// ```text
///   any x ≥ 0 with Σ xᵢPᵢ ⪯ I has   1 ≥ Σ xₖ (Pₖ•Y_P)
///                                     ≥ (margin/σ)·Σ xₖ (Cₖ•Y_C)
///                                     ≥ (margin/σ)·λmin(Σ xₖCₖ),
/// ```
///
/// so `λmin(Σ xₖCₖ) ≤ σ/margin < σ`: no feasible point exists at coverage
/// threshold `σ` — or any threshold above `σ/margin`.
#[derive(Debug, Clone)]
pub struct MixedCertificate {
    /// The coverage threshold `σ` the certificate refutes.
    pub sigma: f64,
    /// Packing weight matrix `Y_P = exp(Ψ_P)/Tr exp(Ψ_P)` when the
    /// packing engine materializes it (exact engine); `None` otherwise.
    pub y_pack: Option<Mat>,
    /// Covering weight matrix `Y_C = exp(−Ψ_C/σ)/Tr exp(−Ψ_C/σ)`
    /// (always materialized — the covering side runs the exact engine).
    pub y_cover: Option<Mat>,
    /// Engine-reported packing prices `Pₖ•Y_P`.
    pub pack_dots: Vec<f64>,
    /// Engine-reported covering values `Cₖ•Y_C` (original covering scale,
    /// not divided by `σ`).
    pub cover_dots: Vec<f64>,
    /// Active-coordinate mask the certificate quantifies over (Lemma-2.2
    /// style pruning freezes the rest at 0; an all-`true` mask certifies
    /// the full instance). The bisection accounts for pruned coordinates
    /// separately via their certified coverage slack.
    pub active: Vec<bool>,
    /// `minₖ σ·pack_dots[k]/cover_dots[k]` over the active coordinates
    /// (> 1 + ε by construction). Certifies the coverage optimum is at
    /// most `σ/margin`.
    pub margin: f64,
}

impl MixedCertificate {
    /// The coverage threshold this certificate proves unreachable:
    /// `σ*` ≤ [`MixedCertificate::refuted_threshold`] `= σ/margin`.
    pub fn refuted_threshold(&self) -> f64 {
        self.sigma / self.margin.max(1e-300)
    }
}

/// Which side the mixed decision procedure certified.
#[derive(Debug, Clone)]
pub enum MixedOutcome {
    /// An approximately feasible point was found (certified by
    /// measurement; check [`MixedFeasible::cover_lambda_min`] against the
    /// threshold asked for).
    Feasible(MixedFeasible),
    /// A pricing certificate of infeasibility at the tested threshold.
    Infeasible(MixedCertificate),
}

impl MixedOutcome {
    /// True if this is a feasible-point outcome.
    pub fn is_feasible(&self) -> bool {
        matches!(self, MixedOutcome::Feasible(_))
    }

    /// Borrow the feasible point, if any.
    pub fn feasible(&self) -> Option<&MixedFeasible> {
        match self {
            MixedOutcome::Feasible(f) => Some(f),
            MixedOutcome::Infeasible(_) => None,
        }
    }

    /// Borrow the infeasibility certificate, if any.
    pub fn infeasible(&self) -> Option<&MixedCertificate> {
        match self {
            MixedOutcome::Infeasible(c) => Some(c),
            MixedOutcome::Feasible(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_outcome_accessors() {
        let f = MixedOutcome::Feasible(MixedFeasible {
            x: vec![0.5],
            pack_lambda_max: 0.9,
            cover_lambda_min: 1.1,
        });
        assert!(f.is_feasible());
        assert!(f.feasible().is_some());
        assert!(f.infeasible().is_none());

        let c = MixedOutcome::Infeasible(MixedCertificate {
            sigma: 2.0,
            y_pack: None,
            y_cover: None,
            pack_dots: vec![1.0],
            cover_dots: vec![0.5],
            active: vec![true],
            margin: 4.0,
        });
        assert!(!c.is_feasible());
        let cert = c.infeasible().unwrap();
        assert!((cert.refuted_threshold() - 0.5).abs() < 1e-15);
    }

    #[test]
    fn outcome_accessors() {
        let d = Outcome::Dual(DualSolution { x: vec![1.0], value: 1.0, feasibility_scale: 1.0 });
        assert!(d.is_dual());
        assert!(d.dual().is_some());
        assert!(d.primal().is_none());

        let p = Outcome::Primal(PrimalSolution {
            constraint_dots: vec![1.1],
            y: None,
            min_dot: 1.1,
            rounds_averaged: 3,
        });
        assert!(!p.is_dual());
        assert!(p.primal().is_some());
        assert!(p.dual().is_none());
    }
}
