//! Plain-text instance formats (`psdp v1` / `psdp mixed v1`) — load/save
//! packing and mixed packing–covering instances.
//!
//! A deliberately boring line-based format so instances can be generated,
//! versioned, and diffed without extra dependencies:
//!
//! ```text
//! psdp 1
//! # optional comments anywhere
//! dim 4
//! constraints 2
//! constraint 0 diagonal 2      # <index> diagonal <nnz>
//! 0 1.5                        #   <coord> <value>
//! 2 0.5
//! constraint 1 factor 3 2      # <index> factor <nnz> <rank>
//! 0 0 1.0                      #   <row> <col> <value>
//! 1 1 2.0
//! 3 0 -1.0
//! end
//! ```
//!
//! Sparse symmetric constraints use `constraint <i> sparse <nnz>` followed
//! by `nnz` lines of `<row> <col> <value>` triplets (every stored entry,
//! both triangles). Dense constraints use `constraint <i> dense` followed
//! by `dim` rows of `dim` whitespace-separated numbers. Values round-trip
//! through `{:e}` formatting, so write→read is exact.
//!
//! The mixed format shares the constraint-block grammar with per-side
//! dimensions and one packing + one covering block per coordinate:
//!
//! ```text
//! psdp mixed 1
//! pack-dim 3
//! cover-dim 2
//! coordinates 2
//! pack 0 diagonal 1
//! 0 2.0
//! pack 1 sparse 1
//! 1 1 1.0
//! cover 0 diagonal 1
//! 0 1.0
//! cover 1 diagonal 1
//! 1 1.0
//! end
//! ```

use crate::error::PsdpError;
use crate::instance::{MixedInstance, PackingInstance};
use psdp_linalg::Mat;
use psdp_sparse::{Csr, FactorPsd, PsdMatrix};
use std::fmt::Write as _;

/// Write one constraint block with the given line label (`constraint` in
/// the packing format, `pack`/`cover` in the mixed format).
///
/// `fmt::Write` into a `String` is infallible, so the `writeln!` results
/// here are deliberately discarded rather than unwrapped (audit rule R1:
/// no panic sites on request paths).
fn write_constraint(out: &mut String, label: &str, i: usize, a: &PsdMatrix, dim: usize) {
    match a {
        PsdMatrix::Diagonal(d) => {
            let nz: Vec<(usize, f64)> =
                d.iter().enumerate().filter(|(_, &v)| v != 0.0).map(|(j, &v)| (j, v)).collect();
            let _ = writeln!(out, "{label} {i} diagonal {}", nz.len());
            for (j, v) in nz {
                let _ = writeln!(out, "{j} {v:e}");
            }
        }
        PsdMatrix::Factor(fp) => {
            let q = fp.factor();
            let _ = writeln!(out, "{label} {i} factor {} {}", q.nnz(), q.ncols());
            for r in 0..q.nrows() {
                for (c, v) in q.row_iter(r) {
                    let _ = writeln!(out, "{r} {c} {v:e}");
                }
            }
        }
        PsdMatrix::Sparse(s) => {
            let _ = writeln!(out, "{label} {i} sparse {}", s.nnz());
            for r in 0..s.nrows() {
                for (c, v) in s.row_iter(r) {
                    let _ = writeln!(out, "{r} {c} {v:e}");
                }
            }
        }
        PsdMatrix::Dense(m) => {
            let _ = writeln!(out, "{label} {i} dense");
            for r in 0..dim {
                let row: Vec<String> = m.row(r).iter().map(|v| format!("{v:e}")).collect();
                let _ = writeln!(out, "{}", row.join(" "));
            }
        }
    }
}

/// Serialize an instance to the `psdp v1` text format.
///
/// ```
/// use psdp_core::{read_instance, write_instance, PackingInstance};
/// use psdp_sparse::PsdMatrix;
///
/// let inst = PackingInstance::new(vec![PsdMatrix::Diagonal(vec![1.0, 2.0])])?;
/// let text = write_instance(&inst);
/// let back = read_instance(&text)?;
/// assert_eq!(back.dim(), 2);
/// assert_eq!(back.mats()[0].trace(), 3.0);
/// # Ok::<(), psdp_core::PsdpError>(())
/// ```
pub fn write_instance(inst: &PackingInstance) -> String {
    let mut out = String::new();
    let dim = inst.dim();
    let _ = writeln!(out, "psdp 1");
    let _ = writeln!(out, "dim {dim}");
    let _ = writeln!(out, "constraints {}", inst.n());
    for (i, a) in inst.mats().iter().enumerate() {
        write_constraint(&mut out, "constraint", i, a, dim);
    }
    let _ = writeln!(out, "end");
    out
}

/// Serialize a mixed instance to the `psdp mixed v1` text format.
///
/// ```
/// use psdp_core::{read_mixed_instance, write_mixed_instance, MixedInstance};
/// use psdp_sparse::PsdMatrix;
///
/// let inst = MixedInstance::new(
///     vec![PsdMatrix::Diagonal(vec![2.0])],
///     vec![PsdMatrix::Diagonal(vec![1.0])],
/// )?;
/// let back = read_mixed_instance(&write_mixed_instance(&inst))?;
/// assert_eq!(back.n(), 1);
/// assert_eq!(back.pack().mats()[0].trace(), 2.0);
/// # Ok::<(), psdp_core::PsdpError>(())
/// ```
pub fn write_mixed_instance(inst: &MixedInstance) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "psdp mixed 1");
    let _ = writeln!(out, "pack-dim {}", inst.pack_dim());
    let _ = writeln!(out, "cover-dim {}", inst.cover_dim());
    let _ = writeln!(out, "coordinates {}", inst.n());
    for (i, a) in inst.pack().mats().iter().enumerate() {
        write_constraint(&mut out, "pack", i, a, inst.pack_dim());
    }
    for (i, a) in inst.cover().mats().iter().enumerate() {
        write_constraint(&mut out, "cover", i, a, inst.cover_dim());
    }
    let _ = writeln!(out, "end");
    out
}

/// Comment-stripped, blank-skipping line cursor shared by both readers.
struct Lines<'a> {
    items: Vec<(usize, &'a str)>,
    pos: usize,
}

impl<'a> Lines<'a> {
    fn new(text: &'a str) -> Self {
        let items = text
            .lines()
            .enumerate()
            .map(|(no, l)| (no + 1, l.split('#').next().unwrap_or("").trim()))
            .filter(|(_, l)| !l.is_empty())
            .collect();
        Lines { items, pos: 0 }
    }

    fn next(&mut self) -> Option<(usize, &'a str)> {
        let item = self.items.get(self.pos).copied();
        self.pos += 1;
        item
    }

    /// Line number of the most recently consumed line (0 if none).
    fn here(&self) -> usize {
        if self.pos == 0 {
            0
        } else {
            self.items.get(self.pos - 1).map_or(0, |&(no, _)| no)
        }
    }

    /// Content lines not yet consumed. Used to reject declared sizes the
    /// input cannot possibly satisfy *before* allocating for them.
    fn remaining(&self) -> usize {
        self.items.len().saturating_sub(self.pos)
    }
}

fn bad(no: usize, msg: &str) -> PsdpError {
    PsdpError::InvalidInstance(format!("line {no}: {msg}"))
}

/// Largest accepted matrix dimension. The readers allocate `O(dim)` for a
/// diagonal block and `O(dim²)` for a dense block *before* seeing the
/// entries, so an absurd `dim` header in a malformed file must fail fast
/// here instead of aborting the process inside an allocator call. Real
/// instances are bounded far below this by the dense exponential engine.
pub(crate) const MAX_DIM: usize = 1 << 20;

/// Clamp used for `Vec::with_capacity` on declared entry counts: the count
/// is untrusted input, so pre-reserve at most this many slots and let the
/// vector grow normally if a (valid) file really has more.
pub(crate) const MAX_PREALLOC: usize = 1 << 20;

/// Largest accepted dimension for a *dense* block, which allocates
/// `O(dim²)` up front (128 MiB of `f64` at this cap — far above anything
/// the `O(m³)` dense engines can use, far below an allocator abort).
/// Sparse/diagonal/factor storage is the format for larger dimensions.
pub(crate) const MAX_DENSE_DIM: usize = 1 << 12;

/// Parse a `<prefix> <value>` header line.
fn header_usize(lines: &mut Lines<'_>, prefix: &str) -> Result<usize, PsdpError> {
    let (no, line) =
        lines.next().ok_or_else(|| bad(lines.here(), &format!("missing `{prefix}`")))?;
    line.strip_prefix(prefix)
        .and_then(|s| s.trim().parse().ok())
        .ok_or_else(|| bad(no, &format!("expected `{prefix} <n>`")))
}

/// Parse a dimension header and enforce the [`MAX_DIM`] allocation guard.
fn checked_dim(lines: &mut Lines<'_>, prefix: &str) -> Result<usize, PsdpError> {
    let dim = header_usize(lines, prefix)?;
    if dim > MAX_DIM {
        return Err(bad(lines.here(), &format!("{prefix}{dim} exceeds limit {MAX_DIM}")));
    }
    Ok(dim)
}

/// Parse one constraint block: a head line `<label> <i> <kind> …` (already
/// split into `toks`) followed by its entry lines.
fn read_constraint(
    lines: &mut Lines<'_>,
    head_no: usize,
    toks: &[&str],
    dim: usize,
) -> Result<PsdMatrix, PsdpError> {
    let kind = *toks.get(2).ok_or_else(|| bad(head_no, "missing constraint kind"))?;
    // Declared entry counts are untrusted: each entry consumes at least one
    // content line, so a count larger than the remaining input is a lie the
    // reader should reject before looping (or allocating) on it.
    let checked_nnz = |lines: &Lines<'_>, nnz: usize| -> Result<usize, PsdpError> {
        if nnz > lines.remaining() {
            return Err(bad(
                head_no,
                &format!("declared {nnz} entries but only {} lines remain", lines.remaining()),
            ));
        }
        Ok(nnz)
    };
    match kind {
        "diagonal" => {
            let nnz: usize =
                toks.get(3).and_then(|s| s.parse().ok()).ok_or_else(|| bad(head_no, "bad nnz"))?;
            let nnz = checked_nnz(lines, nnz)?;
            let mut d = vec![0.0; dim];
            for _ in 0..nnz {
                let (no, entry) = lines.next().ok_or_else(|| bad(head_no, "truncated diagonal"))?;
                let parts: Vec<&str> = entry.split_whitespace().collect();
                let (j, v) = parse_pair(&parts).ok_or_else(|| bad(no, "bad diagonal entry"))?;
                *d.get_mut(j).ok_or_else(|| bad(no, "diagonal coordinate out of range"))? = v;
            }
            Ok(PsdMatrix::Diagonal(d))
        }
        "factor" => {
            let nnz: usize =
                toks.get(3).and_then(|s| s.parse().ok()).ok_or_else(|| bad(head_no, "bad nnz"))?;
            let rank: usize =
                toks.get(4).and_then(|s| s.parse().ok()).ok_or_else(|| bad(head_no, "bad rank"))?;
            if rank > MAX_DIM {
                return Err(bad(head_no, &format!("factor rank {rank} exceeds limit {MAX_DIM}")));
            }
            let nnz = checked_nnz(lines, nnz)?;
            let mut trip = Vec::with_capacity(nnz.min(MAX_PREALLOC));
            for _ in 0..nnz {
                let (no, entry) = lines.next().ok_or_else(|| bad(head_no, "truncated factor"))?;
                let parts: Vec<&str> = entry.split_whitespace().collect();
                let (r, c, v) = parse_triplet(&parts).ok_or_else(|| bad(no, "bad factor entry"))?;
                if r >= dim || c >= rank {
                    return Err(bad(no, "factor entry out of range"));
                }
                trip.push((r, c, v));
            }
            Ok(PsdMatrix::Factor(FactorPsd::new(Csr::from_triplets(dim, rank.max(1), &trip))))
        }
        "sparse" => {
            let nnz: usize =
                toks.get(3).and_then(|s| s.parse().ok()).ok_or_else(|| bad(head_no, "bad nnz"))?;
            let nnz = checked_nnz(lines, nnz)?;
            let mut trip = Vec::with_capacity(nnz.min(MAX_PREALLOC));
            for _ in 0..nnz {
                let (no, entry) = lines.next().ok_or_else(|| bad(head_no, "truncated sparse"))?;
                let parts: Vec<&str> = entry.split_whitespace().collect();
                let (r, c, v) = parse_triplet(&parts).ok_or_else(|| bad(no, "bad sparse entry"))?;
                if r >= dim || c >= dim {
                    return Err(bad(no, "sparse entry out of range"));
                }
                trip.push((r, c, v));
            }
            Ok(PsdMatrix::Sparse(Csr::from_triplets(dim, dim, &trip)))
        }
        "dense" => {
            // A dense block allocates O(dim²) before reading a single row,
            // so an absurd header must fail here, not in the allocator:
            // cap the dimension outright and require the input to actually
            // contain `dim` more lines.
            if dim > MAX_DENSE_DIM {
                return Err(bad(
                    head_no,
                    &format!("dense block dim {dim} exceeds limit {MAX_DENSE_DIM}"),
                ));
            }
            if lines.remaining() < dim {
                return Err(bad(head_no, "truncated dense block"));
            }
            // `checked_mul` rather than trusting MAX_DENSE_DIM alone: the
            // O(dim²) cell count must be provably representable before the
            // allocation (overflow would wrap to a tiny size and then index
            // out of bounds, not fail cleanly).
            if dim.checked_mul(dim).is_none() {
                return Err(bad(head_no, &format!("dense block dim {dim} overflows dim*dim")));
            }
            let mut m = Mat::zeros(dim, dim);
            for r in 0..dim {
                let (no, row_line) =
                    lines.next().ok_or_else(|| bad(head_no, "truncated dense block"))?;
                let vals: Result<Vec<f64>, _> =
                    row_line.split_whitespace().map(str::parse).collect();
                let vals = vals.map_err(|_| bad(no, "bad dense row"))?;
                if vals.len() != dim {
                    return Err(bad(
                        no,
                        &format!("dense row has {} values, want {dim}", vals.len()),
                    ));
                }
                for (c, v) in vals.into_iter().enumerate() {
                    // psdp-audit: allow(R1, reason = "r < dim by the loop bound, c < dim by the row-length check above; Mat is dim x dim")
                    m[(r, c)] = v;
                }
            }
            m.symmetrize();
            Ok(PsdMatrix::Dense(m))
        }
        other => Err(bad(head_no, &format!("unknown constraint kind `{other}`"))),
    }
}

/// Read `count` constraint blocks whose head lines are labelled `label`.
fn read_block_list(
    lines: &mut Lines<'_>,
    label: &str,
    count: usize,
    dim: usize,
) -> Result<Vec<PsdMatrix>, PsdpError> {
    let mut mats = Vec::with_capacity(count.min(MAX_PREALLOC));
    for expected in 0..count {
        let (no, head) = lines.next().ok_or_else(|| bad(0, "unexpected end of file"))?;
        let toks: Vec<&str> = head.split_whitespace().collect();
        let [lbl, idx_tok, _kind, ..] = toks.as_slice() else {
            return Err(bad(no, &format!("expected `{label} <i> <kind> …`")));
        };
        if *lbl != label {
            return Err(bad(no, &format!("expected `{label} <i> <kind> …`")));
        }
        let idx: usize = idx_tok.parse().map_err(|_| bad(no, "bad constraint index"))?;
        if idx != expected {
            return Err(bad(no, &format!("{label} index {idx}, expected {expected}")));
        }
        mats.push(read_constraint(lines, no, &toks, dim)?);
    }
    Ok(mats)
}

fn expect_end(lines: &mut Lines<'_>) -> Result<(), PsdpError> {
    match lines.next() {
        Some((_, "end")) => match lines.next() {
            None => Ok(()),
            Some((no, extra)) => Err(bad(no, &format!("trailing content after `end`: `{extra}`"))),
        },
        Some((no, other)) => Err(bad(no, &format!("expected `end`, found `{other}`"))),
        None => Err(bad(0, "missing trailing `end`")),
    }
}

/// Parse the `psdp v1` text format.
///
/// # Errors
/// [`PsdpError::InvalidInstance`] with a line-anchored message on any
/// malformed input.
pub fn read_instance(text: &str) -> Result<PackingInstance, PsdpError> {
    let mut lines = Lines::new(text);
    let (no, header) = lines.next().ok_or_else(|| bad(0, "empty file"))?;
    if header != "psdp 1" {
        return Err(bad(no, "expected header `psdp 1`"));
    }
    let dim = checked_dim(&mut lines, "dim ")?;
    let count = header_usize(&mut lines, "constraints ")?;
    let mats = read_block_list(&mut lines, "constraint", count, dim)?;
    expect_end(&mut lines)?;
    PackingInstance::new(mats)
}

/// Parse the `psdp mixed v1` text format.
///
/// # Errors
/// [`PsdpError::InvalidInstance`] with a line-anchored message on any
/// malformed input.
pub fn read_mixed_instance(text: &str) -> Result<MixedInstance, PsdpError> {
    let mut lines = Lines::new(text);
    let (no, header) = lines.next().ok_or_else(|| bad(0, "empty file"))?;
    if header != "psdp mixed 1" {
        return Err(bad(no, "expected header `psdp mixed 1`"));
    }
    let pack_dim = checked_dim(&mut lines, "pack-dim ")?;
    let cover_dim = checked_dim(&mut lines, "cover-dim ")?;
    let count = header_usize(&mut lines, "coordinates ")?;
    let pack = read_block_list(&mut lines, "pack", count, pack_dim)?;
    let cover = read_block_list(&mut lines, "cover", count, cover_dim)?;
    expect_end(&mut lines)?;
    MixedInstance::new(pack, cover)
}

fn parse_pair(parts: &[&str]) -> Option<(usize, f64)> {
    let [a, b] = parts else { return None };
    Some((a.parse().ok()?, b.parse().ok()?))
}

fn parse_triplet(parts: &[&str]) -> Option<(usize, usize, f64)> {
    let [a, b, c] = parts else { return None };
    Some((a.parse().ok()?, b.parse().ok()?, c.parse().ok()?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PackingInstance {
        let diag = PsdMatrix::Diagonal(vec![1.5, 0.0, 0.5]);
        let factor = PsdMatrix::Factor(FactorPsd::new(Csr::from_triplets(
            3,
            2,
            &[(0, 0, 1.0), (1, 1, 2.0), (2, 0, -1.0)],
        )));
        let sparse = PsdMatrix::Sparse(Csr::from_triplets(
            3,
            3,
            &[(0, 0, 2.0), (0, 2, -1.0), (2, 0, -1.0), (2, 2, 1.0)],
        ));
        let mut d = Mat::zeros(3, 3);
        d.rank1_update(0.7, &[1.0, 0.5, 0.0]);
        d.add_diag(0.1);
        PackingInstance::new(vec![diag, factor, sparse, PsdMatrix::Dense(d)]).unwrap()
    }

    #[test]
    fn roundtrip_exact() {
        let inst = sample();
        let text = write_instance(&inst);
        let back = read_instance(&text).unwrap();
        assert_eq!(back.n(), inst.n());
        assert_eq!(back.dim(), inst.dim());
        for (a, b) in inst.mats().iter().zip(back.mats()) {
            assert_eq!(a.to_dense().as_slice(), b.to_dense().as_slice());
        }
    }

    #[test]
    fn mixed_roundtrip_exact_all_storage_kinds() {
        // Mixed-dimension sides with every storage kind represented.
        let pack = sample().mats().to_vec();
        let cover = vec![
            PsdMatrix::Diagonal(vec![1.0, 0.5]),
            PsdMatrix::Sparse(Csr::from_triplets(
                2,
                2,
                &[(0, 0, 1.0), (0, 1, -0.5), (1, 0, -0.5), (1, 1, 1.0)],
            )),
            PsdMatrix::Diagonal(vec![0.0, 2.0]),
            PsdMatrix::Diagonal(vec![0.25, 0.25]),
        ];
        let inst = MixedInstance::new(pack, cover).unwrap();
        let text = write_mixed_instance(&inst);
        let back = read_mixed_instance(&text).unwrap();
        assert_eq!(back.n(), inst.n());
        assert_eq!(back.pack_dim(), 3);
        assert_eq!(back.cover_dim(), 2);
        for (a, b) in inst.pack().mats().iter().zip(back.pack().mats()) {
            assert_eq!(a.to_dense().as_slice(), b.to_dense().as_slice());
        }
        for (a, b) in inst.cover().mats().iter().zip(back.cover().mats()) {
            assert_eq!(a.to_dense().as_slice(), b.to_dense().as_slice());
        }
    }

    #[test]
    fn mixed_rejects_malformed() {
        // Wrong header.
        assert!(read_mixed_instance("psdp 1\n").is_err());
        // Packing block labelled wrong.
        let bad = "psdp mixed 1\npack-dim 1\ncover-dim 1\ncoordinates 1\nconstraint 0 diagonal 1\n0 1.0\ncover 0 diagonal 1\n0 1.0\nend\n";
        let err = read_mixed_instance(bad).unwrap_err().to_string();
        assert!(err.contains("pack"), "{err}");
        // Missing cover side.
        let bad =
            "psdp mixed 1\npack-dim 1\ncover-dim 1\ncoordinates 1\npack 0 diagonal 1\n0 1.0\nend\n";
        assert!(read_mixed_instance(bad).is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let inst = PackingInstance::new(vec![PsdMatrix::Diagonal(vec![1.0, 2.0])]).unwrap();
        let mut text = write_instance(&inst);
        text = text.replace("dim 2", "# a comment\n\ndim 2  # trailing");
        let back = read_instance(&text).unwrap();
        assert_eq!(back.dim(), 2);
    }

    #[test]
    fn rejects_bad_header() {
        assert!(read_instance("nope 1\n").is_err());
        assert!(read_instance("").is_err());
    }

    #[test]
    fn rejects_truncation_and_ranges() {
        let inst = sample();
        let text = write_instance(&inst);
        // Drop the trailing `end`.
        let no_end = text.replace("\nend\n", "\n");
        assert!(read_instance(&no_end).is_err());
        // Out-of-range diagonal coordinate.
        let bad = "psdp 1\ndim 2\nconstraints 1\nconstraint 0 diagonal 1\n5 1.0\nend\n";
        assert!(read_instance(bad).is_err());
        // Wrong constraint index.
        let bad = "psdp 1\ndim 2\nconstraints 1\nconstraint 3 diagonal 1\n0 1.0\nend\n";
        assert!(read_instance(bad).is_err());
    }

    #[test]
    fn absurd_declared_counts_fail_fast() {
        // nnz far beyond the remaining input must be rejected up front
        // (never looped on, never preallocated at face value).
        let bad = "psdp 1\ndim 2\nconstraints 1\nconstraint 0 sparse 18446744073709551615\nend\n";
        let err = read_instance(bad).unwrap_err().to_string();
        assert!(err.contains("lines remain"), "{err}");
        let bad = "psdp 1\ndim 2\nconstraints 1\nconstraint 0 diagonal 999999\n0 1.0\nend\n";
        let err = read_instance(bad).unwrap_err().to_string();
        assert!(err.contains("lines remain"), "{err}");
        let bad = "psdp 1\ndim 2\nconstraints 1\nconstraint 0 factor 999999999 1\n0 0 1.0\nend\n";
        assert!(read_instance(bad).is_err());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let bad = "psdp 1\ndim 2\nconstraints 1\nconstraint 0 wat\nend\n";
        let err = read_instance(bad).unwrap_err().to_string();
        assert!(err.contains("line 4"), "{err}");
    }

    #[test]
    fn solver_accepts_parsed_instance() {
        let inst = sample();
        let text = write_instance(&inst);
        let back = read_instance(&text).unwrap();
        let res = crate::decision_psdp(&back, &crate::DecisionOptions::practical(0.3)).unwrap();
        assert!(res.stats.iterations > 0);
    }
}
