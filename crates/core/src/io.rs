//! Plain-text instance format (`psdp v1`) — load/save packing instances.
//!
//! A deliberately boring line-based format so instances can be generated,
//! versioned, and diffed without extra dependencies:
//!
//! ```text
//! psdp 1
//! # optional comments anywhere
//! dim 4
//! constraints 2
//! constraint 0 diagonal 2      # <index> diagonal <nnz>
//! 0 1.5                        #   <coord> <value>
//! 2 0.5
//! constraint 1 factor 3 2      # <index> factor <nnz> <rank>
//! 0 0 1.0                      #   <row> <col> <value>
//! 1 1 2.0
//! 3 0 -1.0
//! end
//! ```
//!
//! Sparse symmetric constraints use `constraint <i> sparse <nnz>` followed
//! by `nnz` lines of `<row> <col> <value>` triplets (every stored entry,
//! both triangles).
//!
//! Dense constraints use `constraint <i> dense` followed by `dim` rows of
//! `dim` whitespace-separated numbers. Values round-trip through `{:e}`
//! formatting, so write→read is exact.

use crate::error::PsdpError;
use crate::instance::PackingInstance;
use psdp_linalg::Mat;
use psdp_sparse::{Csr, FactorPsd, PsdMatrix};
use std::fmt::Write as _;

/// Serialize an instance to the `psdp v1` text format.
///
/// ```
/// use psdp_core::{read_instance, write_instance, PackingInstance};
/// use psdp_sparse::PsdMatrix;
///
/// let inst = PackingInstance::new(vec![PsdMatrix::Diagonal(vec![1.0, 2.0])])?;
/// let text = write_instance(&inst);
/// let back = read_instance(&text)?;
/// assert_eq!(back.dim(), 2);
/// assert_eq!(back.mats()[0].trace(), 3.0);
/// # Ok::<(), psdp_core::PsdpError>(())
/// ```
pub fn write_instance(inst: &PackingInstance) -> String {
    let mut out = String::new();
    let dim = inst.dim();
    writeln!(out, "psdp 1").unwrap();
    writeln!(out, "dim {dim}").unwrap();
    writeln!(out, "constraints {}", inst.n()).unwrap();
    for (i, a) in inst.mats().iter().enumerate() {
        match a {
            PsdMatrix::Diagonal(d) => {
                let nz: Vec<(usize, f64)> =
                    d.iter().enumerate().filter(|(_, &v)| v != 0.0).map(|(j, &v)| (j, v)).collect();
                writeln!(out, "constraint {i} diagonal {}", nz.len()).unwrap();
                for (j, v) in nz {
                    writeln!(out, "{j} {v:e}").unwrap();
                }
            }
            PsdMatrix::Factor(fp) => {
                let q = fp.factor();
                writeln!(out, "constraint {i} factor {} {}", q.nnz(), q.ncols()).unwrap();
                for r in 0..q.nrows() {
                    for (c, v) in q.row_iter(r) {
                        writeln!(out, "{r} {c} {v:e}").unwrap();
                    }
                }
            }
            PsdMatrix::Sparse(s) => {
                writeln!(out, "constraint {i} sparse {}", s.nnz()).unwrap();
                for r in 0..s.nrows() {
                    for (c, v) in s.row_iter(r) {
                        writeln!(out, "{r} {c} {v:e}").unwrap();
                    }
                }
            }
            PsdMatrix::Dense(m) => {
                writeln!(out, "constraint {i} dense").unwrap();
                for r in 0..dim {
                    let row: Vec<String> = m.row(r).iter().map(|v| format!("{v:e}")).collect();
                    writeln!(out, "{}", row.join(" ")).unwrap();
                }
            }
        }
    }
    writeln!(out, "end").unwrap();
    out
}

/// Parse the `psdp v1` text format.
///
/// # Errors
/// [`PsdpError::InvalidInstance`] with a line-anchored message on any
/// malformed input.
pub fn read_instance(text: &str) -> Result<PackingInstance, PsdpError> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(no, l)| (no + 1, l.split('#').next().unwrap_or("").trim()))
        .filter(|(_, l)| !l.is_empty());

    let bad = |no: usize, msg: &str| PsdpError::InvalidInstance(format!("line {no}: {msg}"));

    let (no, header) = lines.next().ok_or_else(|| bad(0, "empty file"))?;
    if header != "psdp 1" {
        return Err(bad(no, "expected header `psdp 1`"));
    }

    let (no, dim_line) = lines.next().ok_or_else(|| bad(no, "missing `dim`"))?;
    let dim: usize = dim_line
        .strip_prefix("dim ")
        .and_then(|s| s.trim().parse().ok())
        .ok_or_else(|| bad(no, "expected `dim <n>`"))?;

    let (no, cnt_line) = lines.next().ok_or_else(|| bad(no, "missing `constraints`"))?;
    let count: usize = cnt_line
        .strip_prefix("constraints ")
        .and_then(|s| s.trim().parse().ok())
        .ok_or_else(|| bad(no, "expected `constraints <n>`"))?;

    let mut mats: Vec<PsdMatrix> = Vec::with_capacity(count);
    for expected in 0..count {
        let (no, head) = lines.next().ok_or_else(|| bad(0, "unexpected end of file"))?;
        let toks: Vec<&str> = head.split_whitespace().collect();
        if toks.len() < 3 || toks[0] != "constraint" {
            return Err(bad(no, "expected `constraint <i> <kind> …`"));
        }
        let idx: usize = toks[1].parse().map_err(|_| bad(no, "bad constraint index"))?;
        if idx != expected {
            return Err(bad(no, &format!("constraint index {idx}, expected {expected}")));
        }
        match toks[2] {
            "diagonal" => {
                let nnz: usize =
                    toks.get(3).and_then(|s| s.parse().ok()).ok_or_else(|| bad(no, "bad nnz"))?;
                let mut d = vec![0.0; dim];
                for _ in 0..nnz {
                    let (no, entry) = lines.next().ok_or_else(|| bad(no, "truncated diagonal"))?;
                    let parts: Vec<&str> = entry.split_whitespace().collect();
                    let (j, v) = parse_pair(&parts).ok_or_else(|| bad(no, "bad diagonal entry"))?;
                    if j >= dim {
                        return Err(bad(no, "diagonal coordinate out of range"));
                    }
                    d[j] = v;
                }
                mats.push(PsdMatrix::Diagonal(d));
            }
            "factor" => {
                let nnz: usize =
                    toks.get(3).and_then(|s| s.parse().ok()).ok_or_else(|| bad(no, "bad nnz"))?;
                let rank: usize =
                    toks.get(4).and_then(|s| s.parse().ok()).ok_or_else(|| bad(no, "bad rank"))?;
                let mut trip = Vec::with_capacity(nnz);
                for _ in 0..nnz {
                    let (no, entry) = lines.next().ok_or_else(|| bad(no, "truncated factor"))?;
                    let parts: Vec<&str> = entry.split_whitespace().collect();
                    let (r, c, v) =
                        parse_triplet(&parts).ok_or_else(|| bad(no, "bad factor entry"))?;
                    if r >= dim || c >= rank {
                        return Err(bad(no, "factor entry out of range"));
                    }
                    trip.push((r, c, v));
                }
                mats.push(PsdMatrix::Factor(FactorPsd::new(Csr::from_triplets(
                    dim,
                    rank.max(1),
                    &trip,
                ))));
            }
            "sparse" => {
                let nnz: usize =
                    toks.get(3).and_then(|s| s.parse().ok()).ok_or_else(|| bad(no, "bad nnz"))?;
                let mut trip = Vec::with_capacity(nnz);
                for _ in 0..nnz {
                    let (no, entry) = lines.next().ok_or_else(|| bad(no, "truncated sparse"))?;
                    let parts: Vec<&str> = entry.split_whitespace().collect();
                    let (r, c, v) =
                        parse_triplet(&parts).ok_or_else(|| bad(no, "bad sparse entry"))?;
                    if r >= dim || c >= dim {
                        return Err(bad(no, "sparse entry out of range"));
                    }
                    trip.push((r, c, v));
                }
                mats.push(PsdMatrix::Sparse(Csr::from_triplets(dim, dim, &trip)));
            }
            "dense" => {
                let mut m = Mat::zeros(dim, dim);
                for r in 0..dim {
                    let (no, row_line) =
                        lines.next().ok_or_else(|| bad(no, "truncated dense block"))?;
                    let vals: Result<Vec<f64>, _> =
                        row_line.split_whitespace().map(str::parse).collect();
                    let vals = vals.map_err(|_| bad(no, "bad dense row"))?;
                    if vals.len() != dim {
                        return Err(bad(
                            no,
                            &format!("dense row has {} values, want {dim}", vals.len()),
                        ));
                    }
                    for (c, v) in vals.into_iter().enumerate() {
                        m[(r, c)] = v;
                    }
                }
                m.symmetrize();
                mats.push(PsdMatrix::Dense(m));
            }
            other => return Err(bad(no, &format!("unknown constraint kind `{other}`"))),
        }
    }

    match lines.next() {
        Some((_, "end")) => {}
        Some((no, other)) => return Err(bad(no, &format!("expected `end`, found `{other}`"))),
        None => return Err(bad(0, "missing trailing `end`")),
    }
    PackingInstance::new(mats)
}

fn parse_pair(parts: &[&str]) -> Option<(usize, f64)> {
    if parts.len() != 2 {
        return None;
    }
    Some((parts[0].parse().ok()?, parts[1].parse().ok()?))
}

fn parse_triplet(parts: &[&str]) -> Option<(usize, usize, f64)> {
    if parts.len() != 3 {
        return None;
    }
    Some((parts[0].parse().ok()?, parts[1].parse().ok()?, parts[2].parse().ok()?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> PackingInstance {
        let diag = PsdMatrix::Diagonal(vec![1.5, 0.0, 0.5]);
        let factor = PsdMatrix::Factor(FactorPsd::new(Csr::from_triplets(
            3,
            2,
            &[(0, 0, 1.0), (1, 1, 2.0), (2, 0, -1.0)],
        )));
        let sparse = PsdMatrix::Sparse(Csr::from_triplets(
            3,
            3,
            &[(0, 0, 2.0), (0, 2, -1.0), (2, 0, -1.0), (2, 2, 1.0)],
        ));
        let mut d = Mat::zeros(3, 3);
        d.rank1_update(0.7, &[1.0, 0.5, 0.0]);
        d.add_diag(0.1);
        PackingInstance::new(vec![diag, factor, sparse, PsdMatrix::Dense(d)]).unwrap()
    }

    #[test]
    fn roundtrip_exact() {
        let inst = sample();
        let text = write_instance(&inst);
        let back = read_instance(&text).unwrap();
        assert_eq!(back.n(), inst.n());
        assert_eq!(back.dim(), inst.dim());
        for (a, b) in inst.mats().iter().zip(back.mats()) {
            assert_eq!(a.to_dense().as_slice(), b.to_dense().as_slice());
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let inst = PackingInstance::new(vec![PsdMatrix::Diagonal(vec![1.0, 2.0])]).unwrap();
        let mut text = write_instance(&inst);
        text = text.replace("dim 2", "# a comment\n\ndim 2  # trailing");
        let back = read_instance(&text).unwrap();
        assert_eq!(back.dim(), 2);
    }

    #[test]
    fn rejects_bad_header() {
        assert!(read_instance("nope 1\n").is_err());
        assert!(read_instance("").is_err());
    }

    #[test]
    fn rejects_truncation_and_ranges() {
        let inst = sample();
        let text = write_instance(&inst);
        // Drop the trailing `end`.
        let no_end = text.replace("\nend\n", "\n");
        assert!(read_instance(&no_end).is_err());
        // Out-of-range diagonal coordinate.
        let bad = "psdp 1\ndim 2\nconstraints 1\nconstraint 0 diagonal 1\n5 1.0\nend\n";
        assert!(read_instance(bad).is_err());
        // Wrong constraint index.
        let bad = "psdp 1\ndim 2\nconstraints 1\nconstraint 3 diagonal 1\n0 1.0\nend\n";
        assert!(read_instance(bad).is_err());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let bad = "psdp 1\ndim 2\nconstraints 1\nconstraint 0 wat\nend\n";
        let err = read_instance(bad).unwrap_err().to_string();
        assert!(err.contains("line 4"), "{err}");
    }

    #[test]
    fn solver_accepts_parsed_instance() {
        let inst = sample();
        let text = write_instance(&inst);
        let back = read_instance(&text).unwrap();
        let res = crate::decision_psdp(&back, &crate::DecisionOptions::practical(0.3)).unwrap();
        assert!(res.stats.iterations > 0);
    }
}
