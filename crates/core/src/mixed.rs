//! Mixed packing–covering SDP solving (Jain–Yao, arXiv:1201.6090) on the
//! Session core.
//!
//! The paper's conclusion names "extending these algorithms to solve mixed
//! packing/covering SDPs" as future work; Jain–Yao give the
//! width-independent parallel algorithm for exactly that class. This module
//! implements it on top of the packing stack from PRs 2–3: the same
//! constraint storage ([`crate::Constraint`]), the same incremental
//! [`PsiMaintainer`] — one per aggregate, `Ψ_P = Σ xᵢPᵢ` and
//! `Ψ_C = Σ xᵢCᵢ` — the same engines for the `exp(Φ)•A` primitive, the
//! same [`Observer`] hooks, Lemma-2.2-style pruning masks, and the same
//! prepared-solver/session split with warm-started bisection.
//!
//! ## The feasibility question and the loop
//!
//! [`MixedSession::solve`] answers, for a [`MixedInstance`] and a coverage
//! threshold `σ`:
//!
//! ```text
//!   ∃ x ≥ 0   with   Σᵢ xᵢPᵢ ⪯ I   and   Σᵢ xᵢCᵢ ⪰ σ·I   (to ε)?
//! ```
//!
//! The loop maintains a soft-max potential on the packing side and a
//! soft-min potential on the covering side,
//!
//! ```text
//!   Y_P = exp(Ψ_P)/Tr exp(Ψ_P),       Y_C = exp(−Ψ_C/σ)/Tr exp(−Ψ_C/σ),
//! ```
//!
//! and each round multiplicatively grows (`xₖ ← xₖ(1+α)`) every coordinate
//! whose *packing price* is at most `(1+ε)` times its *covering price*:
//!
//! ```text
//!   B = { k : Pₖ•Y_P ≤ (1+ε)·(Cₖ•Y_C)/σ }.
//! ```
//!
//! Two certified exits:
//!
//! * **Coverage reached** ([`ExitReason::CoverageReached`]): the soft-min
//!   bound `−ln Tr exp(−Ψ_C/σ) ≤ λmin(Ψ_C)/σ` crosses the target
//!   `T = 2·ln(m_P + m_C)/ε`, where the `ln m` additive slop of the
//!   exponential potential is an ε-fraction. The iterate is rescaled by
//!   the *measured* `max(λmax(Ψ_P), λmin(Ψ_C)/σ)` so packing feasibility
//!   holds exactly, and the measured coverage is reported
//!   ([`MixedFeasible`]) — certification by measurement, like the packing
//!   solver's practical mode.
//! * **Empty eligible set** ([`ExitReason::EmptyEligibleSet`]): the weight
//!   pair `(Y_P, Y_C)` prices every active coordinate out. It is an
//!   explicit infeasibility certificate ([`MixedCertificate`]): for any
//!   packing-feasible `x`, `1 ≥ Σ xₖ(Pₖ•Y_P) ≥ (margin/σ)·Σ xₖ(Cₖ•Y_C)`,
//!   so the coverage optimum is at most `σ/margin`. The certificate is a
//!   measured statement about the final weights — true regardless of the
//!   path that produced them — and re-verifies through
//!   [`crate::verify::verify_mixed_infeasible`].
//!
//! An iteration-cap exit returns the measured (possibly weak) feasible
//! point; the bisection treats it as a certified-but-unhelpful outcome
//! (see below).
//!
//! ## Engines
//!
//! The packing side uses the configured engine ([`EngineKind::Auto`]
//! resolves against the packing storage profile, exactly as in the packing
//! solver). The covering side always runs the **exact** engine: the
//! Lemma 4.2 Taylor sandwich is one-sided for PSD arguments, and
//! `−Ψ_C/σ` is negative semidefinite — a truncated Taylor series there
//! loses relative accuracy to cancellation exactly where the soft-min
//! matters. A width-independent NSD-capable approximation is future work;
//! the exact eigendecomposition keeps every covering-side quantity
//! certified.
//!
//! ## Optimization
//!
//! [`MixedSession::optimize`] finds the largest feasible coverage
//! threshold `σ* = max{ σ : ∃x ≥ 0, Σ xPᵢ ⪯ I, Σ xCᵢ ⪰ σI }` by
//! geometric bisection with **certified-only bracket moves**: the lower
//! bound always comes from a measured feasible point (its coverage
//! `λmin(Σ xCᵢ)` is a witness), the upper bound from a pricing certificate
//! (`σ/margin` plus the certified slack of any pruned coordinates). A
//! decision call that improves neither side first *escalates*: the same
//! `σ` re-runs once with `ε` and `α` halved, which doubles the coverage
//! target `T` and halves the per-step overshoot — the loop's intrinsic
//! resolution (the bracket ratio it can distinguish) tightens past the
//! stall. If even the escalation improves nothing, that is a *stall*;
//! after two consecutive stalls the bisection stops with
//! `converged = false` rather than move the bracket without a certificate
//! (a deliberate departure from the packing optimizer's
//! degenerate-progress nudge). Warm starts continue each bracket from the
//! previous bracket's final iterate, rescaled to half the coverage
//! target; a warm attempt that fails to move the bracket is discarded and
//! the bracket re-runs cold, so warm starts never weaken the report
//! (discarded work is still counted in every exported total).

use crate::error::PsdpError;
use crate::instance::MixedInstance;
use crate::psi::PsiMaintainer;
use crate::solution::{ExitReason, MixedCertificate, MixedFeasible, MixedOutcome};
use crate::solver::{IterationEvent, Observer, ObserverControl, PhaseEvent};
use crate::stats::{BracketStats, SolveStats};
use psdp_expdot::{Engine, EngineKind};
use psdp_linalg::{lambda_max_upper_bound, sym_eigen};
use psdp_parallel::Cost;
use std::sync::Arc;
use std::time::Instant;

/// Fraction of the coverage target a warm-started bracket iterate is
/// rescaled to (threshold frame). Half leaves the loop room to re-balance
/// before either exit can trigger — the mixed analog of the packing
/// session's warm-mass fraction.
const WARM_TARGET_FRACTION: f64 = 0.5;

/// Consecutive bracket stalls (decision calls that improve neither bound)
/// tolerated before the bisection gives up with `converged = false`.
const MAX_STALLS: usize = 2;

/// Configuration for one mixed feasibility solve.
///
/// The mixed loop has no paper-strict constants regime (Jain–Yao's
/// worst-case constants are far from practical, and every output here is
/// certified by measurement anyway), so this is a dedicated options type
/// rather than a reuse of [`crate::DecisionOptions`].
#[derive(Debug, Clone, Copy)]
pub struct MixedOptions {
    /// Target accuracy `ε ∈ (0, 1)` of the price comparison and the
    /// coverage target `T = 2·ln(m_P + m_C)/ε`.
    pub eps: f64,
    /// Engine for the packing-side `exp(Ψ_P)•Pₖ` primitive
    /// ([`EngineKind::Auto`] resolves against the packing storage). The
    /// covering side always runs exact (see the module docs).
    pub engine: EngineKind,
    /// Hard iteration cap per decision call.
    pub max_iters: usize,
    /// Multiplier on the base step `α = ε/4` (the scalar mixed solver's
    /// step). Larger is faster but overshoots more; outputs stay certified
    /// either way.
    pub alpha_boost: f64,
    /// Full-rebuild cadence of both incremental `Ψ` maintainers
    /// (`0` = never rebuild), as in
    /// [`crate::DecisionOptions::psi_rebuild_period`].
    pub psi_rebuild_period: usize,
    /// Root seed for sketched packing engines.
    pub seed: u64,
}

impl MixedOptions {
    /// Practical defaults at accuracy `eps` with the exact engine.
    pub fn practical(eps: f64) -> Self {
        MixedOptions {
            eps,
            engine: EngineKind::Exact,
            max_iters: 20_000,
            alpha_boost: 4.0,
            psi_rebuild_period: 64,
            seed: 0,
        }
    }

    /// Builder-style engine override.
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validate parameter ranges.
    ///
    /// # Errors
    /// [`PsdpError::InvalidInstance`] on out-of-range values.
    pub fn validate(&self) -> Result<(), PsdpError> {
        if !(self.eps > 0.0 && self.eps < 1.0) {
            return Err(PsdpError::InvalidInstance(format!(
                "mixed eps must be in (0,1), got {}",
                self.eps
            )));
        }
        if self.max_iters == 0 {
            return Err(PsdpError::InvalidInstance("mixed max_iters must be ≥ 1".into()));
        }
        if !self.alpha_boost.is_finite() || self.alpha_boost <= 0.0 {
            return Err(PsdpError::InvalidInstance(
                "mixed alpha_boost must be finite and > 0".into(),
            ));
        }
        Ok(())
    }
}

/// Configuration for the certified bisection over coverage thresholds.
#[derive(Debug, Clone, Copy)]
pub struct MixedApproxOptions {
    /// Target relative accuracy of the returned threshold bracket.
    pub eps: f64,
    /// Configuration for each decision call (its `eps` should be ≤ this
    /// one for the bracket to close). The engine kind and seed are fixed
    /// when the [`MixedSolver`] is built and ignored here; everything
    /// else (eps, iteration cap, step boost, Ψ rebuild cadence) takes
    /// effect per call.
    pub decision: MixedOptions,
    /// Cap on decision calls.
    pub max_calls: usize,
    /// Warm-start each bracket from the previous bracket's final iterate
    /// (rescaled). Discarded when it fails to move the bracket, so the
    /// report is certified either way.
    pub warm_start: bool,
}

impl MixedApproxOptions {
    /// Default practical configuration at bracket accuracy `eps`.
    pub fn practical(eps: f64) -> Self {
        MixedApproxOptions {
            eps,
            decision: MixedOptions::practical(eps / 2.0),
            max_calls: 40,
            warm_start: true,
        }
    }
}

/// The soft-min coverage target `T = 2·ln(m_P + m_C)/ε` (at least `2/ε`):
/// once `λmin(Ψ_C)/σ ≥ T` the `ln m` additive slop of both exponential
/// potentials is an ε-fraction of the aggregate scale.
pub fn coverage_target(eps: f64, pack_dim: usize, cover_dim: usize) -> f64 {
    2.0 * ((pack_dim + cover_dim) as f64).ln().max(1.0) / eps
}

/// Outcome + telemetry of one mixed feasibility solve.
#[derive(Debug, Clone)]
pub struct MixedDecision {
    /// Which side was certified.
    pub outcome: MixedOutcome,
    /// Telemetry. `threshold` is the tested `σ`; `final_norm1` and the
    /// sampled trajectory carry the soft-min coverage bound (threshold
    /// frame) instead of `‖x‖₁`; `k_threshold` is the coverage target `T`.
    pub stats: SolveStats,
}

/// Result of optimizing the coverage threshold of a mixed instance.
#[derive(Debug, Clone)]
pub struct MixedReport {
    /// Certified lower bound on `σ*` (measured coverage of
    /// [`MixedReport::best_point`]).
    pub threshold_lower: f64,
    /// Certified upper bound on `σ*` (pricing certificate plus pruning
    /// slack, or the structural cap bound).
    pub threshold_upper: f64,
    /// The best feasible point found (largest measured coverage).
    pub best_point: Option<MixedFeasible>,
    /// The tightest infeasibility certificate found, if any bracket
    /// resolved to the infeasible side.
    pub infeasibility_witness: Option<MixedCertificate>,
    /// Number of decision calls made.
    pub decision_calls: usize,
    /// Total inner iterations across all calls, including discarded warm
    /// attempts.
    pub total_iterations: usize,
    /// Total live engine evaluations (packing + covering sides), including
    /// discarded warm attempts.
    pub total_engine_evals: usize,
    /// Whether the bracket closed to `(1+eps)`.
    pub converged: bool,
    /// Largest number of coordinates pruned in any single call.
    pub pruned_max: usize,
    /// Per-call solver stats (the accepted solve of each bracket).
    pub call_stats: Vec<SolveStats>,
    /// Per-bracket breakdown (tested `σ`, certified side, bracket after
    /// the move, work including discarded attempts).
    pub brackets: Vec<BracketStats>,
}

impl MixedReport {
    /// Midpoint estimate of `σ*` (geometric mean of the bracket).
    pub fn threshold_estimate(&self) -> f64 {
        (self.threshold_lower * self.threshold_upper).sqrt()
    }
}

/// Builder for a prepared [`MixedSolver`].
#[derive(Debug, Clone)]
pub struct MixedSolverBuilder<'i> {
    inst: &'i MixedInstance,
    opts: MixedOptions,
}

impl<'i> MixedSolverBuilder<'i> {
    /// Set the decision options the solver prepares for.
    pub fn options(mut self, opts: MixedOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Validate the options, resolve [`EngineKind::Auto`] against the
    /// packing side's storage profile, and construct both engines —
    /// including any support-local constraint factorizations — exactly
    /// once.
    ///
    /// # Errors
    /// Option validation and constraint factorization failures.
    pub fn build(self) -> Result<MixedSolver<'i>, PsdpError> {
        self.opts.validate()?;
        let pack_engine =
            Arc::new(Engine::new(self.opts.engine, self.inst.pack().mats(), self.opts.seed)?);
        // Covering side: always exact (see the module docs — the Taylor
        // sandwich does not hold for the NSD argument −Ψ_C/σ).
        let cover_engine =
            Arc::new(Engine::new(EngineKind::Exact, self.inst.cover().mats(), self.opts.seed)?);
        Self::assemble(self.inst, self.opts, pack_engine, cover_engine)
    }

    /// Like [`MixedSolverBuilder::build`], but reuse already-prepared
    /// engines (obtained from [`MixedSolver::engine_handles`] of an
    /// earlier solver for the same instance) — the serving layer's
    /// amortization hook, mirroring
    /// [`crate::SolverBuilder::build_with_engine`]. Dimensions, seeds, and
    /// resolved kinds are re-checked; full instance identity is the
    /// caller's cache-key responsibility (see `DESIGN.md` §10).
    ///
    /// # Errors
    /// Option validation failures, or engines inconsistent with this
    /// instance/options pair.
    pub fn build_with_engines(
        self,
        pack_engine: Arc<Engine>,
        cover_engine: Arc<Engine>,
    ) -> Result<MixedSolver<'i>, PsdpError> {
        self.opts.validate()?;
        let checks = [
            (&pack_engine, self.inst.pack_dim(), "packing"),
            (&cover_engine, self.inst.cover_dim(), "covering"),
        ];
        for (engine, dim, side) in checks {
            if engine.dim() != dim {
                return Err(PsdpError::InvalidInstance(format!(
                    "prepared {side} engine has dim {}, instance side has dim {dim}",
                    engine.dim()
                )));
            }
            if engine.seed() != self.opts.seed {
                return Err(PsdpError::InvalidInstance(format!(
                    "prepared {side} engine was built with seed {}, options ask for seed {}",
                    engine.seed(),
                    self.opts.seed
                )));
            }
        }
        let want_pack =
            self.opts.engine.resolve(self.inst.pack_dim(), self.inst.pack().total_nnz());
        if pack_engine.kind() != want_pack {
            return Err(PsdpError::InvalidInstance(format!(
                "prepared packing engine kind {:?} does not match requested kind {:?}",
                pack_engine.kind(),
                want_pack
            )));
        }
        if cover_engine.kind() != EngineKind::Exact {
            return Err(PsdpError::InvalidInstance(format!(
                "prepared covering engine must be exact, got {:?}",
                cover_engine.kind()
            )));
        }
        Self::assemble(self.inst, self.opts, pack_engine, cover_engine)
    }

    fn assemble(
        inst: &'i MixedInstance,
        opts: MixedOptions,
        pack_engine: Arc<Engine>,
        cover_engine: Arc<Engine>,
    ) -> Result<MixedSolver<'i>, PsdpError> {
        let pack_traces: Vec<f64> = inst.pack().mats().iter().map(|a| a.trace()).collect();
        let cover_traces: Vec<f64> = inst.cover().mats().iter().map(|a| a.trace()).collect();
        Ok(MixedSolver { inst, opts, pack_engine, cover_engine, pack_traces, cover_traces })
    }
}

/// A prepared mixed packing–covering solver bound to one
/// [`MixedInstance`]: validation, engine resolution, and factorization
/// happen once here; solves run through [`MixedSession`]s.
///
/// ```
/// use psdp_core::{MixedInstance, MixedOptions, MixedSolver};
/// use psdp_sparse::PsdMatrix;
///
/// // One coordinate: 2x ≤ 1 (packing), x ≥ σ (covering) ⇒ σ* = 1/2.
/// let inst = MixedInstance::new(
///     vec![PsdMatrix::Diagonal(vec![2.0])],
///     vec![PsdMatrix::Diagonal(vec![1.0])],
/// )?;
/// let solver = MixedSolver::builder(&inst).options(MixedOptions::practical(0.1)).build()?;
/// let mut session = solver.session();
/// // σ = 0.25 is comfortably feasible…
/// let res = session.solve(0.25)?;
/// let f = res.outcome.feasible().expect("feasible side");
/// assert!(f.cover_lambda_min >= 0.25 * 0.99);
/// // …and σ = 1.0 is comfortably infeasible.
/// let res = session.solve(1.0)?;
/// assert!(res.outcome.infeasible().is_some());
/// # Ok::<(), psdp_core::PsdpError>(())
/// ```
pub struct MixedSolver<'i> {
    inst: &'i MixedInstance,
    opts: MixedOptions,
    pack_engine: Arc<Engine>,
    cover_engine: Arc<Engine>,
    pack_traces: Vec<f64>,
    cover_traces: Vec<f64>,
}

impl<'i> MixedSolver<'i> {
    /// Start building a solver for `inst`.
    pub fn builder(inst: &'i MixedInstance) -> MixedSolverBuilder<'i> {
        MixedSolverBuilder { inst, opts: MixedOptions::practical(0.1) }
    }

    /// The instance this solver was prepared for.
    pub fn instance(&self) -> &MixedInstance {
        self.inst
    }

    /// The options the solver was built with.
    pub fn options(&self) -> &MixedOptions {
        &self.opts
    }

    /// The concrete packing-side engine kind ([`EngineKind::Auto`] is
    /// resolved at build time). The covering side is always
    /// [`EngineKind::Exact`].
    pub fn pack_engine_kind(&self) -> EngineKind {
        self.pack_engine.kind()
    }

    /// Shareable handles to the prepared `(packing, covering)` engines, for
    /// [`MixedSolverBuilder::build_with_engines`] reuse on the same
    /// instance.
    pub fn engine_handles(&self) -> (Arc<Engine>, Arc<Engine>) {
        (Arc::clone(&self.pack_engine), Arc::clone(&self.cover_engine))
    }

    /// Open a fresh session (no observers, warm starts armed).
    pub fn session(&self) -> MixedSession<'i, '_> {
        MixedSession {
            solver: self,
            observers: Vec::new(),
            warm: true,
            solves: 0,
            last_x: None,
            last_mask: Vec::new(),
        }
    }
}

/// A stateful mixed-solve session over a prepared [`MixedSolver`],
/// mirroring [`crate::Session`]: it owns the registered [`Observer`]s and
/// the cross-bracket warm-start iterate.
pub struct MixedSession<'i, 's> {
    solver: &'s MixedSolver<'i>,
    observers: Vec<Box<dyn Observer>>,
    warm: bool,
    solves: usize,
    /// Final iterate of the most recent solve (original coordinates), the
    /// seed for warm continuation in [`MixedSession::optimize`].
    last_x: Option<Vec<f64>>,
    /// Active mask of the most recent solve.
    last_mask: Vec<bool>,
}

impl<'i, 's> MixedSession<'i, 's> {
    /// Enable or disable cross-bracket warm starts.
    pub fn set_warm_start(&mut self, warm: bool) {
        self.warm = warm;
    }

    /// Builder-style form of [`MixedSession::set_warm_start`].
    #[must_use]
    pub fn with_warm_start(mut self, warm: bool) -> Self {
        self.warm = warm;
        self
    }

    /// Register an observer for subsequent solves (shared
    /// [`Observer`] trait with the packing session; `norm1` in
    /// [`IterationEvent`] carries the soft-min coverage bound here).
    pub fn add_observer(&mut self, obs: Box<dyn Observer>) {
        self.observers.push(obs);
    }

    /// Number of decision solves this session has run.
    pub fn solves(&self) -> usize {
        self.solves
    }

    /// Answer the mixed feasibility question at coverage threshold
    /// `sigma` with the solver's build-time options.
    ///
    /// # Errors
    /// Invalid threshold or linear-algebra failures.
    pub fn solve(&mut self, sigma: f64) -> Result<MixedDecision, PsdpError> {
        let opts = self.solver.opts;
        self.run_decision(sigma, &opts, None, None)
    }

    fn emit_phase(&mut self, event: &PhaseEvent<'_>) {
        for obs in &mut self.observers {
            obs.on_phase(event);
        }
    }

    /// The Jain–Yao price loop at coverage threshold `sigma`, optionally
    /// restricted to an active-coordinate mask and optionally starting
    /// from a warm iterate (original coordinates).
    fn run_decision(
        &mut self,
        sigma: f64,
        opts: &MixedOptions,
        mask: Option<Vec<bool>>,
        start: Option<Vec<f64>>,
    ) -> Result<MixedDecision, PsdpError> {
        if !(sigma > 0.0 && sigma.is_finite()) {
            return Err(PsdpError::InvalidInstance(format!(
                "coverage threshold must be positive and finite, got {sigma}"
            )));
        }
        let wall_start = Instant::now();
        self.solves += 1;
        let inst = self.solver.inst;
        let n = inst.n();
        let eps = opts.eps;

        let active: Vec<bool> = mask.unwrap_or_else(|| vec![true; n]);
        debug_assert_eq!(active.len(), n);
        let n_active = active.iter().filter(|&&b| b).count();
        if n_active == 0 {
            return Err(PsdpError::InvalidInstance("active-coordinate mask is empty".into()));
        }

        let t_target = coverage_target(eps, inst.pack_dim(), inst.cover_dim());
        let alpha = (eps / 4.0) * opts.alpha_boost;
        let cap = opts.max_iters;

        // Start point: small multiplicative mass on every active
        // coordinate, scaled so neither aggregate starts anywhere near its
        // target (cf. the scalar mixed solver's start). Masked coordinates
        // are frozen at 0.
        let warm_init = start.is_some();
        let mut x: Vec<f64> = match start {
            Some(u) => {
                debug_assert_eq!(u.len(), n);
                u
            }
            None => {
                self.solver
                    .pack_traces
                    .iter()
                    .zip(&self.solver.cover_traces)
                    .zip(&active)
                    .map(|((&tp, &tc), &a)| {
                        if a {
                            1.0 / (n_active as f64 * tp.max(tc / sigma) * t_target)
                        } else {
                            0.0
                        }
                    })
                    .collect()
            }
        };
        let mut psi_p = PsiMaintainer::new(inst.pack(), &x, opts.psi_rebuild_period);
        let mut psi_c = PsiMaintainer::new(inst.cover(), &x, opts.psi_rebuild_period);

        let phase = PhaseEvent::SolveStarted { threshold: sigma, warm: warm_init };
        self.emit_phase(&phase);

        let mut cost_total = Cost::ZERO;
        let mut selected_total = 0usize;
        let mut kappa_max = 0.0_f64;
        let mut engine_evals = 0usize;
        let mut exit = ExitReason::IterationCap;
        let sample_every = (cap / 200).max(1);
        let mut trajectory: Vec<(usize, f64)> = Vec::new();
        let mut smin = f64::NEG_INFINITY;
        let mut certificate: Option<MixedCertificate> = None;
        let mut t = 0usize;

        while t < cap {
            t += 1;

            // Packing side: soft-max weights over Ψ_P.
            let kappa_p = lambda_max_upper_bound(psi_p.matrix());
            kappa_max = kappa_max.max(kappa_p);
            let pack = self.solver.pack_engine.compute(
                psi_p.matrix(),
                kappa_p,
                inst.pack().mats(),
                t as u64,
            )?;
            engine_evals += 1;
            cost_total = cost_total + pack.cost;

            // Covering side: soft-min weights over Ψ_C/σ, i.e. exp of the
            // NSD matrix −Ψ_C/σ (exact engine; log_scale is 0 there but
            // kept in the soft-min bound for generality).
            let phi_c = psi_c.matrix().scaled(-1.0 / sigma);
            let kappa_c = lambda_max_upper_bound(psi_c.matrix()) / sigma;
            let cover =
                self.solver.cover_engine.compute(&phi_c, kappa_c, inst.cover().mats(), t as u64)?;
            engine_evals += 1;
            cost_total = cost_total + cover.cost;

            // Soft-min coverage bound: λmin(Ψ_C)/σ ≥ −ln Tr exp(−Ψ_C/σ).
            smin = -(cover.tr_w.ln() + cover.log_scale);
            if t.is_multiple_of(sample_every) {
                trajectory.push((t, smin));
            }
            if smin >= t_target {
                exit = ExitReason::CoverageReached;
                break;
            }

            // Prices. pack_dots[k] = Pₖ•Y_P; cover_dots[k] = Cₖ•Y_C.
            let inv_tr_p = 1.0 / pack.tr_w;
            let inv_tr_c = 1.0 / cover.tr_w;
            let pack_dots: Vec<f64> = pack.dots.iter().map(|d| d * inv_tr_p).collect();
            let cover_dots: Vec<f64> = cover.dots.iter().map(|d| d * inv_tr_c).collect();

            // Eligible set: packing price ≤ (1+ε) · covering price, where
            // the covering price carries the 1/σ of the scaled C̃ₖ = Cₖ/σ.
            let mut deltas: Vec<(usize, f64)> = Vec::new();
            let mut min_ratio = f64::INFINITY;
            for k in 0..n {
                if !active[k] {
                    continue;
                }
                let ratio = if cover_dots[k] > 0.0 {
                    sigma * pack_dots[k] / cover_dots[k]
                } else {
                    f64::INFINITY
                };
                min_ratio = min_ratio.min(ratio);
                if pack_dots[k] * sigma <= (1.0 + eps) * cover_dots[k] {
                    deltas.push((k, alpha * x[k]));
                }
            }
            if deltas.is_empty() {
                // Every active coordinate is priced out: the weight pair
                // is an infeasibility certificate with the measured margin.
                certificate = Some(MixedCertificate {
                    sigma,
                    y_pack: pack.dense_p.clone(),
                    y_cover: cover.dense_p.clone(),
                    pack_dots,
                    cover_dots,
                    active: active.clone(),
                    margin: min_ratio,
                });
                exit = ExitReason::EmptyEligibleSet;
                break;
            }

            selected_total += deltas.len();
            for &(k, d) in &deltas {
                x[k] += d;
            }
            psi_p.apply_updates(&deltas);
            psi_c.apply_updates(&deltas);
            psi_p.maybe_rebuild(&x);
            psi_c.maybe_rebuild(&x);

            if !self.observers.is_empty() {
                let event = IterationEvent {
                    threshold: sigma,
                    t,
                    norm1: smin,
                    selected: deltas.len(),
                    kappa: kappa_p,
                    min_ratio,
                    replayed: false,
                };
                let mut stop = false;
                for obs in &mut self.observers {
                    if obs.on_iteration(&event) == ObserverControl::Stop {
                        stop = true;
                    }
                }
                if stop {
                    exit = ExitReason::ObserverStopped;
                    break;
                }
            }
        }

        let outcome = match certificate {
            Some(cert) => MixedOutcome::Infeasible(cert),
            None => {
                // Feasible-side exit (coverage reached, cap, or observer):
                // certify by measurement. Rescale so λmax(Σ xPᵢ) ≤ 1 holds
                // exactly and report the measured coverage.
                let lam_p = match sym_eigen(psi_p.matrix()) {
                    Ok(e) => e.lambda_max(),
                    Err(_) => lambda_max_upper_bound(psi_p.matrix()),
                };
                let lam_c = match sym_eigen(psi_c.matrix()) {
                    Ok(e) => e.lambda_min(),
                    // The soft-min bound is a certified fallback.
                    Err(_) => (sigma * smin).max(0.0),
                };
                let s = lam_p.max(lam_c / sigma).max(1e-300);
                let x_hat: Vec<f64> = x.iter().map(|v| v / s).collect();
                MixedOutcome::Feasible(MixedFeasible {
                    x: x_hat,
                    pack_lambda_max: lam_p / s,
                    cover_lambda_min: lam_c / s,
                })
            }
        };

        let stats = SolveStats {
            iterations: t,
            exit,
            final_norm1: smin,
            k_threshold: t_target,
            alpha,
            iteration_cap: cap,
            cost: cost_total,
            engine: self.solver.pack_engine.kind().name(),
            avg_selected: if t > 0 { selected_total as f64 / t as f64 } else { 0.0 },
            kappa_max,
            psi_rebuilds: psi_p.rebuilds() + psi_c.rebuilds(),
            psi_max_drift: psi_p.max_drift().max(psi_c.max_drift()),
            threshold: sigma,
            warm_started: warm_init,
            engine_evals,
            replayed: 0,
            wall: wall_start.elapsed(),
            norm_trajectory: trajectory,
        };
        self.last_x = Some(x);
        self.last_mask = active;
        self.emit_phase(&PhaseEvent::SolveFinished { threshold: sigma, stats: &stats });
        Ok(MixedDecision { outcome, stats })
    }

    /// Optimize the coverage threshold `σ*` to `(1+ε)` relative accuracy
    /// by certified geometric bisection over this session.
    ///
    /// Bracket initialization is structural and certified:
    ///
    /// * **Upper**: any packing-feasible `x` has
    ///   `xₖ·Tr Pₖ ≤ Tr(Σ xPᵢ) ≤ m_P`, so
    ///   `σ* ≤ λmin(Σₖ (m_P/Tr Pₖ)·Cₖ)` by monotonicity of `⪯`.
    /// * **Lower**: the explicit witness `xₖ = 1/(n·Tr Pₖ)` is
    ///   packing-feasible (`λmax ≤ trace`); after tightening its packing
    ///   norm to 1 by measurement, its measured coverage is a certified
    ///   lower bound. A witness with zero coverage proves `σ* = 0`
    ///   outright (a common null vector of every `Cₖ`), and the bisection
    ///   short-circuits.
    ///
    /// Every bracket move is backed by a feasible point or a pricing
    /// certificate; stalled brackets end the search with
    /// `converged = false` instead of moving uncertified (see the module
    /// docs).
    ///
    /// # Errors
    /// Validation or linear-algebra failures. A bracket that fails to
    /// close within `max_calls` is reported with `converged = false`, not
    /// an error.
    pub fn optimize(&mut self, opts: &MixedApproxOptions) -> Result<MixedReport, PsdpError> {
        if !(opts.eps > 0.0 && opts.eps < 1.0) {
            return Err(PsdpError::InvalidInstance(format!("eps {} not in (0,1)", opts.eps)));
        }
        opts.decision.validate()?;
        let inst = self.solver.inst;
        let n = inst.n();
        let warm = self.warm && opts.warm_start;
        let t_target = coverage_target(opts.decision.eps, inst.pack_dim(), inst.cover_dim());

        // Structural upper bound: caps[k] = m_P / Tr Pₖ dominates any
        // packing-feasible coordinate.
        let caps: Vec<f64> = self
            .solver
            .pack_traces
            .iter()
            .map(|&tr| inst.pack_dim() as f64 / tr.max(1e-300))
            .collect();
        let cap_cover = inst.cover().weighted_sum(&caps);
        let hi_structural = sym_eigen(&cap_cover)?.lambda_min().max(0.0);

        // Certified witness lower bound: xₖ = 1/(n·Tr Pₖ) has
        // λmax(Σ xPᵢ) ≤ Σ xₖ·Tr Pₖ = 1; tighten to packing norm 1 by
        // measurement and read off its coverage.
        let mut w: Vec<f64> =
            self.solver.pack_traces.iter().map(|&tr| 1.0 / (n as f64 * tr.max(1e-300))).collect();
        let lam_w = sym_eigen(&inst.pack().weighted_sum(&w))?.lambda_max();
        if lam_w > 0.0 {
            let s = lam_w * (1.0 + 1e-9);
            for v in &mut w {
                *v /= s;
            }
        }
        let lo_witness = sym_eigen(&inst.cover().weighted_sum(&w))?.lambda_min();

        // A NaN measurement is an eigensolver failure, not evidence: it
        // must never be laundered into the certified "σ* = 0" claim below.
        if lo_witness.is_nan() || hi_structural.is_nan() {
            return Err(PsdpError::InvalidInstance(
                "non-finite eigenvalue while initializing the coverage bracket".into(),
            ));
        }
        if lo_witness <= 0.0 || hi_structural <= 0.0 {
            // A strictly positive witness with zero coverage means some
            // vector v has vᵀCₖv = 0 for every k, so λmin(Σ xCᵢ) = 0 for
            // *every* x: the coverage optimum is exactly 0.
            return Ok(MixedReport {
                threshold_lower: 0.0,
                threshold_upper: 0.0,
                best_point: None,
                infeasibility_witness: None,
                decision_calls: 0,
                total_iterations: 0,
                total_engine_evals: 0,
                converged: true,
                pruned_max: 0,
                call_stats: Vec::new(),
                brackets: Vec::new(),
            });
        }

        let mut lo = lo_witness;
        let mut hi = hi_structural.max(lo * (1.0 + 2.0 * opts.eps));
        let mut best_point = Some(MixedFeasible {
            x: w,
            pack_lambda_max: (lam_w / (lam_w * (1.0 + 1e-9))).min(1.0),
            cover_lambda_min: lo_witness,
        });
        let mut infeasibility_witness: Option<MixedCertificate> = None;
        let mut call_stats = Vec::new();
        let mut brackets: Vec<BracketStats> = Vec::new();
        let mut total_iterations = 0usize;
        let mut total_engine_evals = 0usize;
        let mut calls = 0usize;
        let mut pruned_max = 0usize;
        let mut stalls = 0usize;
        let mut stopped = false;

        while hi > lo * (1.0 + opts.eps) && calls < opts.max_calls && stalls < MAX_STALLS {
            calls += 1;
            let sigma = (lo * hi).sqrt();

            // Pruning: coordinate k's total coverage contribution in any
            // packing-feasible point is ≤ caps[k]·λmax(Cₖ) ≤ caps[k]·Tr Cₖ;
            // drop it when that is ≤ ε·σ/(2n), so the dropped set's
            // certified slack is ≤ ε·σ/2.
            let cutoff = opts.eps * sigma / (2.0 * n as f64);
            let mut mask = vec![true; n];
            let mut dropped_slack = 0.0_f64;
            let mut dropped = 0usize;
            for k in 0..n {
                let contribution = caps[k] * self.solver.cover_traces[k];
                if contribution <= cutoff {
                    mask[k] = false;
                    dropped += 1;
                    dropped_slack += contribution;
                }
            }
            let use_mask = dropped > 0 && dropped < n;
            if !use_mask {
                dropped_slack = 0.0;
            }
            pruned_max = pruned_max.max(if use_mask { dropped } else { 0 });
            let active: Vec<bool> = if use_mask { mask } else { vec![true; n] };

            // Warm continuation: previous bracket's final iterate rescaled
            // so its threshold-frame aggregate norm is half the coverage
            // target (room to re-balance before either exit fires).
            let warm_seed = if warm && self.last_x.is_some() && self.last_mask == active {
                self.last_x.as_ref().map(|u| {
                    let cur = lambda_max_upper_bound(&inst.pack().weighted_sum(u))
                        .max(lambda_max_upper_bound(&inst.cover().weighted_sum(u)) / sigma)
                        .max(1e-300);
                    let gamma = WARM_TARGET_FRACTION * t_target / cur;
                    u.iter().map(|v| v * gamma).collect::<Vec<f64>>()
                })
            } else {
                None
            };
            let mask_arg = use_mask.then(|| active.clone());

            // A call "moves the bracket" when its outcome improves the
            // side it certifies. Warm attempts that fail to do so are
            // discarded and the bracket re-runs cold; a cold run that
            // still fails escalates once to a finer configuration
            // (ε and α halved — the coverage target T doubles and the
            // per-step overshoot halves, so the loop's intrinsic
            // resolution tightens past the stall). Discarded work is
            // counted in every exported total.
            let decision = opts.decision;
            let improves = |r: &MixedDecision| match &r.outcome {
                MixedOutcome::Feasible(f) => f.cover_lambda_min > lo,
                MixedOutcome::Infeasible(c) => sigma / c.margin.max(1e-300) + dropped_slack < hi,
            };
            let stopped_early = |r: &MixedDecision| r.stats.exit == ExitReason::ObserverStopped;

            let mut discarded: Vec<SolveStats> = Vec::new();
            let mut res = match warm_seed {
                Some(seed) => {
                    let attempt =
                        self.run_decision(sigma, &decision, mask_arg.clone(), Some(seed))?;
                    if improves(&attempt) || stopped_early(&attempt) {
                        attempt
                    } else {
                        discarded.push(attempt.stats);
                        self.run_decision(sigma, &decision, mask_arg.clone(), None)?
                    }
                }
                None => self.run_decision(sigma, &decision, mask_arg.clone(), None)?,
            };
            if !improves(&res) && !stopped_early(&res) {
                let mut fine = decision;
                fine.eps *= 0.5;
                fine.alpha_boost = (fine.alpha_boost * 0.5).max(1.0);
                let retry = self.run_decision(sigma, &fine, mask_arg, None)?;
                if improves(&retry) {
                    discarded.push(res.stats.clone());
                    res = retry;
                } else {
                    discarded.push(retry.stats);
                }
            }
            let wasted_iters: usize = discarded.iter().map(|s| s.iterations).sum();
            let wasted_evals: usize = discarded.iter().map(|s| s.engine_evals).sum();
            let wasted_wall: std::time::Duration = discarded.iter().map(|s| s.wall).sum();
            total_iterations += res.stats.iterations + wasted_iters;
            total_engine_evals += res.stats.engine_evals + wasted_evals;

            if stopped_early(&res) {
                brackets.push(BracketStats {
                    sigma,
                    dual_side: false,
                    lo,
                    hi,
                    iterations: res.stats.iterations + wasted_iters,
                    engine_evals: res.stats.engine_evals + wasted_evals,
                    replayed: 0,
                    warm_started: res.stats.warm_started
                        || discarded.iter().any(|s| s.warm_started),
                    wall: res.stats.wall + wasted_wall,
                });
                call_stats.push(res.stats);
                stopped = true;
                break;
            }

            let moved = improves(&res);
            let feasible_side = res.outcome.is_feasible();
            match &res.outcome {
                MixedOutcome::Feasible(f) => {
                    if f.cover_lambda_min > lo {
                        lo = f.cover_lambda_min;
                    }
                    let better =
                        best_point.as_ref().is_none_or(|b| f.cover_lambda_min > b.cover_lambda_min);
                    if better {
                        best_point = Some(f.clone());
                    }
                }
                MixedOutcome::Infeasible(c) => {
                    let new_hi = sigma / c.margin.max(1e-300) + dropped_slack;
                    if new_hi < hi {
                        hi = new_hi;
                    }
                    let tighter = infeasibility_witness
                        .as_ref()
                        .is_none_or(|b| c.refuted_threshold() < b.refuted_threshold());
                    if tighter {
                        infeasibility_witness = Some(c.clone());
                    }
                }
            }
            stalls = if moved { 0 } else { stalls + 1 };
            if lo > hi {
                // Certified bounds crossed: numerical noise at
                // convergence; collapse the bracket.
                let mid = (lo * hi).sqrt();
                lo = mid;
                hi = mid;
            }
            brackets.push(BracketStats {
                sigma,
                dual_side: feasible_side,
                lo,
                hi,
                iterations: res.stats.iterations + wasted_iters,
                engine_evals: res.stats.engine_evals + wasted_evals,
                replayed: 0,
                warm_started: res.stats.warm_started || discarded.iter().any(|s| s.warm_started),
                wall: res.stats.wall + wasted_wall,
            });
            call_stats.push(res.stats);
            self.emit_phase(&PhaseEvent::BracketUpdated {
                sigma,
                lo,
                hi,
                dual_side: feasible_side,
            });
            if lo == hi {
                break;
            }
        }

        Ok(MixedReport {
            threshold_lower: lo,
            threshold_upper: hi,
            best_point,
            infeasibility_witness,
            decision_calls: calls,
            total_iterations,
            total_engine_evals,
            converged: !stopped && hi <= lo * (1.0 + opts.eps) * (1.0 + 1e-12),
            pruned_max,
            call_stats,
            brackets,
        })
    }
}

/// One-shot convenience: prepare a [`MixedSolver`], open a session, and
/// optimize the coverage threshold.
///
/// ```
/// use psdp_core::{solve_mixed, MixedApproxOptions, MixedInstance};
/// use psdp_sparse::PsdMatrix;
///
/// // Two orthogonal coordinates: P = diag(2)/diag(4) caps, C = identity
/// // demands ⇒ σ* = min coverage achievable… here σ* = 1/2 + … measured.
/// let inst = MixedInstance::new(
///     vec![PsdMatrix::Diagonal(vec![2.0, 0.0]), PsdMatrix::Diagonal(vec![0.0, 2.0])],
///     vec![PsdMatrix::Diagonal(vec![1.0, 0.0]), PsdMatrix::Diagonal(vec![0.0, 1.0])],
/// )?;
/// // σ* = 1/2: each coordinate is capped at 1/2 and covers its own axis.
/// let r = solve_mixed(&inst, &MixedApproxOptions::practical(0.1))?;
/// assert!(r.threshold_lower <= 0.5 + 1e-9 && r.threshold_upper >= 0.5 - 1e-9);
/// # Ok::<(), psdp_core::PsdpError>(())
/// ```
///
/// # Errors
/// Validation or linear-algebra failures (see [`MixedSession::optimize`]).
pub fn solve_mixed(
    inst: &MixedInstance,
    opts: &MixedApproxOptions,
) -> Result<MixedReport, PsdpError> {
    let solver = MixedSolver::builder(inst).options(opts.decision).build()?;
    let mut session = solver.session();
    session.set_warm_start(opts.warm_start);
    session.optimize(opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{verify_mixed_feasible, verify_mixed_infeasible};
    use psdp_sparse::PsdMatrix;

    fn diag(d: &[f64]) -> PsdMatrix {
        PsdMatrix::Diagonal(d.to_vec())
    }

    /// 1-coordinate instance 2x ≤ 1, x ≥ σ: σ* = 1/2 exactly.
    fn half_instance() -> MixedInstance {
        MixedInstance::new(vec![diag(&[2.0])], vec![diag(&[1.0])]).unwrap()
    }

    #[test]
    fn decision_certifies_both_sides() {
        let inst = half_instance();
        let solver =
            MixedSolver::builder(&inst).options(MixedOptions::practical(0.1)).build().unwrap();
        let mut s = solver.session();

        let res = s.solve(0.2).unwrap();
        let f = res.outcome.feasible().expect("feasible at σ=0.2");
        let cert = verify_mixed_feasible(&inst, f, 0.2 * 0.9, 1e-9);
        assert!(cert.feasible, "{cert:?}");
        assert!(f.pack_lambda_max <= 1.0 + 1e-9);

        let res = s.solve(2.0).unwrap();
        let c = res.outcome.infeasible().expect("infeasible at σ=2");
        assert!(c.margin > 1.0);
        let v = verify_mixed_infeasible(&inst, c, 1e-9);
        assert!(v.valid, "{v:?}");
        // The certificate's refuted threshold bounds σ* = 1/2 from above.
        assert!(v.refuted_threshold >= 0.5 - 1e-9, "{v:?}");
        assert_eq!(s.solves(), 2);
    }

    #[test]
    fn optimize_brackets_known_threshold() {
        let inst = half_instance();
        let r = solve_mixed(&inst, &MixedApproxOptions::practical(0.1)).unwrap();
        assert!(r.threshold_lower <= 0.5 + 1e-9, "lo {}", r.threshold_lower);
        assert!(r.threshold_upper >= 0.5 - 1e-9, "hi {}", r.threshold_upper);
        assert!(r.converged, "bracket [{}, {}]", r.threshold_lower, r.threshold_upper);
        assert_eq!(r.brackets.len(), r.decision_calls);
        // The best point's measured coverage certifies the lower bound.
        let p = r.best_point.expect("witness");
        let cert = verify_mixed_feasible(&inst, &p, r.threshold_lower * (1.0 - 1e-9), 1e-9);
        assert!(cert.feasible, "{cert:?}");
    }

    #[test]
    fn optimize_two_coordinate_diagonal() {
        // x₁·diag(2,0) + x₂·diag(0,2) ⪯ I caps x ≤ 1/2 each;
        // C₁ = diag(1,0), C₂ = diag(0,1): coverage = min(x₁, x₂) ⇒ σ* = 1/2.
        let inst = MixedInstance::new(
            vec![diag(&[2.0, 0.0]), diag(&[0.0, 2.0])],
            vec![diag(&[1.0, 0.0]), diag(&[0.0, 1.0])],
        )
        .unwrap();
        let r = solve_mixed(&inst, &MixedApproxOptions::practical(0.1)).unwrap();
        assert!(r.threshold_lower <= 0.5 + 1e-9 && r.threshold_upper >= 0.5 - 1e-9);
        assert!(r.threshold_estimate() > 0.0);
    }

    #[test]
    fn zero_coverage_short_circuits() {
        // Covering matrices all live on coordinate 0 of a 2-dim space:
        // λmin(Σ xC) = 0 for every x, so σ* = 0 and no bisection runs.
        let inst = MixedInstance::new(vec![diag(&[1.0, 1.0])], vec![diag(&[1.0, 0.0])]).unwrap();
        let r = solve_mixed(&inst, &MixedApproxOptions::practical(0.1)).unwrap();
        assert_eq!(r.threshold_upper, 0.0);
        assert_eq!(r.decision_calls, 0);
        assert!(r.converged);
    }

    #[test]
    fn warm_and_cold_optimize_agree_on_certified_bracket() {
        let inst = MixedInstance::new(
            vec![diag(&[1.0, 0.5]), diag(&[0.5, 1.0]), diag(&[2.0, 0.0])],
            vec![diag(&[1.0, 0.0]), diag(&[0.0, 1.0]), diag(&[0.5, 0.5])],
        )
        .unwrap();
        let opts = MixedApproxOptions::practical(0.15);
        let solver = MixedSolver::builder(&inst).options(opts.decision).build().unwrap();
        let warm = solver.session().with_warm_start(true).optimize(&opts).unwrap();
        let cold = solver.session().with_warm_start(false).optimize(&opts).unwrap();
        // Warm starts may change the *path*, never certification: both
        // brackets must be valid and overlap around the same optimum.
        assert!(warm.threshold_lower <= cold.threshold_upper * (1.0 + 1e-9));
        assert!(cold.threshold_lower <= warm.threshold_upper * (1.0 + 1e-9));
        for r in [&warm, &cold] {
            let p = r.best_point.as_ref().expect("witness");
            assert!(
                verify_mixed_feasible(&inst, p, r.threshold_lower * (1.0 - 1e-9), 1e-9).feasible
            );
        }
    }

    #[test]
    fn optimize_uses_per_call_decision_options() {
        // The bisection must run its decision calls with
        // `MixedApproxOptions::decision`, not the solver's build-time
        // options — observable through the coverage target T recorded in
        // `SolveStats::k_threshold`.
        let inst = half_instance();
        let build = MixedOptions::practical(0.3);
        let solver = MixedSolver::builder(&inst).options(build).build().unwrap();
        let mut opts = MixedApproxOptions::practical(0.2);
        opts.decision.eps = 0.05;
        let r = solver.session().optimize(&opts).unwrap();
        let want = coverage_target(0.05, inst.pack_dim(), inst.cover_dim());
        assert!(!r.call_stats.is_empty());
        for s in &r.call_stats {
            assert!(
                (s.k_threshold - want).abs() < 1e-12 || s.k_threshold > want,
                "call ran at T = {} (build-time options leaked); want ≥ {want}",
                s.k_threshold
            );
        }
    }

    #[test]
    fn observer_sees_mixed_iterations_and_can_stop() {
        struct Counter {
            iters: usize,
            stop_at: usize,
        }
        impl Observer for Counter {
            fn on_iteration(&mut self, ev: &IterationEvent) -> ObserverControl {
                self.iters += 1;
                assert!(ev.t >= 1);
                if self.iters >= self.stop_at {
                    ObserverControl::Stop
                } else {
                    ObserverControl::Continue
                }
            }
        }
        let inst = half_instance();
        let solver =
            MixedSolver::builder(&inst).options(MixedOptions::practical(0.2)).build().unwrap();
        let mut s = solver.session();
        s.add_observer(Box::new(Counter { iters: 0, stop_at: 3 }));
        let res = s.solve(0.25).unwrap();
        assert_eq!(res.stats.exit, ExitReason::ObserverStopped);
        assert_eq!(res.stats.iterations, 3);
    }

    #[test]
    fn rejects_bad_threshold_and_options() {
        let inst = half_instance();
        let solver = MixedSolver::builder(&inst).build().unwrap();
        let mut s = solver.session();
        assert!(s.solve(0.0).is_err());
        assert!(s.solve(f64::NAN).is_err());
        let mut o = MixedOptions::practical(0.1);
        o.eps = 0.0;
        assert!(MixedSolver::builder(&inst).options(o).build().is_err());
        let mut o = MixedOptions::practical(0.1);
        o.alpha_boost = f64::INFINITY;
        assert!(o.validate().is_err());
        let mut o = MixedOptions::practical(0.1);
        o.max_iters = 0;
        assert!(o.validate().is_err());
    }

    #[test]
    fn taylor_pack_engine_certificates_still_verify() {
        // A Taylor packing engine materializes no Y_P; the certificate's
        // covering side must still re-verify independently.
        let inst = half_instance();
        let opts = MixedOptions::practical(0.1).with_engine(EngineKind::Taylor { eps: 0.05 });
        let solver = MixedSolver::builder(&inst).options(opts).build().unwrap();
        let res = solver.session().solve(2.0).unwrap();
        let c = res.outcome.infeasible().expect("infeasible at σ=2");
        assert!(c.y_pack.is_none(), "taylor engine produced a dense Y_P?");
        assert!(c.y_cover.is_some(), "covering side always materializes Y_C");
        let v = verify_mixed_infeasible(&inst, c, 1e-7);
        assert!(v.valid, "{v:?}");
        assert!(!v.matrix_checked, "only the covering matrix exists");
        assert!(v.refuted_threshold >= 0.5 * (1.0 - 1e-6), "σ* = 1/2 incorrectly refuted");
    }

    #[test]
    fn coverage_target_scales_with_eps() {
        let t1 = coverage_target(0.1, 8, 8);
        let t2 = coverage_target(0.2, 8, 8);
        assert!((t1 / t2 - 2.0).abs() < 1e-12);
        assert!(t1 > 0.0);
    }
}
