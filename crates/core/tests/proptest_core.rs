//! Property tests on the solver: every certified outcome verifies, paper
//! invariants hold, and the bisection brackets the diagonal-exact optimum
//! on random positive LP instances.

use proptest::prelude::*;
use psdp_core::{
    decision_psdp, solve_packing, verify_dual, verify_primal, ApproxOptions, DecisionOptions,
    Outcome, PackingInstance,
};
use psdp_linalg::sym_eigen;
use psdp_sparse::PsdMatrix;

/// Random diagonal instance: n columns of m nonnegative entries, at least
/// one positive per column.
fn diag_instance() -> impl Strategy<Value = PackingInstance> {
    (1usize..5, 1usize..5).prop_flat_map(|(m, n)| {
        proptest::collection::vec(proptest::collection::vec(0.0_f64..2.0, m), n).prop_map(
            move |cols| {
                let mats: Vec<PsdMatrix> = cols
                    .into_iter()
                    .map(|mut d| {
                        if d.iter().all(|&v| v < 1e-9) {
                            d[0] = 1.0;
                        }
                        PsdMatrix::Diagonal(d)
                    })
                    .collect();
                PackingInstance::new(mats).unwrap()
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Whatever the decision procedure returns is feasible for its side.
    #[test]
    fn decision_outcomes_always_verify(inst in diag_instance(), eps in 0.1_f64..0.5) {
        let res = decision_psdp(&inst, &DecisionOptions::practical(eps)).unwrap();
        match &res.outcome {
            Outcome::Dual(d) => {
                let c = verify_dual(&inst, d, 1e-7);
                prop_assert!(c.feasible, "dual infeasible: λmax = {}", c.lambda_max);
                prop_assert!(d.x.iter().all(|&v| v >= 0.0));
            }
            Outcome::Primal(p) => {
                let c = verify_primal(&inst, p, 1e-4);
                prop_assert!(c.feasible, "primal infeasible: {c:?}");
            }
        }
        // ‖x‖₁ never wildly overshoots K (Claim 3.5 direction, practical
        // constants get a slack factor from the boosted α). When the start
        // point itself exceeds K — tiny traces make x⁰ large — the solver
        // exits immediately, so the bound is relative to ‖x⁰‖₁ as well.
        let x0_norm: f64 =
            inst.mats().iter().map(|a| 1.0 / (inst.n() as f64 * a.trace())).sum();
        prop_assert!(
            res.stats.final_norm1 <= 3.0 * res.stats.k_threshold + x0_norm + 1.0,
            "final ‖x‖ = {} vs K = {}, ‖x⁰‖ = {x0_norm}",
            res.stats.final_norm1,
            res.stats.k_threshold
        );
    }

    /// The initial point always satisfies Claim 3.3.
    #[test]
    fn initial_point_feasible(inst in diag_instance()) {
        let x0: Vec<f64> =
            inst.mats().iter().map(|a| 1.0 / (inst.n() as f64 * a.trace())).collect();
        let psi0 = inst.weighted_sum(&x0);
        prop_assert!(sym_eigen(&psi0).unwrap().lambda_max() <= 1.0 + 1e-9);
    }

    /// The optimization bracket always contains the simplex-exact optimum.
    #[test]
    fn bracket_contains_exact(inst in diag_instance()) {
        let exact = match psdp_baselines::exact_diagonal_opt(&inst) {
            Ok(v) => v,
            Err(_) => return Ok(()), // unbounded LP (zero column slipped by scaling)
        };
        let r = solve_packing(&inst, &ApproxOptions::practical(0.15)).unwrap();
        prop_assert!(r.value_lower <= exact * (1.0 + 1e-7),
            "lower {} exceeds exact {exact}", r.value_lower);
        prop_assert!(r.value_upper >= exact * (1.0 - 1e-7),
            "upper {} below exact {exact}", r.value_upper);
    }

    /// weighted_sum is linear: Ψ(x + y) = Ψ(x) + Ψ(y).
    #[test]
    fn weighted_sum_linear(inst in diag_instance()) {
        let n = inst.n();
        let x: Vec<f64> = (0..n).map(|i| 0.1 + i as f64 * 0.05).collect();
        let y: Vec<f64> = (0..n).map(|i| 0.3 - i as f64 * 0.02).collect();
        let xy: Vec<f64> = x.iter().zip(&y).map(|(a, b)| a + b).collect();
        let lhs = inst.weighted_sum(&xy);
        let rhs = inst.weighted_sum(&x).add(&inst.weighted_sum(&y));
        for i in 0..inst.dim() {
            for j in 0..inst.dim() {
                prop_assert!((lhs[(i, j)] - rhs[(i, j)]).abs() < 1e-10);
            }
        }
    }

    /// Scaling the instance by σ scales the optimum by 1/σ (the bisection's
    /// core identity).
    #[test]
    fn scaling_inverts_optimum(inst in diag_instance(), sigma in 0.5_f64..3.0) {
        let exact = match psdp_baselines::exact_diagonal_opt(&inst) {
            Ok(v) => v,
            Err(_) => return Ok(()),
        };
        let scaled = inst.scaled(sigma);
        let exact_scaled = match psdp_baselines::exact_diagonal_opt(&scaled) {
            Ok(v) => v,
            Err(_) => return Ok(()),
        };
        prop_assert!((exact_scaled - exact / sigma).abs() < 1e-7 * (1.0 + exact),
            "OPT(σA) = {exact_scaled} vs OPT(A)/σ = {}", exact / sigma);
    }
}
