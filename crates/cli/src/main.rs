//! `psdp` — command-line front end for the positive SDP solver.

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match psdp_cli::commands::dispatch(&raw) {
        Ok(out) => print!("{out}"),
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(1);
        }
    }
}
