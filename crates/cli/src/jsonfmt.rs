//! Shared JSON rendering for the `--json` schemas.
//!
//! One place formats the machine-readable payloads of `solve`, `optimize`,
//! and `mixed`, so the one-shot commands and the `serve` subcommand cannot
//! drift apart — `tests/json_schema.rs` snapshots both against the same
//! golden files. Serving responses must be byte-deterministic, so the
//! `include_wall` switch lets `serve` emit `"wall_ms": null` (key present,
//! schema unchanged) while the one-shot commands keep real timings.

use psdp_core::{
    verify_dual, verify_mixed_feasible, verify_mixed_infeasible, verify_primal, DecisionResult,
    MixedInstance, MixedReport, Outcome, PackingInstance, PackingReport,
};

/// Minimal JSON string escaping (our strings are ASCII identifiers and
/// paths, but stay correct on quotes/backslashes/control bytes).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The typed `overloaded` response line `psdp serve` emits when a request
/// is shed by backpressure — a full shard queue, the adaptive p99 shed
/// policy, or a per-client in-flight cap at the socket front end
/// (`shard` is `null` for the last: the request was never routed).
/// Rendered here so the schema cannot drift from the golden under
/// `tests/fixtures/schema/serve_overloaded.json`.
pub fn overloaded_line(id: &str, shard: Option<usize>) -> String {
    let shard_json = match shard {
        Some(s) => s.to_string(),
        None => "null".to_string(),
    };
    format!(
        "{{\"id\":{},\"error\":\"overloaded\",\"overloaded\":true,\"shard\":{shard_json}}}\n",
        json_str(id)
    )
}

/// Finite floats print as-is; NaN/inf become `null` (JSON has no literals
/// for them).
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// One `SolveStats` as a JSON object (the per-bracket machine-readable
/// telemetry `--json` emits). `include_wall = false` emits
/// `"wall_ms": null` so serving responses stay byte-deterministic.
pub fn json_stats(s: &psdp_core::SolveStats, include_wall: bool) -> String {
    let wall = if include_wall { json_f64(s.wall.as_secs_f64() * 1e3) } else { "null".into() };
    format!(
        "{{\"threshold\":{},\"iterations\":{},\"engine_evals\":{},\"replayed\":{},\"warm_started\":{},\"exit\":{},\"engine\":{},\"final_norm1\":{},\"k_threshold\":{},\"kappa_max\":{},\"avg_selected\":{},\"psi_rebuilds\":{},\"psi_max_drift\":{},\"wall_ms\":{}}}",
        json_f64(s.threshold),
        s.iterations,
        s.engine_evals,
        s.replayed,
        s.warm_started,
        json_str(&format!("{:?}", s.exit)),
        json_str(s.engine),
        json_f64(s.final_norm1),
        json_f64(s.k_threshold),
        json_f64(s.kappa_max),
        json_f64(s.avg_selected),
        s.psi_rebuilds,
        json_f64(s.psi_max_drift),
        wall,
    )
}

/// Body fields of a `solve` response (no surrounding braces, no
/// `command`/`id` — the caller frames them): `"file":…,"outcome":…,
/// "certificate":…,"stats":…`.
pub fn solve_payload(
    file_json: &str,
    inst: &PackingInstance,
    res: &DecisionResult,
    include_wall: bool,
) -> String {
    let (side, cert) = match &res.outcome {
        Outcome::Dual(d) => {
            let c = verify_dual(inst, d, 1e-8);
            (
                "dual",
                format!(
                    "{{\"value\":{},\"lambda_max\":{},\"feasible\":{}}}",
                    json_f64(d.value),
                    json_f64(c.lambda_max),
                    c.feasible
                ),
            )
        }
        Outcome::Primal(p) => {
            let c = verify_primal(inst, p, 1e-5);
            (
                "primal",
                format!(
                    "{{\"min_dot\":{},\"rounds_averaged\":{},\"feasible\":{}}}",
                    json_f64(p.min_dot),
                    p.rounds_averaged,
                    c.feasible
                ),
            )
        }
    };
    format!(
        "\"file\":{},\"outcome\":{},\"certificate\":{},\"stats\":{}",
        file_json,
        json_str(side),
        cert,
        json_stats(&res.stats, include_wall),
    )
}

/// Body fields of an `optimize` response (see [`solve_payload`]).
pub fn optimize_payload(
    file_json: &str,
    inst: &PackingInstance,
    r: &PackingReport,
    include_wall: bool,
) -> String {
    let dual = match &r.best_dual {
        Some(d) => {
            let c = verify_dual(inst, d, 1e-8);
            format!("{{\"value\":{},\"feasible\":{}}}", json_f64(d.value), c.feasible)
        }
        None => "null".to_string(),
    };
    let brackets: Vec<String> = r
        .brackets
        .iter()
        .zip(&r.call_stats)
        .map(|(b, s)| {
            format!(
                "{{\"sigma\":{},\"dual_side\":{},\"lo\":{},\"hi\":{},\"stats\":{}}}",
                json_f64(b.sigma),
                b.dual_side,
                json_f64(b.lo),
                json_f64(b.hi),
                json_stats(s, include_wall),
            )
        })
        .collect();
    format!(
        "\"file\":{},\"value_lower\":{},\"value_upper\":{},\"converged\":{},\"decision_calls\":{},\"total_iterations\":{},\"engine_evals\":{},\"replayed\":{},\"best_dual\":{},\"brackets\":[{}]",
        file_json,
        json_f64(r.value_lower),
        json_f64(r.value_upper),
        r.converged,
        r.decision_calls,
        r.total_iterations,
        r.total_engine_evals,
        r.total_replayed,
        dual,
        brackets.join(","),
    )
}

/// Body fields of a `mixed` response (see [`solve_payload`]).
pub fn mixed_payload(
    file_json: &str,
    inst: &MixedInstance,
    r: &MixedReport,
    include_wall: bool,
) -> String {
    let point = match &r.best_point {
        Some(p) => {
            let c = verify_mixed_feasible(inst, p, r.threshold_lower * (1.0 - 1e-9), 1e-7);
            format!(
                "{{\"pack_lambda_max\":{},\"cover_lambda_min\":{},\"verified\":{}}}",
                json_f64(p.pack_lambda_max),
                json_f64(p.cover_lambda_min),
                c.feasible
            )
        }
        None => "null".to_string(),
    };
    let witness = match &r.infeasibility_witness {
        Some(w) => {
            let c = verify_mixed_infeasible(inst, w, 1e-7);
            format!(
                "{{\"sigma\":{},\"margin\":{},\"refuted_threshold\":{},\"matrix_checked\":{},\"verified\":{}}}",
                json_f64(w.sigma),
                json_f64(c.margin),
                json_f64(c.refuted_threshold),
                c.matrix_checked,
                c.valid
            )
        }
        None => "null".to_string(),
    };
    let brackets: Vec<String> = r
        .brackets
        .iter()
        .zip(&r.call_stats)
        .map(|(b, s)| {
            format!(
                "{{\"sigma\":{},\"feasible_side\":{},\"lo\":{},\"hi\":{},\"stats\":{}}}",
                json_f64(b.sigma),
                b.dual_side,
                json_f64(b.lo),
                json_f64(b.hi),
                json_stats(s, include_wall),
            )
        })
        .collect();
    format!(
        "\"file\":{},\"threshold_lower\":{},\"threshold_upper\":{},\"converged\":{},\"decision_calls\":{},\"total_iterations\":{},\"engine_evals\":{},\"pruned_max\":{},\"best_point\":{},\"infeasibility\":{},\"brackets\":[{}]",
        file_json,
        json_f64(r.threshold_lower),
        json_f64(r.threshold_upper),
        r.converged,
        r.decision_calls,
        r.total_iterations,
        r.total_engine_evals,
        r.pruned_max,
        point,
        witness,
        brackets.join(","),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_str_escapes() {
        assert_eq!(json_str("a\"b\\c\nd\te\u{1}"), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn json_f64_non_finite_is_null() {
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }
}
