//! Tiny dependency-free flag parser for the `psdp` binary.
//!
//! Supports `--key value` flags and bare positional arguments; unknown
//! flags are errors (typos should not be silently ignored in a numerical
//! tool).

use std::collections::BTreeMap;

/// Flags that take no value (presence = `true`). Everything else is
/// `--key value`.
const VALUELESS: &[&str] = &["json", "deny-warnings", "listen"];

/// Parsed command line: positionals in order plus `--key value` flags.
#[derive(Debug, Clone, Default)]
pub struct Args {
    positional: Vec<String>,
    flags: BTreeMap<String, String>,
}

impl Args {
    /// Parse a raw argument list (excluding the program name).
    ///
    /// # Errors
    /// Returns a message for a dangling `--flag` with no value.
    pub fn parse(raw: &[String]) -> Result<Args, String> {
        let mut out = Args::default();
        let mut it = raw.iter();
        while let Some(tok) = it.next() {
            if let Some(key) = tok.strip_prefix("--") {
                if VALUELESS.contains(&key) {
                    out.flags.insert(key.to_string(), "true".to_string());
                    continue;
                }
                let val = it.next().ok_or_else(|| format!("flag --{key} needs a value"))?;
                out.flags.insert(key.to_string(), val.clone());
            } else {
                out.positional.push(tok.clone());
            }
        }
        Ok(out)
    }

    /// Presence of a valueless flag like `--json`.
    pub fn bool_flag(&self, key: &str) -> bool {
        self.flags.contains_key(key)
    }

    /// Positional argument `i`, if present.
    pub fn pos(&self, i: usize) -> Option<&str> {
        self.positional.get(i).map(String::as_str)
    }

    /// Number of positional arguments.
    #[cfg(test)]
    pub fn pos_len(&self) -> usize {
        self.positional.len()
    }

    /// Optional string flag: `Some` only when the flag was given.
    pub fn opt_flag(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// String flag with default.
    pub fn str_flag(&self, key: &str, default: &str) -> String {
        self.flags.get(key).cloned().unwrap_or_else(|| default.to_string())
    }

    /// Typed flag with default; error message names the flag on a parse
    /// failure.
    ///
    /// # Errors
    /// Returns a message when the value does not parse as `T`.
    pub fn flag<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("flag --{key}: cannot parse `{v}`")),
        }
    }

    /// Reject flags outside the allowed set (typo guard).
    ///
    /// # Errors
    /// Returns a message naming the first unknown flag.
    pub fn ensure_known(&self, allowed: &[&str]) -> Result<(), String> {
        for k in self.flags.keys() {
            if !allowed.contains(&k.as_str()) {
                return Err(format!("unknown flag --{k} (allowed: {allowed:?})"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> Args {
        Args::parse(&v.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn positionals_and_flags() {
        let a = parse(&["solve", "file.psdp", "--eps", "0.2", "--engine", "taylor"]);
        assert_eq!(a.pos(0), Some("solve"));
        assert_eq!(a.pos(1), Some("file.psdp"));
        assert_eq!(a.pos_len(), 2);
        assert_eq!(a.flag("eps", 0.1).unwrap(), 0.2);
        assert_eq!(a.str_flag("engine", "exact"), "taylor");
        assert_eq!(a.str_flag("missing", "dflt"), "dflt");
    }

    #[test]
    fn dangling_flag_is_error() {
        let r = Args::parse(&["--eps".to_string()]);
        assert!(r.is_err());
    }

    #[test]
    fn bad_typed_value_is_error() {
        let a = parse(&["--eps", "banana"]);
        assert!(a.flag("eps", 0.1).is_err());
    }

    #[test]
    fn valueless_json_flag() {
        let a = parse(&["solve", "f.psdp", "--json", "--eps", "0.2"]);
        assert!(a.bool_flag("json"));
        assert_eq!(a.flag("eps", 0.1).unwrap(), 0.2);
        assert_eq!(a.pos(1), Some("f.psdp"));
        let a = parse(&["optimize", "f.psdp"]);
        assert!(!a.bool_flag("json"));
    }

    #[test]
    fn unknown_flag_guard() {
        let a = parse(&["--epss", "0.2"]);
        assert!(a.ensure_known(&["eps"]).is_err());
        let a = parse(&["--eps", "0.2"]);
        assert!(a.ensure_known(&["eps"]).is_ok());
    }
}
