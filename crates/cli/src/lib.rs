//! # psdp-cli
//!
//! The `psdp` command-line interface as a library: [`commands::dispatch`]
//! drives every subcommand (`generate` / `info` / `solve` / `optimize` /
//! `mixed` / `serve`), [`serve::serve_on_input`] is the testable core of
//! the JSONL serving front door, and [`jsonfmt`] renders the shared
//! `--json` schemas. The `psdp` binary in `main.rs` is a thin wrapper so
//! integration tests (JSON schema snapshots, serve determinism) can run
//! everything in-process.

#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod jsonfmt;
pub mod serve;
