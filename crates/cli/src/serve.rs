//! The `psdp serve` subcommand: a JSONL front door over the
//! `psdp-serve` scheduler.
//!
//! One JSON request per stdin line; one JSON response per stdout line, in
//! submission order, reusing the `--json` schemas of `solve` / `optimize`
//! / `mixed` with two additions: the request's `id` and a `serve` object
//! carrying deterministic reuse telemetry. Response bytes are a pure
//! function of the request stream (`wall_ms` is emitted as `null`;
//! wall-clock telemetry goes to the stderr batch report instead), which is
//! what lets `tests/determinism.rs` compare serve output bitwise across
//! thread counts and submission orders.
//!
//! Malformed lines never abort the batch: each produces an error response
//! line in place (`{"id":…,"error":…}`, with `"id":null` when the line was
//! too broken to name itself). Lines are bounded (`--max-line-bytes`,
//! default 4 MiB): an oversized line becomes a typed in-place error, never
//! unbounded `String` growth.
//!
//! Instances arrive as canonical text or as `psdp-bin-1` binary
//! (`file` paths are sniffed by magic). Under `--listen` a request may
//! also be a **binary frame**: a `0x00` marker byte (JSON never starts
//! with NUL), a `u32` LE payload length, then the payload — itself a
//! `u32` LE JSON-header length, the JSON header (same schema as a text
//! request, minus `file`/`instance`), and the instance as `psdp-bin-1`
//! bytes. Frames over `--max-line-bytes` are consumed to their declared
//! length and dropped (typed in-place error, stream resyncs at the next
//! request); a repeated frame body skips decoding entirely via a raw-byte
//! fingerprint cache, and the serve-cache fingerprint comes from the
//! binary header's content hash — byte-identical responses to the
//! equivalent text submission.
//!
//! `--listen` switches from the one-shot batch scheduler to the
//! persistent streaming service ([`psdp_serve::service`]): requests are
//! dispatched to shard workers as lines arrive and responses stream out
//! in submission order; a full shard queue answers with a typed
//! `overloaded` error line. `--snapshot <path>` warm-loads the prepared
//! cache at startup (corrupted snapshot → clean cold start) and saves it
//! back on shutdown.

use crate::args::Args;
use crate::commands::{format_of, Format};
use crate::jsonfmt::{json_str, mixed_payload, optimize_payload, solve_payload};
use psdp_core::{
    fnv1a, is_binary_instance, mixed_content_hash, packing_content_hash, read_instance,
    read_instance_bin, read_mixed_instance, read_mixed_instance_bin, ApproxOptions, ConstantsMode,
    DecisionOptions, MixedApproxOptions, MixedInstance, PackingInstance,
};
use psdp_serve::json::{parse, JsonValue};
use psdp_serve::{
    BatchReport, FairMux, Scheduler, SchedulerOptions, ServeRequest, ServeResponse, ServeResult,
    ServeStats, Service, ServiceOptions, ServiceReport, StreamItem, StreamOutcome,
};
use std::collections::{BTreeMap, BTreeSet};
use std::io::{BufRead, Write};
use std::sync::Arc;

/// Default per-line byte bound for the JSONL readers.
const DEFAULT_MAX_LINE_BYTES: usize = 4 * 1024 * 1024;

/// First byte of a binary frame. JSON text never starts with NUL, so one
/// peeked byte disambiguates frames from JSONL lines.
const FRAME_MARKER: u8 = 0x00;

/// Parsed-instance cache: source key → (instance, parse-once content
/// hash). Carrying the hash means repeat sources never re-read, re-parse,
/// or re-hash, and requests are built with their fingerprint attached.
type PackSources = BTreeMap<String, (Arc<PackingInstance>, u64)>;
/// Mixed-family counterpart of [`PackSources`].
type MixedSources = BTreeMap<String, (Arc<MixedInstance>, u64)>;

/// Outcome of one `psdp serve` run: the stdout JSONL stream and the human
/// batch report for stderr.
pub struct ServeRun {
    /// One JSON response line per request, submission order.
    pub stdout: String,
    /// Human-readable batch report.
    pub summary: String,
}

/// What a successfully parsed line contributes: the request plus the
/// rendering context its response needs.
struct ParsedLine {
    request: ServeRequest,
    /// `"path"` (JSON-escaped) or `null` for inline instances.
    file_json: String,
}

/// Per-line parse state: a scheduled request (by index into the batch) or
/// an immediate error line.
enum Line {
    Request(usize),
    Error { id: Option<String>, msg: String },
}

/// `psdp serve` — read JSONL requests from stdin, print the batch report
/// to stderr, and return the response stream for stdout.
///
/// # Errors
/// Flag errors and stdin read failures as printable messages (per-request
/// failures become response lines instead).
pub fn serve(args: &Args) -> Result<String, String> {
    if args.bool_flag("listen") {
        if let Some(spec) = args.opt_flag("bind") {
            let addr = psdp_serve::BindAddr::parse(spec)?;
            let listener = psdp_serve::Listener::bind(&addr)?;
            // Report the bound address before serving: a `tcp:…:0`
            // caller learns the OS-assigned port from this line.
            eprintln!("listening on {}", listener.local_addr_string());
            let summary = serve_listen_socket_on(args, listener)?;
            eprint!("{summary}");
            return Ok(String::new());
        }
        let stdin = std::io::stdin();
        let mut stdout = std::io::stdout();
        let summary = serve_listen_on(args, &mut stdin.lock(), &mut stdout)?;
        eprint!("{summary}");
        // Responses were streamed to stdout as they were sequenced;
        // nothing is left to print at exit.
        return Ok(String::new());
    }
    let mut input = String::new();
    std::io::Read::read_to_string(&mut std::io::stdin(), &mut input)
        .map_err(|e| format!("reading stdin: {e}"))?;
    let run = serve_on_input(args, &input)?;
    eprint!("{}", run.summary);
    Ok(run.stdout)
}

/// The testable core of [`serve`]: everything except stdin/stderr wiring.
///
/// # Errors
/// Flag errors as printable messages.
pub fn serve_on_input(args: &Args, input: &str) -> Result<ServeRun, String> {
    args.ensure_known(&["max-in-flight", "cache", "max-line-bytes", "format"])?;
    let max_in_flight: usize = args.flag("max-in-flight", 0)?;
    let max_line_bytes: usize = args.flag("max-line-bytes", DEFAULT_MAX_LINE_BYTES)?;
    let fmt = format_of(&args.str_flag("format", "auto"))?;
    let cache_enabled = match args.str_flag("cache", "on").as_str() {
        "on" => true,
        "off" => false,
        other => return Err(format!("unknown --cache value `{other}` (on|off)")),
    };

    let mut pack_sources: PackSources = BTreeMap::new();
    let mut mixed_sources: MixedSources = BTreeMap::new();
    let mut seen_ids: BTreeSet<String> = BTreeSet::new();
    let mut lines: Vec<Line> = Vec::new();
    let mut parsed: Vec<ParsedLine> = Vec::new();

    for raw in input.lines() {
        if raw.trim().is_empty() {
            continue;
        }
        if raw.len() > max_line_bytes {
            // Best-effort correlate the error: scan the bounded prefix —
            // the same bytes the streaming reader would have retained —
            // for a leading id before discarding the line.
            let prefix = raw.as_bytes().get(..max_line_bytes).unwrap_or(raw.as_bytes());
            lines.push(Line::Error {
                id: scan_leading_id(prefix),
                msg: oversized_line_msg(raw.len(), max_line_bytes),
            });
            continue;
        }
        match parse_request_line(raw, fmt, &mut pack_sources, &mut mixed_sources) {
            Ok(p) => {
                if !seen_ids.insert(p.request.id.clone()) {
                    lines.push(Line::Error {
                        id: Some(p.request.id.clone()),
                        msg: format!("duplicate request id `{}`", p.request.id),
                    });
                } else {
                    lines.push(Line::Request(parsed.len()));
                    parsed.push(p);
                }
            }
            Err((id, msg)) => lines.push(Line::Error { id, msg }),
        }
    }

    let requests: Vec<ServeRequest> = parsed.iter().map(|p| p.request.clone()).collect();
    let mut scheduler = Scheduler::new(SchedulerOptions {
        max_in_flight,
        cache_enabled,
        ..SchedulerOptions::default()
    });
    let output = scheduler.run_batch(&requests).map_err(|e| e.to_string())?;

    let mut stdout = String::new();
    for line in &lines {
        match line {
            Line::Error { id, msg } => {
                let id_json = match id {
                    Some(s) => json_str(s),
                    None => "null".to_string(),
                };
                stdout.push_str(&format!("{{\"id\":{id_json},\"error\":{}}}\n", json_str(msg)));
            }
            Line::Request(i) => match (parsed.get(*i), output.responses.get(*i)) {
                (Some(p), Some(resp)) => stdout.push_str(&render_response(p, resp)),
                // Indices are constructed in lockstep with the batch; if
                // that invariant ever breaks, emit an error line in place
                // rather than panicking mid-stream.
                _ => stdout.push_str(
                    "{\"id\":null,\"error\":\"response missing for request (internal)\"}\n",
                ),
            },
        }
    }
    Ok(ServeRun { stdout, summary: summarize(&output.report) })
}

/// Caller context carried through the streaming service pipeline for each
/// admitted line: what the sequenced outcome needs to render itself.
enum LineCtx {
    /// A parsed request (rendering needs its payload and `file` field).
    Request(ParsedLine),
    /// An admission-stage error; the id (already JSON-rendered) keys the
    /// error line.
    Error { id_json: String },
}

/// One item from the bounded request reader: a JSONL line or a
/// `0x00`-marked binary frame.
enum BoundedLine {
    /// End of the stream.
    Eof,
    /// A complete line within the byte bound (without its newline).
    Line(String),
    /// A line over the bound: its bytes were discarded as they streamed
    /// past (never accumulated beyond the bound), `bytes` is how long it
    /// was, and `id` is the best-effort leading `"id"` scanned from the
    /// retained prefix so the error line stays correlatable.
    Oversized { bytes: usize, id: Option<String> },
    /// A complete binary frame payload within the byte bound.
    Frame(Vec<u8>),
    /// A frame whose declared length exceeds the bound: exactly that many
    /// bytes were consumed and dropped (never buffered), resyncing the
    /// stream at the next request. `bytes` is the declared length.
    OversizedFrame { bytes: usize },
    /// A frame cut off by EOF before its declared length arrived. The
    /// partial payload is dropped, never handed to a parser.
    TruncatedFrame,
}

/// Read one request item. A leading [`FRAME_MARKER`] byte switches to the
/// length-prefixed binary frame path; otherwise this reads one
/// newline-terminated line, never buffering more than `max_bytes` of it —
/// once a line exceeds the bound, the remainder is consumed and dropped
/// chunk-by-chunk until the newline resyncs the stream.
fn read_bounded_line(r: &mut impl BufRead, max_bytes: usize) -> Result<BoundedLine, String> {
    let head = r.fill_buf().map_err(|e| format!("reading request stream: {e}"))?;
    if head.is_empty() {
        return Ok(BoundedLine::Eof);
    }
    if head.first() == Some(&FRAME_MARKER) {
        r.consume(1);
        return read_frame(r, max_bytes);
    }
    let mut buf: Vec<u8> = Vec::new();
    let mut dropped = false;
    let mut oversize_id: Option<String> = None;
    let mut total = 0usize;
    let mut saw_any = false;
    loop {
        let chunk = r.fill_buf().map_err(|e| format!("reading request stream: {e}"))?;
        if chunk.is_empty() {
            if !saw_any {
                return Ok(BoundedLine::Eof);
            }
            break;
        }
        saw_any = true;
        if let Some(pos) = chunk.iter().position(|&b| b == b'\n') {
            total += pos;
            if !dropped && total > max_bytes {
                dropped = true;
                // Scan the bounded prefix for a leading id before
                // discarding, so the oversize error stays correlatable.
                let room = max_bytes.saturating_sub(buf.len()).min(pos);
                buf.extend_from_slice(chunk.get(..room).unwrap_or(&[]));
                oversize_id = scan_leading_id(&buf);
                buf.clear();
            }
            if !dropped {
                buf.extend_from_slice(chunk.get(..pos).unwrap_or(&[]));
            }
            r.consume(pos + 1);
            break;
        }
        let len = chunk.len();
        total += len;
        if !dropped && total > max_bytes {
            dropped = true;
            let room = max_bytes.saturating_sub(buf.len()).min(len);
            buf.extend_from_slice(chunk.get(..room).unwrap_or(&[]));
            oversize_id = scan_leading_id(&buf);
            buf.clear();
        }
        if !dropped {
            buf.extend_from_slice(chunk);
        }
        r.consume(len);
    }
    if dropped {
        return Ok(BoundedLine::Oversized { bytes: total, id: oversize_id });
    }
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    // Invalid UTF-8 flows on as a (lossy) line so the JSON parser can
    // reject it with a typed in-place error instead of aborting the loop.
    Ok(BoundedLine::Line(String::from_utf8_lossy(&buf).into_owned()))
}

/// Read one binary frame body (the marker byte is already consumed): a
/// `u32` LE payload length, then the payload. A declared length over
/// `max_bytes` is discarded in place — exactly that many bytes are
/// consumed without ever being buffered — so the stream resyncs on the
/// next request instead of handing a partial buffer to a parser.
fn read_frame(r: &mut impl BufRead, max_bytes: usize) -> Result<BoundedLine, String> {
    let mut len_bytes = [0u8; 4];
    if !read_exact_or_eof(r, &mut len_bytes)? {
        return Ok(BoundedLine::TruncatedFrame);
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > max_bytes {
        discard_exact(r, len)?;
        return Ok(BoundedLine::OversizedFrame { bytes: len });
    }
    // Bounded by `max_bytes`: the declared length was just checked.
    let mut payload = vec![0u8; len];
    if !read_exact_or_eof(r, &mut payload)? {
        return Ok(BoundedLine::TruncatedFrame);
    }
    Ok(BoundedLine::Frame(payload))
}

/// `read_exact` with a clean EOF reported as `Ok(false)` and real IO
/// failures as typed errors.
fn read_exact_or_eof(r: &mut impl BufRead, buf: &mut [u8]) -> Result<bool, String> {
    match std::io::Read::read_exact(r, buf) {
        Ok(()) => Ok(true),
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => Ok(false),
        Err(e) => Err(format!("reading request stream: {e}")),
    }
}

/// Consume and drop exactly `n` bytes (or until EOF) without buffering.
fn discard_exact(r: &mut impl BufRead, n: usize) -> Result<(), String> {
    let mut left = n;
    while left > 0 {
        let chunk = r.fill_buf().map_err(|e| format!("reading request stream: {e}"))?;
        if chunk.is_empty() {
            return Ok(());
        }
        let take = chunk.len().min(left);
        r.consume(take);
        left -= take;
    }
    Ok(())
}

/// `psdp serve --listen` — the persistent streaming service over an
/// arbitrary reader/writer pair (stdin/stdout in production, buffers in
/// tests). Responses stream to `writer` in submission order as the
/// sequencer emits them; the returned string is the stderr summary.
///
/// # Errors
/// Flag errors, stream read failures, and response write failures as
/// printable messages. Per-request failures become response lines;
/// snapshot load/save problems degrade to notes in the summary (a
/// corrupted snapshot means a cold start, never a refusal to serve).
pub fn serve_listen_on(
    args: &Args,
    reader: &mut impl BufRead,
    writer: &mut (impl Write + Send),
) -> Result<String, String> {
    let cfg = listen_config(args)?;
    let mut service = cfg.service();
    let mut notes = cfg.load_snapshot_notes(&mut service);
    let max_line_bytes = cfg.max_line_bytes;
    let fmt = cfg.fmt;

    let mut pack_sources: PackSources = BTreeMap::new();
    let mut mixed_sources: MixedSources = BTreeMap::new();
    let mut seen_ids: BTreeSet<String> = BTreeSet::new();
    let mut read_err: Option<String> = None;

    let items = std::iter::from_fn(|| loop {
        match read_bounded_line(reader, max_line_bytes) {
            Err(e) => {
                read_err = Some(e);
                return None;
            }
            Ok(BoundedLine::Eof) => return None,
            Ok(BoundedLine::Oversized { bytes, id }) => {
                return Some(reject_item(id, oversized_line_msg(bytes, max_line_bytes)));
            }
            Ok(BoundedLine::OversizedFrame { bytes }) => {
                return Some(reject_item(None, oversized_frame_msg(bytes, max_line_bytes)));
            }
            Ok(BoundedLine::TruncatedFrame) => {
                return Some(reject_item(
                    None,
                    "truncated binary frame (stream ended before the declared length)".to_string(),
                ));
            }
            Ok(BoundedLine::Frame(bytes)) => {
                return Some(
                    match parse_frame_request(&bytes, &mut pack_sources, &mut mixed_sources) {
                        Ok(p) => admit_item(p, &mut seen_ids),
                        Err((id, msg)) => reject_item(id, msg),
                    },
                );
            }
            Ok(BoundedLine::Line(raw)) => {
                if raw.trim().is_empty() {
                    continue;
                }
                return Some(
                    match parse_request_line(&raw, fmt, &mut pack_sources, &mut mixed_sources) {
                        Ok(p) => admit_item(p, &mut seen_ids),
                        Err((id, msg)) => reject_item(id, msg),
                    },
                );
            }
        }
    });

    let mut write_err: Option<std::io::Error> = None;
    let report = service.run_stream(items, |ctx, outcome| {
        if write_err.is_some() {
            return;
        }
        let line = render_outcome(&ctx, &outcome);
        // Flush per line: a streaming client must see each response as it
        // is sequenced, not when a block buffer happens to fill.
        if let Err(e) = writer.write_all(line.as_bytes()).and_then(|()| writer.flush()) {
            write_err = Some(e);
        }
    });

    if let Some(e) = read_err {
        return Err(e);
    }
    if let Some(e) = write_err {
        return Err(format!("writing response stream: {e}"));
    }
    notes.push_str(&cfg.save_snapshot_notes(&service));
    Ok(format!("{notes}{}", summarize_service(&report)))
}

/// The `--listen` flag set, shared by the stdin and socket front ends.
struct ListenConfig {
    shards: usize,
    queue_cap: usize,
    max_line_bytes: usize,
    fmt: Format,
    cache_enabled: bool,
    snapshot_path: Option<String>,
    snapshot_keep: usize,
    shed_target_p99: Option<std::time::Duration>,
    /// Per-client in-flight response cap (socket mode only): a client
    /// with this many unwritten responses has further requests answered
    /// with the typed `overloaded` line instead of buffering.
    client_inflight: usize,
    /// Stop accepting after this many connections (socket mode only;
    /// `0` = accept forever). Lets tests and CI drive a bounded session.
    max_clients: u64,
}

/// Parse the shared `--listen` flags. Socket-only flags (`--bind`,
/// `--max-clients`, `--client-inflight`) are accepted here too — the
/// dispatcher routes `--bind` before either front end parses.
fn listen_config(args: &Args) -> Result<ListenConfig, String> {
    args.ensure_known(&[
        "listen",
        "cache",
        "shards",
        "queue-cap",
        "snapshot",
        "snapshot-keep",
        "max-line-bytes",
        "format",
        "shed-target-p99-ms",
        "bind",
        "max-clients",
        "client-inflight",
    ])?;
    let shed_ms: f64 = args.flag("shed-target-p99-ms", 0.0)?;
    if shed_ms < 0.0 || !shed_ms.is_finite() {
        return Err(format!(
            "--shed-target-p99-ms must be a finite non-negative number, got {shed_ms}"
        ));
    }
    Ok(ListenConfig {
        shards: args.flag("shards", 4)?,
        queue_cap: args.flag("queue-cap", 1024)?,
        max_line_bytes: args.flag("max-line-bytes", DEFAULT_MAX_LINE_BYTES)?,
        fmt: format_of(&args.str_flag("format", "auto"))?,
        cache_enabled: match args.str_flag("cache", "on").as_str() {
            "on" => true,
            "off" => false,
            other => return Err(format!("unknown --cache value `{other}` (on|off)")),
        },
        snapshot_path: args.opt_flag("snapshot").map(str::to_string),
        snapshot_keep: args.flag::<usize>("snapshot-keep", 1)?.max(1),
        shed_target_p99: (shed_ms > 0.0).then(|| std::time::Duration::from_secs_f64(shed_ms / 1e3)),
        client_inflight: args.flag::<usize>("client-inflight", 256)?.max(1),
        max_clients: args.flag("max-clients", 0)?,
    })
}

impl ListenConfig {
    fn service(&self) -> Service {
        Service::new(ServiceOptions {
            shards: self.shards,
            queue_capacity: self.queue_cap,
            cache_enabled: self.cache_enabled,
            shed_target_p99: self.shed_target_p99,
            ..ServiceOptions::default()
        })
    }

    /// Warm-load the newest verifiable snapshot generation: the live
    /// path first, then rotated generations (`<path>.1`, …) so a torn or
    /// corrupted live file degrades to the previous generation instead
    /// of a silent cold start.
    fn load_snapshot_notes(&self, service: &mut Service) -> String {
        let Some(path) = &self.snapshot_path else {
            return String::new();
        };
        let mut first_load_err: Option<String> = None;
        let mut any_readable = false;
        for gen_path in psdp_serve::snapshot::generation_paths(path, self.snapshot_keep) {
            let Ok(text) = std::fs::read_to_string(&gen_path) else { continue };
            any_readable = true;
            match service.load_snapshot(&text) {
                Ok(n) => {
                    return format!("snapshot: warm-loaded {n} fingerprints from {gen_path}\n");
                }
                Err(e) => {
                    if first_load_err.is_none() {
                        first_load_err = Some(e.to_string());
                    }
                }
            }
        }
        match (any_readable, first_load_err) {
            (true, Some(e)) => format!("snapshot: {e}; starting cold\n"),
            _ => format!("snapshot: {path} not readable; starting cold\n"),
        }
    }

    /// Save the cache atomically (tmp + rename), rotating up to
    /// `--snapshot-keep` generations.
    fn save_snapshot_notes(&self, service: &Service) -> String {
        let Some(path) = &self.snapshot_path else {
            return String::new();
        };
        if !self.cache_enabled {
            return String::new();
        }
        match psdp_serve::snapshot::save_to_path(
            path,
            &service.snapshot_string(),
            self.snapshot_keep,
        ) {
            Ok(()) => format!(
                "snapshot: saved {} fingerprints to {path}\n",
                service.cached_fingerprints()
            ),
            Err(e) => format!("snapshot: save to {path} failed: {e}\n"),
        }
    }
}

/// The testable core of `--listen`: run the streaming service over an
/// input string and capture the response stream.
///
/// # Errors
/// Same contract as [`serve_listen_on`].
pub fn serve_listen_on_input(args: &Args, input: &str) -> Result<ServeRun, String> {
    let mut reader = input.as_bytes();
    let mut out: Vec<u8> = Vec::new();
    let summary = serve_listen_on(args, &mut reader, &mut out)?;
    Ok(ServeRun { stdout: String::from_utf8_lossy(&out).into_owned(), summary })
}

/// Per-connection state the socket front end shares between the reader
/// thread, the admission loop, and the writer thread: the rendered-line
/// channel to the writer and the in-flight response counter the
/// per-client fairness cap reads.
struct ClientState {
    tx: std::sync::mpsc::Sender<String>,
    /// Shared with the writer thread directly (not through
    /// [`ClientState`]): the writer must never hold its own channel's
    /// `Sender`, or `recv` could not disconnect and the thread would
    /// never exit.
    inflight: Arc<std::sync::atomic::AtomicUsize>,
}

/// Caller context through the service pipeline in socket mode: the
/// rendering context plus the originating client.
type SocketCtx = (LineCtx, Arc<ClientState>);

/// `psdp serve --listen --bind …` over an already-bound [`psdp_serve::Listener`]:
/// one accept loop, a reader thread and a writer thread per connection,
/// all multiplexed into the one sharded [`psdp_serve::Service`] through a
/// round-robin [`psdp_serve::FairMux`]. Each client's responses stream back over its
/// own connection in that client's submission order — bitwise identical
/// to a stdin run of the same bytes (DESIGN.md §15,
/// `tests/determinism.rs`).
///
/// # Errors
/// Flag errors as printable messages. Connection-level failures (a
/// client hanging up mid-request, a dead reader) close that client only
/// and are noted in the returned summary, never an error.
pub fn serve_listen_socket_on(
    args: &Args,
    listener: psdp_serve::Listener,
) -> Result<String, String> {
    use std::sync::atomic::{AtomicUsize, Ordering};

    let cfg = listen_config(args)?;
    let mut service = cfg.service();
    let mut notes = cfg.load_snapshot_notes(&mut service);
    let mux: FairMux<StreamItem<SocketCtx>> = FairMux::new(cfg.queue_cap.max(1));

    // Accept loop: registers each connection with the mux and spawns its
    // reader/writer pair. Owns the per-connection join handles, returned
    // on join so shutdown can wait for every thread.
    let accept = {
        let mux = mux.clone();
        let (fmt, max_line_bytes, max_clients) = (cfg.fmt, cfg.max_line_bytes, cfg.max_clients);
        std::thread::spawn(move || -> (String, Vec<std::thread::JoinHandle<()>>) {
            let mut handles = Vec::new();
            let mut accept_notes = String::new();
            let mut accepted: u64 = 0;
            while max_clients == 0 || accepted < max_clients {
                let conn = match listener.accept() {
                    Ok(c) => c,
                    Err(e) => {
                        accept_notes.push_str(&format!("accept failed: {e}\n"));
                        break;
                    }
                };
                let client_id = accepted;
                accepted += 1;
                mux.register(client_id);
                let (tx, rx) = std::sync::mpsc::channel::<String>();
                let inflight = Arc::new(AtomicUsize::new(0));
                let client = Arc::new(ClientState { tx, inflight: Arc::clone(&inflight) });
                let mut w = conn.writer;
                handles.push(std::thread::spawn(move || {
                    client_writer(&rx, &mut w, &inflight);
                }));
                let reader_mux = mux.clone();
                handles.push(std::thread::spawn(move || {
                    client_reader(
                        conn.reader,
                        client_id,
                        &reader_mux,
                        &client,
                        fmt,
                        max_line_bytes,
                    );
                }));
            }
            mux.finish_accepting();
            (accept_notes, handles)
        })
    };

    // Admission: drain the fair mux on this thread. Every drained item
    // is counted against its client's in-flight cap; an Execute over the
    // cap becomes a caller shed, which the sequencer answers with the
    // typed `overloaded` line in submission order.
    let cap = cfg.client_inflight;
    let items = std::iter::from_fn(|| {
        mux.next().map(|item| {
            let client = match &item {
                StreamItem::Execute { ctx: (_, c), .. }
                | StreamItem::Reject { ctx: (_, c), .. }
                | StreamItem::Shed { ctx: (_, c), .. } => Arc::clone(c),
            };
            let inflight = client.inflight.fetch_add(1, Ordering::SeqCst).saturating_add(1);
            match item {
                StreamItem::Execute { request, ctx } if inflight > cap => {
                    StreamItem::Shed { id: request.id.clone(), ctx }
                }
                other => other,
            }
        })
    });
    let report = service.run_stream(items, |(ctx, client): SocketCtx, outcome| {
        // Hand the rendered line to the client's writer thread; a closed
        // channel means the writer is gone (client teardown), and the
        // response is dropped with it.
        let _ = client.tx.send(render_outcome(&ctx, &outcome));
    });

    // run_stream returned, so the mux reported end-of-stream: accepting
    // finished and every connection closed. Collect the threads.
    let (accept_notes, conn_handles) = accept
        .join()
        .unwrap_or_else(|_| ("accept thread panicked (internal)\n".to_string(), Vec::new()));
    mux.shutdown();
    for h in conn_handles {
        let _ = h.join();
    }
    notes.push_str(&accept_notes);
    notes.push_str(&cfg.save_snapshot_notes(&service));
    Ok(format!("{notes}{}", summarize_service(&report)))
}

/// Per-connection reader: parse this connection's byte stream with its
/// own source/duplicate-id state — exactly the state a stdin run of the
/// same bytes would hold, which is what keeps per-client responses
/// bitwise identical to stdin serving — and push items into the fair
/// mux. EOF or a read error closes the client (its queued items still
/// drain).
fn client_reader(
    reader: Box<dyn std::io::Read + Send>,
    client_id: u64,
    mux: &FairMux<StreamItem<SocketCtx>>,
    client: &Arc<ClientState>,
    fmt: Format,
    max_line_bytes: usize,
) {
    let mut r = std::io::BufReader::new(reader);
    let mut pack_sources: PackSources = BTreeMap::new();
    let mut mixed_sources: MixedSources = BTreeMap::new();
    let mut seen_ids: BTreeSet<String> = BTreeSet::new();
    loop {
        let item = match read_bounded_line(&mut r, max_line_bytes) {
            Err(_) | Ok(BoundedLine::Eof) => break,
            Ok(BoundedLine::Oversized { bytes, id }) => {
                reject_item(id, oversized_line_msg(bytes, max_line_bytes))
            }
            Ok(BoundedLine::OversizedFrame { bytes }) => {
                reject_item(None, oversized_frame_msg(bytes, max_line_bytes))
            }
            Ok(BoundedLine::TruncatedFrame) => reject_item(
                None,
                "truncated binary frame (stream ended before the declared length)".to_string(),
            ),
            Ok(BoundedLine::Frame(bytes)) => {
                match parse_frame_request(&bytes, &mut pack_sources, &mut mixed_sources) {
                    Ok(p) => admit_item(p, &mut seen_ids),
                    Err((id, msg)) => reject_item(id, msg),
                }
            }
            Ok(BoundedLine::Line(raw)) => {
                if raw.trim().is_empty() {
                    continue;
                }
                match parse_request_line(&raw, fmt, &mut pack_sources, &mut mixed_sources) {
                    Ok(p) => admit_item(p, &mut seen_ids),
                    Err((id, msg)) => reject_item(id, msg),
                }
            }
        };
        if !mux.push(client_id, attach_client(item, client)) {
            break;
        }
    }
    mux.close_client(client_id);
}

/// Wrap a parsed stream item's context with its originating client.
fn attach_client(item: StreamItem<LineCtx>, client: &Arc<ClientState>) -> StreamItem<SocketCtx> {
    match item {
        StreamItem::Execute { request, ctx } => {
            StreamItem::Execute { request, ctx: (ctx, Arc::clone(client)) }
        }
        StreamItem::Reject { error, ctx } => {
            StreamItem::Reject { error, ctx: (ctx, Arc::clone(client)) }
        }
        StreamItem::Shed { id, ctx } => StreamItem::Shed { id, ctx: (ctx, Arc::clone(client)) },
    }
}

/// Per-connection writer: write each sequenced line and flush, then
/// release the client's in-flight slot. A write failure marks the client
/// dead but keeps draining — the counter and channel must never wedge
/// the sequencer on a hung-up client.
fn client_writer(
    rx: &std::sync::mpsc::Receiver<String>,
    w: &mut Box<dyn Write + Send>,
    inflight: &std::sync::atomic::AtomicUsize,
) {
    let mut dead = false;
    while let Ok(line) = rx.recv() {
        if !dead && w.write_all(line.as_bytes()).and_then(|()| w.flush()).is_err() {
            dead = true;
        }
        inflight.fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
    }
}

/// Render one sequenced stream outcome as its JSONL line.
fn render_outcome(ctx: &LineCtx, outcome: &StreamOutcome) -> String {
    match outcome {
        StreamOutcome::Rejected { error } => {
            let id_json = match ctx {
                LineCtx::Error { id_json } => id_json.as_str(),
                LineCtx::Request(_) => "null",
            };
            format!("{{\"id\":{id_json},\"error\":{}}}\n", json_str(error))
        }
        StreamOutcome::Overloaded { id, shard } => crate::jsonfmt::overloaded_line(id, *shard),
        StreamOutcome::Response(resp) => match ctx {
            LineCtx::Request(p) => render_response(p, resp),
            LineCtx::Error { id_json } => {
                internal_error_line(id_json, "response without request context")
            }
        },
    }
}

fn summarize_service(r: &ServiceReport) -> String {
    let ms = |d: std::time::Duration| format!("{:.2}", d.as_secs_f64() * 1e3);
    let secs = r.wall.as_secs_f64();
    let rps = if secs > 0.0 { r.executed as f64 / secs } else { 0.0 };
    format!(
        "listen: {} requests ({} executed, {} rejected, {} overloaded), {} errors\n\
         reuse: {} prep builds, {} prep reuses, {} memo hits, {} bracket injections\n\
         work:  {} engine evals, {} replayed rounds\n\
         time:  wall {} ms ({rps:.0} req/s), latency service {}; queue {}\n\
         queues: high-water {:?}\n",
        r.requests,
        r.executed,
        r.rejected,
        r.overloaded,
        r.errors,
        r.prep_builds,
        r.tiers.prep_reuses,
        r.tiers.memo_hits,
        r.tiers.bracket_injections,
        r.engine_evals,
        r.replayed,
        ms(r.wall),
        r.service_hist.stats().render_ms(),
        r.queue_hist.stats().render_ms(),
        r.queue_high_water,
    )
}

/// Typed message for a line over the `--max-line-bytes` bound.
fn oversized_line_msg(len: usize, max: usize) -> String {
    format!("line exceeds --max-line-bytes ({len} > {max} bytes)")
}

/// Best-effort scan of a (possibly truncated) request-line prefix for a
/// leading `"id"` string field, so even a discarded oversized line gets
/// an error its client can correlate. Returns `None` — the error renders
/// `"id":null` — unless a complete `"id":"…"` value lies inside the
/// prefix; an id cut off by the truncation point or using exotic escapes
/// falls back rather than guessing.
fn scan_leading_id(prefix: &[u8]) -> Option<String> {
    let at = prefix.windows(4).position(|w| w == b"\"id\"")?;
    let mut i = at + 4;
    while prefix.get(i).is_some_and(u8::is_ascii_whitespace) {
        i += 1;
    }
    if prefix.get(i) != Some(&b':') {
        return None;
    }
    i += 1;
    while prefix.get(i).is_some_and(u8::is_ascii_whitespace) {
        i += 1;
    }
    if prefix.get(i) != Some(&b'"') {
        return None;
    }
    i += 1;
    let mut bytes: Vec<u8> = Vec::new();
    loop {
        match prefix.get(i)? {
            b'"' => return String::from_utf8(bytes).ok(),
            b'\\' => {
                i += 1;
                match prefix.get(i)? {
                    b'"' => bytes.push(b'"'),
                    b'\\' => bytes.push(b'\\'),
                    b'/' => bytes.push(b'/'),
                    b'n' => bytes.push(b'\n'),
                    b't' => bytes.push(b'\t'),
                    _ => return None,
                }
            }
            &b => bytes.push(b),
        }
        i += 1;
    }
}

/// Typed message for a binary frame whose declared length is over the
/// `--max-line-bytes` bound (the payload was consumed and dropped).
fn oversized_frame_msg(len: usize, max: usize) -> String {
    format!("binary frame exceeds --max-line-bytes ({len} > {max} bytes); payload discarded")
}

/// Admit one parsed request into the stream (duplicate ids become typed
/// rejects, same as the one-shot path).
fn admit_item(p: ParsedLine, seen_ids: &mut BTreeSet<String>) -> StreamItem<LineCtx> {
    if !seen_ids.insert(p.request.id.clone()) {
        return StreamItem::Reject {
            error: format!("duplicate request id `{}`", p.request.id),
            ctx: LineCtx::Error { id_json: json_str(&p.request.id) },
        };
    }
    let request = p.request.clone();
    StreamItem::Execute { request, ctx: LineCtx::Request(p) }
}

/// An admission-stage reject keyed by the best-effort request id.
fn reject_item(id: Option<String>, msg: String) -> StreamItem<LineCtx> {
    let id_json = match id {
        Some(s) => json_str(&s),
        None => "null".to_string(),
    };
    StreamItem::Reject { error: msg, ctx: LineCtx::Error { id_json } }
}

fn summarize(r: &BatchReport) -> String {
    let ms = |d: std::time::Duration| format!("{:.2}", d.as_secs_f64() * 1e3);
    format!(
        "serve: {} requests in {} groups, {} errors\n\
         reuse: {} prep builds, {} prep reuses, {} memo hits, {} bracket injections\n\
         work:  {} engine evals, {} replayed rounds\n\
         time:  wall {} ms, queue wait total {} ms (max {} ms), service total {} ms\n\
         latency: service {}; queue {}\n",
        r.requests,
        r.groups,
        r.errors,
        r.prep_builds,
        r.tiers.prep_reuses,
        r.tiers.memo_hits,
        r.tiers.bracket_injections,
        r.engine_evals,
        r.replayed,
        ms(r.wall),
        ms(r.total_queue_wait),
        ms(r.max_queue_wait),
        ms(r.total_service),
        r.service_hist.stats().render_ms(),
        r.queue_hist.stats().render_ms(),
    )
}

fn serve_stats_json(s: &ServeStats) -> String {
    let tier = match s.hit_tier() {
        Some(t) => json_str(t),
        None => "null".to_string(),
    };
    format!(
        "{{\"prep_reused\":{},\"memoized\":{},\"bracket_injected\":{},\"tier\":{tier},\"engine_evals\":{},\"replayed\":{}}}",
        s.prep_reused, s.memoized, s.bracket_injected, s.engine_evals, s.replayed,
    )
}

/// In-place error line for invariant breaches while rendering: the stream
/// keeps flowing, the line says what went wrong.
fn internal_error_line(id_json: &str, msg: &str) -> String {
    format!("{{\"id\":{id_json},\"error\":{}}}\n", json_str(&format!("{msg} (internal)")))
}

/// Render one response line (reusing the one-shot `--json` schemas; see
/// the module docs for the determinism contract). Family mismatches
/// between result and payload cannot happen by construction, but render as
/// in-place error lines rather than panics if they ever do.
fn render_response(p: &ParsedLine, resp: &ServeResponse) -> String {
    let id_json = json_str(&resp.id);
    match &resp.result {
        Err(msg) => format!("{{\"id\":{id_json},\"error\":{}}}\n", json_str(msg)),
        Ok(ServeResult::Decision(d)) => {
            let psdp_serve::InstancePayload::Packing(inst) = &p.request.payload else {
                return internal_error_line(&id_json, "decision result with mixed payload");
            };
            format!(
                "{{\"id\":{id_json},\"command\":\"solve\",{},\"serve\":{}}}\n",
                solve_payload(&p.file_json, inst, d, false),
                serve_stats_json(&resp.stats),
            )
        }
        Ok(ServeResult::Optimize(r)) => {
            let psdp_serve::InstancePayload::Packing(inst) = &p.request.payload else {
                return internal_error_line(&id_json, "optimize result with mixed payload");
            };
            format!(
                "{{\"id\":{id_json},\"command\":\"optimize\",{},\"serve\":{}}}\n",
                optimize_payload(&p.file_json, inst, r, false),
                serve_stats_json(&resp.stats),
            )
        }
        Ok(ServeResult::Mixed(r)) => {
            let psdp_serve::InstancePayload::Mixed(inst) = &p.request.payload else {
                return internal_error_line(&id_json, "mixed result with packing payload");
            };
            format!(
                "{{\"id\":{id_json},\"command\":\"mixed\",{},\"serve\":{}}}\n",
                mixed_payload(&p.file_json, inst, r, false),
                serve_stats_json(&resp.stats),
            )
        }
    }
}

/// Keys accepted per command (typo guard, mirroring `Args::ensure_known`).
fn allowed_keys(command: &str) -> &'static [&'static str] {
    match command {
        "solve" => {
            &["id", "command", "file", "instance", "threshold", "eps", "engine", "mode", "seed"]
        }
        "optimize" => &["id", "command", "file", "instance", "eps", "warm"],
        "mixed" => &["id", "command", "file", "instance", "eps", "engine", "seed", "warm"],
        _ => &[],
    }
}

fn get_f64(obj: &JsonValue, key: &str, default: f64) -> Result<f64, String> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v.as_f64().ok_or_else(|| format!("field `{key}` must be a number")),
    }
}

fn get_u64(obj: &JsonValue, key: &str, default: u64) -> Result<u64, String> {
    let v = get_f64(obj, key, default as f64)?;
    if v < 0.0 || v.fract() != 0.0 {
        return Err(format!("field `{key}` must be a non-negative integer"));
    }
    Ok(v as u64)
}

fn get_bool(obj: &JsonValue, key: &str, default: bool) -> Result<bool, String> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v.as_bool().ok_or_else(|| format!("field `{key}` must be a boolean")),
    }
}

fn get_str<'v>(obj: &'v JsonValue, key: &str, default: &'static str) -> Result<&'v str, String> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v.as_str().ok_or_else(|| format!("field `{key}` must be a string")),
    }
}

/// Extract `id`/`command` and enforce the per-command key allowlist.
/// `framed` additionally bans `file`/`instance` (a frame carries its
/// instance as trailing `psdp-bin-1` bytes, never as a JSON field).
fn id_and_command(
    obj: &JsonValue,
    framed: bool,
) -> Result<(String, String), (Option<String>, String)> {
    let id = obj
        .get("id")
        .and_then(JsonValue::as_str)
        .map(str::to_string)
        .ok_or((None, "missing string field `id`".to_string()))?;
    let fail = |msg: String| (Some(id.clone()), msg);

    let command = obj
        .get("command")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| fail("missing string field `command`".to_string()))?
        .to_string();
    let allowed = allowed_keys(&command);
    if allowed.is_empty() {
        return Err(fail(format!("unknown command `{command}` (solve|optimize|mixed)")));
    }
    if let JsonValue::Obj(pairs) = obj {
        for (k, _) in pairs {
            if framed && matches!(k.as_str(), "file" | "instance") {
                return Err(fail(format!(
                    "field `{k}` is not allowed in a binary frame (the instance rides as trailing psdp-bin-1 bytes)"
                )));
            }
            if !allowed.contains(&k.as_str()) {
                return Err(fail(format!("unknown field `{k}` for command `{command}`")));
            }
        }
    }
    Ok((id, command))
}

/// Look up or load one packing-instance source. Bytes are sniffed by
/// magic: `psdp-bin-1` decodes through the verified binary reader (the
/// returned hash is the header's content hash, already checked), text
/// parses canonically and is hashed exactly once, here.
fn packing_source(
    sources: &mut PackSources,
    key: &str,
    fmt: Format,
    load: impl FnOnce() -> Result<Vec<u8>, String>,
) -> Result<(Arc<PackingInstance>, u64), String> {
    if let Some((inst, hash)) = sources.get(key) {
        return Ok((Arc::clone(inst), *hash));
    }
    let bytes = load()?;
    let (inst, hash) = if fmt.wants_binary(&bytes)? {
        let (inst, hash) = read_instance_bin(&bytes).map_err(|e| e.to_string())?;
        (Arc::new(inst), hash)
    } else {
        let inst = read_instance(&String::from_utf8_lossy(&bytes)).map_err(|e| e.to_string())?;
        let hash = packing_content_hash(&inst);
        (Arc::new(inst), hash)
    };
    sources.insert(key.to_string(), (Arc::clone(&inst), hash));
    Ok((inst, hash))
}

/// Mixed-family counterpart of [`packing_source`].
fn mixed_source(
    sources: &mut MixedSources,
    key: &str,
    fmt: Format,
    load: impl FnOnce() -> Result<Vec<u8>, String>,
) -> Result<(Arc<MixedInstance>, u64), String> {
    if let Some((inst, hash)) = sources.get(key) {
        return Ok((Arc::clone(inst), *hash));
    }
    let bytes = load()?;
    let (inst, hash) = if fmt.wants_binary(&bytes)? {
        let (inst, hash) = read_mixed_instance_bin(&bytes).map_err(|e| e.to_string())?;
        (Arc::new(inst), hash)
    } else {
        let inst =
            read_mixed_instance(&String::from_utf8_lossy(&bytes)).map_err(|e| e.to_string())?;
        let hash = mixed_content_hash(&inst);
        (Arc::new(inst), hash)
    };
    sources.insert(key.to_string(), (Arc::clone(&inst), hash));
    Ok((inst, hash))
}

/// Build a `solve` request from its JSON options (shared between the
/// text-line and binary-frame parsers).
fn solve_request(
    obj: &JsonValue,
    id: String,
    inst: Arc<PackingInstance>,
    hash: u64,
) -> Result<ServeRequest, String> {
    let eps = get_f64(obj, "eps", 0.1)?;
    let threshold = get_f64(obj, "threshold", 1.0)?;
    let seed = get_u64(obj, "seed", 0)?;
    let engine = crate::commands::engine_of(get_str(obj, "engine", "exact")?, eps)?;
    let mode = match get_str(obj, "mode", "practical")? {
        "practical" => ConstantsMode::practical_default(),
        "strict" => ConstantsMode::PaperStrict,
        other => return Err(format!("unknown mode `{other}` (practical|strict)")),
    };
    let mut opts = DecisionOptions::practical(eps).with_engine(engine).with_seed(seed);
    opts.mode = mode;
    Ok(ServeRequest::decision_hashed(id, inst, hash, threshold, opts))
}

/// Build an `optimize` request from its JSON options.
fn optimize_request(
    obj: &JsonValue,
    id: String,
    inst: Arc<PackingInstance>,
    hash: u64,
) -> Result<ServeRequest, String> {
    let eps = get_f64(obj, "eps", 0.1)?;
    let mut opts = ApproxOptions::practical(eps);
    opts.warm_start = get_bool(obj, "warm", true)?;
    Ok(ServeRequest::optimize_hashed(id, inst, hash, opts))
}

/// Build a `mixed` request from its JSON options.
fn mixed_request(
    obj: &JsonValue,
    id: String,
    inst: Arc<MixedInstance>,
    hash: u64,
) -> Result<ServeRequest, String> {
    let eps = get_f64(obj, "eps", 0.1)?;
    let seed = get_u64(obj, "seed", 0)?;
    let engine = crate::commands::engine_of(get_str(obj, "engine", "exact")?, eps)?;
    let mut opts = MixedApproxOptions::practical(eps);
    opts.warm_start = get_bool(obj, "warm", true)?;
    opts.decision = opts.decision.with_engine(engine).with_seed(seed);
    Ok(ServeRequest::mixed_hashed(id, inst, hash, opts))
}

/// Parse one request line. On failure returns `(best-effort id, message)`
/// so the error response can still be keyed.
fn parse_request_line(
    raw: &str,
    fmt: Format,
    pack_sources: &mut PackSources,
    mixed_sources: &mut MixedSources,
) -> Result<ParsedLine, (Option<String>, String)> {
    let obj = parse(raw).map_err(|e| (None, e.to_string()))?;
    let (id, command) = id_and_command(&obj, false)?;
    let fail = |msg: String| (Some(id.clone()), msg);

    // Instance source: exactly one of `file` / `instance` (inline text).
    // Loading is deferred so repeat sources (the common zipf case) hit the
    // parsed-instance cache without re-reading the file; a source repeated
    // within one batch therefore also consistently uses the first parse.
    // Files are read as raw bytes and sniffed: a `.psdpb` file flows
    // through the binary reader, anything else parses as canonical text.
    let file = obj.get("file").and_then(JsonValue::as_str);
    let inline = obj.get("instance").and_then(JsonValue::as_str);
    type LoadFn = Box<dyn FnOnce() -> Result<Vec<u8>, String>>;
    let (source_key, file_json, load): (String, String, LoadFn) = match (file, inline) {
        (Some(path), None) => {
            let p = path.to_string();
            (
                format!("file:{path}"),
                json_str(path),
                Box::new(move || std::fs::read(&p).map_err(|e| format!("reading {p}: {e}"))),
            )
        }
        (None, Some(text)) => {
            let t = text.to_string();
            (format!("inline:{text}"), "null".to_string(), Box::new(move || Ok(t.into_bytes())))
        }
        (Some(_), Some(_)) => {
            return Err(fail("give either `file` or `instance`, not both".to_string()))
        }
        (None, None) => return Err(fail("missing `file` or `instance`".to_string())),
    };

    let request = match command.as_str() {
        "solve" => {
            let (inst, hash) =
                packing_source(pack_sources, &source_key, fmt, load).map_err(&fail)?;
            solve_request(&obj, id.clone(), inst, hash).map_err(&fail)?
        }
        "optimize" => {
            let (inst, hash) =
                packing_source(pack_sources, &source_key, fmt, load).map_err(&fail)?;
            optimize_request(&obj, id.clone(), inst, hash).map_err(&fail)?
        }
        "mixed" => {
            let (inst, hash) =
                mixed_source(mixed_sources, &source_key, fmt, load).map_err(&fail)?;
            mixed_request(&obj, id.clone(), inst, hash).map_err(&fail)?
        }
        // Already rejected by the `allowed_keys` check; keep the typed
        // error anyway so this match can never panic as commands evolve.
        other => return Err(fail(format!("unknown command `{other}` (solve|optimize|mixed)"))),
    };
    Ok(ParsedLine { request, file_json })
}

/// Parse one binary frame payload: a `u32` LE JSON-header length, the
/// JSON header (same schema as a text request, minus `file`/`instance`),
/// then the instance as `psdp-bin-1` bytes. The source cache is keyed by
/// the FNV-1a of the **raw instance bytes**, so a repeated frame body
/// skips decoding entirely — while the serve fingerprint still comes from
/// the decoded content hash, which the first decode verified against the
/// header and trailer (a forged header hash on different bytes can
/// therefore never alias a cached instance).
fn parse_frame_request(
    frame: &[u8],
    pack_sources: &mut PackSources,
    mixed_sources: &mut MixedSources,
) -> Result<ParsedLine, (Option<String>, String)> {
    let mut len_bytes = [0u8; 4];
    let header = frame
        .get(..4)
        .ok_or((None, "binary frame shorter than its JSON length prefix".to_string()))?;
    len_bytes.copy_from_slice(header);
    let json_len = u32::from_le_bytes(len_bytes) as usize;
    let json_end = 4usize.saturating_add(json_len);
    let json_bytes = frame.get(4..json_end).ok_or((
        None,
        format!("frame JSON length {json_len} overruns the {}-byte frame", frame.len()),
    ))?;
    let inst_bytes = frame.get(json_end..).unwrap_or(&[]);
    let raw = std::str::from_utf8(json_bytes)
        .map_err(|_| (None, "frame JSON header is not UTF-8".to_string()))?;
    let obj = parse(raw).map_err(|e| (None, e.to_string()))?;
    let (id, command) = id_and_command(&obj, true)?;
    let fail = |msg: String| (Some(id.clone()), msg);

    if !is_binary_instance(inst_bytes) {
        return Err(fail("frame instance is not psdp-bin-1 (bad magic or version)".to_string()));
    }
    let source_key = format!("bin:{:016x}", fnv1a(inst_bytes));

    let request = match command.as_str() {
        "solve" => {
            let (inst, hash) =
                packing_source(pack_sources, &source_key, Format::Bin, || Ok(inst_bytes.to_vec()))
                    .map_err(&fail)?;
            solve_request(&obj, id.clone(), inst, hash).map_err(&fail)?
        }
        "optimize" => {
            let (inst, hash) =
                packing_source(pack_sources, &source_key, Format::Bin, || Ok(inst_bytes.to_vec()))
                    .map_err(&fail)?;
            optimize_request(&obj, id.clone(), inst, hash).map_err(&fail)?
        }
        "mixed" => {
            let (inst, hash) =
                mixed_source(mixed_sources, &source_key, Format::Bin, || Ok(inst_bytes.to_vec()))
                    .map_err(&fail)?;
            mixed_request(&obj, id.clone(), inst, hash).map_err(&fail)?
        }
        other => return Err(fail(format!("unknown command `{other}` (solve|optimize|mixed)"))),
    };
    Ok(ParsedLine { request, file_json: "null".to_string() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use psdp_core::write_instance;
    use psdp_sparse::PsdMatrix;

    fn args(v: &[&str]) -> Args {
        Args::parse(&v.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    fn inline_packing() -> String {
        let inst = PackingInstance::new(vec![
            PsdMatrix::Diagonal(vec![2.0, 0.0]),
            PsdMatrix::Diagonal(vec![0.0, 4.0]),
        ])
        .unwrap();
        write_instance(&inst).replace('\n', "\\n")
    }

    #[test]
    fn serve_answers_inline_requests_in_order() {
        let text = inline_packing();
        let input = format!(
            "{{\"id\":\"b\",\"command\":\"optimize\",\"instance\":\"{text}\",\"eps\":0.15}}\n\
             {{\"id\":\"a\",\"command\":\"solve\",\"instance\":\"{text}\",\"threshold\":0.5,\"eps\":0.2}}\n"
        );
        let run = serve_on_input(&args(&["serve"]), &input).unwrap();
        let lines: Vec<&str> = run.stdout.lines().collect();
        assert_eq!(lines.len(), 2);
        // Submission order preserved; ids attached.
        assert!(lines[0].starts_with("{\"id\":\"b\",\"command\":\"optimize\""), "{}", lines[0]);
        assert!(lines[1].starts_with("{\"id\":\"a\",\"command\":\"solve\""), "{}", lines[1]);
        assert!(lines[0].contains("\"converged\":true"), "{}", lines[0]);
        assert!(lines[0].contains("\"wall_ms\":null"), "{}", lines[0]);
        assert!(lines[1].contains("\"serve\":{"), "{}", lines[1]);
        assert!(run.summary.contains("2 requests"), "{}", run.summary);
    }

    #[test]
    fn malformed_lines_become_error_responses() {
        let text = inline_packing();
        let input = format!(
            "not json at all\n\
             {{\"id\":\"x\",\"command\":\"warp\",\"instance\":\"{text}\"}}\n\
             {{\"id\":\"ok\",\"command\":\"solve\",\"instance\":\"{text}\"}}\n\
             {{\"id\":\"ok\",\"command\":\"solve\",\"instance\":\"{text}\"}}\n\
             {{\"id\":\"y\",\"command\":\"solve\",\"instance\":\"psdp 1 garbage\"}}\n\
             {{\"id\":\"z\",\"command\":\"solve\",\"instance\":\"{text}\",\"epz\":0.1}}\n"
        );
        let run = serve_on_input(&args(&["serve"]), &input).unwrap();
        let lines: Vec<&str> = run.stdout.lines().collect();
        assert_eq!(lines.len(), 6);
        assert!(lines[0].starts_with("{\"id\":null,\"error\":"), "{}", lines[0]);
        assert!(lines[1].contains("unknown command"), "{}", lines[1]);
        assert!(lines[2].contains("\"command\":\"solve\""), "{}", lines[2]);
        assert!(lines[3].contains("duplicate request id"), "{}", lines[3]);
        assert!(lines[4].contains("\"error\":"), "{}", lines[4]);
        assert!(lines[5].contains("unknown field `epz`"), "{}", lines[5]);
    }

    #[test]
    fn serve_output_is_deterministic_and_cache_value_neutral() {
        let text = inline_packing();
        let input = format!(
            "{{\"id\":\"r1\",\"command\":\"optimize\",\"instance\":\"{text}\",\"eps\":0.15}}\n\
             {{\"id\":\"r2\",\"command\":\"optimize\",\"instance\":\"{text}\",\"eps\":0.15}}\n\
             {{\"id\":\"r3\",\"command\":\"solve\",\"instance\":\"{text}\",\"threshold\":0.7}}\n"
        );
        let a = serve_on_input(&args(&["serve"]), &input).unwrap();
        let b = serve_on_input(&args(&["serve"]), &input).unwrap();
        assert_eq!(a.stdout, b.stdout, "serve stdout must be deterministic");
        // Cached vs cold: the `serve` telemetry differs (that is the
        // point), but the result payloads must be byte-identical.
        let cold = serve_on_input(&args(&["serve", "--cache", "off"]), &input).unwrap();
        let strip = |s: &str| -> Vec<String> {
            s.lines().map(|l| l.split(",\"serve\":{").next().unwrap().to_string()).collect()
        };
        assert_eq!(strip(&a.stdout), strip(&cold.stdout));
        assert!(a.stdout.contains("\"memoized\":true"), "{}", a.stdout);
        assert!(!cold.stdout.contains("\"memoized\":true"), "{}", cold.stdout);
    }

    #[test]
    fn mixed_requests_serve_end_to_end() {
        let inst = psdp_core::MixedInstance::new(
            vec![PsdMatrix::Diagonal(vec![2.0, 0.0]), PsdMatrix::Diagonal(vec![0.0, 2.0])],
            vec![PsdMatrix::Diagonal(vec![1.0, 0.0]), PsdMatrix::Diagonal(vec![0.0, 1.0])],
        )
        .unwrap();
        let text = psdp_core::write_mixed_instance(&inst).replace('\n', "\\n");
        let input =
            format!("{{\"id\":\"m\",\"command\":\"mixed\",\"instance\":\"{text}\",\"eps\":0.1}}\n");
        let run = serve_on_input(&args(&["serve"]), &input).unwrap();
        let line = run.stdout.lines().next().unwrap();
        assert!(line.starts_with("{\"id\":\"m\",\"command\":\"mixed\""), "{line}");
        assert!(line.contains("\"threshold_lower\":"), "{line}");
        assert!(line.contains("\"best_point\":{"), "{line}");
    }

    #[test]
    fn bad_flags_rejected() {
        assert!(serve_on_input(&args(&["serve", "--cache", "sideways"]), "").is_err());
        assert!(serve_on_input(&args(&["serve", "--max-inflight", "2"]), "").is_err());
        assert!(
            serve_listen_on_input(&args(&["serve", "--listen", "--cache", "maybe"]), "").is_err()
        );
        assert!(serve_listen_on_input(&args(&["serve", "--listen", "--max-in-flight", "2"]), "")
            .is_err());
    }

    #[test]
    fn oversized_lines_error_in_place_without_buffering() {
        let text = inline_packing();
        let big = "x".repeat(512);
        let input = format!(
            "{{\"id\":\"pad\",\"junk\":\"{big}\"}}\n\
             {{\"id\":\"ok\",\"command\":\"solve\",\"instance\":\"{text}\"}}\n"
        );
        for run in [
            serve_on_input(&args(&["serve", "--max-line-bytes", "256"]), &input).unwrap(),
            serve_listen_on_input(&args(&["serve", "--listen", "--max-line-bytes", "256"]), &input)
                .unwrap(),
        ] {
            let lines: Vec<&str> = run.stdout.lines().collect();
            assert_eq!(lines.len(), 2);
            assert!(lines[0].contains("exceeds --max-line-bytes"), "{}", lines[0]);
            assert!(lines[1].contains("\"id\":\"ok\",\"command\":\"solve\""), "{}", lines[1]);
        }
        // The stream resyncs at the newline: the request after the huge
        // line is untouched even when the bound is far below the line.
        let run =
            serve_listen_on_input(&args(&["serve", "--listen", "--max-line-bytes", "64"]), &input)
                .unwrap();
        assert!(run.stdout.lines().count() == 2, "{}", run.stdout);
    }

    #[test]
    fn listen_streams_in_submission_order_with_in_place_errors() {
        let text = inline_packing();
        let input = format!(
            "{{\"id\":\"b\",\"command\":\"optimize\",\"instance\":\"{text}\",\"eps\":0.15}}\n\
             not json at all\n\
             {{\"id\":\"b\",\"command\":\"solve\",\"instance\":\"{text}\"}}\n\
             \n\
             {{\"id\":\"a\",\"command\":\"solve\",\"instance\":\"{text}\",\"threshold\":0.5,\"eps\":0.2}}\n"
        );
        let run = serve_listen_on_input(&args(&["serve", "--listen"]), &input).unwrap();
        let lines: Vec<&str> = run.stdout.lines().collect();
        assert_eq!(lines.len(), 4, "{}", run.stdout);
        assert!(lines[0].starts_with("{\"id\":\"b\",\"command\":\"optimize\""), "{}", lines[0]);
        assert!(lines[1].starts_with("{\"id\":null,\"error\":"), "{}", lines[1]);
        assert!(lines[2].contains("duplicate request id"), "{}", lines[2]);
        assert!(lines[3].starts_with("{\"id\":\"a\",\"command\":\"solve\""), "{}", lines[3]);
        assert!(run.summary.contains("listen: 4 requests"), "{}", run.summary);
        assert!(run.summary.contains("latency service"), "{}", run.summary);
    }

    #[test]
    fn listen_matches_one_shot_payloads_and_shard_count_is_invisible() {
        let text = inline_packing();
        let input = format!(
            "{{\"id\":\"r1\",\"command\":\"optimize\",\"instance\":\"{text}\",\"eps\":0.15}}\n\
             {{\"id\":\"r2\",\"command\":\"optimize\",\"instance\":\"{text}\",\"eps\":0.15}}\n\
             {{\"id\":\"r3\",\"command\":\"solve\",\"instance\":\"{text}\",\"threshold\":0.7}}\n"
        );
        let one_shot = serve_on_input(&args(&["serve"]), &input).unwrap();
        let listen = serve_listen_on_input(&args(&["serve", "--listen"]), &input).unwrap();
        // Same cache tiers in both modes: the whole response lines match,
        // `serve` telemetry included.
        assert_eq!(one_shot.stdout, listen.stdout);
        for shards in ["1", "3", "8"] {
            let other =
                serve_listen_on_input(&args(&["serve", "--listen", "--shards", shards]), &input)
                    .unwrap();
            assert_eq!(listen.stdout, other.stdout, "shards={shards}");
        }
    }

    /// Build one wire frame: marker, `u32` LE payload length, then
    /// `u32` LE JSON length + JSON + instance bytes.
    fn frame(json: &str, inst_bytes: &[u8]) -> Vec<u8> {
        let mut payload = (json.len() as u32).to_le_bytes().to_vec();
        payload.extend_from_slice(json.as_bytes());
        payload.extend_from_slice(inst_bytes);
        let mut out = vec![FRAME_MARKER];
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// `serve_listen_on_input` for byte streams (frames are not UTF-8).
    fn listen_on_bytes(args: &Args, input: &[u8]) -> ServeRun {
        let mut reader = input;
        let mut out: Vec<u8> = Vec::new();
        let summary = serve_listen_on(args, &mut reader, &mut out).unwrap();
        ServeRun { stdout: String::from_utf8_lossy(&out).into_owned(), summary }
    }

    #[test]
    fn binary_frames_match_text_submissions_bitwise() {
        let inst = PackingInstance::new(vec![
            PsdMatrix::Diagonal(vec![2.0, 0.0]),
            PsdMatrix::Diagonal(vec![0.0, 4.0]),
        ])
        .unwrap();
        let text = write_instance(&inst).replace('\n', "\\n");
        let bin = psdp_core::write_instance_bin(&inst);
        let text_input = format!(
            "{{\"id\":\"r1\",\"command\":\"solve\",\"instance\":\"{text}\",\"threshold\":0.5}}\n"
        );
        let frame_input = frame("{\"id\":\"r1\",\"command\":\"solve\",\"threshold\":0.5}", &bin);
        let via_text = serve_listen_on_input(&args(&["serve", "--listen"]), &text_input).unwrap();
        let via_frame = listen_on_bytes(&args(&["serve", "--listen"]), &frame_input);
        // Same fingerprint, same cold-start telemetry: the whole response
        // line is byte-identical across the two encodings.
        assert_eq!(via_text.stdout, via_frame.stdout);

        // Within one stream, a frame after the equivalent text submission
        // lands in the same cache entry (the fingerprint is shared).
        let mut both = text_input.clone().into_bytes();
        both.extend_from_slice(&frame(
            "{\"id\":\"r2\",\"command\":\"solve\",\"threshold\":0.5}",
            &bin,
        ));
        let run = listen_on_bytes(&args(&["serve", "--listen"]), &both);
        let lines: Vec<&str> = run.stdout.lines().collect();
        assert_eq!(lines.len(), 2, "{}", run.stdout);
        assert!(lines[1].contains("\"memoized\":true"), "{}", lines[1]);
    }

    #[test]
    fn mixed_frames_serve_end_to_end() {
        let inst = psdp_core::MixedInstance::new(
            vec![PsdMatrix::Diagonal(vec![2.0, 0.0]), PsdMatrix::Diagonal(vec![0.0, 2.0])],
            vec![PsdMatrix::Diagonal(vec![1.0, 0.0]), PsdMatrix::Diagonal(vec![0.0, 1.0])],
        )
        .unwrap();
        let bin = psdp_core::write_mixed_instance_bin(&inst);
        let input = frame("{\"id\":\"m\",\"command\":\"mixed\",\"eps\":0.1}", &bin);
        let run = listen_on_bytes(&args(&["serve", "--listen"]), &input);
        let line = run.stdout.lines().next().unwrap();
        assert!(line.starts_with("{\"id\":\"m\",\"command\":\"mixed\""), "{line}");
        assert!(line.contains("\"threshold_lower\":"), "{line}");
    }

    #[test]
    fn oversized_frames_discard_and_resync() {
        let text = inline_packing();
        let junk = vec![0x7fu8; 512];
        let mut input = vec![FRAME_MARKER];
        input.extend_from_slice(&(junk.len() as u32).to_le_bytes());
        input.extend_from_slice(&junk);
        input.extend_from_slice(
            format!("{{\"id\":\"ok\",\"command\":\"solve\",\"instance\":\"{text}\"}}\n").as_bytes(),
        );
        let run = listen_on_bytes(&args(&["serve", "--listen", "--max-line-bytes", "256"]), &input);
        let lines: Vec<&str> = run.stdout.lines().collect();
        assert_eq!(lines.len(), 2, "{}", run.stdout);
        // The oversized payload is consumed to its declared length and
        // dropped; the next request is untouched.
        assert!(lines[0].contains("binary frame exceeds --max-line-bytes"), "{}", lines[0]);
        assert!(lines[1].contains("\"id\":\"ok\",\"command\":\"solve\""), "{}", lines[1]);
    }

    #[test]
    fn malformed_frames_error_in_place() {
        let inst = PackingInstance::new(vec![PsdMatrix::Diagonal(vec![2.0])]).unwrap();
        let bin = psdp_core::write_instance_bin(&inst);
        let text = inline_packing();
        let mut input: Vec<u8> = Vec::new();
        // Truncated: declares 100 payload bytes, stream has only a few.
        let mut truncated = vec![FRAME_MARKER];
        truncated.extend_from_slice(&100u32.to_le_bytes());
        truncated.extend_from_slice(b"short");
        // Text instance where psdp-bin-1 bytes are required.
        let not_bin = frame("{\"id\":\"nb\",\"command\":\"solve\"}", b"psdp 1\n");
        // `instance` field is banned inside a frame.
        let banned = frame(
            &format!("{{\"id\":\"bf\",\"command\":\"solve\",\"instance\":\"{text}\"}}"),
            &bin,
        );
        input.extend_from_slice(&not_bin);
        input.extend_from_slice(&banned);
        input.extend_from_slice(&truncated);
        let run = listen_on_bytes(&args(&["serve", "--listen"]), &input);
        let lines: Vec<&str> = run.stdout.lines().collect();
        assert_eq!(lines.len(), 3, "{}", run.stdout);
        assert!(lines[0].contains("not psdp-bin-1"), "{}", lines[0]);
        assert!(lines[1].contains("not allowed in a binary frame"), "{}", lines[1]);
        assert!(lines[2].contains("truncated binary frame"), "{}", lines[2]);
    }

    #[test]
    fn binary_instance_files_are_sniffed_by_magic() {
        let inst = PackingInstance::new(vec![
            PsdMatrix::Diagonal(vec![2.0, 0.0]),
            PsdMatrix::Diagonal(vec![0.0, 4.0]),
        ])
        .unwrap();
        let dir = std::env::temp_dir();
        let bin_path = dir.join(format!("psdp-serve-sniff-{}.psdpb", std::process::id()));
        std::fs::write(&bin_path, psdp_core::write_instance_bin(&inst)).unwrap();
        let text = write_instance(&inst).replace('\n', "\\n");
        let input = format!(
            "{{\"id\":\"t\",\"command\":\"solve\",\"instance\":\"{text}\",\"threshold\":0.5}}\n\
             {{\"id\":\"b\",\"command\":\"solve\",\"file\":{},\"threshold\":0.5}}\n",
            crate::jsonfmt::json_str(&bin_path.to_string_lossy()),
        );
        let run = serve_on_input(&args(&["serve"]), &input).unwrap();
        let lines: Vec<&str> = run.stdout.lines().collect();
        assert_eq!(lines.len(), 2, "{}", run.stdout);
        // The binary file parses, solves, and shares the text request's
        // fingerprint: the two requests form one group, so exactly one of
        // them executed and the other was answered from the memo tier.
        assert!(lines[1].contains("\"command\":\"solve\""), "{}", run.stdout);
        assert!(run.stdout.contains("\"memoized\":true"), "{}", run.stdout);
        assert!(run.summary.contains("2 requests in 1 groups"), "{}", run.summary);
        let _ = std::fs::remove_file(&bin_path);
    }

    #[test]
    fn listen_snapshot_roundtrip_warms_the_cache() {
        let text = inline_packing();
        let input = format!(
            "{{\"id\":\"r1\",\"command\":\"optimize\",\"instance\":\"{text}\",\"eps\":0.15}}\n"
        );
        let path =
            std::env::temp_dir().join(format!("psdp-listen-snap-{}.txt", std::process::id()));
        let path_s = path.to_string_lossy().into_owned();
        let cold =
            serve_listen_on_input(&args(&["serve", "--listen", "--snapshot", &path_s]), &input)
                .unwrap();
        assert!(cold.summary.contains("not readable; starting cold"), "{}", cold.summary);
        assert!(cold.summary.contains("snapshot: saved 1 fingerprints"), "{}", cold.summary);
        let warm =
            serve_listen_on_input(&args(&["serve", "--listen", "--snapshot", &path_s]), &input)
                .unwrap();
        assert!(warm.summary.contains("warm-loaded 1 fingerprints"), "{}", warm.summary);
        assert!(warm.summary.contains("1 prep reuses"), "{}", warm.summary);
        assert!(warm.summary.contains("0 prep builds"), "{}", warm.summary);
        // Warm start changes only the telemetry, never the payload.
        let strip = |s: &str| -> Vec<String> {
            s.lines().map(|l| l.split(",\"serve\":{").next().unwrap().to_string()).collect()
        };
        assert_eq!(strip(&cold.stdout), strip(&warm.stdout));
        assert!(warm.stdout.contains("\"tier\":\"prepared\""), "{}", warm.stdout);
        // A corrupted snapshot degrades to a cold start, never a failure.
        std::fs::write(&path, "psdp snapshot v1\nentries 1\ngarbage\n").unwrap();
        let recovered =
            serve_listen_on_input(&args(&["serve", "--listen", "--snapshot", &path_s]), &input)
                .unwrap();
        assert!(recovered.summary.contains("starting cold"), "{}", recovered.summary);
        assert_eq!(recovered.stdout, cold.stdout);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn snapshot_rotation_keeps_generations_and_recovers_torn_live() {
        let text = inline_packing();
        let input = format!(
            "{{\"id\":\"r1\",\"command\":\"optimize\",\"instance\":\"{text}\",\"eps\":0.15}}\n"
        );
        let path = std::env::temp_dir().join(format!("psdp-listen-rot-{}.txt", std::process::id()));
        let path_s = path.to_string_lossy().into_owned();
        let gen1 = format!("{path_s}.1");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&gen1);
        let flags = ["serve", "--listen", "--snapshot", &path_s, "--snapshot-keep", "2"];
        let first = serve_listen_on_input(&args(&flags), &input).unwrap();
        assert!(first.summary.contains("saved 1 fingerprints"), "{}", first.summary);
        assert!(!std::path::Path::new(&gen1).exists(), "nothing to rotate on the first save");
        let second = serve_listen_on_input(&args(&flags), &input).unwrap();
        assert!(second.summary.contains("warm-loaded 1 fingerprints"), "{}", second.summary);
        assert!(std::path::Path::new(&gen1).exists(), "second save rotates the first into .1");
        // Tear the live file: the loader falls back to the intact rotated
        // generation instead of silently starting cold.
        std::fs::write(&path, "psdp snapshot v1\nentries 1\ngarbage\n").unwrap();
        let torn = serve_listen_on_input(&args(&flags), &input).unwrap();
        assert!(
            torn.summary.contains(&format!("warm-loaded 1 fingerprints from {gen1}")),
            "{}",
            torn.summary
        );
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&gen1);
    }

    #[test]
    fn scan_leading_id_parses_prefixes_conservatively() {
        assert_eq!(scan_leading_id(b"{\"id\":\"abc\",\"x"), Some("abc".to_string()));
        assert_eq!(scan_leading_id(b"{ \"id\" : \"a\\\"b\" }"), Some("a\"b".to_string()));
        assert_eq!(scan_leading_id(b"{\"id\":\"trunc"), None, "id cut off by the bound");
        assert_eq!(scan_leading_id(b"{\"id\":42}"), None, "non-string ids fall back");
        assert_eq!(scan_leading_id(b"{\"x\":1}"), None);
        assert_eq!(scan_leading_id(b"{\"id\":\"u\\u0041\"}"), None, "exotic escapes fall back");
    }

    #[test]
    fn oversized_lines_recover_the_leading_id_when_it_fits_the_prefix() {
        let text = inline_packing();
        let big = "x".repeat(512);
        // id leads the line: it sits inside the retained prefix and the
        // typed error names it; junk-first puts the id past the
        // truncation point and the error falls back to null.
        let leading = format!(
            "{{\"id\":\"pad\",\"junk\":\"{big}\"}}\n\
             {{\"id\":\"ok\",\"command\":\"solve\",\"instance\":\"{text}\"}}\n"
        );
        let trailing = format!(
            "{{\"junk\":\"{big}\",\"id\":\"late\"}}\n\
             {{\"id\":\"ok\",\"command\":\"solve\",\"instance\":\"{text}\"}}\n"
        );
        for (input, want) in
            [(&leading, "{\"id\":\"pad\",\"error\":"), (&trailing, "{\"id\":null,\"error\":")]
        {
            for run in [
                serve_on_input(&args(&["serve", "--max-line-bytes", "256"]), input).unwrap(),
                serve_listen_on_input(
                    &args(&["serve", "--listen", "--max-line-bytes", "256"]),
                    input,
                )
                .unwrap(),
            ] {
                let lines: Vec<&str> = run.stdout.lines().collect();
                assert_eq!(lines.len(), 2, "{}", run.stdout);
                assert!(lines[0].starts_with(want), "want {want}, got {}", lines[0]);
                assert!(lines[0].contains("exceeds --max-line-bytes"), "{}", lines[0]);
                assert!(lines[1].contains("\"id\":\"ok\",\"command\":\"solve\""), "{}", lines[1]);
            }
        }
    }

    #[test]
    fn overloaded_outcomes_render_through_the_shared_schema() {
        let ctx = LineCtx::Error { id_json: json_str("r9") };
        let routed =
            render_outcome(&ctx, &StreamOutcome::Overloaded { id: "r9".into(), shard: Some(3) });
        assert_eq!(
            routed,
            "{\"id\":\"r9\",\"error\":\"overloaded\",\"overloaded\":true,\"shard\":3}\n"
        );
        assert_eq!(routed, crate::jsonfmt::overloaded_line("r9", Some(3)));
        let unrouted =
            render_outcome(&ctx, &StreamOutcome::Overloaded { id: "r9".into(), shard: None });
        assert_eq!(unrouted, crate::jsonfmt::overloaded_line("r9", None));
        assert!(unrouted.ends_with("\"shard\":null}\n"), "{unrouted}");
    }

    #[test]
    fn socket_round_trip_matches_stdin_bytes() {
        use std::io::Read as _;
        let text = inline_packing();
        let other = PackingInstance::new(vec![
            PsdMatrix::Diagonal(vec![3.0, 0.0]),
            PsdMatrix::Diagonal(vec![0.0, 5.0]),
        ])
        .unwrap();
        let text2 = write_instance(&other).replace('\n', "\\n");
        // Disjoint per-client fingerprints: cross-client cache traffic
        // cannot perturb either client's telemetry vs its stdin run.
        let inputs = [
            format!(
                "{{\"id\":\"c0a\",\"command\":\"solve\",\"instance\":\"{text}\",\"threshold\":0.5}}\n\
                 {{\"id\":\"c0b\",\"command\":\"optimize\",\"instance\":\"{text}\",\"eps\":0.15}}\n"
            ),
            format!(
                "{{\"id\":\"c1a\",\"command\":\"solve\",\"instance\":\"{text2}\",\"threshold\":0.5}}\n\
                 not json at all\n"
            ),
        ];
        let listener =
            psdp_serve::Listener::bind(&psdp_serve::BindAddr::parse("tcp:127.0.0.1:0").unwrap())
                .unwrap();
        let addr = listener.local_addr_string().strip_prefix("tcp:").map(str::to_string).unwrap();
        let sargs = args(&["serve", "--listen", "--shards", "2", "--max-clients", "2"]);
        let server = std::thread::spawn(move || serve_listen_socket_on(&sargs, listener));
        let clients: Vec<_> = inputs
            .iter()
            .cloned()
            .map(|input| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    let mut s = std::net::TcpStream::connect(&addr).unwrap();
                    s.write_all(input.as_bytes()).unwrap();
                    s.shutdown(std::net::Shutdown::Write).unwrap();
                    let mut out = String::new();
                    s.read_to_string(&mut out).unwrap();
                    out
                })
            })
            .collect();
        let got: Vec<String> = clients.into_iter().map(|h| h.join().unwrap()).collect();
        let summary = server.join().unwrap().unwrap();
        assert!(summary.contains("listen: 4 requests"), "{summary}");
        for (input, got) in inputs.iter().zip(&got) {
            let reference =
                serve_listen_on_input(&args(&["serve", "--listen", "--shards", "2"]), input)
                    .unwrap();
            assert_eq!(&reference.stdout, got, "socket bytes must match stdin bytes");
        }
    }
}
