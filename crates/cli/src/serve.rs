//! The `psdp serve` subcommand: a JSONL front door over the
//! `psdp-serve` scheduler.
//!
//! One JSON request per stdin line; one JSON response per stdout line, in
//! submission order, reusing the `--json` schemas of `solve` / `optimize`
//! / `mixed` with two additions: the request's `id` and a `serve` object
//! carrying deterministic reuse telemetry. Response bytes are a pure
//! function of the request stream (`wall_ms` is emitted as `null`;
//! wall-clock telemetry goes to the stderr batch report instead), which is
//! what lets `tests/determinism.rs` compare serve output bitwise across
//! thread counts and submission orders.
//!
//! Malformed lines never abort the batch: each produces an error response
//! line in place (`{"id":…,"error":…}`, with `"id":null` when the line was
//! too broken to name itself).

use crate::args::Args;
use crate::jsonfmt::{json_str, mixed_payload, optimize_payload, solve_payload};
use psdp_core::{
    read_instance, read_mixed_instance, ApproxOptions, ConstantsMode, DecisionOptions,
    MixedApproxOptions, MixedInstance, PackingInstance,
};
use psdp_serve::json::{parse, JsonValue};
use psdp_serve::{
    BatchReport, RequestKind, Scheduler, SchedulerOptions, ServeRequest, ServeResponse,
    ServeResult, ServeStats,
};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Outcome of one `psdp serve` run: the stdout JSONL stream and the human
/// batch report for stderr.
pub struct ServeRun {
    /// One JSON response line per request, submission order.
    pub stdout: String,
    /// Human-readable batch report.
    pub summary: String,
}

/// What a successfully parsed line contributes: the request plus the
/// rendering context its response needs.
struct ParsedLine {
    request: ServeRequest,
    /// `"path"` (JSON-escaped) or `null` for inline instances.
    file_json: String,
}

/// Per-line parse state: a scheduled request (by index into the batch) or
/// an immediate error line.
enum Line {
    Request(usize),
    Error { id: Option<String>, msg: String },
}

/// `psdp serve` — read JSONL requests from stdin, print the batch report
/// to stderr, and return the response stream for stdout.
///
/// # Errors
/// Flag errors and stdin read failures as printable messages (per-request
/// failures become response lines instead).
pub fn serve(args: &Args) -> Result<String, String> {
    let mut input = String::new();
    std::io::Read::read_to_string(&mut std::io::stdin(), &mut input)
        .map_err(|e| format!("reading stdin: {e}"))?;
    let run = serve_on_input(args, &input)?;
    eprint!("{}", run.summary);
    Ok(run.stdout)
}

/// The testable core of [`serve`]: everything except stdin/stderr wiring.
///
/// # Errors
/// Flag errors as printable messages.
pub fn serve_on_input(args: &Args, input: &str) -> Result<ServeRun, String> {
    args.ensure_known(&["max-in-flight", "cache"])?;
    let max_in_flight: usize = args.flag("max-in-flight", 0)?;
    let cache_enabled = match args.str_flag("cache", "on").as_str() {
        "on" => true,
        "off" => false,
        other => return Err(format!("unknown --cache value `{other}` (on|off)")),
    };

    let mut pack_sources: BTreeMap<String, Arc<PackingInstance>> = BTreeMap::new();
    let mut mixed_sources: BTreeMap<String, Arc<MixedInstance>> = BTreeMap::new();
    let mut seen_ids: BTreeSet<String> = BTreeSet::new();
    let mut lines: Vec<Line> = Vec::new();
    let mut parsed: Vec<ParsedLine> = Vec::new();

    for raw in input.lines() {
        if raw.trim().is_empty() {
            continue;
        }
        match parse_request_line(raw, &mut pack_sources, &mut mixed_sources) {
            Ok(p) => {
                if !seen_ids.insert(p.request.id.clone()) {
                    lines.push(Line::Error {
                        id: Some(p.request.id.clone()),
                        msg: format!("duplicate request id `{}`", p.request.id),
                    });
                } else {
                    lines.push(Line::Request(parsed.len()));
                    parsed.push(p);
                }
            }
            Err((id, msg)) => lines.push(Line::Error { id, msg }),
        }
    }

    let requests: Vec<ServeRequest> = parsed.iter().map(|p| p.request.clone()).collect();
    let mut scheduler = Scheduler::new(SchedulerOptions {
        max_in_flight,
        cache_enabled,
        ..SchedulerOptions::default()
    });
    let output = scheduler.run_batch(&requests).map_err(|e| e.to_string())?;

    let mut stdout = String::new();
    for line in &lines {
        match line {
            Line::Error { id, msg } => {
                let id_json = match id {
                    Some(s) => json_str(s),
                    None => "null".to_string(),
                };
                stdout.push_str(&format!("{{\"id\":{id_json},\"error\":{}}}\n", json_str(msg)));
            }
            Line::Request(i) => match (parsed.get(*i), output.responses.get(*i)) {
                (Some(p), Some(resp)) => stdout.push_str(&render_response(p, resp)),
                // Indices are constructed in lockstep with the batch; if
                // that invariant ever breaks, emit an error line in place
                // rather than panicking mid-stream.
                _ => stdout.push_str(
                    "{\"id\":null,\"error\":\"response missing for request (internal)\"}\n",
                ),
            },
        }
    }
    Ok(ServeRun { stdout, summary: summarize(&output.report) })
}

fn summarize(r: &BatchReport) -> String {
    let ms = |d: std::time::Duration| format!("{:.2}", d.as_secs_f64() * 1e3);
    format!(
        "serve: {} requests in {} groups, {} errors\n\
         reuse: {} prep builds, {} prep reuses, {} memo hits, {} bracket injections\n\
         work:  {} engine evals, {} replayed rounds\n\
         time:  wall {} ms, queue wait total {} ms (max {} ms), service total {} ms\n",
        r.requests,
        r.groups,
        r.errors,
        r.prep_builds,
        r.prep_reuses,
        r.memo_hits,
        r.bracket_injections,
        r.engine_evals,
        r.replayed,
        ms(r.wall),
        ms(r.total_queue_wait),
        ms(r.max_queue_wait),
        ms(r.total_service),
    )
}

fn serve_stats_json(s: &ServeStats) -> String {
    format!(
        "{{\"prep_reused\":{},\"memoized\":{},\"bracket_injected\":{},\"engine_evals\":{},\"replayed\":{}}}",
        s.prep_reused, s.memoized, s.bracket_injected, s.engine_evals, s.replayed,
    )
}

/// In-place error line for invariant breaches while rendering: the stream
/// keeps flowing, the line says what went wrong.
fn internal_error_line(id_json: &str, msg: &str) -> String {
    format!("{{\"id\":{id_json},\"error\":{}}}\n", json_str(&format!("{msg} (internal)")))
}

/// Render one response line (reusing the one-shot `--json` schemas; see
/// the module docs for the determinism contract). Family mismatches
/// between result and payload cannot happen by construction, but render as
/// in-place error lines rather than panics if they ever do.
fn render_response(p: &ParsedLine, resp: &ServeResponse) -> String {
    let id_json = json_str(&resp.id);
    match &resp.result {
        Err(msg) => format!("{{\"id\":{id_json},\"error\":{}}}\n", json_str(msg)),
        Ok(ServeResult::Decision(d)) => {
            let psdp_serve::InstancePayload::Packing(inst) = &p.request.payload else {
                return internal_error_line(&id_json, "decision result with mixed payload");
            };
            format!(
                "{{\"id\":{id_json},\"command\":\"solve\",{},\"serve\":{}}}\n",
                solve_payload(&p.file_json, inst, d, false),
                serve_stats_json(&resp.stats),
            )
        }
        Ok(ServeResult::Optimize(r)) => {
            let psdp_serve::InstancePayload::Packing(inst) = &p.request.payload else {
                return internal_error_line(&id_json, "optimize result with mixed payload");
            };
            format!(
                "{{\"id\":{id_json},\"command\":\"optimize\",{},\"serve\":{}}}\n",
                optimize_payload(&p.file_json, inst, r, false),
                serve_stats_json(&resp.stats),
            )
        }
        Ok(ServeResult::Mixed(r)) => {
            let psdp_serve::InstancePayload::Mixed(inst) = &p.request.payload else {
                return internal_error_line(&id_json, "mixed result with packing payload");
            };
            format!(
                "{{\"id\":{id_json},\"command\":\"mixed\",{},\"serve\":{}}}\n",
                mixed_payload(&p.file_json, inst, r, false),
                serve_stats_json(&resp.stats),
            )
        }
    }
}

/// Keys accepted per command (typo guard, mirroring `Args::ensure_known`).
fn allowed_keys(command: &str) -> &'static [&'static str] {
    match command {
        "solve" => {
            &["id", "command", "file", "instance", "threshold", "eps", "engine", "mode", "seed"]
        }
        "optimize" => &["id", "command", "file", "instance", "eps", "warm"],
        "mixed" => &["id", "command", "file", "instance", "eps", "engine", "seed", "warm"],
        _ => &[],
    }
}

fn get_f64(obj: &JsonValue, key: &str, default: f64) -> Result<f64, String> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v.as_f64().ok_or_else(|| format!("field `{key}` must be a number")),
    }
}

fn get_u64(obj: &JsonValue, key: &str, default: u64) -> Result<u64, String> {
    let v = get_f64(obj, key, default as f64)?;
    if v < 0.0 || v.fract() != 0.0 {
        return Err(format!("field `{key}` must be a non-negative integer"));
    }
    Ok(v as u64)
}

fn get_bool(obj: &JsonValue, key: &str, default: bool) -> Result<bool, String> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v.as_bool().ok_or_else(|| format!("field `{key}` must be a boolean")),
    }
}

fn get_str<'v>(obj: &'v JsonValue, key: &str, default: &'static str) -> Result<&'v str, String> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v.as_str().ok_or_else(|| format!("field `{key}` must be a string")),
    }
}

/// Parse one request line. On failure returns `(best-effort id, message)`
/// so the error response can still be keyed.
fn parse_request_line(
    raw: &str,
    pack_sources: &mut BTreeMap<String, Arc<PackingInstance>>,
    mixed_sources: &mut BTreeMap<String, Arc<MixedInstance>>,
) -> Result<ParsedLine, (Option<String>, String)> {
    let obj = parse(raw).map_err(|e| (None, e.to_string()))?;
    let id = obj
        .get("id")
        .and_then(JsonValue::as_str)
        .map(str::to_string)
        .ok_or((None, "missing string field `id`".to_string()))?;
    let fail = |msg: String| (Some(id.clone()), msg);

    let command = obj
        .get("command")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| fail("missing string field `command`".to_string()))?
        .to_string();
    let allowed = allowed_keys(&command);
    if allowed.is_empty() {
        return Err(fail(format!("unknown command `{command}` (solve|optimize|mixed)")));
    }
    if let JsonValue::Obj(pairs) = &obj {
        for (k, _) in pairs {
            if !allowed.contains(&k.as_str()) {
                return Err(fail(format!("unknown field `{k}` for command `{command}`")));
            }
        }
    }

    // Instance source: exactly one of `file` / `instance` (inline text).
    // Loading is deferred so repeat sources (the common zipf case) hit the
    // parsed-instance cache without re-reading the file; a source repeated
    // within one batch therefore also consistently uses the first parse.
    let file = obj.get("file").and_then(JsonValue::as_str);
    let inline = obj.get("instance").and_then(JsonValue::as_str);
    type LoadFn = Box<dyn Fn() -> Result<String, String>>;
    let (source_key, file_json, load): (String, String, LoadFn) = match (file, inline) {
        (Some(path), None) => {
            let p = path.to_string();
            (
                format!("file:{path}"),
                json_str(path),
                Box::new(move || {
                    std::fs::read_to_string(&p).map_err(|e| format!("reading {p}: {e}"))
                }),
            )
        }
        (None, Some(text)) => {
            let t = text.to_string();
            (format!("inline:{text}"), "null".to_string(), Box::new(move || Ok(t.clone())))
        }
        (Some(_), Some(_)) => {
            return Err(fail("give either `file` or `instance`, not both".to_string()))
        }
        (None, None) => return Err(fail("missing `file` or `instance`".to_string())),
    };

    let eps = get_f64(&obj, "eps", 0.1).map_err(&fail)?;
    match command.as_str() {
        "solve" => {
            let inst = match pack_sources.get(&source_key) {
                Some(i) => Arc::clone(i),
                None => {
                    let text = load().map_err(&fail)?;
                    let i = Arc::new(read_instance(&text).map_err(|e| fail(e.to_string()))?);
                    pack_sources.insert(source_key.clone(), Arc::clone(&i));
                    i
                }
            };
            let threshold = get_f64(&obj, "threshold", 1.0).map_err(&fail)?;
            let seed = get_u64(&obj, "seed", 0).map_err(&fail)?;
            let engine =
                crate::commands::engine_of(get_str(&obj, "engine", "exact").map_err(&fail)?, eps)
                    .map_err(&fail)?;
            let mode = match get_str(&obj, "mode", "practical").map_err(&fail)? {
                "practical" => ConstantsMode::practical_default(),
                "strict" => ConstantsMode::PaperStrict,
                other => return Err(fail(format!("unknown mode `{other}` (practical|strict)"))),
            };
            let mut opts = DecisionOptions::practical(eps).with_engine(engine).with_seed(seed);
            opts.mode = mode;
            Ok(ParsedLine { request: ServeRequest::decision(id, inst, threshold, opts), file_json })
        }
        "optimize" => {
            let inst = match pack_sources.get(&source_key) {
                Some(i) => Arc::clone(i),
                None => {
                    let text = load().map_err(&fail)?;
                    let i = Arc::new(read_instance(&text).map_err(|e| fail(e.to_string()))?);
                    pack_sources.insert(source_key.clone(), Arc::clone(&i));
                    i
                }
            };
            let mut opts = ApproxOptions::practical(eps);
            opts.warm_start = get_bool(&obj, "warm", true).map_err(&fail)?;
            Ok(ParsedLine { request: ServeRequest::optimize(id, inst, opts), file_json })
        }
        "mixed" => {
            let inst = match mixed_sources.get(&source_key) {
                Some(i) => Arc::clone(i),
                None => {
                    let text = load().map_err(&fail)?;
                    let i = Arc::new(read_mixed_instance(&text).map_err(|e| fail(e.to_string()))?);
                    mixed_sources.insert(source_key.clone(), Arc::clone(&i));
                    i
                }
            };
            let seed = get_u64(&obj, "seed", 0).map_err(&fail)?;
            let engine =
                crate::commands::engine_of(get_str(&obj, "engine", "exact").map_err(&fail)?, eps)
                    .map_err(&fail)?;
            let mut opts = MixedApproxOptions::practical(eps);
            opts.warm_start = get_bool(&obj, "warm", true).map_err(&fail)?;
            opts.decision = opts.decision.with_engine(engine).with_seed(seed);
            Ok(ParsedLine {
                request: ServeRequest {
                    id,
                    payload: psdp_serve::InstancePayload::Mixed(inst),
                    kind: RequestKind::Mixed { opts },
                },
                file_json,
            })
        }
        // Already rejected by the `allowed_keys` check; keep the typed
        // error anyway so this match can never panic as commands evolve.
        other => Err(fail(format!("unknown command `{other}` (solve|optimize|mixed)"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psdp_core::write_instance;
    use psdp_sparse::PsdMatrix;

    fn args(v: &[&str]) -> Args {
        Args::parse(&v.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    fn inline_packing() -> String {
        let inst = PackingInstance::new(vec![
            PsdMatrix::Diagonal(vec![2.0, 0.0]),
            PsdMatrix::Diagonal(vec![0.0, 4.0]),
        ])
        .unwrap();
        write_instance(&inst).replace('\n', "\\n")
    }

    #[test]
    fn serve_answers_inline_requests_in_order() {
        let text = inline_packing();
        let input = format!(
            "{{\"id\":\"b\",\"command\":\"optimize\",\"instance\":\"{text}\",\"eps\":0.15}}\n\
             {{\"id\":\"a\",\"command\":\"solve\",\"instance\":\"{text}\",\"threshold\":0.5,\"eps\":0.2}}\n"
        );
        let run = serve_on_input(&args(&["serve"]), &input).unwrap();
        let lines: Vec<&str> = run.stdout.lines().collect();
        assert_eq!(lines.len(), 2);
        // Submission order preserved; ids attached.
        assert!(lines[0].starts_with("{\"id\":\"b\",\"command\":\"optimize\""), "{}", lines[0]);
        assert!(lines[1].starts_with("{\"id\":\"a\",\"command\":\"solve\""), "{}", lines[1]);
        assert!(lines[0].contains("\"converged\":true"), "{}", lines[0]);
        assert!(lines[0].contains("\"wall_ms\":null"), "{}", lines[0]);
        assert!(lines[1].contains("\"serve\":{"), "{}", lines[1]);
        assert!(run.summary.contains("2 requests"), "{}", run.summary);
    }

    #[test]
    fn malformed_lines_become_error_responses() {
        let text = inline_packing();
        let input = format!(
            "not json at all\n\
             {{\"id\":\"x\",\"command\":\"warp\",\"instance\":\"{text}\"}}\n\
             {{\"id\":\"ok\",\"command\":\"solve\",\"instance\":\"{text}\"}}\n\
             {{\"id\":\"ok\",\"command\":\"solve\",\"instance\":\"{text}\"}}\n\
             {{\"id\":\"y\",\"command\":\"solve\",\"instance\":\"psdp 1 garbage\"}}\n\
             {{\"id\":\"z\",\"command\":\"solve\",\"instance\":\"{text}\",\"epz\":0.1}}\n"
        );
        let run = serve_on_input(&args(&["serve"]), &input).unwrap();
        let lines: Vec<&str> = run.stdout.lines().collect();
        assert_eq!(lines.len(), 6);
        assert!(lines[0].starts_with("{\"id\":null,\"error\":"), "{}", lines[0]);
        assert!(lines[1].contains("unknown command"), "{}", lines[1]);
        assert!(lines[2].contains("\"command\":\"solve\""), "{}", lines[2]);
        assert!(lines[3].contains("duplicate request id"), "{}", lines[3]);
        assert!(lines[4].contains("\"error\":"), "{}", lines[4]);
        assert!(lines[5].contains("unknown field `epz`"), "{}", lines[5]);
    }

    #[test]
    fn serve_output_is_deterministic_and_cache_value_neutral() {
        let text = inline_packing();
        let input = format!(
            "{{\"id\":\"r1\",\"command\":\"optimize\",\"instance\":\"{text}\",\"eps\":0.15}}\n\
             {{\"id\":\"r2\",\"command\":\"optimize\",\"instance\":\"{text}\",\"eps\":0.15}}\n\
             {{\"id\":\"r3\",\"command\":\"solve\",\"instance\":\"{text}\",\"threshold\":0.7}}\n"
        );
        let a = serve_on_input(&args(&["serve"]), &input).unwrap();
        let b = serve_on_input(&args(&["serve"]), &input).unwrap();
        assert_eq!(a.stdout, b.stdout, "serve stdout must be deterministic");
        // Cached vs cold: the `serve` telemetry differs (that is the
        // point), but the result payloads must be byte-identical.
        let cold = serve_on_input(&args(&["serve", "--cache", "off"]), &input).unwrap();
        let strip = |s: &str| -> Vec<String> {
            s.lines().map(|l| l.split(",\"serve\":{").next().unwrap().to_string()).collect()
        };
        assert_eq!(strip(&a.stdout), strip(&cold.stdout));
        assert!(a.stdout.contains("\"memoized\":true"), "{}", a.stdout);
        assert!(!cold.stdout.contains("\"memoized\":true"), "{}", cold.stdout);
    }

    #[test]
    fn mixed_requests_serve_end_to_end() {
        let inst = psdp_core::MixedInstance::new(
            vec![PsdMatrix::Diagonal(vec![2.0, 0.0]), PsdMatrix::Diagonal(vec![0.0, 2.0])],
            vec![PsdMatrix::Diagonal(vec![1.0, 0.0]), PsdMatrix::Diagonal(vec![0.0, 1.0])],
        )
        .unwrap();
        let text = psdp_core::write_mixed_instance(&inst).replace('\n', "\\n");
        let input =
            format!("{{\"id\":\"m\",\"command\":\"mixed\",\"instance\":\"{text}\",\"eps\":0.1}}\n");
        let run = serve_on_input(&args(&["serve"]), &input).unwrap();
        let line = run.stdout.lines().next().unwrap();
        assert!(line.starts_with("{\"id\":\"m\",\"command\":\"mixed\""), "{line}");
        assert!(line.contains("\"threshold_lower\":"), "{line}");
        assert!(line.contains("\"best_point\":{"), "{line}");
    }

    #[test]
    fn bad_flags_rejected() {
        assert!(serve_on_input(&args(&["serve", "--cache", "sideways"]), "").is_err());
        assert!(serve_on_input(&args(&["serve", "--max-inflight", "2"]), "").is_err());
    }
}
