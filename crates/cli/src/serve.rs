//! The `psdp serve` subcommand: a JSONL front door over the
//! `psdp-serve` scheduler.
//!
//! One JSON request per stdin line; one JSON response per stdout line, in
//! submission order, reusing the `--json` schemas of `solve` / `optimize`
//! / `mixed` with two additions: the request's `id` and a `serve` object
//! carrying deterministic reuse telemetry. Response bytes are a pure
//! function of the request stream (`wall_ms` is emitted as `null`;
//! wall-clock telemetry goes to the stderr batch report instead), which is
//! what lets `tests/determinism.rs` compare serve output bitwise across
//! thread counts and submission orders.
//!
//! Malformed lines never abort the batch: each produces an error response
//! line in place (`{"id":…,"error":…}`, with `"id":null` when the line was
//! too broken to name itself). Lines are bounded (`--max-line-bytes`,
//! default 4 MiB): an oversized line becomes a typed in-place error, never
//! unbounded `String` growth.
//!
//! `--listen` switches from the one-shot batch scheduler to the
//! persistent streaming service ([`psdp_serve::service`]): requests are
//! dispatched to shard workers as lines arrive and responses stream out
//! in submission order; a full shard queue answers with a typed
//! `overloaded` error line. `--snapshot <path>` warm-loads the prepared
//! cache at startup (corrupted snapshot → clean cold start) and saves it
//! back on shutdown.

use crate::args::Args;
use crate::jsonfmt::{json_str, mixed_payload, optimize_payload, solve_payload};
use psdp_core::{
    read_instance, read_mixed_instance, ApproxOptions, ConstantsMode, DecisionOptions,
    MixedApproxOptions, MixedInstance, PackingInstance,
};
use psdp_serve::json::{parse, JsonValue};
use psdp_serve::{
    BatchReport, RequestKind, Scheduler, SchedulerOptions, ServeRequest, ServeResponse,
    ServeResult, ServeStats, Service, ServiceOptions, ServiceReport, StreamItem, StreamOutcome,
};
use std::collections::{BTreeMap, BTreeSet};
use std::io::{BufRead, Write};
use std::sync::Arc;

/// Default per-line byte bound for the JSONL readers.
const DEFAULT_MAX_LINE_BYTES: usize = 4 * 1024 * 1024;

/// Outcome of one `psdp serve` run: the stdout JSONL stream and the human
/// batch report for stderr.
pub struct ServeRun {
    /// One JSON response line per request, submission order.
    pub stdout: String,
    /// Human-readable batch report.
    pub summary: String,
}

/// What a successfully parsed line contributes: the request plus the
/// rendering context its response needs.
struct ParsedLine {
    request: ServeRequest,
    /// `"path"` (JSON-escaped) or `null` for inline instances.
    file_json: String,
}

/// Per-line parse state: a scheduled request (by index into the batch) or
/// an immediate error line.
enum Line {
    Request(usize),
    Error { id: Option<String>, msg: String },
}

/// `psdp serve` — read JSONL requests from stdin, print the batch report
/// to stderr, and return the response stream for stdout.
///
/// # Errors
/// Flag errors and stdin read failures as printable messages (per-request
/// failures become response lines instead).
pub fn serve(args: &Args) -> Result<String, String> {
    if args.bool_flag("listen") {
        let stdin = std::io::stdin();
        let mut stdout = std::io::stdout();
        let summary = serve_listen_on(args, &mut stdin.lock(), &mut stdout)?;
        eprint!("{summary}");
        // Responses were streamed to stdout as they were sequenced;
        // nothing is left to print at exit.
        return Ok(String::new());
    }
    let mut input = String::new();
    std::io::Read::read_to_string(&mut std::io::stdin(), &mut input)
        .map_err(|e| format!("reading stdin: {e}"))?;
    let run = serve_on_input(args, &input)?;
    eprint!("{}", run.summary);
    Ok(run.stdout)
}

/// The testable core of [`serve`]: everything except stdin/stderr wiring.
///
/// # Errors
/// Flag errors as printable messages.
pub fn serve_on_input(args: &Args, input: &str) -> Result<ServeRun, String> {
    args.ensure_known(&["max-in-flight", "cache", "max-line-bytes"])?;
    let max_in_flight: usize = args.flag("max-in-flight", 0)?;
    let max_line_bytes: usize = args.flag("max-line-bytes", DEFAULT_MAX_LINE_BYTES)?;
    let cache_enabled = match args.str_flag("cache", "on").as_str() {
        "on" => true,
        "off" => false,
        other => return Err(format!("unknown --cache value `{other}` (on|off)")),
    };

    let mut pack_sources: BTreeMap<String, Arc<PackingInstance>> = BTreeMap::new();
    let mut mixed_sources: BTreeMap<String, Arc<MixedInstance>> = BTreeMap::new();
    let mut seen_ids: BTreeSet<String> = BTreeSet::new();
    let mut lines: Vec<Line> = Vec::new();
    let mut parsed: Vec<ParsedLine> = Vec::new();

    for raw in input.lines() {
        if raw.trim().is_empty() {
            continue;
        }
        if raw.len() > max_line_bytes {
            lines
                .push(Line::Error { id: None, msg: oversized_line_msg(raw.len(), max_line_bytes) });
            continue;
        }
        match parse_request_line(raw, &mut pack_sources, &mut mixed_sources) {
            Ok(p) => {
                if !seen_ids.insert(p.request.id.clone()) {
                    lines.push(Line::Error {
                        id: Some(p.request.id.clone()),
                        msg: format!("duplicate request id `{}`", p.request.id),
                    });
                } else {
                    lines.push(Line::Request(parsed.len()));
                    parsed.push(p);
                }
            }
            Err((id, msg)) => lines.push(Line::Error { id, msg }),
        }
    }

    let requests: Vec<ServeRequest> = parsed.iter().map(|p| p.request.clone()).collect();
    let mut scheduler = Scheduler::new(SchedulerOptions {
        max_in_flight,
        cache_enabled,
        ..SchedulerOptions::default()
    });
    let output = scheduler.run_batch(&requests).map_err(|e| e.to_string())?;

    let mut stdout = String::new();
    for line in &lines {
        match line {
            Line::Error { id, msg } => {
                let id_json = match id {
                    Some(s) => json_str(s),
                    None => "null".to_string(),
                };
                stdout.push_str(&format!("{{\"id\":{id_json},\"error\":{}}}\n", json_str(msg)));
            }
            Line::Request(i) => match (parsed.get(*i), output.responses.get(*i)) {
                (Some(p), Some(resp)) => stdout.push_str(&render_response(p, resp)),
                // Indices are constructed in lockstep with the batch; if
                // that invariant ever breaks, emit an error line in place
                // rather than panicking mid-stream.
                _ => stdout.push_str(
                    "{\"id\":null,\"error\":\"response missing for request (internal)\"}\n",
                ),
            },
        }
    }
    Ok(ServeRun { stdout, summary: summarize(&output.report) })
}

/// Caller context carried through the streaming service pipeline for each
/// admitted line: what the sequenced outcome needs to render itself.
enum LineCtx {
    /// A parsed request (rendering needs its payload and `file` field).
    Request(ParsedLine),
    /// An admission-stage error; the id (already JSON-rendered) keys the
    /// error line.
    Error { id_json: String },
}

/// One line from the bounded JSONL reader.
enum BoundedLine {
    /// End of the stream.
    Eof,
    /// A complete line within the byte bound (without its newline).
    Line(String),
    /// A line over the bound: its bytes were discarded as they streamed
    /// past (never accumulated), `bytes` is how long it was.
    Oversized { bytes: usize },
}

/// Read one newline-terminated line, never buffering more than
/// `max_bytes` of it: once a line exceeds the bound, the remainder is
/// consumed and dropped chunk-by-chunk until the newline resyncs the
/// stream.
fn read_bounded_line(r: &mut impl BufRead, max_bytes: usize) -> Result<BoundedLine, String> {
    let mut buf: Vec<u8> = Vec::new();
    let mut dropped = false;
    let mut total = 0usize;
    let mut saw_any = false;
    loop {
        let chunk = r.fill_buf().map_err(|e| format!("reading request stream: {e}"))?;
        if chunk.is_empty() {
            if !saw_any {
                return Ok(BoundedLine::Eof);
            }
            break;
        }
        saw_any = true;
        if let Some(pos) = chunk.iter().position(|&b| b == b'\n') {
            total += pos;
            if !dropped && total > max_bytes {
                dropped = true;
                buf.clear();
            }
            if !dropped {
                buf.extend_from_slice(chunk.get(..pos).unwrap_or(&[]));
            }
            r.consume(pos + 1);
            break;
        }
        let len = chunk.len();
        total += len;
        if !dropped && total > max_bytes {
            dropped = true;
            buf.clear();
        }
        if !dropped {
            buf.extend_from_slice(chunk);
        }
        r.consume(len);
    }
    if dropped {
        return Ok(BoundedLine::Oversized { bytes: total });
    }
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    // Invalid UTF-8 flows on as a (lossy) line so the JSON parser can
    // reject it with a typed in-place error instead of aborting the loop.
    Ok(BoundedLine::Line(String::from_utf8_lossy(&buf).into_owned()))
}

/// `psdp serve --listen` — the persistent streaming service over an
/// arbitrary reader/writer pair (stdin/stdout in production, buffers in
/// tests). Responses stream to `writer` in submission order as the
/// sequencer emits them; the returned string is the stderr summary.
///
/// # Errors
/// Flag errors, stream read failures, and response write failures as
/// printable messages. Per-request failures become response lines;
/// snapshot load/save problems degrade to notes in the summary (a
/// corrupted snapshot means a cold start, never a refusal to serve).
pub fn serve_listen_on(
    args: &Args,
    reader: &mut impl BufRead,
    writer: &mut (impl Write + Send),
) -> Result<String, String> {
    args.ensure_known(&["listen", "cache", "shards", "queue-cap", "snapshot", "max-line-bytes"])?;
    let shards: usize = args.flag("shards", 4)?;
    let queue_cap: usize = args.flag("queue-cap", 1024)?;
    let max_line_bytes: usize = args.flag("max-line-bytes", DEFAULT_MAX_LINE_BYTES)?;
    let cache_enabled = match args.str_flag("cache", "on").as_str() {
        "on" => true,
        "off" => false,
        other => return Err(format!("unknown --cache value `{other}` (on|off)")),
    };
    let snapshot_path = args.opt_flag("snapshot").map(str::to_string);

    let mut service = Service::new(ServiceOptions {
        shards,
        queue_capacity: queue_cap,
        cache_enabled,
        ..ServiceOptions::default()
    });

    let mut notes = String::new();
    if let Some(path) = &snapshot_path {
        match std::fs::read_to_string(path) {
            Ok(text) => match service.load_snapshot(&text) {
                Ok(n) => {
                    notes
                        .push_str(&format!("snapshot: warm-loaded {n} fingerprints from {path}\n"));
                }
                Err(e) => notes.push_str(&format!("snapshot: {e}; starting cold\n")),
            },
            Err(_) => notes.push_str(&format!("snapshot: {path} not readable; starting cold\n")),
        }
    }

    let mut pack_sources: BTreeMap<String, Arc<PackingInstance>> = BTreeMap::new();
    let mut mixed_sources: BTreeMap<String, Arc<MixedInstance>> = BTreeMap::new();
    let mut seen_ids: BTreeSet<String> = BTreeSet::new();
    let mut read_err: Option<String> = None;

    let items = std::iter::from_fn(|| loop {
        match read_bounded_line(reader, max_line_bytes) {
            Err(e) => {
                read_err = Some(e);
                return None;
            }
            Ok(BoundedLine::Eof) => return None,
            Ok(BoundedLine::Oversized { bytes }) => {
                return Some(StreamItem::Reject {
                    error: oversized_line_msg(bytes, max_line_bytes),
                    ctx: LineCtx::Error { id_json: "null".to_string() },
                });
            }
            Ok(BoundedLine::Line(raw)) => {
                if raw.trim().is_empty() {
                    continue;
                }
                match parse_request_line(&raw, &mut pack_sources, &mut mixed_sources) {
                    Ok(p) => {
                        if !seen_ids.insert(p.request.id.clone()) {
                            return Some(StreamItem::Reject {
                                error: format!("duplicate request id `{}`", p.request.id),
                                ctx: LineCtx::Error { id_json: json_str(&p.request.id) },
                            });
                        }
                        let request = p.request.clone();
                        return Some(StreamItem::Execute { request, ctx: LineCtx::Request(p) });
                    }
                    Err((id, msg)) => {
                        let id_json = match id {
                            Some(s) => json_str(&s),
                            None => "null".to_string(),
                        };
                        return Some(StreamItem::Reject {
                            error: msg,
                            ctx: LineCtx::Error { id_json },
                        });
                    }
                }
            }
        }
    });

    let mut write_err: Option<std::io::Error> = None;
    let report = service.run_stream(items, |ctx, outcome| {
        if write_err.is_some() {
            return;
        }
        let line = render_outcome(&ctx, &outcome);
        // Flush per line: a streaming client must see each response as it
        // is sequenced, not when a block buffer happens to fill.
        if let Err(e) = writer.write_all(line.as_bytes()).and_then(|()| writer.flush()) {
            write_err = Some(e);
        }
    });

    if let Some(e) = read_err {
        return Err(e);
    }
    if let Some(e) = write_err {
        return Err(format!("writing response stream: {e}"));
    }
    if let Some(path) = &snapshot_path {
        if cache_enabled {
            match std::fs::write(path, service.snapshot_string()) {
                Ok(()) => notes.push_str(&format!(
                    "snapshot: saved {} fingerprints to {path}\n",
                    service.cached_fingerprints()
                )),
                Err(e) => notes.push_str(&format!("snapshot: save to {path} failed: {e}\n")),
            }
        }
    }
    Ok(format!("{notes}{}", summarize_service(&report)))
}

/// The testable core of `--listen`: run the streaming service over an
/// input string and capture the response stream.
///
/// # Errors
/// Same contract as [`serve_listen_on`].
pub fn serve_listen_on_input(args: &Args, input: &str) -> Result<ServeRun, String> {
    let mut reader = input.as_bytes();
    let mut out: Vec<u8> = Vec::new();
    let summary = serve_listen_on(args, &mut reader, &mut out)?;
    Ok(ServeRun { stdout: String::from_utf8_lossy(&out).into_owned(), summary })
}

/// Render one sequenced stream outcome as its JSONL line.
fn render_outcome(ctx: &LineCtx, outcome: &StreamOutcome) -> String {
    match outcome {
        StreamOutcome::Rejected { error } => {
            let id_json = match ctx {
                LineCtx::Error { id_json } => id_json.as_str(),
                LineCtx::Request(_) => "null",
            };
            format!("{{\"id\":{id_json},\"error\":{}}}\n", json_str(error))
        }
        StreamOutcome::Overloaded { id, shard } => format!(
            "{{\"id\":{},\"error\":\"overloaded\",\"overloaded\":true,\"shard\":{shard}}}\n",
            json_str(id)
        ),
        StreamOutcome::Response(resp) => match ctx {
            LineCtx::Request(p) => render_response(p, resp),
            LineCtx::Error { id_json } => {
                internal_error_line(id_json, "response without request context")
            }
        },
    }
}

fn summarize_service(r: &ServiceReport) -> String {
    let ms = |d: std::time::Duration| format!("{:.2}", d.as_secs_f64() * 1e3);
    let secs = r.wall.as_secs_f64();
    let rps = if secs > 0.0 { r.executed as f64 / secs } else { 0.0 };
    format!(
        "listen: {} requests ({} executed, {} rejected, {} overloaded), {} errors\n\
         reuse: {} prep builds, {} prep reuses, {} memo hits, {} bracket injections\n\
         work:  {} engine evals, {} replayed rounds\n\
         time:  wall {} ms ({rps:.0} req/s), latency service {}; queue {}\n\
         queues: high-water {:?}\n",
        r.requests,
        r.executed,
        r.rejected,
        r.overloaded,
        r.errors,
        r.prep_builds,
        r.tiers.prep_reuses,
        r.tiers.memo_hits,
        r.tiers.bracket_injections,
        r.engine_evals,
        r.replayed,
        ms(r.wall),
        r.service_hist.stats().render_ms(),
        r.queue_hist.stats().render_ms(),
        r.queue_high_water,
    )
}

/// Typed message for a line over the `--max-line-bytes` bound.
fn oversized_line_msg(len: usize, max: usize) -> String {
    format!("line exceeds --max-line-bytes ({len} > {max} bytes)")
}

fn summarize(r: &BatchReport) -> String {
    let ms = |d: std::time::Duration| format!("{:.2}", d.as_secs_f64() * 1e3);
    format!(
        "serve: {} requests in {} groups, {} errors\n\
         reuse: {} prep builds, {} prep reuses, {} memo hits, {} bracket injections\n\
         work:  {} engine evals, {} replayed rounds\n\
         time:  wall {} ms, queue wait total {} ms (max {} ms), service total {} ms\n\
         latency: service {}; queue {}\n",
        r.requests,
        r.groups,
        r.errors,
        r.prep_builds,
        r.tiers.prep_reuses,
        r.tiers.memo_hits,
        r.tiers.bracket_injections,
        r.engine_evals,
        r.replayed,
        ms(r.wall),
        ms(r.total_queue_wait),
        ms(r.max_queue_wait),
        ms(r.total_service),
        r.service_hist.stats().render_ms(),
        r.queue_hist.stats().render_ms(),
    )
}

fn serve_stats_json(s: &ServeStats) -> String {
    let tier = match s.hit_tier() {
        Some(t) => json_str(t),
        None => "null".to_string(),
    };
    format!(
        "{{\"prep_reused\":{},\"memoized\":{},\"bracket_injected\":{},\"tier\":{tier},\"engine_evals\":{},\"replayed\":{}}}",
        s.prep_reused, s.memoized, s.bracket_injected, s.engine_evals, s.replayed,
    )
}

/// In-place error line for invariant breaches while rendering: the stream
/// keeps flowing, the line says what went wrong.
fn internal_error_line(id_json: &str, msg: &str) -> String {
    format!("{{\"id\":{id_json},\"error\":{}}}\n", json_str(&format!("{msg} (internal)")))
}

/// Render one response line (reusing the one-shot `--json` schemas; see
/// the module docs for the determinism contract). Family mismatches
/// between result and payload cannot happen by construction, but render as
/// in-place error lines rather than panics if they ever do.
fn render_response(p: &ParsedLine, resp: &ServeResponse) -> String {
    let id_json = json_str(&resp.id);
    match &resp.result {
        Err(msg) => format!("{{\"id\":{id_json},\"error\":{}}}\n", json_str(msg)),
        Ok(ServeResult::Decision(d)) => {
            let psdp_serve::InstancePayload::Packing(inst) = &p.request.payload else {
                return internal_error_line(&id_json, "decision result with mixed payload");
            };
            format!(
                "{{\"id\":{id_json},\"command\":\"solve\",{},\"serve\":{}}}\n",
                solve_payload(&p.file_json, inst, d, false),
                serve_stats_json(&resp.stats),
            )
        }
        Ok(ServeResult::Optimize(r)) => {
            let psdp_serve::InstancePayload::Packing(inst) = &p.request.payload else {
                return internal_error_line(&id_json, "optimize result with mixed payload");
            };
            format!(
                "{{\"id\":{id_json},\"command\":\"optimize\",{},\"serve\":{}}}\n",
                optimize_payload(&p.file_json, inst, r, false),
                serve_stats_json(&resp.stats),
            )
        }
        Ok(ServeResult::Mixed(r)) => {
            let psdp_serve::InstancePayload::Mixed(inst) = &p.request.payload else {
                return internal_error_line(&id_json, "mixed result with packing payload");
            };
            format!(
                "{{\"id\":{id_json},\"command\":\"mixed\",{},\"serve\":{}}}\n",
                mixed_payload(&p.file_json, inst, r, false),
                serve_stats_json(&resp.stats),
            )
        }
    }
}

/// Keys accepted per command (typo guard, mirroring `Args::ensure_known`).
fn allowed_keys(command: &str) -> &'static [&'static str] {
    match command {
        "solve" => {
            &["id", "command", "file", "instance", "threshold", "eps", "engine", "mode", "seed"]
        }
        "optimize" => &["id", "command", "file", "instance", "eps", "warm"],
        "mixed" => &["id", "command", "file", "instance", "eps", "engine", "seed", "warm"],
        _ => &[],
    }
}

fn get_f64(obj: &JsonValue, key: &str, default: f64) -> Result<f64, String> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v.as_f64().ok_or_else(|| format!("field `{key}` must be a number")),
    }
}

fn get_u64(obj: &JsonValue, key: &str, default: u64) -> Result<u64, String> {
    let v = get_f64(obj, key, default as f64)?;
    if v < 0.0 || v.fract() != 0.0 {
        return Err(format!("field `{key}` must be a non-negative integer"));
    }
    Ok(v as u64)
}

fn get_bool(obj: &JsonValue, key: &str, default: bool) -> Result<bool, String> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v.as_bool().ok_or_else(|| format!("field `{key}` must be a boolean")),
    }
}

fn get_str<'v>(obj: &'v JsonValue, key: &str, default: &'static str) -> Result<&'v str, String> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v.as_str().ok_or_else(|| format!("field `{key}` must be a string")),
    }
}

/// Parse one request line. On failure returns `(best-effort id, message)`
/// so the error response can still be keyed.
fn parse_request_line(
    raw: &str,
    pack_sources: &mut BTreeMap<String, Arc<PackingInstance>>,
    mixed_sources: &mut BTreeMap<String, Arc<MixedInstance>>,
) -> Result<ParsedLine, (Option<String>, String)> {
    let obj = parse(raw).map_err(|e| (None, e.to_string()))?;
    let id = obj
        .get("id")
        .and_then(JsonValue::as_str)
        .map(str::to_string)
        .ok_or((None, "missing string field `id`".to_string()))?;
    let fail = |msg: String| (Some(id.clone()), msg);

    let command = obj
        .get("command")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| fail("missing string field `command`".to_string()))?
        .to_string();
    let allowed = allowed_keys(&command);
    if allowed.is_empty() {
        return Err(fail(format!("unknown command `{command}` (solve|optimize|mixed)")));
    }
    if let JsonValue::Obj(pairs) = &obj {
        for (k, _) in pairs {
            if !allowed.contains(&k.as_str()) {
                return Err(fail(format!("unknown field `{k}` for command `{command}`")));
            }
        }
    }

    // Instance source: exactly one of `file` / `instance` (inline text).
    // Loading is deferred so repeat sources (the common zipf case) hit the
    // parsed-instance cache without re-reading the file; a source repeated
    // within one batch therefore also consistently uses the first parse.
    let file = obj.get("file").and_then(JsonValue::as_str);
    let inline = obj.get("instance").and_then(JsonValue::as_str);
    type LoadFn = Box<dyn Fn() -> Result<String, String>>;
    let (source_key, file_json, load): (String, String, LoadFn) = match (file, inline) {
        (Some(path), None) => {
            let p = path.to_string();
            (
                format!("file:{path}"),
                json_str(path),
                Box::new(move || {
                    std::fs::read_to_string(&p).map_err(|e| format!("reading {p}: {e}"))
                }),
            )
        }
        (None, Some(text)) => {
            let t = text.to_string();
            (format!("inline:{text}"), "null".to_string(), Box::new(move || Ok(t.clone())))
        }
        (Some(_), Some(_)) => {
            return Err(fail("give either `file` or `instance`, not both".to_string()))
        }
        (None, None) => return Err(fail("missing `file` or `instance`".to_string())),
    };

    let eps = get_f64(&obj, "eps", 0.1).map_err(&fail)?;
    match command.as_str() {
        "solve" => {
            let inst = match pack_sources.get(&source_key) {
                Some(i) => Arc::clone(i),
                None => {
                    let text = load().map_err(&fail)?;
                    let i = Arc::new(read_instance(&text).map_err(|e| fail(e.to_string()))?);
                    pack_sources.insert(source_key.clone(), Arc::clone(&i));
                    i
                }
            };
            let threshold = get_f64(&obj, "threshold", 1.0).map_err(&fail)?;
            let seed = get_u64(&obj, "seed", 0).map_err(&fail)?;
            let engine =
                crate::commands::engine_of(get_str(&obj, "engine", "exact").map_err(&fail)?, eps)
                    .map_err(&fail)?;
            let mode = match get_str(&obj, "mode", "practical").map_err(&fail)? {
                "practical" => ConstantsMode::practical_default(),
                "strict" => ConstantsMode::PaperStrict,
                other => return Err(fail(format!("unknown mode `{other}` (practical|strict)"))),
            };
            let mut opts = DecisionOptions::practical(eps).with_engine(engine).with_seed(seed);
            opts.mode = mode;
            Ok(ParsedLine { request: ServeRequest::decision(id, inst, threshold, opts), file_json })
        }
        "optimize" => {
            let inst = match pack_sources.get(&source_key) {
                Some(i) => Arc::clone(i),
                None => {
                    let text = load().map_err(&fail)?;
                    let i = Arc::new(read_instance(&text).map_err(|e| fail(e.to_string()))?);
                    pack_sources.insert(source_key.clone(), Arc::clone(&i));
                    i
                }
            };
            let mut opts = ApproxOptions::practical(eps);
            opts.warm_start = get_bool(&obj, "warm", true).map_err(&fail)?;
            Ok(ParsedLine { request: ServeRequest::optimize(id, inst, opts), file_json })
        }
        "mixed" => {
            let inst = match mixed_sources.get(&source_key) {
                Some(i) => Arc::clone(i),
                None => {
                    let text = load().map_err(&fail)?;
                    let i = Arc::new(read_mixed_instance(&text).map_err(|e| fail(e.to_string()))?);
                    mixed_sources.insert(source_key.clone(), Arc::clone(&i));
                    i
                }
            };
            let seed = get_u64(&obj, "seed", 0).map_err(&fail)?;
            let engine =
                crate::commands::engine_of(get_str(&obj, "engine", "exact").map_err(&fail)?, eps)
                    .map_err(&fail)?;
            let mut opts = MixedApproxOptions::practical(eps);
            opts.warm_start = get_bool(&obj, "warm", true).map_err(&fail)?;
            opts.decision = opts.decision.with_engine(engine).with_seed(seed);
            Ok(ParsedLine {
                request: ServeRequest {
                    id,
                    payload: psdp_serve::InstancePayload::Mixed(inst),
                    kind: RequestKind::Mixed { opts },
                },
                file_json,
            })
        }
        // Already rejected by the `allowed_keys` check; keep the typed
        // error anyway so this match can never panic as commands evolve.
        other => Err(fail(format!("unknown command `{other}` (solve|optimize|mixed)"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psdp_core::write_instance;
    use psdp_sparse::PsdMatrix;

    fn args(v: &[&str]) -> Args {
        Args::parse(&v.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    fn inline_packing() -> String {
        let inst = PackingInstance::new(vec![
            PsdMatrix::Diagonal(vec![2.0, 0.0]),
            PsdMatrix::Diagonal(vec![0.0, 4.0]),
        ])
        .unwrap();
        write_instance(&inst).replace('\n', "\\n")
    }

    #[test]
    fn serve_answers_inline_requests_in_order() {
        let text = inline_packing();
        let input = format!(
            "{{\"id\":\"b\",\"command\":\"optimize\",\"instance\":\"{text}\",\"eps\":0.15}}\n\
             {{\"id\":\"a\",\"command\":\"solve\",\"instance\":\"{text}\",\"threshold\":0.5,\"eps\":0.2}}\n"
        );
        let run = serve_on_input(&args(&["serve"]), &input).unwrap();
        let lines: Vec<&str> = run.stdout.lines().collect();
        assert_eq!(lines.len(), 2);
        // Submission order preserved; ids attached.
        assert!(lines[0].starts_with("{\"id\":\"b\",\"command\":\"optimize\""), "{}", lines[0]);
        assert!(lines[1].starts_with("{\"id\":\"a\",\"command\":\"solve\""), "{}", lines[1]);
        assert!(lines[0].contains("\"converged\":true"), "{}", lines[0]);
        assert!(lines[0].contains("\"wall_ms\":null"), "{}", lines[0]);
        assert!(lines[1].contains("\"serve\":{"), "{}", lines[1]);
        assert!(run.summary.contains("2 requests"), "{}", run.summary);
    }

    #[test]
    fn malformed_lines_become_error_responses() {
        let text = inline_packing();
        let input = format!(
            "not json at all\n\
             {{\"id\":\"x\",\"command\":\"warp\",\"instance\":\"{text}\"}}\n\
             {{\"id\":\"ok\",\"command\":\"solve\",\"instance\":\"{text}\"}}\n\
             {{\"id\":\"ok\",\"command\":\"solve\",\"instance\":\"{text}\"}}\n\
             {{\"id\":\"y\",\"command\":\"solve\",\"instance\":\"psdp 1 garbage\"}}\n\
             {{\"id\":\"z\",\"command\":\"solve\",\"instance\":\"{text}\",\"epz\":0.1}}\n"
        );
        let run = serve_on_input(&args(&["serve"]), &input).unwrap();
        let lines: Vec<&str> = run.stdout.lines().collect();
        assert_eq!(lines.len(), 6);
        assert!(lines[0].starts_with("{\"id\":null,\"error\":"), "{}", lines[0]);
        assert!(lines[1].contains("unknown command"), "{}", lines[1]);
        assert!(lines[2].contains("\"command\":\"solve\""), "{}", lines[2]);
        assert!(lines[3].contains("duplicate request id"), "{}", lines[3]);
        assert!(lines[4].contains("\"error\":"), "{}", lines[4]);
        assert!(lines[5].contains("unknown field `epz`"), "{}", lines[5]);
    }

    #[test]
    fn serve_output_is_deterministic_and_cache_value_neutral() {
        let text = inline_packing();
        let input = format!(
            "{{\"id\":\"r1\",\"command\":\"optimize\",\"instance\":\"{text}\",\"eps\":0.15}}\n\
             {{\"id\":\"r2\",\"command\":\"optimize\",\"instance\":\"{text}\",\"eps\":0.15}}\n\
             {{\"id\":\"r3\",\"command\":\"solve\",\"instance\":\"{text}\",\"threshold\":0.7}}\n"
        );
        let a = serve_on_input(&args(&["serve"]), &input).unwrap();
        let b = serve_on_input(&args(&["serve"]), &input).unwrap();
        assert_eq!(a.stdout, b.stdout, "serve stdout must be deterministic");
        // Cached vs cold: the `serve` telemetry differs (that is the
        // point), but the result payloads must be byte-identical.
        let cold = serve_on_input(&args(&["serve", "--cache", "off"]), &input).unwrap();
        let strip = |s: &str| -> Vec<String> {
            s.lines().map(|l| l.split(",\"serve\":{").next().unwrap().to_string()).collect()
        };
        assert_eq!(strip(&a.stdout), strip(&cold.stdout));
        assert!(a.stdout.contains("\"memoized\":true"), "{}", a.stdout);
        assert!(!cold.stdout.contains("\"memoized\":true"), "{}", cold.stdout);
    }

    #[test]
    fn mixed_requests_serve_end_to_end() {
        let inst = psdp_core::MixedInstance::new(
            vec![PsdMatrix::Diagonal(vec![2.0, 0.0]), PsdMatrix::Diagonal(vec![0.0, 2.0])],
            vec![PsdMatrix::Diagonal(vec![1.0, 0.0]), PsdMatrix::Diagonal(vec![0.0, 1.0])],
        )
        .unwrap();
        let text = psdp_core::write_mixed_instance(&inst).replace('\n', "\\n");
        let input =
            format!("{{\"id\":\"m\",\"command\":\"mixed\",\"instance\":\"{text}\",\"eps\":0.1}}\n");
        let run = serve_on_input(&args(&["serve"]), &input).unwrap();
        let line = run.stdout.lines().next().unwrap();
        assert!(line.starts_with("{\"id\":\"m\",\"command\":\"mixed\""), "{line}");
        assert!(line.contains("\"threshold_lower\":"), "{line}");
        assert!(line.contains("\"best_point\":{"), "{line}");
    }

    #[test]
    fn bad_flags_rejected() {
        assert!(serve_on_input(&args(&["serve", "--cache", "sideways"]), "").is_err());
        assert!(serve_on_input(&args(&["serve", "--max-inflight", "2"]), "").is_err());
        assert!(
            serve_listen_on_input(&args(&["serve", "--listen", "--cache", "maybe"]), "").is_err()
        );
        assert!(serve_listen_on_input(&args(&["serve", "--listen", "--max-in-flight", "2"]), "")
            .is_err());
    }

    #[test]
    fn oversized_lines_error_in_place_without_buffering() {
        let text = inline_packing();
        let big = "x".repeat(512);
        let input = format!(
            "{{\"id\":\"pad\",\"junk\":\"{big}\"}}\n\
             {{\"id\":\"ok\",\"command\":\"solve\",\"instance\":\"{text}\"}}\n"
        );
        for run in [
            serve_on_input(&args(&["serve", "--max-line-bytes", "256"]), &input).unwrap(),
            serve_listen_on_input(&args(&["serve", "--listen", "--max-line-bytes", "256"]), &input)
                .unwrap(),
        ] {
            let lines: Vec<&str> = run.stdout.lines().collect();
            assert_eq!(lines.len(), 2);
            assert!(lines[0].contains("exceeds --max-line-bytes"), "{}", lines[0]);
            assert!(lines[1].contains("\"id\":\"ok\",\"command\":\"solve\""), "{}", lines[1]);
        }
        // The stream resyncs at the newline: the request after the huge
        // line is untouched even when the bound is far below the line.
        let run =
            serve_listen_on_input(&args(&["serve", "--listen", "--max-line-bytes", "64"]), &input)
                .unwrap();
        assert!(run.stdout.lines().count() == 2, "{}", run.stdout);
    }

    #[test]
    fn listen_streams_in_submission_order_with_in_place_errors() {
        let text = inline_packing();
        let input = format!(
            "{{\"id\":\"b\",\"command\":\"optimize\",\"instance\":\"{text}\",\"eps\":0.15}}\n\
             not json at all\n\
             {{\"id\":\"b\",\"command\":\"solve\",\"instance\":\"{text}\"}}\n\
             \n\
             {{\"id\":\"a\",\"command\":\"solve\",\"instance\":\"{text}\",\"threshold\":0.5,\"eps\":0.2}}\n"
        );
        let run = serve_listen_on_input(&args(&["serve", "--listen"]), &input).unwrap();
        let lines: Vec<&str> = run.stdout.lines().collect();
        assert_eq!(lines.len(), 4, "{}", run.stdout);
        assert!(lines[0].starts_with("{\"id\":\"b\",\"command\":\"optimize\""), "{}", lines[0]);
        assert!(lines[1].starts_with("{\"id\":null,\"error\":"), "{}", lines[1]);
        assert!(lines[2].contains("duplicate request id"), "{}", lines[2]);
        assert!(lines[3].starts_with("{\"id\":\"a\",\"command\":\"solve\""), "{}", lines[3]);
        assert!(run.summary.contains("listen: 4 requests"), "{}", run.summary);
        assert!(run.summary.contains("latency service"), "{}", run.summary);
    }

    #[test]
    fn listen_matches_one_shot_payloads_and_shard_count_is_invisible() {
        let text = inline_packing();
        let input = format!(
            "{{\"id\":\"r1\",\"command\":\"optimize\",\"instance\":\"{text}\",\"eps\":0.15}}\n\
             {{\"id\":\"r2\",\"command\":\"optimize\",\"instance\":\"{text}\",\"eps\":0.15}}\n\
             {{\"id\":\"r3\",\"command\":\"solve\",\"instance\":\"{text}\",\"threshold\":0.7}}\n"
        );
        let one_shot = serve_on_input(&args(&["serve"]), &input).unwrap();
        let listen = serve_listen_on_input(&args(&["serve", "--listen"]), &input).unwrap();
        // Same cache tiers in both modes: the whole response lines match,
        // `serve` telemetry included.
        assert_eq!(one_shot.stdout, listen.stdout);
        for shards in ["1", "3", "8"] {
            let other =
                serve_listen_on_input(&args(&["serve", "--listen", "--shards", shards]), &input)
                    .unwrap();
            assert_eq!(listen.stdout, other.stdout, "shards={shards}");
        }
    }

    #[test]
    fn listen_snapshot_roundtrip_warms_the_cache() {
        let text = inline_packing();
        let input = format!(
            "{{\"id\":\"r1\",\"command\":\"optimize\",\"instance\":\"{text}\",\"eps\":0.15}}\n"
        );
        let path =
            std::env::temp_dir().join(format!("psdp-listen-snap-{}.txt", std::process::id()));
        let path_s = path.to_string_lossy().into_owned();
        let cold =
            serve_listen_on_input(&args(&["serve", "--listen", "--snapshot", &path_s]), &input)
                .unwrap();
        assert!(cold.summary.contains("not readable; starting cold"), "{}", cold.summary);
        assert!(cold.summary.contains("snapshot: saved 1 fingerprints"), "{}", cold.summary);
        let warm =
            serve_listen_on_input(&args(&["serve", "--listen", "--snapshot", &path_s]), &input)
                .unwrap();
        assert!(warm.summary.contains("warm-loaded 1 fingerprints"), "{}", warm.summary);
        assert!(warm.summary.contains("1 prep reuses"), "{}", warm.summary);
        assert!(warm.summary.contains("0 prep builds"), "{}", warm.summary);
        // Warm start changes only the telemetry, never the payload.
        let strip = |s: &str| -> Vec<String> {
            s.lines().map(|l| l.split(",\"serve\":{").next().unwrap().to_string()).collect()
        };
        assert_eq!(strip(&cold.stdout), strip(&warm.stdout));
        assert!(warm.stdout.contains("\"tier\":\"prepared\""), "{}", warm.stdout);
        // A corrupted snapshot degrades to a cold start, never a failure.
        std::fs::write(&path, "psdp snapshot v1\nentries 1\ngarbage\n").unwrap();
        let recovered =
            serve_listen_on_input(&args(&["serve", "--listen", "--snapshot", &path_s]), &input)
                .unwrap();
        assert!(recovered.summary.contains("starting cold"), "{}", recovered.summary);
        assert_eq!(recovered.stdout, cold.stdout);
        let _ = std::fs::remove_file(&path);
    }
}
