//! The `psdp` subcommands: generate / info / solve / optimize.
//!
//! Kept separate from `main.rs` so the logic is unit-testable without
//! spawning processes; every command takes parsed [`Args`] and returns the
//! text it would print.

use crate::args::Args;
use crate::jsonfmt::{json_str, mixed_payload, optimize_payload, solve_payload};
use psdp_core::{
    binary_family, is_binary_instance, read_instance, read_instance_bin, read_mixed_instance,
    read_mixed_instance_bin, verify_dual, verify_mixed_feasible, verify_mixed_infeasible,
    verify_primal, write_instance, write_instance_bin, write_mixed_instance,
    write_mixed_instance_bin, ApproxOptions, ConstantsMode, DecisionOptions, EngineKind,
    MixedApproxOptions, MixedInstance, MixedSolver, Outcome, PackingInstance, Solver,
    BIN_FAMILY_MIXED,
};
use psdp_workloads::{
    edge_packing, figure1_instance, gnp, mixed_edge_cover, mixed_lp_diagonal, random_factorized,
    random_lp_diagonal, vertex_star_packing, RandomFactorized,
};

/// Top-level usage text.
pub const USAGE: &str = "\
psdp — width-independent positive SDP solver (Peng–Tangwongsan–Zhang, SPAA'12)

USAGE:
  psdp generate --family <random|lp|graph|stars|figure1|mixed-lp|mixed-graph>
                [--dim N] [--n N] [--seed S] [--width W] [--p P] [--ridge R] --out FILE
  psdp info FILE
  psdp convert FILE --to bin|text --out FILE
  psdp solve FILE [--eps E] [--engine auto|exact|taylor|jl|expv] [--mode practical|strict] [--seed S] [--format auto|text|bin] [--json]
  psdp optimize FILE [--eps E] [--warm on|off] [--json]
  psdp mixed FILE [--eps E] [--engine auto|exact|taylor|jl|expv] [--seed S] [--warm on|off] [--json]
  psdp serve [--max-in-flight N] [--cache on|off] [--max-line-bytes N] [--format auto|text|bin]   (JSONL requests on stdin)
  psdp serve --listen [--shards N] [--queue-cap N] [--snapshot FILE] [--snapshot-keep N] [--cache on|off] [--max-line-bytes N] [--format auto|text|bin] [--shed-target-p99-ms MS]
  psdp serve --listen --bind tcp:ADDR:PORT|unix:PATH [--max-clients N] [--client-inflight N] [...same flags as --listen]
  psdp audit [--root PATH] [--config FILE] [--json] [--deny-warnings]

The `auto` engine picks exact, sketched-Taylor, or the Krylov/Chebyshev
expm-action engine (`expv`, alias `lanczos`) from the instance's storage
profile (total nonzeros vs m², then dimension); `psdp solve` reports
which one ran.
`optimize` runs one prepared solver Session across all bisection brackets
(engine built once, warm-started trajectory replay unless `--warm off`).
`mixed` solves a mixed packing–covering instance (`psdp mixed 1` format,
families mixed-lp / mixed-graph): it bisects the largest coverage
threshold σ* with find x ≥ 0, Σx·Pᵢ ⪯ I, Σx·Cᵢ ⪰ σI, and re-verifies the
certificates it prints. `--json` emits outcomes, certificate values, and
per-bracket SolveStats for machine consumption.

Instance files are canonical text (`psdp 1` / `psdp mixed 1`) or the
`psdp-bin-1` binary format; readers sniff the encoding by magic
(`--format text|bin` forces one). `convert` translates losslessly in
either direction — both encodings are canonical, so a double conversion
is a byte fixpoint. Binary files carry a verified content hash in the
header, which `serve` uses directly as its cache fingerprint.

`serve` reads one JSON request per stdin line —
  {\"id\":\"r1\",\"command\":\"solve\",\"file\":\"inst.psdp\",\"threshold\":1.0,\"eps\":0.2}
  {\"id\":\"r2\",\"command\":\"optimize\",\"instance\":\"psdp 1\\n…\",\"eps\":0.1}
— batches them through the fingerprint-cached scheduler (repeat instances
share prepared solvers, identical requests are memoized), and emits one
JSON response per request on stdout (submission order, same schemas as
`--json` plus `id` and a `serve` reuse-telemetry object; `wall_ms` is null
so response bytes are deterministic). The batch report goes to stderr.
With `--listen` the same protocol runs through the persistent streaming
service (DESIGN.md §13): requests are admitted as they arrive into
bounded per-shard queues (a full queue answers a typed `overloaded` line
instead of buffering without bound), the fingerprint-sharded cache
carries reuse across the whole session, and `--snapshot FILE` persists
the prepared-solver cache across restarts (saved atomically via tmp +
rename; `--snapshot-keep N` rotates N generations so a torn live file
warm-loads from the previous one — a missing or corrupted snapshot means
a cold start, never a refusal to serve). `--shed-target-p99-ms` turns on
adaptive shedding: queue admission tightens whenever the live p99
service latency overshoots the target. Lines longer than
`--max-line-bytes` (default 4 MiB) are rejected in place in both modes.
The service report — throughput, p50/p99 latency, per-tier hit counters,
queue high-water marks — goes to stderr.
With `--bind` the listen-mode service accepts many concurrent socket
clients (DESIGN.md §15) instead of stdin: `tcp:ADDR:PORT` (port 0 picks
a free port, printed to stderr) or `unix:PATH`. Each connection carries
the stdin protocol and gets its responses back in its own submission
order — bitwise identical to piping the same bytes over stdin. Admission
drains clients round-robin; a client with `--client-inflight` unwritten
responses gets typed `overloaded` lines instead of buffering, and
`--max-clients N` stops accepting after N connections (for scripted
runs; 0 = accept forever).

`audit` runs the psdp-audit determinism & robustness lint (DESIGN.md §11)
over the workspace sources: rules D1-D3 (hash-order iteration, parallel
float reductions, ambient clocks/randomness), R1 (panics and unchecked
indexing on request paths), H1 (unjustified `unsafe`). Exemptions need a
reasoned inline suppression or an audit.toml entry; CI runs it with
--deny-warnings so stale exemptions fail too.
";

/// `--format` selector: how instance bytes are interpreted.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum Format {
    /// Sniff by magic: `psdp-bin-1` bytes decode binary, anything else
    /// parses as canonical text.
    Auto,
    /// Force the text parser.
    Text,
    /// Require `psdp-bin-1` (a typed error otherwise, never a text parse
    /// of binary bytes).
    Bin,
}

impl Format {
    /// Whether `bytes` should decode through the binary reader.
    ///
    /// # Errors
    /// `--format bin` with non-`psdp-bin-1` input.
    pub(crate) fn wants_binary(self, bytes: &[u8]) -> Result<bool, String> {
        match self {
            Format::Auto => Ok(is_binary_instance(bytes)),
            Format::Text => Ok(false),
            Format::Bin => {
                if is_binary_instance(bytes) {
                    Ok(true)
                } else {
                    Err("--format bin: input is not psdp-bin-1 (bad magic or version)".to_string())
                }
            }
        }
    }
}

/// Build the [`Format`] from its CLI name.
pub(crate) fn format_of(name: &str) -> Result<Format, String> {
    match name {
        "auto" => Ok(Format::Auto),
        "text" => Ok(Format::Text),
        "bin" => Ok(Format::Bin),
        other => Err(format!("unknown --format value `{other}` (auto|text|bin)")),
    }
}

/// Build the engine from its CLI name.
pub(crate) fn engine_of(name: &str, eps: f64) -> Result<EngineKind, String> {
    match name {
        "auto" => Ok(EngineKind::Auto { eps: eps.min(0.3) }),
        "exact" => Ok(EngineKind::Exact),
        "taylor" => Ok(EngineKind::Taylor { eps: (eps * 0.5).min(0.2) }),
        "jl" => Ok(EngineKind::TaylorJl { eps: eps.min(0.3), sketch_const: 4.0 }),
        "expv" | "lanczos" => Ok(EngineKind::Expv { eps: eps.min(0.3) }),
        other => Err(format!("unknown engine `{other}` (auto|exact|taylor|jl|expv)")),
    }
}

/// `psdp generate` — emit an instance file.
///
/// # Errors
/// Flag/validation errors as printable messages.
pub fn generate(args: &Args) -> Result<String, String> {
    args.ensure_known(&["family", "dim", "n", "seed", "width", "out", "density", "p", "ridge"])?;
    let family = args.str_flag("family", "random");
    let dim: usize = args.flag("dim", 12)?;
    let n: usize = args.flag("n", 8)?;
    let seed: u64 = args.flag("seed", 1)?;
    let width: f64 = args.flag("width", 1.0)?;

    // Mixed families write the `psdp mixed 1` format and return early.
    if family == "mixed-lp" || family == "mixed-graph" {
        let inst = match family.as_str() {
            "mixed-lp" => {
                let density: f64 = args.flag("density", 0.6)?;
                mixed_lp_diagonal(dim, dim.div_ceil(2).max(1), n, density, seed)
            }
            _ => {
                let p: f64 = args.flag("p", 0.5)?;
                let ridge: f64 = args.flag("ridge", 0.5)?;
                let g = gnp(dim, p, seed);
                if g.m() == 0 {
                    return Err("mixed-graph: generated graph has no edges (raise --p)".into());
                }
                mixed_edge_cover(&g, ridge)
            }
        };
        let text = write_mixed_instance(&inst);
        let out = args.str_flag("out", "");
        return if out.is_empty() {
            Ok(text)
        } else {
            std::fs::write(&out, &text).map_err(|e| format!("writing {out}: {e}"))?;
            Ok(format!(
                "wrote {} (pack {}x{}, cover {}x{}, n={}, nnz={})\n",
                out,
                inst.pack_dim(),
                inst.pack_dim(),
                inst.cover_dim(),
                inst.cover_dim(),
                inst.n(),
                inst.total_nnz()
            ))
        };
    }

    let inst = match family.as_str() {
        "random" => PackingInstance::new(random_factorized(&RandomFactorized {
            dim,
            n,
            rank: 2,
            nnz_per_col: (dim / 3).max(2),
            width,
            seed,
        }))
        .map_err(|e| e.to_string())?,
        "lp" => {
            let density: f64 = args.flag("density", 0.6)?;
            PackingInstance::new(random_lp_diagonal(dim, n, density, seed))
                .map_err(|e| e.to_string())?
        }
        "graph" => {
            let p: f64 = args.flag("p", 0.3)?;
            PackingInstance::new(edge_packing(&gnp(dim, p, seed))).map_err(|e| e.to_string())?
        }
        "stars" => {
            let p: f64 = args.flag("p", 0.3)?;
            PackingInstance::new(vertex_star_packing(&gnp(dim, p, seed)))
                .map_err(|e| e.to_string())?
        }
        "figure1" => PackingInstance::new(figure1_instance()).map_err(|e| e.to_string())?,
        other => {
            return Err(format!(
                "unknown family `{other}` (random|lp|graph|stars|figure1|mixed-lp|mixed-graph)"
            ))
        }
    };

    let text = write_instance(&inst);
    let out = args.str_flag("out", "");
    if out.is_empty() {
        Ok(text)
    } else {
        std::fs::write(&out, &text).map_err(|e| format!("writing {out}: {e}"))?;
        Ok(format!("wrote {} (m={}, n={}, nnz={})\n", out, inst.dim(), inst.n(), inst.total_nnz()))
    }
}

fn load(path: &str, fmt: Format) -> Result<PackingInstance, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
    if fmt.wants_binary(&bytes)? {
        Ok(read_instance_bin(&bytes).map_err(|e| e.to_string())?.0)
    } else {
        read_instance(&String::from_utf8_lossy(&bytes)).map_err(|e| e.to_string())
    }
}

fn load_mixed(path: &str, fmt: Format) -> Result<MixedInstance, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
    if fmt.wants_binary(&bytes)? {
        Ok(read_mixed_instance_bin(&bytes).map_err(|e| e.to_string())?.0)
    } else {
        read_mixed_instance(&String::from_utf8_lossy(&bytes)).map_err(|e| e.to_string())
    }
}

/// `psdp info` — describe an instance file.
///
/// # Errors
/// IO/parse errors as printable messages.
pub fn info(args: &Args) -> Result<String, String> {
    let path = args.pos(1).ok_or("info: missing FILE")?;
    let inst = load(path, Format::Auto)?;
    let mut out = String::new();
    out.push_str(&format!("dim          {}\n", inst.dim()));
    out.push_str(&format!("constraints  {}\n", inst.n()));
    out.push_str(&format!("storage nnz  {}\n", inst.total_nnz()));
    let traces: Vec<f64> = inst.mats().iter().map(|a| a.trace()).collect();
    let lams: Vec<f64> = inst.mats().iter().map(|a| a.lambda_max_est()).collect();
    let fmax = |v: &[f64]| v.iter().fold(0.0_f64, |a, &b| a.max(b));
    let fmin = |v: &[f64]| v.iter().fold(f64::INFINITY, |a, &b| a.min(b));
    out.push_str(&format!("trace range  [{:.4}, {:.4}]\n", fmin(&traces), fmax(&traces)));
    out.push_str(&format!("λmax range   [{:.4}, {:.4}]\n", fmin(&lams), fmax(&lams)));
    out.push_str(&format!("width (max/min λmax)  {:.3}\n", fmax(&lams) / fmin(&lams).max(1e-300)));
    Ok(out)
}

/// `psdp solve` — run the ε-decision procedure and print the certificate.
///
/// # Errors
/// IO/parse/solver errors as printable messages.
pub fn solve(args: &Args) -> Result<String, String> {
    args.ensure_known(&["eps", "engine", "mode", "seed", "json", "format"])?;
    let path = args.pos(1).ok_or("solve: missing FILE")?;
    let fmt = format_of(&args.str_flag("format", "auto"))?;
    let inst = load(path, fmt)?;
    let eps: f64 = args.flag("eps", 0.1)?;
    let seed: u64 = args.flag("seed", 0)?;
    let engine = engine_of(&args.str_flag("engine", "exact"), eps)?;
    let mode = match args.str_flag("mode", "practical").as_str() {
        "practical" => ConstantsMode::practical_default(),
        "strict" => ConstantsMode::PaperStrict,
        other => return Err(format!("unknown mode `{other}` (practical|strict)")),
    };
    let mut opts = DecisionOptions::practical(eps).with_engine(engine).with_seed(seed);
    opts.mode = mode;

    let solver = Solver::builder(&inst).options(opts).build().map_err(|e| e.to_string())?;
    let mut session = solver.session();
    let res = session.solve(1.0).map_err(|e| e.to_string())?;

    if args.bool_flag("json") {
        return Ok(format!(
            "{{\"command\":\"solve\",{}}}\n",
            solve_payload(&json_str(path), &inst, &res, true),
        ));
    }

    let mut out = String::new();
    out.push_str(&format!(
        "iterations {}  (cap {})  exit {:?}  engine {}\n",
        res.stats.iterations, res.stats.iteration_cap, res.stats.exit, res.stats.engine
    ));
    match &res.outcome {
        Outcome::Dual(d) => {
            let c = verify_dual(&inst, d, 1e-8);
            out.push_str(&format!(
                "DUAL side: value {:.6}, λmax(Σ xᵢAᵢ) = {:.8}, verified feasible: {}\n",
                d.value, c.lambda_max, c.feasible
            ));
        }
        Outcome::Primal(p) => {
            let c = verify_primal(&inst, p, 1e-5);
            out.push_str(&format!(
                "PRIMAL side: min_i Aᵢ•Y = {:.6} over {} averaged rounds, verified: {}\n",
                p.min_dot, p.rounds_averaged, c.feasible
            ));
        }
    }
    Ok(out)
}

/// `psdp optimize` — run the session-based bisection and print the
/// certified bracket (with per-bracket warm-start telemetry).
///
/// # Errors
/// IO/parse/solver errors as printable messages.
pub fn optimize(args: &Args) -> Result<String, String> {
    args.ensure_known(&["eps", "warm", "json"])?;
    let path = args.pos(1).ok_or("optimize: missing FILE")?;
    let inst = load(path, Format::Auto)?;
    let eps: f64 = args.flag("eps", 0.1)?;
    let warm = match args.str_flag("warm", "on").as_str() {
        "on" => true,
        "off" => false,
        other => return Err(format!("unknown --warm value `{other}` (on|off)")),
    };
    let mut approx = ApproxOptions::practical(eps);
    approx.warm_start = warm;

    let solver =
        Solver::builder(&inst).options(approx.decision).build().map_err(|e| e.to_string())?;
    let mut session = solver.session();
    let r = session.optimize(&approx).map_err(|e| e.to_string())?;

    if args.bool_flag("json") {
        return Ok(format!(
            "{{\"command\":\"optimize\",{}}}\n",
            optimize_payload(&json_str(path), &inst, &r, true),
        ));
    }

    let mut out = String::new();
    out.push_str(&format!(
        "packing OPT ∈ [{:.6}, {:.6}]   ratio {:.4}   ({} decision calls, {} total iterations, {} engine evals, {} replayed, converged: {})\n",
        r.value_lower,
        r.value_upper,
        r.value_upper / r.value_lower,
        r.decision_calls,
        r.total_iterations,
        r.total_engine_evals,
        r.total_replayed,
        r.converged
    ));
    if let Some(d) = &r.best_dual {
        let c = verify_dual(&inst, d, 1e-8);
        out.push_str(&format!(
            "best dual: value {:.6}, verified feasible: {}\n",
            d.value, c.feasible
        ));
    }
    Ok(out)
}

/// `psdp mixed` — solve a mixed packing–covering instance: bisect the
/// largest coverage threshold and print the certified bracket, re-verifying
/// every certificate through `psdp_core::verify`.
///
/// # Errors
/// IO/parse/solver errors as printable messages.
pub fn mixed(args: &Args) -> Result<String, String> {
    args.ensure_known(&["eps", "engine", "seed", "warm", "json"])?;
    let path = args.pos(1).ok_or("mixed: missing FILE")?;
    let inst = load_mixed(path, Format::Auto)?;
    let eps: f64 = args.flag("eps", 0.1)?;
    let seed: u64 = args.flag("seed", 0)?;
    let warm = match args.str_flag("warm", "on").as_str() {
        "on" => true,
        "off" => false,
        other => return Err(format!("unknown --warm value `{other}` (on|off)")),
    };
    let mut approx = MixedApproxOptions::practical(eps);
    approx.warm_start = warm;
    approx.decision = approx
        .decision
        .with_engine(engine_of(&args.str_flag("engine", "exact"), eps)?)
        .with_seed(seed);

    let solver =
        MixedSolver::builder(&inst).options(approx.decision).build().map_err(|e| e.to_string())?;
    let mut session = solver.session();
    session.set_warm_start(warm);
    let r = session.optimize(&approx).map_err(|e| e.to_string())?;

    if args.bool_flag("json") {
        // `mixed_payload` performs the certificate re-verification itself.
        return Ok(format!(
            "{{\"command\":\"mixed\",{}}}\n",
            mixed_payload(&json_str(path), &inst, &r, true),
        ));
    }

    let point_cert = r
        .best_point
        .as_ref()
        .map(|p| (p, verify_mixed_feasible(&inst, p, r.threshold_lower * (1.0 - 1e-9), 1e-7)));
    let witness_cert =
        r.infeasibility_witness.as_ref().map(|c| (c, verify_mixed_infeasible(&inst, c, 1e-7)));

    let mut out = String::new();
    out.push_str(&format!(
        "coverage threshold σ* ∈ [{:.6}, {:.6}]   ratio {:.4}   ({} decision calls, {} total iterations, {} engine evals, converged: {})\n",
        r.threshold_lower,
        r.threshold_upper,
        if r.threshold_lower > 0.0 { r.threshold_upper / r.threshold_lower } else { f64::INFINITY },
        r.decision_calls,
        r.total_iterations,
        r.total_engine_evals,
        r.converged
    ));
    if let Some((p, c)) = &point_cert {
        out.push_str(&format!(
            "best point: pack λmax {:.6}, cover λmin {:.6}, verified feasible: {}\n",
            p.pack_lambda_max, p.cover_lambda_min, c.feasible
        ));
    }
    if let Some((w, c)) = &witness_cert {
        out.push_str(&format!(
            "infeasibility witness at σ = {:.6}: margin {:.4}, refutes σ* > {:.6}, verified: {}\n",
            w.sigma, c.margin, c.refuted_threshold, c.valid
        ));
    }
    Ok(out)
}

/// `psdp convert` — lossless text↔binary instance conversion. The input
/// encoding and family are sniffed (magic byte for `psdp-bin-1`, the
/// `psdp mixed 1` header for mixed text); `--to` picks the output
/// encoding. Both encodings are canonical, so convert∘convert is a byte
/// fixpoint in either direction.
///
/// # Errors
/// IO/parse/flag errors as printable messages.
pub fn convert(args: &Args) -> Result<String, String> {
    args.ensure_known(&["to", "out"])?;
    let path = args.pos(1).ok_or("convert: missing FILE")?;
    let out = args.str_flag("out", "");
    if out.is_empty() {
        return Err("convert: missing --out FILE".to_string());
    }
    let to = args.str_flag("to", "bin");
    if to != "bin" && to != "text" {
        return Err(format!("unknown --to value `{to}` (bin|text)"));
    }
    let bytes = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;

    let mixed_family = if is_binary_instance(&bytes) {
        binary_family(&bytes) == Some(BIN_FAMILY_MIXED)
    } else {
        String::from_utf8_lossy(&bytes).lines().next() == Some("psdp mixed 1")
    };

    let (encoded, summary) = if mixed_family {
        let inst = if is_binary_instance(&bytes) {
            read_mixed_instance_bin(&bytes).map_err(|e| e.to_string())?.0
        } else {
            read_mixed_instance(&String::from_utf8_lossy(&bytes)).map_err(|e| e.to_string())?
        };
        let encoded = if to == "bin" {
            write_mixed_instance_bin(&inst)
        } else {
            write_mixed_instance(&inst).into_bytes()
        };
        let summary = format!(
            "wrote {out} ({to}, mixed, pack {0}x{0}, cover {1}x{1}, n={2}, nnz={3})\n",
            inst.pack_dim(),
            inst.cover_dim(),
            inst.n(),
            inst.total_nnz()
        );
        (encoded, summary)
    } else {
        let inst = if is_binary_instance(&bytes) {
            read_instance_bin(&bytes).map_err(|e| e.to_string())?.0
        } else {
            read_instance(&String::from_utf8_lossy(&bytes)).map_err(|e| e.to_string())?
        };
        let encoded = if to == "bin" {
            write_instance_bin(&inst)
        } else {
            write_instance(&inst).into_bytes()
        };
        let summary = format!(
            "wrote {out} ({to}, packing, m={}, n={}, nnz={})\n",
            inst.dim(),
            inst.n(),
            inst.total_nnz()
        );
        (encoded, summary)
    };
    std::fs::write(&out, &encoded).map_err(|e| format!("writing {out}: {e}"))?;
    Ok(summary)
}

/// `psdp audit` — run the workspace determinism & robustness lint
/// (crates/analyze, DESIGN.md §11). Clean runs return the summary line;
/// findings (or, under `--deny-warnings`, warnings) come back as `Err` so
/// the process exits non-zero and CI fails.
///
/// # Errors
/// The rendered report when the audit is not clean, or a config/walk error.
pub fn audit(args: &Args) -> Result<String, String> {
    args.ensure_known(&["root", "config", "json", "deny-warnings"])?;
    let root = std::path::PathBuf::from(args.str_flag("root", "."));
    let opts = psdp_analyze::Options {
        config_path: args.opt_flag("config").map(std::path::PathBuf::from),
    };
    let report = psdp_analyze::run_audit(&root, &opts)?;
    let deny = args.bool_flag("deny-warnings");
    let rendered = if args.bool_flag("json") { report.json() } else { report.human() };
    if report.is_clean(deny) {
        Ok(rendered)
    } else {
        Err(rendered)
    }
}

/// Dispatch a full command line (excluding program name).
///
/// # Errors
/// Any subcommand failure, as a printable message.
pub fn dispatch(raw: &[String]) -> Result<String, String> {
    // `--help` is value-less, so intercept it before the `--key value`
    // parser (which would otherwise demand a value for it).
    if raw.iter().any(|a| a == "--help" || a == "-h") {
        return Ok(USAGE.to_string());
    }
    let args = Args::parse(raw)?;
    match args.pos(0) {
        Some("generate") => generate(&args),
        Some("info") => info(&args),
        Some("solve") => solve(&args),
        Some("optimize") => optimize(&args),
        Some("mixed") => mixed(&args),
        Some("convert") => convert(&args),
        Some("serve") => crate::serve::serve(&args),
        Some("audit") => audit(&args),
        Some(other) => Err(format!("unknown command `{other}`\n\n{USAGE}")),
        None => Ok(USAGE.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(v: &[&str]) -> Result<String, String> {
        dispatch(&v.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn usage_on_no_args() {
        let out = run(&[]).unwrap();
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn help_flag_prints_usage() {
        for v in [&["--help"][..], &["-h"], &["solve", "--help"]] {
            let out = run(v).unwrap();
            assert!(out.contains("USAGE"), "{out}");
        }
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run(&["frobnicate"]).is_err());
    }

    #[test]
    fn generate_to_stdout_parses_back() {
        let text = run(&["generate", "--family", "lp", "--dim", "4", "--n", "3"]).unwrap();
        let inst = read_instance(&text).unwrap();
        assert_eq!(inst.dim(), 4);
        assert_eq!(inst.n(), 3);
    }

    #[test]
    fn full_file_lifecycle() {
        let dir = std::env::temp_dir().join("psdp-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("inst.psdp");
        let p = path.to_str().unwrap();

        let msg =
            run(&["generate", "--family", "random", "--dim", "6", "--n", "4", "--out", p]).unwrap();
        assert!(msg.contains("wrote"));

        let info_out = run(&["info", p]).unwrap();
        assert!(info_out.contains("constraints  4"), "{info_out}");

        let solve_out = run(&["solve", p, "--eps", "0.2"]).unwrap();
        assert!(
            solve_out.contains("verified feasible: true") || solve_out.contains("verified: true"),
            "{solve_out}"
        );

        let opt_out = run(&["optimize", p, "--eps", "0.15"]).unwrap();
        assert!(opt_out.contains("converged: true"), "{opt_out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn convert_roundtrips_both_families_and_solves_binary() {
        let dir = std::env::temp_dir().join("psdp-cli-convert");
        std::fs::create_dir_all(&dir).unwrap();
        let text_p = dir.join("inst.psdp");
        let bin_p = dir.join("inst.psdpb");
        let back_p = dir.join("back.psdp");
        let (t, b, k) =
            (text_p.to_str().unwrap(), bin_p.to_str().unwrap(), back_p.to_str().unwrap());
        run(&["generate", "--family", "lp", "--dim", "6", "--n", "5", "--out", t]).unwrap();

        // text → bin → text is a byte fixpoint (both encodings canonical).
        let msg = run(&["convert", t, "--to", "bin", "--out", b]).unwrap();
        assert!(msg.contains("bin, packing"), "{msg}");
        let msg = run(&["convert", b, "--to", "text", "--out", k]).unwrap();
        assert!(msg.contains("text, packing"), "{msg}");
        assert_eq!(std::fs::read(&text_p).unwrap(), std::fs::read(&back_p).unwrap());
        // bin → bin re-encode is also a fixpoint.
        let bin_bytes = std::fs::read(&bin_p).unwrap();
        run(&["convert", b, "--to", "bin", "--out", b]).unwrap();
        assert_eq!(bin_bytes, std::fs::read(&bin_p).unwrap());

        // Binary files solve identically to their text source (sniffed by
        // magic; `--format bin` forces, and rejects text input).
        let from_text = run(&["solve", t, "--eps", "0.2", "--json"]).unwrap();
        let from_bin = run(&["solve", b, "--eps", "0.2", "--format", "bin", "--json"]).unwrap();
        // `wall_ms` is real wall clock in one-shot mode; everything before
        // it (the whole certificate and stats payload) must match.
        let strip = |s: &str| {
            let s = s.replace(&json_str(t), "F").replace(&json_str(b), "F");
            s.split("\"wall_ms\":").next().unwrap().to_string()
        };
        assert_eq!(strip(&from_text), strip(&from_bin));
        assert!(run(&["solve", t, "--format", "bin"]).is_err());
        assert!(run(&["solve", b, "--format", "text"]).is_err());
        assert!(run(&["solve", b, "--format", "sideways"]).is_err());

        // info/optimize sniff binary files too.
        assert!(run(&["info", b]).unwrap().contains("constraints  5"));
        assert!(run(&["optimize", b, "--eps", "0.15"]).unwrap().contains("converged: true"));

        // Mixed family: same lossless loop through the mixed encoders.
        let mt = dir.join("mixed.psdp");
        let mb = dir.join("mixed.psdpb");
        let mk = dir.join("mixed-back.psdp");
        let (mt_s, mb_s, mk_s) = (mt.to_str().unwrap(), mb.to_str().unwrap(), mk.to_str().unwrap());
        run(&["generate", "--family", "mixed-lp", "--dim", "6", "--n", "5", "--out", mt_s])
            .unwrap();
        let msg = run(&["convert", mt_s, "--to", "bin", "--out", mb_s]).unwrap();
        assert!(msg.contains("bin, mixed"), "{msg}");
        run(&["convert", mb_s, "--to", "text", "--out", mk_s]).unwrap();
        assert_eq!(std::fs::read(&mt).unwrap(), std::fs::read(&mk).unwrap());
        assert!(run(&["mixed", mb_s, "--eps", "0.2"]).unwrap().contains("converged: true"));

        // Flag validation.
        assert!(run(&["convert", t, "--to", "braille", "--out", b]).is_err());
        assert!(run(&["convert", t, "--to", "bin"]).is_err());
        for f in [text_p, bin_p, back_p, mt, mb, mk] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn stars_family_and_auto_engine() {
        let dir = std::env::temp_dir().join("psdp-cli-test3");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stars.psdp");
        let p = path.to_str().unwrap();
        let msg = run(&[
            "generate", "--family", "stars", "--dim", "10", "--p", "0.4", "--seed", "2", "--out", p,
        ])
        .unwrap();
        assert!(msg.contains("wrote"), "{msg}");
        // Small dim → auto resolves to exact; the resolved name is reported.
        let out = run(&["solve", p, "--eps", "0.2", "--engine", "auto"]).unwrap();
        assert!(out.contains("engine exact"), "{out}");
        assert!(out.contains("verified feasible: true") || out.contains("verified: true"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn json_output_solve_and_optimize() {
        let dir = std::env::temp_dir().join("psdp-cli-json");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("inst.psdp");
        let p = path.to_str().unwrap();
        run(&["generate", "--family", "lp", "--dim", "5", "--n", "4", "--out", p]).unwrap();

        let out = run(&["solve", p, "--eps", "0.2", "--json"]).unwrap();
        assert!(out.starts_with("{\"command\":\"solve\""), "{out}");
        assert!(out.contains("\"outcome\":"), "{out}");
        assert!(out.contains("\"certificate\":"), "{out}");
        assert!(out.contains("\"engine_evals\":"), "{out}");
        assert!(out.trim_end().ends_with('}'), "{out}");

        let out = run(&["optimize", p, "--eps", "0.15", "--json"]).unwrap();
        assert!(out.starts_with("{\"command\":\"optimize\""), "{out}");
        assert!(out.contains("\"brackets\":["), "{out}");
        assert!(out.contains("\"value_lower\":"), "{out}");
        assert!(out.contains("\"replayed\":"), "{out}");
        assert!(out.contains("\"converged\":true"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn optimize_warm_toggle_same_bracket() {
        let dir = std::env::temp_dir().join("psdp-cli-warm");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("inst.psdp");
        let p = path.to_str().unwrap();
        run(&["generate", "--family", "lp", "--dim", "5", "--n", "4", "--out", p]).unwrap();
        // Warm replay is result-neutral: identical printed brackets.
        let warm = run(&["optimize", p, "--eps", "0.15", "--warm", "on"]).unwrap();
        let cold = run(&["optimize", p, "--eps", "0.15", "--warm", "off"]).unwrap();
        let line = |s: &str| s.lines().next().unwrap().split("   ").next().unwrap().to_string();
        assert_eq!(line(&warm), line(&cold), "warm: {warm}\ncold: {cold}");
        assert!(run(&["optimize", p, "--warm", "sideways"]).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mixed_graph_end_to_end_with_json() {
        let dir = std::env::temp_dir().join("psdp-cli-mixed");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mixed.psdp");
        let p = path.to_str().unwrap();
        // Sparse graph-based mixed instance (edge Laplacians + ridge).
        let msg = run(&[
            "generate",
            "--family",
            "mixed-graph",
            "--dim",
            "8",
            "--p",
            "0.6",
            "--seed",
            "3",
            "--ridge",
            "0.5",
            "--out",
            p,
        ])
        .unwrap();
        assert!(msg.contains("wrote"), "{msg}");

        let out = run(&["mixed", p, "--eps", "0.2"]).unwrap();
        assert!(out.contains("coverage threshold"), "{out}");
        assert!(out.contains("verified feasible: true"), "{out}");

        let out = run(&["mixed", p, "--eps", "0.2", "--json"]).unwrap();
        assert!(out.starts_with("{\"command\":\"mixed\""), "{out}");
        assert!(out.contains("\"threshold_lower\":"), "{out}");
        assert!(out.contains("\"best_point\":{"), "{out}");
        assert!(out.contains("\"verified\":true"), "{out}");
        assert!(out.contains("\"brackets\":["), "{out}");
        assert!(out.trim_end().ends_with('}'), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mixed_lp_generate_roundtrip_and_solve() {
        let text = run(&["generate", "--family", "mixed-lp", "--dim", "4", "--n", "3"]).unwrap();
        let inst = read_mixed_instance(&text).unwrap();
        assert_eq!(inst.n(), 3);
        assert_eq!(inst.pack_dim(), 4);

        let dir = std::env::temp_dir().join("psdp-cli-mixed-lp");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mlp.psdp");
        let p = path.to_str().unwrap();
        std::fs::write(p, &text).unwrap();
        let out = run(&["mixed", p, "--eps", "0.2", "--warm", "off"]).unwrap();
        assert!(out.contains("coverage threshold"), "{out}");
        assert!(run(&["mixed", p, "--warm", "sideways"]).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn figure1_generate_and_solve() {
        let text = run(&["generate", "--family", "figure1"]).unwrap();
        let inst = read_instance(&text).unwrap();
        assert_eq!(inst.n(), 3);
        assert_eq!(inst.dim(), 2);
    }

    #[test]
    fn bad_engine_name() {
        let dir = std::env::temp_dir().join("psdp-cli-test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("x.psdp");
        let p = path.to_str().unwrap();
        run(&["generate", "--family", "lp", "--dim", "3", "--n", "2", "--out", p]).unwrap();
        let err = run(&["solve", p, "--engine", "quantum"]).unwrap_err();
        assert!(err.contains("unknown engine"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn expv_engine_name_parses_and_solves() {
        assert!(matches!(engine_of("expv", 0.2), Ok(EngineKind::Expv { .. })));
        assert!(matches!(engine_of("lanczos", 0.2), Ok(EngineKind::Expv { .. })));
        let dir = std::env::temp_dir().join("psdp-cli-test-expv");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("x.psdp");
        let p = path.to_str().unwrap();
        run(&["generate", "--family", "lp", "--dim", "6", "--n", "4", "--out", p]).unwrap();
        let out = run(&["solve", p, "--engine", "expv", "--json"]).unwrap();
        assert!(out.contains("\"engine\":\"expv\""), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn typo_flag_rejected() {
        let err = run(&["generate", "--famly", "lp"]).unwrap_err();
        assert!(err.contains("unknown flag"));
    }
}
