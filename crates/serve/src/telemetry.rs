//! Serving telemetry shared by the one-shot scheduler and the persistent
//! service: per-tier cache hit counters and log-bucketed latency
//! histograms.
//!
//! Both [`crate::scheduler::BatchReport`] and
//! [`crate::service::ServiceReport`] embed the same [`TierCounters`] and
//! [`LatencyStats`] shapes so E13 (one-shot throughput) and E15 (sustained
//! streaming throughput) report the same schema and can be compared
//! row-for-row.
//!
//! Latency numbers are wall-clock and therefore non-deterministic; they
//! are only ever rendered into the stderr batch report, never into
//! response bytes (the determinism suite compares response streams
//! bitwise).

use std::time::Duration;

/// Per-tier cache hit counters (see `DESIGN.md` §10 for the tiers).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierCounters {
    /// Tier 1: requests answered verbatim from the memo store.
    pub memo_hits: usize,
    /// Tier 2: requests served without paying solver preparation.
    pub prep_reuses: usize,
    /// Tier 3: optimize requests that started from a prior certified
    /// bracket.
    pub bracket_injections: usize,
}

impl TierCounters {
    /// Fold one request's reuse telemetry into the counters.
    pub fn record(&mut self, stats: &crate::scheduler::ServeStats) {
        self.memo_hits += usize::from(stats.memoized);
        self.prep_reuses += usize::from(stats.prep_reused);
        self.bracket_injections += usize::from(stats.bracket_injected);
    }

    /// Merge another counter set into this one.
    pub fn merge(&mut self, other: &TierCounters) {
        self.memo_hits += other.memo_hits;
        self.prep_reuses += other.prep_reuses;
        self.bracket_injections += other.bracket_injections;
    }
}

/// Number of geometric buckets in a [`LatencyHistogram`]. Bucket `i`
/// covers `(upper(i-1), 1µs·2^i]`, so the range spans 1 µs … ~1100 s.
const BUCKETS: usize = 31;

/// A log-bucketed latency histogram: fixed µs-anchored power-of-two
/// buckets, so recording is allocation-free and quantiles are stable
/// regardless of sample count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: [u64; BUCKETS],
    total: u64,
    max: Duration,
    sum: Duration,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: [0; BUCKETS],
            total: 0,
            max: Duration::ZERO,
            sum: Duration::ZERO,
        }
    }
}

/// Upper bound of bucket `i` in microseconds.
fn bucket_upper_us(i: usize) -> u64 {
    1u64 << i
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Record one latency sample.
    pub fn record(&mut self, d: Duration) {
        let us = d.as_micros().min(u128::from(u64::MAX)) as u64;
        let idx = (0..BUCKETS).find(|&i| us <= bucket_upper_us(i)).unwrap_or(BUCKETS - 1);
        if let Some(slot) = self.counts.get_mut(idx) {
            *slot += 1;
        }
        self.total += 1;
        self.max = self.max.max(d);
        self.sum += d;
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += *b;
        }
        self.total += other.total;
        self.max = self.max.max(other.max);
        self.sum += other.sum;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Largest recorded sample (exact, not bucketed).
    pub fn max(&self) -> Duration {
        self.max
    }

    /// Sum of all recorded samples (exact, not bucketed).
    pub fn sum(&self) -> Duration {
        self.sum
    }

    /// The `q`-quantile (`0 < q <= 1`) as the upper bound of the bucket
    /// holding the `ceil(q·total)`-th sample; `None` when empty. The true
    /// sample sits within a factor of 2 below the returned value.
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        if self.total == 0 || !q.is_finite() || q <= 0.0 {
            return None;
        }
        let rank = ((q.min(1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Duration::from_micros(bucket_upper_us(i)).min(self.max));
            }
        }
        Some(self.max)
    }

    /// The p50/p99/max summary used by the batch reports.
    pub fn stats(&self) -> LatencyStats {
        LatencyStats {
            p50: self.quantile(0.50).unwrap_or(Duration::ZERO),
            p99: self.quantile(0.99).unwrap_or(Duration::ZERO),
            max: self.max,
            count: self.total,
        }
    }
}

/// The p50/p99/max summary of one latency dimension, as printed in the
/// stderr batch reports (one-shot and streaming alike).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyStats {
    /// Median latency (bucket upper bound).
    pub p50: Duration,
    /// 99th-percentile latency (bucket upper bound).
    pub p99: Duration,
    /// Largest sample (exact).
    pub max: Duration,
    /// Sample count.
    pub count: u64,
}

impl LatencyStats {
    /// Render as `p50 X ms, p99 Y ms, max Z ms` for the stderr reports.
    pub fn render_ms(&self) -> String {
        let ms = |d: Duration| format!("{:.2}", d.as_secs_f64() * 1e3);
        format!("p50 {} ms, p99 {} ms, max {} ms", ms(self.p50), ms(self.p99), ms(self.max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.count(), 0);
        assert_eq!(h.stats().p99, Duration::ZERO);
    }

    #[test]
    fn quantiles_bracket_samples_within_a_factor_of_two() {
        let mut h = LatencyHistogram::new();
        for us in [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 1000] {
            h.record(Duration::from_micros(us));
        }
        let p50 = h.quantile(0.5).expect("non-empty");
        // The 5th sample is 50µs; its bucket upper bound is 64µs.
        assert_eq!(p50, Duration::from_micros(64));
        let p99 = h.quantile(0.99).expect("non-empty");
        // The 10th sample is 1000µs, bucket upper bound 1024µs, but max
        // caps the answer at the exact largest sample.
        assert_eq!(p99, Duration::from_micros(1000));
        assert_eq!(h.max(), Duration::from_micros(1000));
        assert_eq!(h.count(), 10);
    }

    #[test]
    fn merge_adds_counts_and_keeps_max() {
        let mut a = LatencyHistogram::new();
        a.record(Duration::from_micros(5));
        let mut b = LatencyHistogram::new();
        b.record(Duration::from_millis(3));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), Duration::from_millis(3));
        assert_eq!(a.sum(), Duration::from_micros(3005));
    }

    #[test]
    fn oversized_samples_clamp_to_last_bucket() {
        let mut h = LatencyHistogram::new();
        h.record(Duration::from_secs(60 * 60));
        assert_eq!(h.count(), 1);
        assert!(h.quantile(1.0).is_some());
    }

    #[test]
    fn tier_counters_record_and_merge() {
        use crate::scheduler::ServeStats;
        let mut t = TierCounters::default();
        t.record(&ServeStats { memoized: true, prep_reused: true, ..ServeStats::default() });
        t.record(&ServeStats { bracket_injected: true, ..ServeStats::default() });
        assert_eq!(t, TierCounters { memo_hits: 1, prep_reuses: 1, bracket_injections: 1 });
        let mut u = TierCounters::default();
        u.merge(&t);
        u.merge(&t);
        assert_eq!(u.memo_hits, 2);
    }
}
