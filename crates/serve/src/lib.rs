//! # psdp-serve
//!
//! Batched multi-instance serving for the width-independent positive-SDP
//! solvers. The paper's polylog-depth rounds of embarrassingly parallel
//! work make per-instance cost predictable, which is exactly what a batch
//! scheduler needs to serve many concurrent solve requests without one
//! wide instance starving the rest.
//!
//! * [`ServeRequest`] / [`RequestKind`] — heterogeneous requests
//!   (decision / optimize / mixed), each with its own options, over
//!   `Arc`-shared instances,
//! * [`Scheduler`] — groups a batch by preparation fingerprint, executes
//!   groups over the shared rayon pool with bounded in-flight concurrency,
//!   and returns responses in submission order with per-request
//!   [`ServeStats`] and an aggregate [`BatchReport`],
//! * [`SolverCache`] — the fingerprint-keyed store amortizing solver
//!   preparation (factorizations, `Auto` engine resolution), memoizing
//!   repeat results, and carrying certified brackets into perturbed
//!   resubmissions,
//! * [`json`] — the minimal JSON reader behind the `psdp serve` JSONL
//!   front door and the schema-snapshot tests,
//! * [`service`] — the persistent streaming service behind
//!   `psdp serve --listen`: streaming admission (no batch barrier),
//!   bounded per-shard queues with typed backpressure, a
//!   fingerprint-prefix [`shard::ShardedCache`], snapshot persistence
//!   ([`snapshot`]), and a submission-order sequencer,
//! * [`telemetry`] — per-tier hit counters and latency histograms shared
//!   by the one-shot and streaming reports,
//! * [`transport`] — the socket front end behind `--listen --bind`:
//!   TCP/Unix listeners and the round-robin fair admission multiplexer
//!   ([`transport::FairMux`]) that keeps one firehose client from
//!   starving the rest.
//!
//! Determinism contract: responses are a function of the batch contents
//! (plus prior batches on the same scheduler), never of submission order,
//! pool width, or `max_in_flight`; the streaming service extends the same
//! contract across shard counts and worker interleavings (see
//! [`service`]). `tests/determinism.rs` at the workspace root pins this
//! down bitwise. `DESIGN.md` §10 documents the cache-key soundness
//! argument and §13 the service architecture.

#![warn(missing_docs)]

pub mod cache;
pub mod json;
pub mod request;
pub mod scheduler;
pub mod service;
pub mod shard;
pub mod snapshot;
pub mod telemetry;
pub mod transport;

pub use cache::SolverCache;
pub use request::{InstancePayload, RequestKind, ServeRequest};
pub use scheduler::{
    BatchOutput, BatchReport, Scheduler, SchedulerOptions, ServeError, ServeResponse, ServeResult,
    ServeStats,
};
pub use service::{Service, ServiceOptions, ServiceReport, StreamItem, StreamOutcome};
pub use shard::ShardedCache;
pub use snapshot::SnapshotError;
pub use telemetry::{LatencyHistogram, LatencyStats, TierCounters};
pub use transport::{BindAddr, Connection, FairMux, Listener};

#[cfg(test)]
mod tests {
    use super::*;
    use psdp_core::{
        ApproxOptions, DecisionOptions, MixedApproxOptions, MixedInstance, PackingInstance,
    };
    use psdp_sparse::PsdMatrix;
    use std::sync::Arc;

    fn diag_inst(rows: &[&[f64]]) -> Arc<PackingInstance> {
        Arc::new(
            PackingInstance::new(rows.iter().map(|r| PsdMatrix::Diagonal(r.to_vec())).collect())
                .unwrap(),
        )
    }

    fn mixed_inst() -> Arc<MixedInstance> {
        Arc::new(
            MixedInstance::new(
                vec![PsdMatrix::Diagonal(vec![2.0, 0.0]), PsdMatrix::Diagonal(vec![0.0, 2.0])],
                vec![PsdMatrix::Diagonal(vec![1.0, 0.0]), PsdMatrix::Diagonal(vec![0.0, 1.0])],
            )
            .unwrap(),
        )
    }

    fn response_fingerprint(resp: &ServeResponse) -> String {
        // A value-level digest of the deterministic response content
        // (ignores wall-clock stats).
        match &resp.result {
            Err(e) => format!("{}:err:{e}", resp.id),
            Ok(ServeResult::Decision(d)) => format!(
                "{}:dec:{:?}:{}:{}",
                resp.id,
                d.stats.exit,
                d.stats.iterations,
                match &d.outcome {
                    psdp_core::Outcome::Dual(du) => format!("dual:{:x}", du.value.to_bits()),
                    psdp_core::Outcome::Primal(p) => format!("primal:{:x}", p.min_dot.to_bits()),
                }
            ),
            Ok(ServeResult::Optimize(r)) => format!(
                "{}:opt:{:x}:{:x}:{}:{}",
                resp.id,
                r.value_lower.to_bits(),
                r.value_upper.to_bits(),
                r.decision_calls,
                r.converged
            ),
            Ok(ServeResult::Mixed(r)) => format!(
                "{}:mix:{:x}:{:x}:{}",
                resp.id,
                r.threshold_lower.to_bits(),
                r.threshold_upper.to_bits(),
                r.converged
            ),
        }
    }

    #[test]
    fn heterogeneous_batch_serves_all_kinds() {
        let pack = diag_inst(&[&[2.0, 0.0], &[0.0, 4.0]]);
        let requests = vec![
            ServeRequest::decision("d1", Arc::clone(&pack), 0.5, DecisionOptions::practical(0.2)),
            ServeRequest::optimize("o1", Arc::clone(&pack), ApproxOptions::serving(0.1)),
            ServeRequest::mixed("m1", mixed_inst(), MixedApproxOptions::practical(0.1)),
        ];
        let mut sched = Scheduler::new(SchedulerOptions::default());
        let out = sched.run_batch(&requests).unwrap();
        assert_eq!(out.responses.len(), 3);
        assert_eq!(out.report.errors, 0);
        assert!(matches!(out.responses[0].result, Ok(ServeResult::Decision(_))));
        match &out.responses[1].result {
            Ok(ServeResult::Optimize(r)) => {
                assert!(r.converged);
                assert!(r.value_lower <= 0.75 + 1e-9 && r.value_upper >= 0.75 - 1e-9);
            }
            other => panic!("bad optimize response: {other:?}"),
        }
        match &out.responses[2].result {
            Ok(ServeResult::Mixed(r)) => {
                assert!(r.threshold_lower <= 0.5 + 1e-9 && r.threshold_upper >= 0.5 - 1e-9);
            }
            other => panic!("bad mixed response: {other:?}"),
        }
        // Decision and optimize share a fingerprint (same instance, engine,
        // seed); mixed is its own.
        assert_eq!(out.report.groups, 2);
        assert_eq!(sched.cached_fingerprints(), 2);
    }

    #[test]
    fn memoization_replays_identical_requests_bitwise() {
        let pack = diag_inst(&[&[1.0, 0.0, 0.5], &[0.0, 1.0, 0.5], &[0.5, 0.5, 0.0]]);
        let opts = ApproxOptions::serving(0.1);
        let requests = vec![
            ServeRequest::optimize("a", Arc::clone(&pack), opts),
            ServeRequest::optimize("b", Arc::clone(&pack), opts),
        ];
        let mut sched = Scheduler::new(SchedulerOptions::default());
        let out = sched.run_batch(&requests).unwrap();
        let (ra, rb) = (&out.responses[0], &out.responses[1]);
        // "a" runs first (id order), "b" is a memo hit with zero live work.
        assert!(!ra.stats.memoized && rb.stats.memoized);
        assert!(ra.stats.engine_evals > 0);
        assert_eq!(rb.stats.engine_evals, 0);
        assert_eq!(
            response_fingerprint(ra).split_once(':').unwrap().1,
            response_fingerprint(rb).split_once(':').unwrap().1,
            "memoized response must be value-identical"
        );
        // Across batches the memo persists.
        let out2 =
            sched.run_batch(&[ServeRequest::optimize("c", Arc::clone(&pack), opts)]).unwrap();
        assert!(out2.responses[0].stats.memoized);
        assert_eq!(out2.report.engine_evals, 0);
    }

    #[test]
    fn prep_reuse_and_bracket_continuation_across_batches() {
        let pack = diag_inst(&[&[2.0, 0.0], &[0.0, 4.0]]);
        let mut sched = Scheduler::new(SchedulerOptions::default());
        let first = sched
            .run_batch(&[ServeRequest::optimize(
                "a",
                Arc::clone(&pack),
                ApproxOptions::serving(0.2),
            )])
            .unwrap();
        assert_eq!(first.report.prep_builds, 1);
        assert!(!first.responses[0].stats.prep_reused);
        let cold_bracket = match &first.responses[0].result {
            Ok(ServeResult::Optimize(r)) => (r.value_lower, r.value_upper),
            other => panic!("{other:?}"),
        };

        // Perturbed resubmission: tighter accuracy, same fingerprint. It
        // must reuse preparation and continue from the certified bracket.
        let second = sched
            .run_batch(&[ServeRequest::optimize(
                "b",
                Arc::clone(&pack),
                ApproxOptions::serving(0.05),
            )])
            .unwrap();
        assert_eq!(second.report.prep_builds, 0);
        let resp = &second.responses[0];
        assert!(resp.stats.prep_reused);
        assert!(resp.stats.bracket_injected);
        match &resp.result {
            Ok(ServeResult::Optimize(r)) => {
                assert!(r.converged);
                // The tightened bracket sits inside the cold one and still
                // contains OPT = 0.75.
                assert!(r.value_lower >= cold_bracket.0 - 1e-12);
                assert!(r.value_upper <= cold_bracket.1 + 1e-12);
                assert!(r.value_lower <= 0.75 + 1e-9 && r.value_upper >= 0.75 - 1e-9);
            }
            other => panic!("{other:?}"),
        }

        // And the injected run must not have cost more decision calls than
        // a cold run at the same accuracy.
        let mut cold_sched = Scheduler::new(SchedulerOptions::default());
        let cold = cold_sched
            .run_batch(&[ServeRequest::optimize(
                "c",
                Arc::clone(&pack),
                ApproxOptions::serving(0.05),
            )])
            .unwrap();
        let (warm_calls, cold_calls) = match (&resp.result, &cold.responses[0].result) {
            (Ok(ServeResult::Optimize(w)), Ok(ServeResult::Optimize(c))) => {
                (w.decision_calls, c.decision_calls)
            }
            other => panic!("{other:?}"),
        };
        assert!(warm_calls <= cold_calls, "warm {warm_calls} vs cold {cold_calls}");
    }

    #[test]
    fn cache_disabled_is_the_cold_baseline() {
        let pack = diag_inst(&[&[2.0, 0.0], &[0.0, 4.0]]);
        let opts = ApproxOptions::serving(0.15);
        let requests: Vec<ServeRequest> = (0..3)
            .map(|i| ServeRequest::optimize(format!("r{i}"), Arc::clone(&pack), opts))
            .collect();
        let mut cold = Scheduler::new(SchedulerOptions {
            cache_enabled: false,
            ..SchedulerOptions::default()
        });
        let out = cold.run_batch(&requests).unwrap();
        assert_eq!(out.report.groups, 3);
        assert_eq!(out.report.prep_builds, 3);
        assert_eq!(out.report.tiers.memo_hits, 0);
        assert_eq!(cold.cached_fingerprints(), 0);
        // Every response is value-identical anyway (determinism).
        let digests: Vec<String> = out
            .responses
            .iter()
            .map(|r| response_fingerprint(r).split_once(':').unwrap().1.to_string())
            .collect();
        assert_eq!(digests[0], digests[1]);
        assert_eq!(digests[1], digests[2]);

        let mut warm = Scheduler::new(SchedulerOptions::default());
        let warm_out = warm.run_batch(&requests).unwrap();
        assert_eq!(warm_out.report.prep_builds, 1);
        assert_eq!(warm_out.report.tiers.memo_hits, 2);
        assert!(
            warm_out.report.engine_evals < out.report.engine_evals,
            "cache must reduce live engine work: warm {} vs cold {}",
            warm_out.report.engine_evals,
            out.report.engine_evals
        );
        let warm_digest: Vec<String> = warm_out
            .responses
            .iter()
            .map(|r| response_fingerprint(r).split_once(':').unwrap().1.to_string())
            .collect();
        assert_eq!(digests, warm_digest, "cache must never change a response value");
    }

    #[test]
    fn responses_do_not_depend_on_submission_order() {
        let a = diag_inst(&[&[2.0, 0.0], &[0.0, 4.0]]);
        let b = diag_inst(&[&[1.0, 0.3], &[0.3, 1.0]]);
        let mk = |ids: &[&str]| -> Vec<ServeRequest> {
            ids.iter()
                .map(|&id| match id {
                    "x1" => ServeRequest::decision(
                        "x1",
                        Arc::clone(&a),
                        0.6,
                        DecisionOptions::practical(0.2),
                    ),
                    "x2" => ServeRequest::decision(
                        "x2",
                        Arc::clone(&a),
                        1.4,
                        DecisionOptions::practical(0.2),
                    ),
                    "y1" => {
                        ServeRequest::optimize("y1", Arc::clone(&b), ApproxOptions::serving(0.1))
                    }
                    "y2" => {
                        ServeRequest::optimize("y2", Arc::clone(&b), ApproxOptions::serving(0.1))
                    }
                    _ => unreachable!(),
                })
                .collect()
        };
        let run = |ids: &[&str]| -> Vec<String> {
            let mut sched = Scheduler::new(SchedulerOptions::default());
            let out = sched.run_batch(&mk(ids)).unwrap();
            let mut digests: Vec<String> = out
                .responses
                .iter()
                .map(|r| {
                    format!(
                        "{} memo={} prep={} evals={} replayed={}",
                        response_fingerprint(r),
                        r.stats.memoized,
                        r.stats.prep_reused,
                        r.stats.engine_evals,
                        r.stats.replayed
                    )
                })
                .collect();
            digests.sort();
            digests
        };
        let fwd = run(&["x1", "x2", "y1", "y2"]);
        let rev = run(&["y2", "y1", "x2", "x1"]);
        let mix = run(&["y1", "x2", "y2", "x1"]);
        assert_eq!(fwd, rev);
        assert_eq!(fwd, mix);
    }

    #[test]
    fn duplicate_ids_and_mismatched_payloads() {
        let pack = diag_inst(&[&[1.0]]);
        let requests = vec![
            ServeRequest::decision("same", Arc::clone(&pack), 1.0, DecisionOptions::practical(0.2)),
            ServeRequest::decision("same", Arc::clone(&pack), 2.0, DecisionOptions::practical(0.2)),
        ];
        let mut sched = Scheduler::new(SchedulerOptions::default());
        assert_eq!(
            sched.run_batch(&requests).err(),
            Some(ServeError::DuplicateId("same".to_string()))
        );

        // A mixed kind over a packing payload yields a per-request error.
        let payload = InstancePayload::Packing(Arc::clone(&pack));
        let bad = ServeRequest {
            id: "bad".into(),
            content_hash: payload.content_hash(),
            payload,
            kind: RequestKind::Mixed { opts: MixedApproxOptions::practical(0.1) },
        };
        let ok =
            ServeRequest::decision("ok", Arc::clone(&pack), 1.0, DecisionOptions::practical(0.2));
        let out = sched.run_batch(&[bad, ok]).unwrap();
        assert!(out.responses[0].result.is_err());
        assert!(out.responses[1].result.is_ok());
        assert_eq!(out.report.errors, 1);
    }

    #[test]
    fn bounded_in_flight_concurrency_is_result_neutral() {
        let insts: Vec<Arc<PackingInstance>> =
            (0..5).map(|i| diag_inst(&[&[1.0 + i as f64, 0.0], &[0.0, 2.0 + i as f64]])).collect();
        let requests: Vec<ServeRequest> = insts
            .iter()
            .enumerate()
            .map(|(i, inst)| {
                ServeRequest::optimize(
                    format!("r{i}"),
                    Arc::clone(inst),
                    ApproxOptions::serving(0.15),
                )
            })
            .collect();
        let digest = |max_in_flight: usize| -> Vec<String> {
            let mut sched =
                Scheduler::new(SchedulerOptions { max_in_flight, ..SchedulerOptions::default() });
            let out = sched.run_batch(&requests).unwrap();
            out.responses.iter().map(response_fingerprint).collect()
        };
        assert_eq!(digest(1), digest(4));
        assert_eq!(digest(1), digest(0));
    }

    #[test]
    fn queue_wait_and_service_are_recorded() {
        let pack = diag_inst(&[&[2.0, 0.0], &[0.0, 4.0]]);
        let requests = vec![
            ServeRequest::optimize("a", Arc::clone(&pack), ApproxOptions::serving(0.2)),
            ServeRequest::optimize("b", Arc::clone(&pack), ApproxOptions::serving(0.1)),
        ];
        let mut sched = Scheduler::new(SchedulerOptions::default());
        let out = sched.run_batch(&requests).unwrap();
        // Same group ⇒ "b" waits behind "a" (id order): strictly positive
        // queue wait, and the report aggregates are consistent.
        assert!(out.responses[1].stats.queue_wait >= out.responses[0].stats.queue_wait);
        let sum: std::time::Duration = out.responses.iter().map(|r| r.stats.queue_wait).sum();
        assert_eq!(sum, out.report.total_queue_wait);
        assert!(out.report.max_queue_wait >= out.responses[1].stats.queue_wait);
        assert!(out.report.wall >= out.responses.iter().map(|r| r.stats.service).max().unwrap());
    }
}
