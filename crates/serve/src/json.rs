//! A minimal, dependency-free JSON reader for the serving layer.
//!
//! The `psdp serve` front door consumes one JSON request per line and the
//! schema-snapshot tests introspect the CLI's `--json` output, so the
//! workspace needs a JSON *reader* (writing stays hand-formatted, as in
//! `psdp-cli`). This is a strict recursive-descent parser over the JSON
//! grammar: objects (key order preserved), arrays, strings with the
//! standard escapes (including surrogate pairs), numbers parsed as `f64`,
//! `true`/`false`/`null`. Inputs that real parsers reject are rejected
//! here too — trailing garbage, unterminated strings, bare NaN/Infinity,
//! control characters inside strings, and nesting deeper than
//! [`MAX_DEPTH`] (a stack-overflow guard) all return a positioned
//! [`JsonError`] instead of panicking.

use std::fmt;

/// Maximum nesting depth accepted by the parser (arrays + objects). Deep
/// enough for any real request, shallow enough that a hostile
/// `[[[[…]]]]` line errors out instead of overflowing the stack.
pub const MAX_DEPTH: usize = 128;

/// A parsed JSON value. Object keys keep their source order (the schema
/// tests compare key *sets*, but error messages read better in order).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, as ordered key/value pairs. Duplicate keys are rejected
    /// at parse time.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Look up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// True for `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }

    /// Short type name for error messages and schema lines.
    pub fn type_name(&self) -> &'static str {
        match self {
            JsonValue::Null => "null",
            JsonValue::Bool(_) => "bool",
            JsonValue::Num(_) => "number",
            JsonValue::Str(_) => "string",
            JsonValue::Arr(_) => "array",
            JsonValue::Obj(_) => "object",
        }
    }
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where the error was detected.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parse one complete JSON value; trailing non-whitespace is an error.
///
/// # Errors
/// A positioned [`JsonError`] on any malformed input.
pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError { at: self.pos, msg: msg.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", c as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting deeper than the supported maximum"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("invalid literal (expected `{word}`)")))
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_digits = self.eat_digits();
        if int_digits == 0 {
            return Err(self.err("number has no digits"));
        }
        // JSON forbids leading zeros like `042`.
        let int_part = &self.bytes[start..self.pos];
        let unsigned = match int_part {
            [b'-', rest @ ..] => rest,
            _ => int_part,
        };
        if unsigned.len() > 1 && unsigned.first() == Some(&b'0') {
            return Err(self.err("leading zeros are not allowed"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if self.eat_digits() == 0 {
                return Err(self.err("missing digits after decimal point"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if self.eat_digits() == 0 {
                return Err(self.err("missing exponent digits"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8 in number"))?;
        let v: f64 = text.parse().map_err(|_| self.err("unparseable number"))?;
        Ok(JsonValue::Num(v))
    }

    fn eat_digits(&mut self) -> usize {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        self.pos - start
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let chunk = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid utf-8 in \\u escape"))?;
        let v = u32::from_str_radix(chunk, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // High surrogate: require a low surrogate.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("unpaired low surrogate"));
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid code point"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("raw control character in string"));
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so boundaries
                    // are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let ch = rest.chars().next().ok_or_else(|| self.err("unterminated string"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut pairs: Vec<(String, JsonValue)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if pairs.iter().any(|(k, _)| *k == key) {
                return Err(self.err(&format!("duplicate key `{key}`")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }
}

/// Flatten a value into sorted `path: type` schema lines — the shape the
/// JSON snapshot tests compare, so numeric jitter in values can never mask
/// a missing or renamed field. Array elements share the path component
/// `[]` (their schemas are unioned), and `null` is recorded as its own
/// type: the comparison treats `null` as compatible with any type, because
/// optional fields (`best_dual`, non-finite floats) legitimately toggle.
pub fn schema_lines(v: &JsonValue) -> Vec<String> {
    let mut out = Vec::new();
    walk(v, "$", &mut out);
    out.sort();
    out.dedup();
    out
}

fn walk(v: &JsonValue, path: &str, out: &mut Vec<String>) {
    out.push(format!("{path}: {}", v.type_name()));
    match v {
        JsonValue::Arr(items) => {
            for item in items {
                walk(item, &format!("{path}[]"), out);
            }
        }
        JsonValue::Obj(pairs) => {
            for (k, val) in pairs {
                walk(val, &format!("{path}.{k}"), out);
            }
        }
        _ => {}
    }
}

/// Compare two schema-line sets treating `null` as a wildcard type: every
/// *path* present in `want` must be present in `got` and vice versa, and
/// where both sides pin a non-null type the types must agree. Returns the
/// human-readable mismatches (empty = schemas match).
pub fn schema_diff(want: &[String], got: &[String]) -> Vec<String> {
    let split = |line: &String| -> (String, String) {
        match line.rsplit_once(": ") {
            Some((p, t)) => (p.to_string(), t.to_string()),
            None => (line.clone(), String::new()),
        }
    };
    let collect = |lines: &[String]| -> Vec<(String, String)> { lines.iter().map(split).collect() };
    let want_pt = collect(want);
    let got_pt = collect(got);
    let mut diffs = Vec::new();
    let paths = |pt: &[(String, String)]| -> Vec<String> {
        let mut p: Vec<String> = pt.iter().map(|(p, _)| p.clone()).collect();
        p.sort();
        p.dedup();
        p
    };
    for p in paths(&want_pt) {
        if !got_pt.iter().any(|(gp, _)| *gp == p) {
            diffs.push(format!("missing path {p}"));
        }
    }
    for p in paths(&got_pt) {
        if !want_pt.iter().any(|(wp, _)| *wp == p) {
            diffs.push(format!("unexpected path {p}"));
        }
    }
    for (p, t) in &want_pt {
        if t == "null" {
            continue;
        }
        for (gp, gt) in &got_pt {
            if gp == p && gt != "null" && gt != t {
                diffs.push(format!("type mismatch at {p}: want {t}, got {gt}"));
            }
        }
    }
    diffs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> JsonValue {
        parse(s).unwrap()
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(p("null"), JsonValue::Null);
        assert_eq!(p("true"), JsonValue::Bool(true));
        assert_eq!(p("false"), JsonValue::Bool(false));
        assert_eq!(p("3.25"), JsonValue::Num(3.25));
        assert_eq!(p("-1e-3"), JsonValue::Num(-1e-3));
        assert_eq!(p("0"), JsonValue::Num(0.0));
        assert_eq!(p("\"hi\""), JsonValue::Str("hi".into()));
    }

    #[test]
    fn parses_structures_and_accessors() {
        let v = p(r#"{"a": [1, 2.5, {"b": null}], "c": "x", "d": true}"#);
        assert_eq!(v.get("c").and_then(JsonValue::as_str), Some("x"));
        assert_eq!(v.get("d").and_then(JsonValue::as_bool), Some(true));
        match v.get("a") {
            Some(JsonValue::Arr(items)) => {
                assert_eq!(items.len(), 3);
                assert!(items[2].get("b").is_some_and(JsonValue::is_null));
            }
            other => panic!("bad a: {other:?}"),
        }
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn string_escapes_resolve() {
        assert_eq!(p(r#""a\"b\\c\/d\n\t""#), JsonValue::Str("a\"b\\c/d\n\t".into()));
        assert_eq!(p(r#""\u00e9""#), JsonValue::Str("é".into()));
        // Surrogate pair: U+1F600.
        assert_eq!(p(r#""\ud83d\ude00""#), JsonValue::Str("😀".into()));
        // Non-ASCII passthrough.
        assert_eq!(p("\"ψ\""), JsonValue::Str("ψ".into()));
    }

    #[test]
    fn rejects_malformed_inputs() {
        for bad in [
            "",
            "   ",
            "{",
            "}",
            "[1,]",
            "[1 2]",
            "{\"a\":}",
            "{\"a\" 1}",
            "{a:1}",
            "\"unterminated",
            "tru",
            "nul",
            "nan",
            "NaN",
            "Infinity",
            "-",
            "01",
            "1.",
            "1e",
            "+1",
            "\"\\x\"",
            "\"\\u12\"",
            "\"\\ud800\"",
            "\"\\udc00\"",
            "\"\\ud800\\u0041\"",
            "1 2",
            "{\"a\":1,\"a\":2}",
            "\u{1}",
            "\"raw\u{1}ctl\"",
        ] {
            assert!(parse(bad).is_err(), "accepted malformed input {bad:?}");
        }
    }

    #[test]
    fn depth_guard_errors_instead_of_overflowing() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        let err = parse(&deep).unwrap_err();
        assert!(err.msg.contains("nesting"), "{err}");
        // A depth just under the cap parses fine.
        let ok = "[".repeat(MAX_DEPTH - 1) + "1" + &"]".repeat(MAX_DEPTH - 1);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn whitespace_tolerated() {
        let v = p(" \t\r\n { \"a\" : [ ] } \n");
        assert_eq!(v, JsonValue::Obj(vec![("a".into(), JsonValue::Arr(vec![]))]));
    }

    #[test]
    fn schema_lines_capture_shape_not_values() {
        let a = p(r#"{"x": 1, "y": [{"z": 2}, {"z": 9}], "s": "v"}"#);
        let b = p(r#"{"x": 7.5, "y": [{"z": -1}], "s": "other"}"#);
        assert_eq!(schema_lines(&a), schema_lines(&b));
        let c = p(r#"{"x": 1, "y": [{"w": 2}], "s": "v"}"#);
        assert_ne!(schema_lines(&a), schema_lines(&c));
    }

    #[test]
    fn schema_diff_null_is_wildcard() {
        let a = schema_lines(&p(r#"{"x": null}"#));
        let b = schema_lines(&p(r#"{"x": 3.5}"#));
        assert!(schema_diff(&a, &b).is_empty());
        let c = schema_lines(&p(r#"{"y": 3.5}"#));
        let diffs = schema_diff(&a, &c);
        assert_eq!(diffs.len(), 2, "{diffs:?}");
    }
}
