//! The serving request model: heterogeneous solve requests over shared,
//! immutable instances.
//!
//! Instances travel as `Arc`s so a zipf-repeated batch (many requests,
//! few distinct instances) does not clone constraint data per request, and
//! so cached prepared state can keep the instance alive across batches.

use psdp_core::{
    mixed_content_hash, mixed_structural_eq, packing_content_hash, packing_structural_eq,
    ApproxOptions, DecisionOptions, MixedApproxOptions, MixedInstance, PackingInstance,
};
use std::sync::Arc;

/// What a request asks the solver to do. Every variant carries its own
/// options — heterogeneous batches are the point of the scheduler.
#[derive(Debug, Clone)]
pub enum RequestKind {
    /// The ε-decision question "is the packing optimum ≥ `threshold`?"
    /// (a single [`psdp_core::Session::solve_with`] call).
    Decision {
        /// The threshold `σ` to test.
        threshold: f64,
        /// Per-request decision options (the engine kind and seed also
        /// select which prepared solver the request shares).
        opts: DecisionOptions,
    },
    /// Full certified bisection ([`psdp_core::Session::optimize`]).
    Optimize {
        /// Per-request optimizer options.
        opts: ApproxOptions,
    },
    /// Mixed packing–covering threshold optimization
    /// ([`psdp_core::MixedSession::optimize`]).
    Mixed {
        /// Per-request mixed optimizer options.
        opts: MixedApproxOptions,
    },
}

impl RequestKind {
    /// Short label for telemetry and reports.
    pub fn name(&self) -> &'static str {
        match self {
            RequestKind::Decision { .. } => "decision",
            RequestKind::Optimize { .. } => "optimize",
            RequestKind::Mixed { .. } => "mixed",
        }
    }
}

/// The instance a request runs against.
#[derive(Debug, Clone)]
pub enum InstancePayload {
    /// A packing instance (decision / optimize requests).
    Packing(Arc<PackingInstance>),
    /// A mixed packing–covering instance (mixed requests).
    Mixed(Arc<MixedInstance>),
}

impl InstancePayload {
    /// The structural content hash of the carried instance
    /// ([`psdp_core::packing_content_hash`] /
    /// [`psdp_core::mixed_content_hash`]) — `O(nnz)`, so callers that can
    /// reuse a hash (source caches, binary headers) should prefer the
    /// `*_hashed` request constructors over recomputing.
    pub fn content_hash(&self) -> u64 {
        match self {
            InstancePayload::Packing(inst) => packing_content_hash(inst),
            InstancePayload::Mixed(inst) => mixed_content_hash(inst),
        }
    }

    /// Bitwise structural equality of two payloads, with an `Arc` pointer
    /// fast path. This is the collision verifier behind every cache hit:
    /// exactly as strong as comparing canonical serializations, with zero
    /// allocation and usually zero work.
    pub fn structural_eq(&self, other: &InstancePayload) -> bool {
        match (self, other) {
            (InstancePayload::Packing(a), InstancePayload::Packing(b)) => {
                Arc::ptr_eq(a, b) || packing_structural_eq(a, b)
            }
            (InstancePayload::Mixed(a), InstancePayload::Mixed(b)) => {
                Arc::ptr_eq(a, b) || mixed_structural_eq(a, b)
            }
            _ => false,
        }
    }
}

/// One serve request: a unique id, an instance, and what to do with it.
#[derive(Debug, Clone)]
pub struct ServeRequest {
    /// Caller-chosen identifier, unique within a batch. Responses are
    /// keyed by it, and the scheduler orders same-fingerprint requests by
    /// id so results do not depend on submission order.
    pub id: String,
    /// The instance to solve.
    pub payload: InstancePayload,
    /// The work to perform.
    pub kind: RequestKind,
    /// Structural content hash of the instance, computed **once** when the
    /// request was built (at parse time for text submissions, straight off
    /// the header for binary ones) and carried along so admission, shard
    /// routing, and cache lookups never re-serialize the instance.
    pub content_hash: u64,
}

impl ServeRequest {
    /// A decision request (hashes the instance; prefer
    /// [`ServeRequest::decision_hashed`] when the hash is already known).
    pub fn decision(
        id: impl Into<String>,
        inst: Arc<PackingInstance>,
        threshold: f64,
        opts: DecisionOptions,
    ) -> Self {
        let hash = packing_content_hash(&inst);
        Self::decision_hashed(id, inst, hash, threshold, opts)
    }

    /// A decision request with a precomputed content hash.
    pub fn decision_hashed(
        id: impl Into<String>,
        inst: Arc<PackingInstance>,
        content_hash: u64,
        threshold: f64,
        opts: DecisionOptions,
    ) -> Self {
        ServeRequest {
            id: id.into(),
            payload: InstancePayload::Packing(inst),
            kind: RequestKind::Decision { threshold, opts },
            content_hash,
        }
    }

    /// An optimize request (hashes the instance; prefer
    /// [`ServeRequest::optimize_hashed`] when the hash is already known).
    pub fn optimize(
        id: impl Into<String>,
        inst: Arc<PackingInstance>,
        opts: ApproxOptions,
    ) -> Self {
        let hash = packing_content_hash(&inst);
        Self::optimize_hashed(id, inst, hash, opts)
    }

    /// An optimize request with a precomputed content hash.
    pub fn optimize_hashed(
        id: impl Into<String>,
        inst: Arc<PackingInstance>,
        content_hash: u64,
        opts: ApproxOptions,
    ) -> Self {
        ServeRequest {
            id: id.into(),
            payload: InstancePayload::Packing(inst),
            kind: RequestKind::Optimize { opts },
            content_hash,
        }
    }

    /// A mixed request (hashes the instance; prefer
    /// [`ServeRequest::mixed_hashed`] when the hash is already known).
    pub fn mixed(
        id: impl Into<String>,
        inst: Arc<MixedInstance>,
        opts: MixedApproxOptions,
    ) -> Self {
        let hash = mixed_content_hash(&inst);
        Self::mixed_hashed(id, inst, hash, opts)
    }

    /// A mixed request with a precomputed content hash.
    pub fn mixed_hashed(
        id: impl Into<String>,
        inst: Arc<MixedInstance>,
        content_hash: u64,
        opts: MixedApproxOptions,
    ) -> Self {
        ServeRequest {
            id: id.into(),
            payload: InstancePayload::Mixed(inst),
            kind: RequestKind::Mixed { opts },
            content_hash,
        }
    }

    /// Whether the payload matches what the request kind needs (decision /
    /// optimize run on packing instances, mixed on mixed instances).
    pub fn payload_matches_kind(&self) -> bool {
        matches!(
            (&self.payload, &self.kind),
            (InstancePayload::Packing(_), RequestKind::Decision { .. })
                | (InstancePayload::Packing(_), RequestKind::Optimize { .. })
                | (InstancePayload::Mixed(_), RequestKind::Mixed { .. })
        )
    }
}
