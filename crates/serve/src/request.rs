//! The serving request model: heterogeneous solve requests over shared,
//! immutable instances.
//!
//! Instances travel as `Arc`s so a zipf-repeated batch (many requests,
//! few distinct instances) does not clone constraint data per request, and
//! so cached prepared state can keep the instance alive across batches.

use psdp_core::{
    ApproxOptions, DecisionOptions, MixedApproxOptions, MixedInstance, PackingInstance,
};
use std::sync::Arc;

/// What a request asks the solver to do. Every variant carries its own
/// options — heterogeneous batches are the point of the scheduler.
#[derive(Debug, Clone)]
pub enum RequestKind {
    /// The ε-decision question "is the packing optimum ≥ `threshold`?"
    /// (a single [`psdp_core::Session::solve_with`] call).
    Decision {
        /// The threshold `σ` to test.
        threshold: f64,
        /// Per-request decision options (the engine kind and seed also
        /// select which prepared solver the request shares).
        opts: DecisionOptions,
    },
    /// Full certified bisection ([`psdp_core::Session::optimize`]).
    Optimize {
        /// Per-request optimizer options.
        opts: ApproxOptions,
    },
    /// Mixed packing–covering threshold optimization
    /// ([`psdp_core::MixedSession::optimize`]).
    Mixed {
        /// Per-request mixed optimizer options.
        opts: MixedApproxOptions,
    },
}

impl RequestKind {
    /// Short label for telemetry and reports.
    pub fn name(&self) -> &'static str {
        match self {
            RequestKind::Decision { .. } => "decision",
            RequestKind::Optimize { .. } => "optimize",
            RequestKind::Mixed { .. } => "mixed",
        }
    }
}

/// The instance a request runs against.
#[derive(Debug, Clone)]
pub enum InstancePayload {
    /// A packing instance (decision / optimize requests).
    Packing(Arc<PackingInstance>),
    /// A mixed packing–covering instance (mixed requests).
    Mixed(Arc<MixedInstance>),
}

/// One serve request: a unique id, an instance, and what to do with it.
#[derive(Debug, Clone)]
pub struct ServeRequest {
    /// Caller-chosen identifier, unique within a batch. Responses are
    /// keyed by it, and the scheduler orders same-fingerprint requests by
    /// id so results do not depend on submission order.
    pub id: String,
    /// The instance to solve.
    pub payload: InstancePayload,
    /// The work to perform.
    pub kind: RequestKind,
}

impl ServeRequest {
    /// A decision request.
    pub fn decision(
        id: impl Into<String>,
        inst: Arc<PackingInstance>,
        threshold: f64,
        opts: DecisionOptions,
    ) -> Self {
        ServeRequest {
            id: id.into(),
            payload: InstancePayload::Packing(inst),
            kind: RequestKind::Decision { threshold, opts },
        }
    }

    /// An optimize request.
    pub fn optimize(
        id: impl Into<String>,
        inst: Arc<PackingInstance>,
        opts: ApproxOptions,
    ) -> Self {
        ServeRequest {
            id: id.into(),
            payload: InstancePayload::Packing(inst),
            kind: RequestKind::Optimize { opts },
        }
    }

    /// A mixed request.
    pub fn mixed(
        id: impl Into<String>,
        inst: Arc<MixedInstance>,
        opts: MixedApproxOptions,
    ) -> Self {
        ServeRequest {
            id: id.into(),
            payload: InstancePayload::Mixed(inst),
            kind: RequestKind::Mixed { opts },
        }
    }

    /// Whether the payload matches what the request kind needs (decision /
    /// optimize run on packing instances, mixed on mixed instances).
    pub fn payload_matches_kind(&self) -> bool {
        matches!(
            (&self.payload, &self.kind),
            (InstancePayload::Packing(_), RequestKind::Decision { .. })
                | (InstancePayload::Packing(_), RequestKind::Optimize { .. })
                | (InstancePayload::Mixed(_), RequestKind::Mixed { .. })
        )
    }
}
