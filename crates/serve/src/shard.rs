//! The sharded solver cache behind the persistent service.
//!
//! One global [`crate::cache::SolverCache`] behind one lock serializes
//! every cache touch — fine for the one-shot scheduler (which takes
//! entries out before going parallel) but a contention wall for a
//! long-lived service where workers hit the cache on every request. The
//! sharded cache splits the fingerprint space into independent shards,
//! each behind its own lock, routed by an **unbiased widening-multiply
//! mapping of the 64-bit fingerprint hash** (`(hash · shards) >> 64`),
//! which partitions the hash space into `shards` equal contiguous ranges.
//!
//! Routing by fingerprint prefix gives the service its determinism lever:
//! a fingerprint lives on exactly one shard regardless of the shard
//! count, so with one worker draining each shard queue in arrival order,
//! the sequence of cache states any single fingerprint moves through is a
//! function of the request stream alone — never of the shard count or of
//! how workers interleave across shards. `tests/determinism.rs` pins the
//! resulting response streams bitwise across shard counts {1, 4}.
//!
//! Capacity is per shard (deterministic per-shard LRU, same logical-clock
//! scheme as the unsharded cache), so eviction behavior for one
//! fingerprint depends only on the traffic that shares its shard.

use crate::cache::CacheEntry;
use crate::cache::SolverCache;
use crate::request::ServeRequest;
use parking_lot::Mutex;

/// A fingerprint-sharded [`SolverCache`]: `shards` independent caches,
/// each behind its own lock, routed by fingerprint-hash prefix.
pub struct ShardedCache {
    shards: Vec<Mutex<SolverCache>>,
}

/// Which shard a fingerprint hash routes to: the widening multiply
/// `(hash · shards) >> 64`, i.e. the hash's position in an equal
/// `shards`-way partition of the 64-bit space. Unlike the earlier
/// top-byte-modulo mapping, this is unbiased for every shard count —
/// folding 256 byte values modulo a count that does not divide 256 gave
/// the low residues one extra bucket of the 8-bit space, permanently
/// overloading those shards. Routing still depends only on the high bits
/// first (equal contiguous hash ranges), so a fingerprint lives on
/// exactly one shard for a given count. Snapshots store no shard ids;
/// `ShardedCache::insert` re-routes every entry on load, so warm
/// reloads written under the old mapping re-shard automatically.
pub fn shard_of(hash: u64, shards: usize) -> usize {
    ((u128::from(hash) * shards.max(1) as u128) >> 64) as usize
}

impl ShardedCache {
    /// A sharded cache with `shards` shards (`0` is treated as 1), each
    /// holding at most `max_entries_per_shard` fingerprints.
    pub fn new(shards: usize, max_entries_per_shard: usize) -> Self {
        let n = shards.max(1);
        ShardedCache {
            shards: (0..n).map(|_| Mutex::new(SolverCache::new(max_entries_per_shard))).collect(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total fingerprints cached across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True when no shard holds an entry.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().is_empty())
    }

    /// Remove and return the entry whose prep hash is `hash` and whose
    /// full fingerprint verifies against `req`, from its shard. Workers
    /// take the entry out, run without holding the lock, and re-insert
    /// afterwards — the shard lock is only held for the lookup.
    pub(crate) fn take(&self, hash: u64, req: &ServeRequest) -> Option<CacheEntry> {
        let shard = self.shards.get(shard_of(hash, self.shards.len()))?;
        shard.lock().take(hash, req)
    }

    /// Insert (or re-insert) an entry into its shard, stamping the
    /// shard-local LRU clock and evicting that shard's LRU entry if over
    /// capacity.
    pub(crate) fn insert(&self, entry: CacheEntry) {
        let idx = shard_of(entry.hash, self.shards.len());
        if let Some(shard) = self.shards.get(idx) {
            shard.lock().insert(entry);
        }
    }

    /// Run `f` over every entry without removing any, shard by shard in
    /// shard order. Iteration order depends on the shard count, so the
    /// snapshot writer sorts what it renders; callers that need a
    /// shard-count-invariant order must do the same.
    pub(crate) fn for_each(&self, mut f: impl FnMut(&CacheEntry)) {
        for shard in &self.shards {
            let guard = shard.lock();
            for entry in guard.entries() {
                f(entry);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{prep_engine_of, prep_hash, Prepared};
    use psdp_core::{DecisionOptions, PackingInstance};
    use psdp_expdot::Engine;
    use psdp_sparse::PsdMatrix;
    use std::sync::Arc;

    fn req(diag: &[f64]) -> ServeRequest {
        let inst =
            Arc::new(PackingInstance::new(vec![PsdMatrix::Diagonal(diag.to_vec())]).unwrap());
        ServeRequest::decision(format!("{diag:?}"), inst, 1.0, DecisionOptions::practical(0.1))
    }

    fn entry(r: &ServeRequest) -> CacheEntry {
        let (engine_kind, seed) = prep_engine_of(&r.kind);
        let crate::request::InstancePayload::Packing(inst) = &r.payload else { unreachable!() };
        CacheEntry {
            hash: prep_hash(r),
            engine_kind,
            seed,
            prepared: Prepared::Packing {
                inst: Arc::clone(inst),
                engine: Arc::new(Engine::new(engine_kind, inst.mats(), seed).unwrap()),
            },
            memo: Vec::new(),
            bracket: None,
            last_used: 0,
        }
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        for shards in [1usize, 2, 4, 7] {
            for diag in [&[1.0][..], &[2.0], &[1.0, 2.0, 3.0]] {
                let h = prep_hash(&req(diag));
                let s = shard_of(h, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(h, shards), "routing must be a pure function");
            }
        }
        assert_eq!(shard_of(u64::MAX, 0), 0, "zero shards treated as one");
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    #[test]
    fn routing_is_uniform_over_random_fingerprints() {
        // Chi-square-style bound: over N pseudo-random fingerprints the
        // per-shard counts must stay within a few standard deviations of
        // N/shards. The old top-byte-modulo mapping passes this only when
        // the shard count divides 256; the widening multiply passes for
        // every count. Statistic: sum over shards of (count-exp)^2/exp,
        // bounded well above its expectation (shards-1) but far below
        // what a systematic bias produces.
        const N: usize = 1 << 16;
        for shards in [2usize, 3, 4, 5, 8] {
            let mut counts = vec![0u64; shards];
            let mut state = 0x5eed_0000_0000_0000u64 ^ shards as u64;
            for _ in 0..N {
                counts[shard_of(splitmix64(&mut state), shards)] += 1;
            }
            let expected = N as f64 / shards as f64;
            let chi2: f64 = counts.iter().map(|&c| (c as f64 - expected).powi(2) / expected).sum();
            assert!(
                chi2 < 30.0,
                "shards={shards}: chi2={chi2:.2} counts={counts:?} (biased routing?)"
            );
        }
    }

    #[test]
    fn routing_is_exactly_balanced_on_a_uniform_grid() {
        // On hashes evenly spaced across the 64-bit range, the widening
        // multiply lands within ±1 of N/shards per shard for every shard
        // count. The old top-byte fold failed this for counts that do not
        // divide 256 (3, 5, 6, ...): low residues got one extra byte
        // value, a deviation of N/256 per overloaded shard.
        const N: u64 = 1 << 16;
        let step = u64::MAX / N;
        for shards in [2usize, 3, 4, 5, 6, 8] {
            let mut counts = vec![0u64; shards];
            for i in 0..N {
                counts[shard_of(i * step, shards)] += 1;
            }
            let expected = N / shards as u64;
            for (s, &c) in counts.iter().enumerate() {
                assert!(
                    c.abs_diff(expected) <= 1,
                    "shards={shards} shard={s}: count {c} vs expected {expected}"
                );
            }
        }
    }

    #[test]
    fn take_insert_roundtrip_across_shards() {
        let cache = ShardedCache::new(4, 8);
        let reqs: Vec<ServeRequest> =
            [1.0, 2.0, 3.0, 4.0, 5.0].iter().map(|&v| req(&[v])).collect();
        for r in &reqs {
            cache.insert(entry(r));
        }
        assert_eq!(cache.len(), 5);
        assert!(!cache.is_empty());
        for r in &reqs {
            let e = cache.take(prep_hash(r), r).expect("entry present");
            assert_eq!(e.hash, prep_hash(r));
            cache.insert(e);
        }
        let missing = req(&[99.0]);
        assert!(cache.take(prep_hash(&missing), &missing).is_none());
        assert_eq!(cache.len(), 5);
    }

    #[test]
    fn eviction_is_shard_local() {
        // Capacity 1 per shard: fingerprints that share a shard evict each
        // other, fingerprints on other shards are untouched.
        let cache = ShardedCache::new(2, 1);
        let reqs: Vec<ServeRequest> =
            [1.0, 2.0, 3.0, 4.0, 5.0, 6.0].iter().map(|&v| req(&[v])).collect();
        for r in &reqs {
            cache.insert(entry(r));
        }
        // At most one survivor per shard.
        assert!(cache.len() <= 2);
        let survivors: Vec<&ServeRequest> =
            reqs.iter().filter(|r| cache.take(prep_hash(r), r).is_some()).collect();
        assert!(!survivors.is_empty());
        // Each survivor must be the most recent fingerprint routed to its
        // shard.
        for s in survivors {
            let sh = shard_of(prep_hash(s), 2);
            let later: Vec<&ServeRequest> = reqs
                .iter()
                .skip_while(|r| r.id != s.id)
                .skip(1)
                .filter(|r| shard_of(prep_hash(r), 2) == sh)
                .collect();
            assert!(later.is_empty(), "{} should have been evicted", s.id);
        }
    }

    #[test]
    fn for_each_visits_all_without_removing() {
        let cache = ShardedCache::new(3, 8);
        let reqs: Vec<ServeRequest> = [1.0, 2.0, 3.0].iter().map(|&v| req(&[v])).collect();
        for r in &reqs {
            cache.insert(entry(r));
        }
        let mut seen = Vec::new();
        cache.for_each(|e| seen.push(e.hash));
        seen.sort_unstable();
        let mut want: Vec<u64> = reqs.iter().map(prep_hash).collect();
        want.sort_unstable();
        assert_eq!(seen, want);
        assert_eq!(cache.len(), 3, "iteration must not consume entries");
    }
}
