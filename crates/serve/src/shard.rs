//! The sharded solver cache behind the persistent service.
//!
//! One global [`crate::cache::SolverCache`] behind one lock serializes
//! every cache touch — fine for the one-shot scheduler (which takes
//! entries out before going parallel) but a contention wall for a
//! long-lived service where workers hit the cache on every request. The
//! sharded cache splits the fingerprint space into independent shards,
//! each behind its own lock, routed by a **prefix of the 64-bit
//! fingerprint hash** (the top byte, folded modulo the shard count).
//!
//! Routing by fingerprint prefix gives the service its determinism lever:
//! a fingerprint lives on exactly one shard regardless of the shard
//! count, so with one worker draining each shard queue in arrival order,
//! the sequence of cache states any single fingerprint moves through is a
//! function of the request stream alone — never of the shard count or of
//! how workers interleave across shards. `tests/determinism.rs` pins the
//! resulting response streams bitwise across shard counts {1, 4}.
//!
//! Capacity is per shard (deterministic per-shard LRU, same logical-clock
//! scheme as the unsharded cache), so eviction behavior for one
//! fingerprint depends only on the traffic that shares its shard.

use crate::cache::CacheEntry;
use crate::cache::SolverCache;
use parking_lot::Mutex;

/// A fingerprint-sharded [`SolverCache`]: `shards` independent caches,
/// each behind its own lock, routed by fingerprint-hash prefix.
pub struct ShardedCache {
    shards: Vec<Mutex<SolverCache>>,
}

/// Which shard a fingerprint hash routes to: the hash's top byte (its
/// prefix), folded modulo the shard count. Using the high bits keeps the
/// route independent of the low-bit patterns FNV mixes last.
pub fn shard_of(hash: u64, shards: usize) -> usize {
    ((hash >> 56) as usize) % shards.max(1)
}

impl ShardedCache {
    /// A sharded cache with `shards` shards (`0` is treated as 1), each
    /// holding at most `max_entries_per_shard` fingerprints.
    pub fn new(shards: usize, max_entries_per_shard: usize) -> Self {
        let n = shards.max(1);
        ShardedCache {
            shards: (0..n).map(|_| Mutex::new(SolverCache::new(max_entries_per_shard))).collect(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total fingerprints cached across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True when no shard holds an entry.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().is_empty())
    }

    /// Remove and return the entry for `key` from its shard, if present.
    /// Workers take the entry out, run without holding the lock, and
    /// re-insert afterwards — the shard lock is only held for the lookup.
    pub(crate) fn take(&self, key: &str) -> Option<CacheEntry> {
        let hash = crate::cache::fnv1a(key.as_bytes());
        let shard = self.shards.get(shard_of(hash, self.shards.len()))?;
        shard.lock().take(key)
    }

    /// Insert (or re-insert) an entry into its shard, stamping the
    /// shard-local LRU clock and evicting that shard's LRU entry if over
    /// capacity.
    pub(crate) fn insert(&self, entry: CacheEntry) {
        let idx = shard_of(entry.hash, self.shards.len());
        if let Some(shard) = self.shards.get(idx) {
            shard.lock().insert(entry);
        }
    }

    /// Run `f` over every entry (key-sorted across all shards) without
    /// removing them. Used by the snapshot writer.
    pub(crate) fn for_each_sorted(&self, mut f: impl FnMut(&CacheEntry)) {
        let mut keys: Vec<(usize, String)> = Vec::new();
        for (i, shard) in self.shards.iter().enumerate() {
            for key in shard.lock().keys() {
                keys.push((i, key));
            }
        }
        keys.sort_by(|a, b| a.1.cmp(&b.1));
        for (i, key) in keys {
            if let Some(shard) = self.shards.get(i) {
                let mut guard = shard.lock();
                if let Some(entry) = guard.take(&key) {
                    f(&entry);
                    guard.insert_preserving_clock(entry);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{fnv1a, Prepared};
    use psdp_core::PackingInstance;
    use psdp_expdot::{Engine, EngineKind};
    use psdp_sparse::PsdMatrix;
    use std::sync::Arc;

    fn entry(key: &str) -> CacheEntry {
        let mats = vec![PsdMatrix::Diagonal(vec![1.0])];
        CacheEntry {
            hash: fnv1a(key.as_bytes()),
            key: key.to_string(),
            engine_kind: EngineKind::Exact,
            seed: 0,
            prepared: Prepared::Packing {
                inst: Arc::new(PackingInstance::new(mats.clone()).unwrap()),
                engine: Arc::new(Engine::new(EngineKind::Exact, &mats, 0).unwrap()),
            },
            memo: Vec::new(),
            bracket: None,
            last_used: 0,
        }
    }

    #[test]
    fn routing_is_stable_and_in_range() {
        for shards in [1usize, 2, 4, 7] {
            for key in ["a", "b", "packing\nengine Exact\nseed 0\npsdp 1"] {
                let h = fnv1a(key.as_bytes());
                let s = shard_of(h, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(h, shards), "routing must be a pure function");
            }
        }
        assert_eq!(shard_of(u64::MAX, 0), 0, "zero shards treated as one");
    }

    #[test]
    fn take_insert_roundtrip_across_shards() {
        let cache = ShardedCache::new(4, 8);
        for key in ["k1", "k2", "k3", "k4", "k5"] {
            cache.insert(entry(key));
        }
        assert_eq!(cache.len(), 5);
        assert!(!cache.is_empty());
        for key in ["k1", "k2", "k3", "k4", "k5"] {
            let e = cache.take(key).expect("entry present");
            assert_eq!(e.key, key);
            cache.insert(e);
        }
        assert!(cache.take("missing").is_none());
        assert_eq!(cache.len(), 5);
    }

    #[test]
    fn eviction_is_shard_local() {
        // Capacity 1 per shard: keys that share a shard evict each other,
        // keys on other shards are untouched.
        let cache = ShardedCache::new(2, 1);
        let keys = ["a", "b", "c", "d", "e", "f"];
        for key in keys {
            cache.insert(entry(key));
        }
        // At most one survivor per shard.
        assert!(cache.len() <= 2);
        let survivors: Vec<&str> =
            keys.iter().copied().filter(|k| cache.take(k).is_some()).collect();
        assert!(!survivors.is_empty());
        // Each survivor must be the most recent key routed to its shard.
        for s in survivors {
            let sh = shard_of(fnv1a(s.as_bytes()), 2);
            let later: Vec<&str> = keys
                .iter()
                .copied()
                .skip_while(|k| *k != s)
                .skip(1)
                .filter(|k| shard_of(fnv1a(k.as_bytes()), 2) == sh)
                .collect();
            assert!(later.is_empty(), "{s} should have been evicted by {later:?}");
        }
    }

    #[test]
    fn for_each_sorted_visits_all_without_removing() {
        let cache = ShardedCache::new(3, 8);
        for key in ["zz", "aa", "mm"] {
            cache.insert(entry(key));
        }
        let mut seen = Vec::new();
        cache.for_each_sorted(|e| seen.push(e.key.clone()));
        assert_eq!(seen, ["aa", "mm", "zz"]);
        assert_eq!(cache.len(), 3, "iteration must not consume entries");
    }
}
