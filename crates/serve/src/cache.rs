//! The fingerprint-keyed solver cache.
//!
//! A fingerprint identifies everything fixed at *preparation* time: the
//! request family (packing vs mixed), the exact normalized instance (its
//! canonical `psdp v1` / `psdp mixed v1` text — write→read is exact, so
//! the text is a faithful canonical form), the requested engine kind, and
//! the sketch seed. Per-solve options (eps, constants mode, update rule,
//! bisection accuracy, …) deliberately are **not** part of it: the session
//! API re-validates them per call, and its internal warm-start caches
//! carry their own option keys and refuse stale reuse, so requests that
//! differ only in solve options can safely share one prepared solver.
//! `DESIGN.md` §10 walks through why this key is sound — i.e. why a cache
//! hit can never change a verdict.
//!
//! Lookups hash the canonical key (FNV-1a 64) but **verify the full key on
//! every hit**: a 64-bit collision between two distinct instances must
//! fall back to a miss, never reuse the wrong prepared state.

use crate::request::{InstancePayload, RequestKind, ServeRequest};
use psdp_core::{write_instance, write_mixed_instance, MixedInstance, PackingInstance};
use psdp_expdot::{Engine, EngineKind};
use std::sync::Arc;

/// Prepared, immutable solver state for one fingerprint.
#[derive(Clone)]
pub enum Prepared {
    /// Packing family: the shared instance and its prepared engine.
    Packing {
        /// The instance the engine was prepared for.
        inst: Arc<PackingInstance>,
        /// The prepared engine (factorizations, resolved `Auto`).
        engine: Arc<Engine>,
    },
    /// Mixed family: the shared instance and both prepared engines.
    Mixed {
        /// The instance the engines were prepared for.
        inst: Arc<MixedInstance>,
        /// Packing-side engine.
        pack_engine: Arc<Engine>,
        /// Covering-side engine (always exact).
        cover_engine: Arc<Engine>,
    },
}

/// A memoized result, stored verbatim. The whole pipeline is
/// deterministic, so replaying the stored result for a byte-identical
/// request is byte-identical to recomputing it.
#[derive(Clone)]
pub struct MemoEntry {
    /// Canonical request-parameters key (see [`params_key`]).
    pub params: String,
    /// The stored result.
    pub result: crate::scheduler::ServeResult,
}

/// One cache slot: the verified canonical key, prepared state, memoized
/// results, and the last certified optimize bracket (for warm-starting
/// perturbed resubmissions).
pub struct CacheEntry {
    pub(crate) hash: u64,
    pub(crate) key: String,
    /// Engine kind the prepared state was built with (snapshot rebuild
    /// input; also embedded textually in `key`).
    pub(crate) engine_kind: EngineKind,
    /// Sketch seed the prepared state was built with.
    pub(crate) seed: u64,
    pub(crate) prepared: Prepared,
    pub(crate) memo: Vec<MemoEntry>,
    /// `(params_key, lo, hi)` of the most recent certified packing
    /// bisection on this fingerprint.
    pub(crate) bracket: Option<(String, f64, f64)>,
    pub(crate) last_used: u64,
}

/// 64-bit FNV-1a over a byte string.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The engine kind and seed a request's prepared solver is keyed on.
pub fn prep_engine_of(kind: &RequestKind) -> (EngineKind, u64) {
    match kind {
        RequestKind::Decision { opts, .. } => (opts.engine, opts.seed),
        RequestKind::Optimize { opts } => (opts.decision.engine, opts.decision.seed),
        RequestKind::Mixed { opts } => (opts.decision.engine, opts.decision.seed),
    }
}

/// The full canonical preparation key of a request: family, engine kind,
/// seed, and the instance's canonical text. Everything the prepared state
/// depends on is in here; nothing else is.
pub fn prep_key(req: &ServeRequest) -> String {
    let (engine, seed) = prep_engine_of(&req.kind);
    match &req.payload {
        InstancePayload::Packing(inst) => {
            format!("packing\nengine {engine:?}\nseed {seed}\n{}", write_instance(inst))
        }
        InstancePayload::Mixed(inst) => {
            format!("mixed\nengine {engine:?}\nseed {seed}\n{}", write_mixed_instance(inst))
        }
    }
}

/// The canonical request-parameters key: the request kind with every
/// option field, via its (stable within one build) `Debug` rendering.
/// Memoization compares these exactly, so any new option field is
/// automatically part of the key.
pub fn params_key(kind: &RequestKind) -> String {
    format!("{kind:?}")
}

/// The fingerprint-keyed store. Entries are found by hash and verified by
/// full key; eviction is deterministic (least-recently-used by a logical
/// clock, ties impossible since the clock is strictly increasing).
pub struct SolverCache {
    entries: Vec<CacheEntry>,
    max_entries: usize,
    clock: u64,
}

impl SolverCache {
    /// An empty cache holding at most `max_entries` fingerprints
    /// (`0` is treated as 1).
    pub fn new(max_entries: usize) -> Self {
        SolverCache { entries: Vec::new(), max_entries: max_entries.max(1), clock: 0 }
    }

    /// Number of cached fingerprints.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Remove and return the entry for `key`, if present. The scheduler
    /// takes entries out, hands them to the (parallel) group workers, and
    /// re-inserts them afterwards — no locking needed.
    pub(crate) fn take(&mut self, key: &str) -> Option<CacheEntry> {
        let hash = fnv1a(key.as_bytes());
        let idx = self.entries.iter().position(|e| e.hash == hash && e.key == key)?;
        Some(self.entries.swap_remove(idx))
    }

    /// Canonical keys of all cached entries, in insertion order.
    pub(crate) fn keys(&self) -> Vec<String> {
        self.entries.iter().map(|e| e.key.clone()).collect()
    }

    /// Re-insert an entry without advancing the LRU clock — used by
    /// read-only iteration ([`crate::shard::ShardedCache::for_each_sorted`])
    /// so that *observing* the cache (snapshotting) never perturbs which
    /// entry the next eviction picks.
    pub(crate) fn insert_preserving_clock(&mut self, entry: CacheEntry) {
        self.entries.push(entry);
        self.evict_over_capacity();
    }

    /// Insert (or re-insert) an entry, stamping its use clock and evicting
    /// the least-recently-used entry if over capacity.
    pub(crate) fn insert(&mut self, mut entry: CacheEntry) {
        self.clock += 1;
        entry.last_used = self.clock;
        self.entries.push(entry);
        self.evict_over_capacity();
    }

    fn evict_over_capacity(&mut self) {
        while self.entries.len() > self.max_entries {
            // `len > max_entries >= 1` keeps the scan non-empty; if that
            // ever changes, stop evicting rather than panic.
            let Some(oldest) =
                self.entries.iter().enumerate().min_by_key(|(_, e)| e.last_used).map(|(i, _)| i)
            else {
                break;
            };
            self.entries.swap_remove(oldest);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psdp_core::DecisionOptions;
    use psdp_sparse::PsdMatrix;

    fn inst(d: &[f64]) -> Arc<PackingInstance> {
        Arc::new(PackingInstance::new(vec![PsdMatrix::Diagonal(d.to_vec())]).unwrap())
    }

    fn entry(key: &str) -> CacheEntry {
        CacheEntry {
            hash: fnv1a(key.as_bytes()),
            key: key.to_string(),
            engine_kind: psdp_expdot::EngineKind::Exact,
            seed: 0,
            prepared: Prepared::Packing {
                inst: inst(&[1.0]),
                engine: Arc::new(
                    Engine::new(
                        psdp_expdot::EngineKind::Exact,
                        &[PsdMatrix::Diagonal(vec![1.0])],
                        0,
                    )
                    .unwrap(),
                ),
            },
            memo: Vec::new(),
            bracket: None,
            last_used: 0,
        }
    }

    #[test]
    fn prep_key_separates_instances_engines_and_seeds() {
        let a =
            ServeRequest::decision("a", inst(&[1.0, 2.0]), 1.0, DecisionOptions::practical(0.1));
        let b =
            ServeRequest::decision("b", inst(&[1.0, 3.0]), 1.0, DecisionOptions::practical(0.1));
        assert_ne!(prep_key(&a), prep_key(&b), "different instances must key apart");

        let c = ServeRequest::decision(
            "c",
            inst(&[1.0, 2.0]),
            1.0,
            DecisionOptions::practical(0.1).with_seed(7),
        );
        assert_ne!(prep_key(&a), prep_key(&c), "different seeds must key apart");

        // Same instance + engine + seed but different eps/threshold: same
        // prepared state (per-solve options are not prep inputs).
        let d =
            ServeRequest::decision("d", inst(&[1.0, 2.0]), 2.0, DecisionOptions::practical(0.3));
        assert_eq!(prep_key(&a), prep_key(&d));
        // …but different request parameters, so memoization keys apart.
        assert_ne!(params_key(&a.kind), params_key(&d.kind));
    }

    #[test]
    fn prep_key_separates_engine_kinds_including_expv() {
        use psdp_expdot::EngineKind;
        let mk = |engine| {
            ServeRequest::decision(
                "r",
                inst(&[1.0, 2.0]),
                1.0,
                DecisionOptions::practical(0.1).with_engine(engine),
            )
        };
        let kinds = [
            EngineKind::Exact,
            EngineKind::Taylor { eps: 0.1 },
            EngineKind::TaylorJl { eps: 0.1, sketch_const: 4.0 },
            EngineKind::Expv { eps: 0.1 },
        ];
        let keys: Vec<String> = kinds.iter().map(|&k| prep_key(&mk(k))).collect();
        for i in 0..keys.len() {
            for j in (i + 1)..keys.len() {
                assert_ne!(
                    keys[i],
                    keys[j],
                    "{} and {} must not share a prepared-solver fingerprint",
                    kinds[i].name(),
                    kinds[j].name()
                );
            }
        }
        // Same Expv eps → same fingerprint; different eps keys apart.
        assert_eq!(prep_key(&mk(EngineKind::Expv { eps: 0.1 })), keys[3]);
        assert_ne!(prep_key(&mk(EngineKind::Expv { eps: 0.2 })), keys[3]);
    }

    #[test]
    fn take_verifies_full_key_not_just_hash() {
        let mut cache = SolverCache::new(8);
        cache.insert(entry("key-a"));
        // Same hash is impossible to force here, but a different key with
        // whatever hash must miss even though an entry exists.
        assert!(cache.take("key-b").is_none());
        assert!(cache.take("key-a").is_some());
        assert!(cache.is_empty());
    }

    #[test]
    fn eviction_is_lru_and_bounded() {
        let mut cache = SolverCache::new(2);
        cache.insert(entry("k1"));
        cache.insert(entry("k2"));
        // Touch k1 so k2 becomes the LRU.
        let e = cache.take("k1").unwrap();
        cache.insert(e);
        cache.insert(entry("k3"));
        assert_eq!(cache.len(), 2);
        assert!(cache.take("k2").is_none(), "k2 should have been evicted");
        assert!(cache.take("k1").is_some());
        assert!(cache.take("k3").is_some());
    }
}
