//! The fingerprint-keyed solver cache.
//!
//! A fingerprint identifies everything fixed at *preparation* time: the
//! request family (packing vs mixed), the exact instance (by its
//! structural content hash — [`psdp_core::packing_content_hash`] — which
//! text and binary submissions of the same instance share), the requested
//! engine kind, and the sketch seed. Per-solve options (eps, constants
//! mode, update rule, bisection accuracy, …) deliberately are **not** part
//! of it: the session API re-validates them per call, and its internal
//! warm-start caches carry their own option keys and refuse stale reuse,
//! so requests that differ only in solve options can safely share one
//! prepared solver. `DESIGN.md` §10 and §14 walk through why this key is
//! sound — i.e. why a cache hit can never change a verdict.
//!
//! The content hash is computed **once** — at parse time for text
//! requests, straight off the `psdp-bin-1` header for binary ones — and
//! carried in [`ServeRequest::content_hash`]; admission never
//! re-serializes an instance. Lookups go by the 64-bit prep hash but
//! **verify the full fingerprint on every hit** (engine kind, seed, and
//! bitwise structural instance equality with an `Arc` pointer fast path):
//! a hash collision between two distinct instances must fall back to a
//! miss, never reuse the wrong prepared state.

use crate::request::{InstancePayload, RequestKind, ServeRequest};
use psdp_core::{Fnv1a, MixedInstance, PackingInstance};
use psdp_expdot::{Engine, EngineKind};
use std::sync::Arc;

pub use psdp_core::fnv1a;

/// Prepared, immutable solver state for one fingerprint.
#[derive(Clone)]
pub enum Prepared {
    /// Packing family: the shared instance and its prepared engine.
    Packing {
        /// The instance the engine was prepared for.
        inst: Arc<PackingInstance>,
        /// The prepared engine (factorizations, resolved `Auto`).
        engine: Arc<Engine>,
    },
    /// Mixed family: the shared instance and both prepared engines.
    Mixed {
        /// The instance the engines were prepared for.
        inst: Arc<MixedInstance>,
        /// Packing-side engine.
        pack_engine: Arc<Engine>,
        /// Covering-side engine (always exact).
        cover_engine: Arc<Engine>,
    },
}

impl Prepared {
    /// The prepared instance as a request payload (for fingerprint
    /// verification against an incoming request).
    pub(crate) fn payload(&self) -> InstancePayload {
        match self {
            Prepared::Packing { inst, .. } => InstancePayload::Packing(Arc::clone(inst)),
            Prepared::Mixed { inst, .. } => InstancePayload::Mixed(Arc::clone(inst)),
        }
    }
}

/// A memoized result, stored verbatim. The whole pipeline is
/// deterministic, so replaying the stored result for a byte-identical
/// request is byte-identical to recomputing it.
#[derive(Clone)]
pub struct MemoEntry {
    /// Canonical request-parameters key (see [`params_key`]).
    pub params: String,
    /// The stored result.
    pub result: crate::scheduler::ServeResult,
}

/// One cache slot: the prep-hash fingerprint, the prepared state it was
/// verified for, memoized results, and the last certified optimize bracket
/// (for warm-starting perturbed resubmissions).
pub struct CacheEntry {
    /// The prep hash ([`prep_hash`]) — lookup and shard-routing key.
    pub(crate) hash: u64,
    /// Engine kind the prepared state was built with (hit-verification and
    /// snapshot rebuild input).
    pub(crate) engine_kind: EngineKind,
    /// Sketch seed the prepared state was built with.
    pub(crate) seed: u64,
    pub(crate) prepared: Prepared,
    pub(crate) memo: Vec<MemoEntry>,
    /// `(params_key, lo, hi)` of the most recent certified packing
    /// bisection on this fingerprint.
    pub(crate) bracket: Option<(String, f64, f64)>,
    pub(crate) last_used: u64,
}

impl CacheEntry {
    /// Full-fingerprint verification for a hit on `req`: engine kind and
    /// seed must match, and the prepared instance must be bitwise
    /// structurally equal to the request's (pointer fast path first). This
    /// is exactly as strong as the old canonical-text comparison, without
    /// serializing anything.
    pub(crate) fn matches(&self, req: &ServeRequest) -> bool {
        let (engine, seed) = prep_engine_of(&req.kind);
        self.engine_kind == engine
            && self.seed == seed
            && self.prepared.payload().structural_eq(&req.payload)
    }
}

/// The engine kind and seed a request's prepared solver is keyed on.
pub fn prep_engine_of(kind: &RequestKind) -> (EngineKind, u64) {
    match kind {
        RequestKind::Decision { opts, .. } => (opts.engine, opts.seed),
        RequestKind::Optimize { opts } => (opts.decision.engine, opts.decision.seed),
        RequestKind::Mixed { opts } => (opts.decision.engine, opts.decision.seed),
    }
}

/// Family tag folded into the prep hash (and the snapshot format).
pub(crate) fn family_tag(payload: &InstancePayload) -> u8 {
    match payload {
        InstancePayload::Packing(_) => 0,
        InstancePayload::Mixed(_) => 1,
    }
}

/// The 64-bit preparation fingerprint from its parts: family, engine kind
/// (via its stable-within-one-build `Debug` rendering), sketch seed, and
/// the instance's structural content hash.
pub fn prep_hash_parts(family: u8, engine: EngineKind, seed: u64, content_hash: u64) -> u64 {
    let mut f = Fnv1a::new();
    f.update(&[family]);
    f.update(format!("{engine:?}").as_bytes());
    f.update(&seed.to_le_bytes());
    f.update(&content_hash.to_le_bytes());
    f.finish()
}

/// The preparation fingerprint of a request. Everything the prepared
/// state depends on is in here; nothing else is — and computing it never
/// touches the instance data (the content hash was computed at parse
/// time).
pub fn prep_hash(req: &ServeRequest) -> u64 {
    let (engine, seed) = prep_engine_of(&req.kind);
    prep_hash_parts(family_tag(&req.payload), engine, seed, req.content_hash)
}

/// The canonical request-parameters key: the request kind with every
/// option field, via its (stable within one build) `Debug` rendering.
/// Memoization compares these exactly, so any new option field is
/// automatically part of the key.
pub fn params_key(kind: &RequestKind) -> String {
    format!("{kind:?}")
}

/// The fingerprint-keyed store. Entries are found by prep hash and
/// verified by full fingerprint; eviction is deterministic
/// (least-recently-used by a logical clock, ties impossible since the
/// clock is strictly increasing).
pub struct SolverCache {
    entries: Vec<CacheEntry>,
    max_entries: usize,
    clock: u64,
}

impl SolverCache {
    /// An empty cache holding at most `max_entries` fingerprints
    /// (`0` is treated as 1).
    pub fn new(max_entries: usize) -> Self {
        SolverCache { entries: Vec::new(), max_entries: max_entries.max(1), clock: 0 }
    }

    /// Number of cached fingerprints.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Remove and return the entry whose prep hash is `hash` **and** whose
    /// full fingerprint verifies against `req` (see
    /// [`CacheEntry::matches`]). The scheduler takes entries out, hands
    /// them to the (parallel) group workers, and re-inserts them
    /// afterwards — no locking needed.
    pub(crate) fn take(&mut self, hash: u64, req: &ServeRequest) -> Option<CacheEntry> {
        let idx = self.entries.iter().position(|e| e.hash == hash && e.matches(req))?;
        Some(self.entries.swap_remove(idx))
    }

    /// Read-only view of all cached entries, in insertion order (snapshot
    /// writing iterates this without taking anything out).
    pub(crate) fn entries(&self) -> &[CacheEntry] {
        &self.entries
    }

    /// Insert (or re-insert) an entry, stamping its use clock and evicting
    /// the least-recently-used entry if over capacity.
    pub(crate) fn insert(&mut self, mut entry: CacheEntry) {
        self.clock += 1;
        entry.last_used = self.clock;
        self.entries.push(entry);
        self.evict_over_capacity();
    }

    fn evict_over_capacity(&mut self) {
        while self.entries.len() > self.max_entries {
            // `len > max_entries >= 1` keeps the scan non-empty; if that
            // ever changes, stop evicting rather than panic.
            let Some(oldest) =
                self.entries.iter().enumerate().min_by_key(|(_, e)| e.last_used).map(|(i, _)| i)
            else {
                break;
            };
            self.entries.swap_remove(oldest);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psdp_core::DecisionOptions;
    use psdp_sparse::PsdMatrix;

    fn inst(d: &[f64]) -> Arc<PackingInstance> {
        Arc::new(PackingInstance::new(vec![PsdMatrix::Diagonal(d.to_vec())]).unwrap())
    }

    fn entry_for(req: &ServeRequest) -> CacheEntry {
        let (engine_kind, seed) = prep_engine_of(&req.kind);
        let InstancePayload::Packing(inst) = &req.payload else { unreachable!() };
        CacheEntry {
            hash: prep_hash(req),
            engine_kind,
            seed,
            prepared: Prepared::Packing {
                inst: Arc::clone(inst),
                engine: Arc::new(Engine::new(engine_kind, inst.mats(), seed).unwrap()),
            },
            memo: Vec::new(),
            bracket: None,
            last_used: 0,
        }
    }

    #[test]
    fn prep_hash_separates_instances_engines_and_seeds() {
        let a =
            ServeRequest::decision("a", inst(&[1.0, 2.0]), 1.0, DecisionOptions::practical(0.1));
        let b =
            ServeRequest::decision("b", inst(&[1.0, 3.0]), 1.0, DecisionOptions::practical(0.1));
        assert_ne!(prep_hash(&a), prep_hash(&b), "different instances must key apart");

        let c = ServeRequest::decision(
            "c",
            inst(&[1.0, 2.0]),
            1.0,
            DecisionOptions::practical(0.1).with_seed(7),
        );
        assert_ne!(prep_hash(&a), prep_hash(&c), "different seeds must key apart");

        // Same instance + engine + seed but different eps/threshold: same
        // prepared state (per-solve options are not prep inputs).
        let d =
            ServeRequest::decision("d", inst(&[1.0, 2.0]), 2.0, DecisionOptions::practical(0.3));
        assert_eq!(prep_hash(&a), prep_hash(&d));
        // …but different request parameters, so memoization keys apart.
        assert_ne!(params_key(&a.kind), params_key(&d.kind));
    }

    #[test]
    fn prep_hash_separates_engine_kinds_including_expv() {
        use psdp_expdot::EngineKind;
        let mk = |engine| {
            ServeRequest::decision(
                "r",
                inst(&[1.0, 2.0]),
                1.0,
                DecisionOptions::practical(0.1).with_engine(engine),
            )
        };
        let kinds = [
            EngineKind::Exact,
            EngineKind::Taylor { eps: 0.1 },
            EngineKind::TaylorJl { eps: 0.1, sketch_const: 4.0 },
            EngineKind::Expv { eps: 0.1 },
        ];
        let keys: Vec<u64> = kinds.iter().map(|&k| prep_hash(&mk(k))).collect();
        for i in 0..keys.len() {
            for j in (i + 1)..keys.len() {
                assert_ne!(
                    keys[i],
                    keys[j],
                    "{} and {} must not share a prepared-solver fingerprint",
                    kinds[i].name(),
                    kinds[j].name()
                );
            }
        }
        // Same Expv eps → same fingerprint; different eps keys apart.
        assert_eq!(prep_hash(&mk(EngineKind::Expv { eps: 0.1 })), keys[3]);
        assert_ne!(prep_hash(&mk(EngineKind::Expv { eps: 0.2 })), keys[3]);
    }

    #[test]
    fn text_and_binary_submissions_share_a_fingerprint() {
        // Same logical instance through the text writer/reader and through
        // a fresh Arc: identical content hashes → identical prep hashes,
        // and the entry verifies against both (structural eq, not ptr eq).
        let i1 = inst(&[1.0, 2.0]);
        let text = psdp_core::write_instance(&i1);
        let i2 = Arc::new(psdp_core::read_instance(&text).unwrap());
        let a = ServeRequest::decision("a", i1, 1.0, DecisionOptions::practical(0.1));
        let b = ServeRequest::decision("b", i2, 1.0, DecisionOptions::practical(0.1));
        assert_eq!(prep_hash(&a), prep_hash(&b));
        let e = entry_for(&a);
        assert!(e.matches(&b), "structurally equal instance must verify");
    }

    #[test]
    fn take_verifies_full_fingerprint_not_just_hash() {
        let a =
            ServeRequest::decision("a", inst(&[1.0, 2.0]), 1.0, DecisionOptions::practical(0.1));
        let mut cache = SolverCache::new(8);
        cache.insert(entry_for(&a));
        // A different instance must miss even if we probe with the stored
        // entry's hash (simulating a 64-bit collision).
        let other =
            ServeRequest::decision("o", inst(&[9.0, 9.0]), 1.0, DecisionOptions::practical(0.1));
        assert!(cache.take(prep_hash(&a), &other).is_none(), "collision must verify and miss");
        // A different engine must miss the same way.
        let eng = ServeRequest::decision(
            "e",
            inst(&[1.0, 2.0]),
            1.0,
            DecisionOptions::practical(0.1)
                .with_engine(psdp_expdot::EngineKind::Taylor { eps: 0.1 }),
        );
        assert!(cache.take(prep_hash(&a), &eng).is_none());
        assert!(cache.take(prep_hash(&a), &a).is_some());
        assert!(cache.is_empty());
    }

    #[test]
    fn eviction_is_lru_and_bounded() {
        let r1 = ServeRequest::decision("1", inst(&[1.0]), 1.0, DecisionOptions::practical(0.1));
        let r2 = ServeRequest::decision("2", inst(&[2.0]), 1.0, DecisionOptions::practical(0.1));
        let r3 = ServeRequest::decision("3", inst(&[3.0]), 1.0, DecisionOptions::practical(0.1));
        let mut cache = SolverCache::new(2);
        cache.insert(entry_for(&r1));
        cache.insert(entry_for(&r2));
        // Touch r1 so r2 becomes the LRU.
        let e = cache.take(prep_hash(&r1), &r1).unwrap();
        cache.insert(e);
        cache.insert(entry_for(&r3));
        assert_eq!(cache.len(), 2);
        assert!(cache.take(prep_hash(&r2), &r2).is_none(), "r2 should have been evicted");
        assert!(cache.take(prep_hash(&r1), &r1).is_some());
        assert!(cache.take(prep_hash(&r3), &r3).is_some());
    }
}
