//! Socket transport for the persistent service: bind-address parsing, a
//! TCP/Unix listener abstraction, and the fair per-client admission
//! multiplexer behind `psdp serve --listen --bind …`.
//!
//! ## Roles
//!
//! * [`BindAddr`] / [`Listener`] — parse `tcp:<addr>` / `unix:<path>`
//!   specs and accept connections, each split into an owned reader and
//!   writer half so a per-connection reader thread and a per-connection
//!   writer can run independently.
//! * [`FairMux`] — the admission multiplexer: every connection gets its
//!   own bounded queue, and the consumer drains them **round-robin**, one
//!   item per non-empty queue per pass. A firehose client can fill only
//!   its own queue (its reader thread then blocks, pushing backpressure
//!   into its socket); other clients' items keep flowing at the same
//!   per-pass rate.
//!
//! ## What stays deterministic
//!
//! Per-client response streams remain bitwise identical to the same
//! requests submitted over stdin (`tests/determinism.rs` pins this across
//! pools × shards × client counts): each connection parses with its own
//! source/id state and its items reach the service in that client's
//! submission order, so the per-client subsequence of the global
//! submission order — and therefore the per-client response stream — is a
//! pure function of that client's bytes. The *interleaving* across
//! clients is scheduling-dependent by nature; only shared-fingerprint
//! telemetry and typed `overloaded` outcomes can observe it (DESIGN.md
//! §15).

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// A parsed `--bind` specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BindAddr {
    /// `tcp:<host>:<port>` — a TCP listening address (port `0` asks the
    /// OS for a free port; the bound address is reported by
    /// [`Listener::local_addr_string`]).
    Tcp(String),
    /// `unix:<path>` — a Unix-domain socket path (Unix targets only).
    Unix(PathBuf),
}

impl BindAddr {
    /// Parse a `--bind` spec: `tcp:<addr>` or `unix:<path>`.
    ///
    /// # Errors
    /// A printable message for an unknown scheme or empty operand.
    pub fn parse(spec: &str) -> Result<BindAddr, String> {
        if let Some(addr) = spec.strip_prefix("tcp:") {
            if addr.is_empty() {
                return Err("empty tcp bind address (expected tcp:<host>:<port>)".to_string());
            }
            return Ok(BindAddr::Tcp(addr.to_string()));
        }
        if let Some(path) = spec.strip_prefix("unix:") {
            if path.is_empty() {
                return Err("empty unix socket path (expected unix:<path>)".to_string());
            }
            return Ok(BindAddr::Unix(PathBuf::from(path)));
        }
        Err(format!("unknown bind scheme in `{spec}` (expected tcp:<addr> or unix:<path>)"))
    }
}

/// One accepted connection, split into independently owned halves so the
/// reader thread and the response writer never contend.
pub struct Connection {
    /// The read half (requests in).
    pub reader: Box<dyn Read + Send>,
    /// The write half (responses out).
    pub writer: Box<dyn Write + Send>,
}

/// A bound listening socket (TCP or Unix-domain).
pub enum Listener {
    /// A TCP listener.
    Tcp(std::net::TcpListener),
    /// A Unix-domain listener.
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixListener),
}

impl Listener {
    /// Bind the address. For `unix:` paths a stale socket file from a
    /// previous run is removed first (binding over it would otherwise
    /// fail with "address in use" forever).
    ///
    /// # Errors
    /// Printable bind failures; `unix:` specs on non-Unix targets.
    pub fn bind(addr: &BindAddr) -> Result<Listener, String> {
        match addr {
            BindAddr::Tcp(a) => std::net::TcpListener::bind(a)
                .map(Listener::Tcp)
                .map_err(|e| format!("binding tcp:{a}: {e}")),
            #[cfg(unix)]
            BindAddr::Unix(p) => {
                let _ = std::fs::remove_file(p);
                std::os::unix::net::UnixListener::bind(p)
                    .map(Listener::Unix)
                    .map_err(|e| format!("binding unix:{}: {e}", p.display()))
            }
            #[cfg(not(unix))]
            BindAddr::Unix(p) => Err(format!("unix:{} requires a Unix target", p.display())),
        }
    }

    /// The bound address in `--bind` syntax (`tcp:127.0.0.1:41879`,
    /// `unix:/run/psdp.sock`) — what a `tcp:…:0` caller needs to learn
    /// the OS-assigned port.
    pub fn local_addr_string(&self) -> String {
        match self {
            Listener::Tcp(l) => match l.local_addr() {
                Ok(a) => format!("tcp:{a}"),
                Err(_) => "tcp:<unknown>".to_string(),
            },
            #[cfg(unix)]
            Listener::Unix(l) => match l.local_addr() {
                Ok(a) => match a.as_pathname() {
                    Some(p) => format!("unix:{}", p.display()),
                    None => "unix:<unnamed>".to_string(),
                },
                Err(_) => "unix:<unknown>".to_string(),
            },
        }
    }

    /// Block for the next connection and split it into halves.
    ///
    /// # Errors
    /// Printable accept / handle-clone failures.
    pub fn accept(&self) -> Result<Connection, String> {
        match self {
            Listener::Tcp(l) => {
                let (stream, _) = l.accept().map_err(|e| format!("accept: {e}"))?;
                let reader = stream.try_clone().map_err(|e| format!("accept: {e}"))?;
                Ok(Connection { reader: Box::new(reader), writer: Box::new(stream) })
            }
            #[cfg(unix)]
            Listener::Unix(l) => {
                let (stream, _) = l.accept().map_err(|e| format!("accept: {e}"))?;
                let reader = stream.try_clone().map_err(|e| format!("accept: {e}"))?;
                Ok(Connection { reader: Box::new(reader), writer: Box::new(stream) })
            }
        }
    }
}

/// One client's bounded queue inside the multiplexer.
struct ClientQueue<T> {
    items: VecDeque<T>,
    open: bool,
}

/// Shared multiplexer state behind one lock.
struct MuxState<T> {
    queues: BTreeMap<u64, ClientQueue<T>>,
    /// Registration order: the round-robin scan order.
    order: Vec<u64>,
    /// Next round-robin position in `order`.
    cursor: usize,
    /// False once the accept loop has stopped registering clients.
    accepting: bool,
}

struct MuxInner<T> {
    state: Mutex<MuxState<T>>,
    /// Signalled when items arrive or producers close (wakes `next`).
    ready: Condvar,
    /// Signalled when `next` frees queue space (wakes blocked `push`es).
    space: Condvar,
    per_client_cap: usize,
}

/// The fair admission multiplexer: per-connection bounded queues drained
/// round-robin by one consumer. Clone handles freely — producers (reader
/// threads) and the consumer (the admission loop) share one instance.
pub struct FairMux<T> {
    inner: Arc<MuxInner<T>>,
}

impl<T> Clone for FairMux<T> {
    fn clone(&self) -> Self {
        FairMux { inner: Arc::clone(&self.inner) }
    }
}

/// Recover the guard from a poisoned lock: a producer panicking while
/// holding the mutex must not wedge every other connection.
fn lock_state<T>(m: &Mutex<MuxState<T>>) -> MutexGuard<'_, MuxState<T>> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl<T> FairMux<T> {
    /// A multiplexer whose per-client queues hold at most
    /// `per_client_cap` items (`0` is treated as 1). A full queue blocks
    /// that client's `push` — backpressure lands on the one connection
    /// that produced it.
    pub fn new(per_client_cap: usize) -> FairMux<T> {
        FairMux {
            inner: Arc::new(MuxInner {
                state: Mutex::new(MuxState {
                    queues: BTreeMap::new(),
                    order: Vec::new(),
                    cursor: 0,
                    accepting: true,
                }),
                ready: Condvar::new(),
                space: Condvar::new(),
                per_client_cap: per_client_cap.max(1),
            }),
        }
    }

    /// Register a new client queue. Ids are caller-assigned and must be
    /// unique among live clients; re-registering a live id is a no-op.
    pub fn register(&self, client: u64) {
        let mut state = lock_state(&self.inner.state);
        if state.queues.contains_key(&client) {
            return;
        }
        state.queues.insert(client, ClientQueue { items: VecDeque::new(), open: true });
        state.order.push(client);
    }

    /// Queue one item for `client`, blocking while that client's queue is
    /// at capacity. Returns `false` (dropping the item) if the client was
    /// never registered or already closed.
    pub fn push(&self, client: u64, item: T) -> bool {
        let mut state = lock_state(&self.inner.state);
        loop {
            match state.queues.get_mut(&client) {
                None => return false,
                Some(q) if !q.open => return false,
                Some(q) if q.items.len() < self.inner.per_client_cap => {
                    q.items.push_back(item);
                    self.inner.ready.notify_all();
                    return true;
                }
                Some(_) => {
                    state = self
                        .inner
                        .space
                        .wait(state)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
            }
        }
    }

    /// Mark `client` closed: its already-queued items still drain, then
    /// the queue is retired. Idempotent.
    pub fn close_client(&self, client: u64) {
        let mut state = lock_state(&self.inner.state);
        if let Some(q) = state.queues.get_mut(&client) {
            q.open = false;
        }
        // Wake the consumer (it may be waiting on this client's close to
        // decide the stream is finished) and any push blocked on a queue
        // that will never drain further.
        self.inner.ready.notify_all();
        self.inner.space.notify_all();
    }

    /// Declare that no further clients will register. Once every
    /// registered client is closed and drained, `next` returns `None`.
    pub fn finish_accepting(&self) {
        lock_state(&self.inner.state).accepting = false;
        self.inner.ready.notify_all();
    }

    /// Take the next item round-robin across non-empty client queues:
    /// each pass visits the registered clients in order starting after
    /// the previous hit, so every waiting client yields one item per pass
    /// regardless of how deep any single queue is. Blocks while all
    /// queues are empty but producers remain; returns `None` once
    /// accepting has finished and every client is closed and drained.
    pub fn next(&self) -> Option<T> {
        let mut state = lock_state(&self.inner.state);
        loop {
            let n = state.order.len();
            for off in 0..n {
                let idx = (state.cursor + off) % n;
                let Some(&cid) = state.order.get(idx) else { continue };
                let Some(q) = state.queues.get_mut(&cid) else { continue };
                let Some(item) = q.items.pop_front() else { continue };
                state.cursor = (idx + 1) % n;
                Self::retire_done(&mut state);
                self.inner.space.notify_all();
                return Some(item);
            }
            Self::retire_done(&mut state);
            let live = state.queues.values().any(|q| q.open || !q.items.is_empty());
            if !state.accepting && !live {
                return None;
            }
            state = self.inner.ready.wait(state).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Close every queue, drop queued items, and stop accepting: the
    /// teardown path for a consumer that exits before producers finish,
    /// so no `push` can block forever against a drain that will never
    /// come.
    pub fn shutdown(&self) {
        let mut state = lock_state(&self.inner.state);
        state.accepting = false;
        for q in state.queues.values_mut() {
            q.open = false;
            q.items.clear();
        }
        self.inner.ready.notify_all();
        self.inner.space.notify_all();
    }

    /// Drop closed, drained queues so a long-lived server's scan order
    /// does not grow with its connection history.
    fn retire_done(state: &mut MuxState<T>) {
        if state.queues.values().all(|q| q.open || !q.items.is_empty()) {
            return;
        }
        // Keep the cursor pointing at the same surviving client (or 0).
        let at = state.order.get(state.cursor).copied();
        state.queues.retain(|_, q| q.open || !q.items.is_empty());
        let MuxState { queues, order, cursor, .. } = state;
        order.retain(|cid| queues.contains_key(cid));
        *cursor = at
            .and_then(|cid| order.iter().position(|&c| c == cid))
            .unwrap_or(0)
            .min(order.len().saturating_sub(1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Write};
    use std::thread;

    #[test]
    fn bind_addr_parses_both_schemes_and_rejects_garbage() {
        assert_eq!(
            BindAddr::parse("tcp:127.0.0.1:0").unwrap(),
            BindAddr::Tcp("127.0.0.1:0".to_string())
        );
        assert_eq!(
            BindAddr::parse("unix:/tmp/x.sock").unwrap(),
            BindAddr::Unix(PathBuf::from("/tmp/x.sock"))
        );
        assert!(BindAddr::parse("tcp:").is_err());
        assert!(BindAddr::parse("unix:").is_err());
        assert!(BindAddr::parse("127.0.0.1:80").is_err());
        assert!(BindAddr::parse("udp:127.0.0.1:80").is_err());
    }

    #[test]
    fn fair_mux_drains_round_robin_across_clients() {
        let mux: FairMux<(u64, usize)> = FairMux::new(64);
        mux.register(1);
        mux.register(2);
        // Client 1 is a firehose, client 2 trickles.
        for i in 0..6 {
            assert!(mux.push(1, (1, i)));
        }
        for i in 0..2 {
            assert!(mux.push(2, (2, i)));
        }
        mux.close_client(1);
        mux.close_client(2);
        mux.finish_accepting();
        let mut got = Vec::new();
        while let Some(item) = mux.next() {
            got.push(item);
        }
        // One item per non-empty client per pass: 1,2,1,2,1,1,1,1.
        assert_eq!(
            got,
            vec![(1, 0), (2, 0), (1, 1), (2, 1), (1, 2), (1, 3), (1, 4), (1, 5)],
            "firehose client must not starve the trickling one"
        );
    }

    #[test]
    fn fair_mux_bounds_each_client_queue() {
        let mux: FairMux<usize> = FairMux::new(2);
        mux.register(7);
        assert!(mux.push(7, 0));
        assert!(mux.push(7, 1));
        // The third push must block until the consumer drains one item.
        let producer = {
            let mux = mux.clone();
            thread::spawn(move || mux.push(7, 2))
        };
        assert_eq!(mux.next(), Some(0));
        assert!(producer.join().unwrap_or(false));
        mux.close_client(7);
        mux.finish_accepting();
        assert_eq!(mux.next(), Some(1));
        assert_eq!(mux.next(), Some(2));
        assert_eq!(mux.next(), None);
    }

    #[test]
    fn fair_mux_rejects_pushes_to_unknown_or_closed_clients() {
        let mux: FairMux<usize> = FairMux::new(4);
        assert!(!mux.push(9, 0), "unregistered client");
        mux.register(9);
        assert!(mux.push(9, 1));
        mux.close_client(9);
        assert!(!mux.push(9, 2), "closed client");
        mux.finish_accepting();
        assert_eq!(mux.next(), Some(1), "queued items still drain after close");
        assert_eq!(mux.next(), None);
    }

    #[test]
    fn tcp_listener_accepts_and_splits_connections() {
        let listener = Listener::bind(&BindAddr::parse("tcp:127.0.0.1:0").unwrap()).unwrap();
        let addr = listener.local_addr_string();
        let host = addr.strip_prefix("tcp:").unwrap().to_string();
        let client = thread::spawn(move || {
            let mut s = std::net::TcpStream::connect(&host).unwrap();
            s.write_all(b"ping\n").unwrap();
            let mut line = String::new();
            BufReader::new(s).read_line(&mut line).unwrap();
            line
        });
        let mut conn = listener.accept().unwrap();
        let mut line = String::new();
        BufReader::new(&mut conn.reader).read_line(&mut line).unwrap();
        assert_eq!(line, "ping\n");
        conn.writer.write_all(b"pong\n").unwrap();
        conn.writer.flush().unwrap();
        drop(conn);
        assert_eq!(client.join().unwrap(), "pong\n");
    }

    #[cfg(unix)]
    #[test]
    fn unix_listener_round_trips_and_rebinds_over_stale_sockets() {
        let path = std::env::temp_dir().join(format!("psdp-mux-{}.sock", std::process::id()));
        let spec = format!("unix:{}", path.display());
        // Bind twice: the second bind must clear the stale socket file.
        let first = Listener::bind(&BindAddr::parse(&spec).unwrap()).unwrap();
        drop(first);
        let listener = Listener::bind(&BindAddr::parse(&spec).unwrap()).unwrap();
        let client_path = path.clone();
        let client = thread::spawn(move || {
            let mut s = std::os::unix::net::UnixStream::connect(&client_path).unwrap();
            s.write_all(b"ping\n").unwrap();
            let mut line = String::new();
            BufReader::new(s).read_line(&mut line).unwrap();
            line
        });
        let mut conn = listener.accept().unwrap();
        let mut line = String::new();
        BufReader::new(&mut conn.reader).read_line(&mut line).unwrap();
        assert_eq!(line, "ping\n");
        conn.writer.write_all(b"pong\n").unwrap();
        conn.writer.flush().unwrap();
        drop(conn);
        assert_eq!(client.join().unwrap(), "pong\n");
        let _ = std::fs::remove_file(&path);
    }
}
