//! The batch scheduler: heterogeneous requests in, deterministic
//! responses out, preparation amortized through the fingerprint cache.
//!
//! ## Execution model
//!
//! A batch is partitioned into **groups** by preparation fingerprint
//! ([`crate::cache::prep_hash`], verified by structural instance equality
//! so a 64-bit collision can only split a group, never merge two):
//! requests over the same instance with the same engine kind and seed
//! share one prepared solver and one session.
//! Groups run concurrently over the shared rayon pool, bounded by
//! [`SchedulerOptions::max_in_flight`]; within a group requests run
//! sequentially **in request-id order**, so which request pays the cold
//! costs — and every response byte — is a function of the batch's
//! *contents*, never of submission order or pool width. Responses are
//! returned in submission order (each carries its id).
//!
//! ## Reuse tiers
//!
//! 1. **Result memoization** — a request byte-identical to one already
//!    served on this fingerprint returns the stored result. The whole
//!    pipeline is deterministic, so this is exact, not approximate.
//! 2. **Prepared-state reuse** — constraint factorizations, `Auto` engine
//!    resolution, and per-constraint scalars are built once per
//!    fingerprint and shared via [`psdp_core::SolverBuilder::build_with_engine`].
//!    Preparation never affects results, only wall clock.
//! 3. **Warm session / bracket continuation** — requests in one group
//!    share a session (trajectory replay is bitwise result-neutral), and
//!    a repeated-but-perturbed `optimize` request starts from the prior
//!    certified bracket via [`psdp_core::ApproxOptions::initial_bracket`].
//!
//! See `DESIGN.md` §10 for the soundness argument (what the fingerprint
//! must cover so a cache hit can never change a verdict).

use crate::cache::{params_key, prep_engine_of, prep_hash, CacheEntry, MemoEntry, Prepared};
use crate::request::{InstancePayload, RequestKind, ServeRequest};
use psdp_core::{
    DecisionOptions, DecisionResult, MixedInstance, MixedOptions, MixedReport, MixedSolver,
    PackingReport, Solver,
};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Scheduler configuration.
#[derive(Debug, Clone, Copy)]
pub struct SchedulerOptions {
    /// Upper bound on groups solved concurrently (`0` = the rayon pool
    /// width). Concurrency never changes results, only wall clock.
    pub max_in_flight: usize,
    /// Master switch for the fingerprint cache. Off = every request is its
    /// own cold group (the baseline the `serve_throughput` bench compares
    /// against).
    pub cache_enabled: bool,
    /// Cache capacity in fingerprints (deterministic LRU eviction).
    pub max_entries: usize,
    /// Memoized results kept per fingerprint.
    pub memo_per_entry: usize,
}

impl Default for SchedulerOptions {
    fn default() -> Self {
        SchedulerOptions {
            max_in_flight: 0,
            cache_enabled: true,
            max_entries: 256,
            memo_per_entry: 64,
        }
    }
}

/// Batch-level failures (per-request failures are reported per response).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Two requests in one batch share an id; responses are keyed by id,
    /// so this is rejected up front.
    DuplicateId(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::DuplicateId(id) => write!(f, "duplicate request id `{id}` in batch"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A successful request result.
#[derive(Debug, Clone)]
pub enum ServeResult {
    /// Result of a [`RequestKind::Decision`] request.
    Decision(DecisionResult),
    /// Result of a [`RequestKind::Optimize`] request.
    Optimize(PackingReport),
    /// Result of a [`RequestKind::Mixed`] request.
    Mixed(MixedReport),
}

/// Per-request serving telemetry. Only the wall-clock fields
/// ([`ServeStats::queue_wait`], [`ServeStats::service`]) are
/// non-deterministic; everything else is a pure function of the batch
/// contents (and prior batches on this scheduler), which is what lets the
/// determinism suite compare response streams bitwise.
#[derive(Debug, Clone, Default)]
pub struct ServeStats {
    /// Time from batch start until this request began executing (queue
    /// wait behind its group predecessors and pool scheduling).
    pub queue_wait: Duration,
    /// Execution time of this request alone.
    pub service: Duration,
    /// The request did not pay for solver preparation (engine build) —
    /// prepared state came from the cache or from an earlier request in
    /// its group.
    pub prep_reused: bool,
    /// The response was replayed from the memo store (no solve ran).
    pub memoized: bool,
    /// The request's `optimize` started from a prior certified bracket.
    pub bracket_injected: bool,
    /// Live engine evaluations this request caused.
    pub engine_evals: usize,
    /// Rounds replayed from the shared session's trajectory cache.
    pub replayed: usize,
}

impl ServeStats {
    /// The deepest cache tier that served this request, for telemetry:
    /// `"memo"` (tier 1), `"bracket"` (tier 3 continuation), `"prepared"`
    /// (tier 2 only), or `None` for a fully cold request.
    pub fn hit_tier(&self) -> Option<&'static str> {
        if self.memoized {
            Some("memo")
        } else if self.bracket_injected {
            Some("bracket")
        } else if self.prep_reused {
            Some("prepared")
        } else {
            None
        }
    }
}

/// One response: the request's id, its result (or a printable error), and
/// serving telemetry.
#[derive(Debug, Clone)]
pub struct ServeResponse {
    /// The request id this response answers.
    pub id: String,
    /// The result, or a printable per-request error.
    pub result: Result<ServeResult, String>,
    /// Serving telemetry.
    pub stats: ServeStats,
}

/// Aggregate report over one [`Scheduler::run_batch`] call.
#[derive(Debug, Clone, Default)]
pub struct BatchReport {
    /// Requests in the batch.
    pub requests: usize,
    /// Distinct fingerprint groups executed.
    pub groups: usize,
    /// Requests that ended in an error response.
    pub errors: usize,
    /// Solver preparations performed (engine builds).
    pub prep_builds: usize,
    /// Per-tier cache hit counters (same schema as the streaming
    /// [`crate::service::ServiceReport`], so E13 and E15 compare
    /// row-for-row).
    pub tiers: crate::telemetry::TierCounters,
    /// Total live engine evaluations across the batch.
    pub engine_evals: usize,
    /// Total trajectory-cache rounds replayed across the batch.
    pub replayed: usize,
    /// Sum of per-request queue waits.
    pub total_queue_wait: Duration,
    /// Largest single queue wait.
    pub max_queue_wait: Duration,
    /// Sum of per-request service times.
    pub total_service: Duration,
    /// Service-time (execution only) latency histogram.
    pub service_hist: crate::telemetry::LatencyHistogram,
    /// Queue-wait (batch start → execution start) latency histogram.
    pub queue_hist: crate::telemetry::LatencyHistogram,
    /// Wall-clock time of the whole batch.
    pub wall: Duration,
}

/// Responses (submission order) plus the aggregate report.
pub struct BatchOutput {
    /// One response per request, in submission order.
    pub responses: Vec<ServeResponse>,
    /// Aggregate batch telemetry.
    pub report: BatchReport,
}

/// The serving scheduler: owns the fingerprint cache and executes request
/// batches. Create once and feed it batches; cached preparation (and
/// memoized results) carry across batches.
pub struct Scheduler {
    opts: SchedulerOptions,
    cache: crate::cache::SolverCache,
}

/// One fingerprint group's members: `(submission index, request, params
/// key)`.
type GroupItems<'r> = Vec<(usize, &'r ServeRequest, String)>;

/// Work unit handed to a group worker.
struct GroupWork<'r> {
    /// The group's prep hash (cold mode uses a synthetic per-request
    /// value; it is never inserted, so it only needs to be unique).
    hash: u64,
    entry: Option<CacheEntry>,
    /// Members sorted by request id.
    items: GroupItems<'r>,
}

/// Full-fingerprint equality between two requests: same engine kind and
/// seed, and structurally identical instances. This — not the 64-bit hash
/// — is what defines a group.
fn fingerprint_eq(a: &ServeRequest, b: &ServeRequest) -> bool {
    prep_engine_of(&a.kind) == prep_engine_of(&b.kind) && a.payload.structural_eq(&b.payload)
}

/// What a group worker hands back.
struct GroupOutcome {
    responses: Vec<(usize, ServeResponse)>,
    entry: Option<CacheEntry>,
    prep_built: bool,
}

impl Scheduler {
    /// A scheduler with the given options.
    pub fn new(opts: SchedulerOptions) -> Self {
        Scheduler { opts, cache: crate::cache::SolverCache::new(opts.max_entries) }
    }

    /// Number of fingerprints currently cached.
    pub fn cached_fingerprints(&self) -> usize {
        self.cache.len()
    }

    /// Execute one batch. Responses come back in submission order; see the
    /// module docs for the determinism and reuse contracts.
    ///
    /// # Errors
    /// [`ServeError::DuplicateId`] when two requests share an id.
    /// Per-request failures (bad options, mismatched payload, solver
    /// errors) are reported inside the affected [`ServeResponse`], not as
    /// batch errors.
    pub fn run_batch(&mut self, requests: &[ServeRequest]) -> Result<BatchOutput, ServeError> {
        let batch_start = Instant::now();
        {
            let mut seen = std::collections::BTreeSet::new();
            for r in requests {
                if !seen.insert(r.id.as_str()) {
                    return Err(ServeError::DuplicateId(r.id.clone()));
                }
            }
        }

        // Partition into fingerprint groups: bucket by prep hash (BTreeMap
        // ⇒ canonical bucket order, independent of submission order), then
        // split each bucket by *actual* fingerprint equality so a 64-bit
        // collision can only split a group, never merge two distinct
        // fingerprints onto one prepared solver.
        let mut mismatched: Vec<usize> = Vec::new();
        let mut buckets: BTreeMap<u64, Vec<GroupItems<'_>>> = BTreeMap::new();
        for (idx, req) in requests.iter().enumerate() {
            if !req.payload_matches_kind() {
                mismatched.push(idx);
                continue;
            }
            let hash = if self.opts.cache_enabled {
                prep_hash(req)
            } else {
                // Cold mode: every request is its own group and nothing is
                // kept, giving the uncached per-request baseline. The
                // synthetic hash is never inserted, only unique.
                idx as u64
            };
            let subs = buckets.entry(hash).or_default();
            let item = (idx, req, params_key(&req.kind));
            match subs
                .iter_mut()
                .find(|s| s.first().is_some_and(|(_, rep, _)| fingerprint_eq(rep, req)))
            {
                Some(s) => s.push(item),
                None => subs.push(vec![item]),
            }
        }
        let mut work: Vec<GroupWork<'_>> = Vec::new();
        for (hash, mut subs) in buckets {
            for s in subs.iter_mut() {
                s.sort_by(|a, b| a.1.id.cmp(&b.1.id));
            }
            // Collision sub-groups (vanishingly rare) ordered by their
            // smallest request id, keeping group order a function of batch
            // contents alone.
            subs.sort_by(|a, b| {
                a.first().map(|x| x.1.id.as_str()).cmp(&b.first().map(|x| x.1.id.as_str()))
            });
            for items in subs {
                let entry = if self.opts.cache_enabled {
                    items.first().and_then(|(_, rep, _)| self.cache.take(hash, rep))
                } else {
                    None
                };
                work.push(GroupWork { hash, entry, items });
            }
        }

        // Bounded in-flight concurrency over the shared pool.
        let width = rayon::current_num_threads();
        let budget = if self.opts.max_in_flight == 0 {
            width
        } else {
            self.opts.max_in_flight.min(width).max(1)
        };
        let memo_cap = self.opts.memo_per_entry;
        let keep_entries = self.opts.cache_enabled;
        let work_now: Vec<GroupWork<'_>> = std::mem::take(&mut work);
        let group_count = work_now.len();
        // Concurrency never changes results, so if pool construction fails
        // (resource exhaustion), degrade to sequential execution instead of
        // panicking mid-batch.
        let outcomes: Vec<GroupOutcome> =
            match rayon::ThreadPoolBuilder::new().num_threads(budget).build() {
                Ok(pool) => pool.install(|| {
                    use rayon::prelude::*;
                    work_now
                        .into_par_iter()
                        .map(|w| process_group(w, memo_cap, keep_entries, batch_start))
                        .collect()
                }),
                Err(_) => work_now
                    .into_iter()
                    .map(|w| process_group(w, memo_cap, keep_entries, batch_start))
                    .collect(),
            };

        // Re-insert surviving entries in canonical group order.
        let mut prep_builds = 0usize;
        for outcome in &outcomes {
            if outcome.prep_built {
                prep_builds += 1;
            }
        }
        let mut responses: Vec<Option<ServeResponse>> = requests.iter().map(|_| None).collect();
        for outcome in outcomes {
            if let Some(entry) = outcome.entry {
                self.cache.insert(entry);
            }
            for (idx, resp) in outcome.responses {
                if let Some(slot) = responses.get_mut(idx) {
                    *slot = Some(resp);
                }
            }
        }
        for &idx in &mismatched {
            let (Some(slot), Some(req)) = (responses.get_mut(idx), requests.get(idx)) else {
                continue;
            };
            *slot = Some(ServeResponse {
                id: req.id.clone(),
                result: Err(format!(
                    "request kind `{}` does not match its instance payload",
                    req.kind.name()
                )),
                stats: ServeStats::default(),
            });
        }
        // Every request gets an answer even if a group worker dropped one
        // on the floor (a bug, but one that must surface as an error
        // response, not a panic mid-batch).
        let responses: Vec<ServeResponse> = responses
            .into_iter()
            .zip(requests)
            .map(|(slot, req)| {
                slot.unwrap_or_else(|| ServeResponse {
                    id: req.id.clone(),
                    result: Err("request was not answered by any group (internal)".to_string()),
                    stats: ServeStats::default(),
                })
            })
            .collect();

        let mut report = BatchReport {
            requests: requests.len(),
            groups: group_count,
            prep_builds,
            wall: batch_start.elapsed(),
            ..BatchReport::default()
        };
        for resp in &responses {
            if resp.result.is_err() {
                report.errors += 1;
            }
            let s = &resp.stats;
            report.tiers.record(s);
            report.engine_evals += s.engine_evals;
            report.replayed += s.replayed;
            report.total_queue_wait += s.queue_wait;
            report.max_queue_wait = report.max_queue_wait.max(s.queue_wait);
            report.total_service += s.service;
            report.service_hist.record(s.service);
            report.queue_hist.record(s.queue_wait);
        }
        Ok(BatchOutput { responses, report })
    }
}

/// Execute one fingerprint group sequentially (id order).
fn process_group(
    w: GroupWork<'_>,
    memo_cap: usize,
    keep_entry: bool,
    batch_start: Instant,
) -> GroupOutcome {
    match w.items.first().map(|(_, req, _)| &req.payload) {
        Some(InstancePayload::Packing(_)) => {
            process_packing_group(w, memo_cap, keep_entry, batch_start)
        }
        Some(InstancePayload::Mixed(_)) => {
            process_mixed_group(w, memo_cap, keep_entry, batch_start)
        }
        // An empty group produces no responses; the batch assembler backfills
        // any unanswered request with an internal-error response.
        None => GroupOutcome { responses: Vec::new(), entry: None, prep_built: false },
    }
}

/// Respond to every item with the same (preparation-stage) error.
fn error_group(items: Vec<(usize, &ServeRequest, String)>, msg: &str) -> GroupOutcome {
    let responses = items
        .into_iter()
        .map(|(idx, req, _)| {
            (
                idx,
                ServeResponse {
                    id: req.id.clone(),
                    result: Err(msg.to_string()),
                    stats: ServeStats::default(),
                },
            )
        })
        .collect();
    GroupOutcome { responses, entry: None, prep_built: false }
}

fn process_packing_group(
    w: GroupWork<'_>,
    memo_cap: usize,
    keep_entry: bool,
    batch_start: Instant,
) -> GroupOutcome {
    let GroupWork { hash, entry, items } = w;
    let Some((_, first_req, _)) = items.first() else {
        return GroupOutcome { responses: Vec::new(), entry: None, prep_built: false };
    };
    let (engine_kind, seed) = prep_engine_of(&first_req.kind);
    let build_opts = DecisionOptions::practical(0.1).with_engine(engine_kind).with_seed(seed);

    // Reuse or build the prepared state.
    let first_payload = &first_req.payload;
    let (inst, prior_engine, mut memo, mut bracket, prep_built) = match entry {
        Some(e) => match e.prepared {
            Prepared::Packing { inst, engine } => (inst, Some(engine), e.memo, e.bracket, false),
            Prepared::Mixed { .. } => {
                return error_group(items, "cache entry family mismatch (internal)");
            }
        },
        None => match first_payload {
            InstancePayload::Packing(i) => (Arc::clone(i), None, Vec::new(), None, true),
            InstancePayload::Mixed(_) => {
                return error_group(items, "mixed payload routed to a packing group (internal)");
            }
        },
    };
    let inst_ref = Arc::clone(&inst);
    let solver = {
        let builder = Solver::builder(&inst_ref).options(build_opts);
        let built = match prior_engine {
            Some(engine) => builder.build_with_engine(engine),
            None => builder.build(),
        };
        match built {
            Ok(s) => s,
            Err(e) => return error_group(items, &format!("solver preparation failed: {e}")),
        }
    };
    let mut session = solver.session();

    let mut responses = Vec::with_capacity(items.len());
    for (pos, (idx, req, params)) in items.iter().enumerate() {
        let started = Instant::now();
        let mut stats = ServeStats {
            queue_wait: started.duration_since(batch_start),
            prep_reused: !(prep_built && pos == 0),
            ..ServeStats::default()
        };
        let result: Result<ServeResult, String> =
            if let Some(hit) = memo.iter().find(|m| m.params == *params) {
                stats.memoized = true;
                Ok(hit.result.clone())
            } else {
                let run = match &req.kind {
                    RequestKind::Decision { threshold, opts } => session
                        .solve_with(*threshold, opts)
                        .map(ServeResult::Decision)
                        .map_err(|e| e.to_string()),
                    RequestKind::Optimize { opts } => {
                        let mut o = *opts;
                        if let Some((prior_params, lo, hi)) = &bracket {
                            if prior_params != params {
                                // Perturbed resubmission: continue from the
                                // prior certified bracket (tier 3).
                                o.initial_bracket = Some(match o.initial_bracket {
                                    Some((l, h)) => (l.max(*lo), h.min(*hi)),
                                    None => (*lo, *hi),
                                });
                                stats.bracket_injected = true;
                            }
                        }
                        session
                            .optimize(&o)
                            .map(|r| {
                                bracket = Some((params.clone(), r.value_lower, r.value_upper));
                                ServeResult::Optimize(r)
                            })
                            .map_err(|e| e.to_string())
                    }
                    RequestKind::Mixed { .. } => {
                        Err("mixed request routed to a packing group (internal)".to_string())
                    }
                };
                if let Ok(res) = &run {
                    if memo.len() < memo_cap {
                        memo.push(MemoEntry { params: params.clone(), result: res.clone() });
                    }
                }
                run
            };
        if let Ok(res) = &result {
            let (evals, replayed) = match res {
                ServeResult::Decision(d) if !stats.memoized => {
                    (d.stats.engine_evals, d.stats.replayed)
                }
                ServeResult::Optimize(r) if !stats.memoized => {
                    (r.total_engine_evals, r.total_replayed)
                }
                _ => (0, 0),
            };
            stats.engine_evals = evals;
            stats.replayed = replayed;
        }
        stats.service = started.elapsed();
        responses.push((*idx, ServeResponse { id: req.id.clone(), result, stats }));
    }

    let engine = solver.engine_handle();
    drop(session);
    let entry = keep_entry.then_some(CacheEntry {
        hash,
        engine_kind,
        seed,
        prepared: Prepared::Packing { inst, engine },
        memo,
        bracket,
        last_used: 0,
    });
    GroupOutcome { responses, entry, prep_built }
}

fn process_mixed_group(
    w: GroupWork<'_>,
    memo_cap: usize,
    keep_entry: bool,
    batch_start: Instant,
) -> GroupOutcome {
    let GroupWork { hash, entry, items } = w;
    let Some((_, first_req, _)) = items.first() else {
        return GroupOutcome { responses: Vec::new(), entry: None, prep_built: false };
    };
    let (engine_kind, seed) = prep_engine_of(&first_req.kind);
    let build_opts = MixedOptions::practical(0.1).with_engine(engine_kind).with_seed(seed);

    type EnginePair = (Arc<psdp_expdot::Engine>, Arc<psdp_expdot::Engine>);
    let first_payload = &first_req.payload;
    let (inst, prior_engines, mut memo, prep_built): (
        Arc<MixedInstance>,
        Option<EnginePair>,
        Vec<MemoEntry>,
        bool,
    ) = match entry {
        Some(e) => match e.prepared {
            Prepared::Mixed { inst, pack_engine, cover_engine } => {
                (inst, Some((pack_engine, cover_engine)), e.memo, false)
            }
            Prepared::Packing { .. } => {
                return error_group(items, "cache entry family mismatch (internal)");
            }
        },
        None => match first_payload {
            InstancePayload::Mixed(i) => (Arc::clone(i), None, Vec::new(), true),
            InstancePayload::Packing(_) => {
                return error_group(items, "packing payload routed to a mixed group (internal)");
            }
        },
    };
    let inst_ref = Arc::clone(&inst);
    let solver = {
        let builder = MixedSolver::builder(&inst_ref).options(build_opts);
        let built = match prior_engines {
            Some((pack, cover)) => builder.build_with_engines(pack, cover),
            None => builder.build(),
        };
        match built {
            Ok(s) => s,
            Err(e) => return error_group(items, &format!("solver preparation failed: {e}")),
        }
    };
    let mut session = solver.session();

    let mut responses = Vec::with_capacity(items.len());
    for (pos, (idx, req, params)) in items.iter().enumerate() {
        let started = Instant::now();
        let mut stats = ServeStats {
            queue_wait: started.duration_since(batch_start),
            prep_reused: !(prep_built && pos == 0),
            ..ServeStats::default()
        };
        let result: Result<ServeResult, String> =
            if let Some(hit) = memo.iter().find(|m| m.params == *params) {
                stats.memoized = true;
                Ok(hit.result.clone())
            } else {
                let run = match &req.kind {
                    RequestKind::Mixed { opts } => {
                        session.optimize(opts).map(ServeResult::Mixed).map_err(|e| e.to_string())
                    }
                    _ => Err("packing request routed to a mixed group (internal)".to_string()),
                };
                if let Ok(res) = &run {
                    if memo.len() < memo_cap {
                        memo.push(MemoEntry { params: params.clone(), result: res.clone() });
                    }
                }
                run
            };
        if let Ok(ServeResult::Mixed(r)) = &result {
            if !stats.memoized {
                stats.engine_evals = r.total_engine_evals;
            }
        }
        stats.service = started.elapsed();
        responses.push((*idx, ServeResponse { id: req.id.clone(), result, stats }));
    }

    let (pack_engine, cover_engine) = solver.engine_handles();
    drop(session);
    let entry = keep_entry.then_some(CacheEntry {
        hash,
        engine_kind,
        seed,
        prepared: Prepared::Mixed { inst, pack_engine, cover_engine },
        memo,
        bracket: None,
        last_used: 0,
    });
    GroupOutcome { responses, entry, prep_built }
}
